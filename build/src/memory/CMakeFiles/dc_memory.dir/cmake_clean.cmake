file(REMOVE_RECURSE
  "CMakeFiles/dc_memory.dir/pool.cpp.o"
  "CMakeFiles/dc_memory.dir/pool.cpp.o.d"
  "libdc_memory.a"
  "libdc_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
