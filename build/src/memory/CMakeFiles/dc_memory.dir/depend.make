# Empty dependencies file for dc_memory.
# This may be replaced when dependencies are built.
