# Empty compiler generated dependencies file for dc_memory.
# This may be replaced when dependencies are built.
