file(REMOVE_RECURSE
  "libdc_memory.a"
)
