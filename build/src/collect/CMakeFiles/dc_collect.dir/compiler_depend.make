# Empty compiler generated dependencies file for dc_collect.
# This may be replaced when dependencies are built.
