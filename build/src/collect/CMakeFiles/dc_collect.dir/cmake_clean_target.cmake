file(REMOVE_RECURSE
  "libdc_collect.a"
)
