file(REMOVE_RECURSE
  "CMakeFiles/dc_collect.dir/array_dyn_append_dereg.cpp.o"
  "CMakeFiles/dc_collect.dir/array_dyn_append_dereg.cpp.o.d"
  "CMakeFiles/dc_collect.dir/array_dyn_append_dereg_upd.cpp.o"
  "CMakeFiles/dc_collect.dir/array_dyn_append_dereg_upd.cpp.o.d"
  "CMakeFiles/dc_collect.dir/array_dyn_search_resize.cpp.o"
  "CMakeFiles/dc_collect.dir/array_dyn_search_resize.cpp.o.d"
  "CMakeFiles/dc_collect.dir/array_stat_append_dereg.cpp.o"
  "CMakeFiles/dc_collect.dir/array_stat_append_dereg.cpp.o.d"
  "CMakeFiles/dc_collect.dir/array_stat_search_no.cpp.o"
  "CMakeFiles/dc_collect.dir/array_stat_search_no.cpp.o.d"
  "CMakeFiles/dc_collect.dir/dynamic_baseline.cpp.o"
  "CMakeFiles/dc_collect.dir/dynamic_baseline.cpp.o.d"
  "CMakeFiles/dc_collect.dir/fast_collect_list.cpp.o"
  "CMakeFiles/dc_collect.dir/fast_collect_list.cpp.o.d"
  "CMakeFiles/dc_collect.dir/hohrc_list.cpp.o"
  "CMakeFiles/dc_collect.dir/hohrc_list.cpp.o.d"
  "CMakeFiles/dc_collect.dir/registry.cpp.o"
  "CMakeFiles/dc_collect.dir/registry.cpp.o.d"
  "CMakeFiles/dc_collect.dir/static_baseline.cpp.o"
  "CMakeFiles/dc_collect.dir/static_baseline.cpp.o.d"
  "CMakeFiles/dc_collect.dir/wide.cpp.o"
  "CMakeFiles/dc_collect.dir/wide.cpp.o.d"
  "libdc_collect.a"
  "libdc_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
