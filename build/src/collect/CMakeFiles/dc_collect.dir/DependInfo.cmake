
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collect/array_dyn_append_dereg.cpp" "src/collect/CMakeFiles/dc_collect.dir/array_dyn_append_dereg.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/array_dyn_append_dereg.cpp.o.d"
  "/root/repo/src/collect/array_dyn_append_dereg_upd.cpp" "src/collect/CMakeFiles/dc_collect.dir/array_dyn_append_dereg_upd.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/array_dyn_append_dereg_upd.cpp.o.d"
  "/root/repo/src/collect/array_dyn_search_resize.cpp" "src/collect/CMakeFiles/dc_collect.dir/array_dyn_search_resize.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/array_dyn_search_resize.cpp.o.d"
  "/root/repo/src/collect/array_stat_append_dereg.cpp" "src/collect/CMakeFiles/dc_collect.dir/array_stat_append_dereg.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/array_stat_append_dereg.cpp.o.d"
  "/root/repo/src/collect/array_stat_search_no.cpp" "src/collect/CMakeFiles/dc_collect.dir/array_stat_search_no.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/array_stat_search_no.cpp.o.d"
  "/root/repo/src/collect/dynamic_baseline.cpp" "src/collect/CMakeFiles/dc_collect.dir/dynamic_baseline.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/dynamic_baseline.cpp.o.d"
  "/root/repo/src/collect/fast_collect_list.cpp" "src/collect/CMakeFiles/dc_collect.dir/fast_collect_list.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/fast_collect_list.cpp.o.d"
  "/root/repo/src/collect/hohrc_list.cpp" "src/collect/CMakeFiles/dc_collect.dir/hohrc_list.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/hohrc_list.cpp.o.d"
  "/root/repo/src/collect/registry.cpp" "src/collect/CMakeFiles/dc_collect.dir/registry.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/registry.cpp.o.d"
  "/root/repo/src/collect/static_baseline.cpp" "src/collect/CMakeFiles/dc_collect.dir/static_baseline.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/static_baseline.cpp.o.d"
  "/root/repo/src/collect/wide.cpp" "src/collect/CMakeFiles/dc_collect.dir/wide.cpp.o" "gcc" "src/collect/CMakeFiles/dc_collect.dir/wide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/htm/CMakeFiles/dc_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/dc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
