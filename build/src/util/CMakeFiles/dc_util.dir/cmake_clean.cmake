file(REMOVE_RECURSE
  "CMakeFiles/dc_util.dir/cycles.cpp.o"
  "CMakeFiles/dc_util.dir/cycles.cpp.o.d"
  "CMakeFiles/dc_util.dir/stats.cpp.o"
  "CMakeFiles/dc_util.dir/stats.cpp.o.d"
  "CMakeFiles/dc_util.dir/table.cpp.o"
  "CMakeFiles/dc_util.dir/table.cpp.o.d"
  "CMakeFiles/dc_util.dir/thread_id.cpp.o"
  "CMakeFiles/dc_util.dir/thread_id.cpp.o.d"
  "libdc_util.a"
  "libdc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
