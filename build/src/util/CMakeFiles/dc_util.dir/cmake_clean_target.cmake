file(REMOVE_RECURSE
  "libdc_util.a"
)
