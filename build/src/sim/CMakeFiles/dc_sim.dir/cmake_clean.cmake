file(REMOVE_RECURSE
  "CMakeFiles/dc_sim.dir/drivers.cpp.o"
  "CMakeFiles/dc_sim.dir/drivers.cpp.o.d"
  "CMakeFiles/dc_sim.dir/options.cpp.o"
  "CMakeFiles/dc_sim.dir/options.cpp.o.d"
  "libdc_sim.a"
  "libdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
