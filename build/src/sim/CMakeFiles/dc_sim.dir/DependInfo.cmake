
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/drivers.cpp" "src/sim/CMakeFiles/dc_sim.dir/drivers.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/drivers.cpp.o.d"
  "/root/repo/src/sim/options.cpp" "src/sim/CMakeFiles/dc_sim.dir/options.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/options.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collect/CMakeFiles/dc_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/dc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/dc_htm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
