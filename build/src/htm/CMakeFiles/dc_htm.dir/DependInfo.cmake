
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/config.cpp" "src/htm/CMakeFiles/dc_htm.dir/config.cpp.o" "gcc" "src/htm/CMakeFiles/dc_htm.dir/config.cpp.o.d"
  "/root/repo/src/htm/htm.cpp" "src/htm/CMakeFiles/dc_htm.dir/htm.cpp.o" "gcc" "src/htm/CMakeFiles/dc_htm.dir/htm.cpp.o.d"
  "/root/repo/src/htm/orec.cpp" "src/htm/CMakeFiles/dc_htm.dir/orec.cpp.o" "gcc" "src/htm/CMakeFiles/dc_htm.dir/orec.cpp.o.d"
  "/root/repo/src/htm/stats.cpp" "src/htm/CMakeFiles/dc_htm.dir/stats.cpp.o" "gcc" "src/htm/CMakeFiles/dc_htm.dir/stats.cpp.o.d"
  "/root/repo/src/htm/txn.cpp" "src/htm/CMakeFiles/dc_htm.dir/txn.cpp.o" "gcc" "src/htm/CMakeFiles/dc_htm.dir/txn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
