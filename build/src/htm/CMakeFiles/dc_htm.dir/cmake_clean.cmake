file(REMOVE_RECURSE
  "CMakeFiles/dc_htm.dir/config.cpp.o"
  "CMakeFiles/dc_htm.dir/config.cpp.o.d"
  "CMakeFiles/dc_htm.dir/htm.cpp.o"
  "CMakeFiles/dc_htm.dir/htm.cpp.o.d"
  "CMakeFiles/dc_htm.dir/orec.cpp.o"
  "CMakeFiles/dc_htm.dir/orec.cpp.o.d"
  "CMakeFiles/dc_htm.dir/stats.cpp.o"
  "CMakeFiles/dc_htm.dir/stats.cpp.o.d"
  "CMakeFiles/dc_htm.dir/txn.cpp.o"
  "CMakeFiles/dc_htm.dir/txn.cpp.o.d"
  "libdc_htm.a"
  "libdc_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
