file(REMOVE_RECURSE
  "libdc_htm.a"
)
