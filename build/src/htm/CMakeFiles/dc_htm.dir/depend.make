# Empty dependencies file for dc_htm.
# This may be replaced when dependencies are built.
