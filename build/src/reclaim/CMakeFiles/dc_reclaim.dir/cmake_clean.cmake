file(REMOVE_RECURSE
  "CMakeFiles/dc_reclaim.dir/hazard_pointers.cpp.o"
  "CMakeFiles/dc_reclaim.dir/hazard_pointers.cpp.o.d"
  "CMakeFiles/dc_reclaim.dir/pass_the_buck.cpp.o"
  "CMakeFiles/dc_reclaim.dir/pass_the_buck.cpp.o.d"
  "libdc_reclaim.a"
  "libdc_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
