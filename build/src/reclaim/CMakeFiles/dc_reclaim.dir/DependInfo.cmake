
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reclaim/hazard_pointers.cpp" "src/reclaim/CMakeFiles/dc_reclaim.dir/hazard_pointers.cpp.o" "gcc" "src/reclaim/CMakeFiles/dc_reclaim.dir/hazard_pointers.cpp.o.d"
  "/root/repo/src/reclaim/pass_the_buck.cpp" "src/reclaim/CMakeFiles/dc_reclaim.dir/pass_the_buck.cpp.o" "gcc" "src/reclaim/CMakeFiles/dc_reclaim.dir/pass_the_buck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
