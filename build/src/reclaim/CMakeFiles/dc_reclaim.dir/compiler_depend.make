# Empty compiler generated dependencies file for dc_reclaim.
# This may be replaced when dependencies are built.
