file(REMOVE_RECURSE
  "libdc_reclaim.a"
)
