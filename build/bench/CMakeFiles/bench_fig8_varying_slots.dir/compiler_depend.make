# Empty compiler generated dependencies file for bench_fig8_varying_slots.
# This may be replaced when dependencies are built.
