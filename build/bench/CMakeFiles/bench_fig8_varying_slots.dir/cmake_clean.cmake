file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_varying_slots.dir/bench_fig8_varying_slots.cpp.o"
  "CMakeFiles/bench_fig8_varying_slots.dir/bench_fig8_varying_slots.cpp.o.d"
  "bench_fig8_varying_slots"
  "bench_fig8_varying_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_varying_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
