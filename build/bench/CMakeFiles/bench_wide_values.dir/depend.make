# Empty dependencies file for bench_wide_values.
# This may be replaced when dependencies are built.
