file(REMOVE_RECURSE
  "CMakeFiles/bench_wide_values.dir/bench_wide_values.cpp.o"
  "CMakeFiles/bench_wide_values.dir/bench_wide_values.cpp.o.d"
  "bench_wide_values"
  "bench_wide_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wide_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
