# Empty compiler generated dependencies file for bench_fig5_adaptive_step.
# This may be replaced when dependencies are built.
