# Empty dependencies file for bench_fig3_collect_dominated.
# This may be replaced when dependencies are built.
