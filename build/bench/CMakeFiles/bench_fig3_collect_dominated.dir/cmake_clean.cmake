file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_collect_dominated.dir/bench_fig3_collect_dominated.cpp.o"
  "CMakeFiles/bench_fig3_collect_dominated.dir/bench_fig3_collect_dominated.cpp.o.d"
  "bench_fig3_collect_dominated"
  "bench_fig3_collect_dominated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_collect_dominated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
