# Empty compiler generated dependencies file for bench_fig7_collect_dereg.
# This may be replaced when dependencies are built.
