file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_collect_dereg.dir/bench_fig7_collect_dereg.cpp.o"
  "CMakeFiles/bench_fig7_collect_dereg.dir/bench_fig7_collect_dereg.cpp.o.d"
  "bench_fig7_collect_dereg"
  "bench_fig7_collect_dereg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_collect_dereg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
