# Empty compiler generated dependencies file for bench_space_footprint.
# This may be replaced when dependencies are built.
