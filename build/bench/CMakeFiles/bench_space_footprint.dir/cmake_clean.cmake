file(REMOVE_RECURSE
  "CMakeFiles/bench_space_footprint.dir/bench_space_footprint.cpp.o"
  "CMakeFiles/bench_space_footprint.dir/bench_space_footprint.cpp.o.d"
  "bench_space_footprint"
  "bench_space_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
