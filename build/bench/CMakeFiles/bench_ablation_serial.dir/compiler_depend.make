# Empty compiler generated dependencies file for bench_ablation_serial.
# This may be replaced when dependencies are built.
