file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_serial.dir/bench_ablation_serial.cpp.o"
  "CMakeFiles/bench_ablation_serial.dir/bench_ablation_serial.cpp.o.d"
  "bench_ablation_serial"
  "bench_ablation_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
