# Empty compiler generated dependencies file for bench_fig4_collect_update.
# This may be replaced when dependencies are built.
