file(REMOVE_RECURSE
  "CMakeFiles/adaptive_telescoping.dir/adaptive_telescoping.cpp.o"
  "CMakeFiles/adaptive_telescoping.dir/adaptive_telescoping.cpp.o.d"
  "adaptive_telescoping"
  "adaptive_telescoping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_telescoping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
