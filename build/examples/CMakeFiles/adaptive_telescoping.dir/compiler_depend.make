# Empty compiler generated dependencies file for adaptive_telescoping.
# This may be replaced when dependencies are built.
