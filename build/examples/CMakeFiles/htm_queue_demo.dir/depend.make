# Empty dependencies file for htm_queue_demo.
# This may be replaced when dependencies are built.
