file(REMOVE_RECURSE
  "CMakeFiles/htm_queue_demo.dir/htm_queue_demo.cpp.o"
  "CMakeFiles/htm_queue_demo.dir/htm_queue_demo.cpp.o.d"
  "htm_queue_demo"
  "htm_queue_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_queue_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
