# Empty compiler generated dependencies file for safe_reclamation.
# This may be replaced when dependencies are built.
