file(REMOVE_RECURSE
  "CMakeFiles/safe_reclamation.dir/safe_reclamation.cpp.o"
  "CMakeFiles/safe_reclamation.dir/safe_reclamation.cpp.o.d"
  "safe_reclamation"
  "safe_reclamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
