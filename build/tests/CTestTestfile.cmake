# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/reclaim_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/collect_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
