file(REMOVE_RECURSE
  "CMakeFiles/htm_test.dir/htm/granularity_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/granularity_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/serial_section_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/serial_section_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/stats_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/stats_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/strong_atomicity_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/strong_atomicity_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/tle_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/tle_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/txn_atomicity_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/txn_atomicity_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/txn_basic_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/txn_basic_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/txn_overflow_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/txn_overflow_test.cpp.o.d"
  "CMakeFiles/htm_test.dir/htm/txn_property_test.cpp.o"
  "CMakeFiles/htm_test.dir/htm/txn_property_test.cpp.o.d"
  "htm_test"
  "htm_test.pdb"
  "htm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
