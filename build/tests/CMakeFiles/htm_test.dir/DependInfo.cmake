
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/htm/granularity_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/granularity_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/granularity_test.cpp.o.d"
  "/root/repo/tests/htm/serial_section_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/serial_section_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/serial_section_test.cpp.o.d"
  "/root/repo/tests/htm/stats_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/stats_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/stats_test.cpp.o.d"
  "/root/repo/tests/htm/strong_atomicity_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/strong_atomicity_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/strong_atomicity_test.cpp.o.d"
  "/root/repo/tests/htm/tle_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/tle_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/tle_test.cpp.o.d"
  "/root/repo/tests/htm/txn_atomicity_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/txn_atomicity_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/txn_atomicity_test.cpp.o.d"
  "/root/repo/tests/htm/txn_basic_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/txn_basic_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/txn_basic_test.cpp.o.d"
  "/root/repo/tests/htm/txn_overflow_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/txn_overflow_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/txn_overflow_test.cpp.o.d"
  "/root/repo/tests/htm/txn_property_test.cpp" "tests/CMakeFiles/htm_test.dir/htm/txn_property_test.cpp.o" "gcc" "tests/CMakeFiles/htm_test.dir/htm/txn_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/dc_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/dc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/dc_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/reclaim/CMakeFiles/dc_reclaim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
