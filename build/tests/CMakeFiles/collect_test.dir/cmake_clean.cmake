file(REMOVE_RECURSE
  "CMakeFiles/collect_test.dir/collect/collect_memory_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/collect_memory_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/collect_model_fuzz_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/collect_model_fuzz_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/collect_resize_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/collect_resize_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/collect_spec_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/collect_spec_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/collect_step_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/collect_step_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/collect_yield_stress_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/collect_yield_stress_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/fast_collect_defer_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/fast_collect_defer_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/telescope_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/telescope_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/update_opt_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/update_opt_test.cpp.o.d"
  "CMakeFiles/collect_test.dir/collect/wide_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect/wide_test.cpp.o.d"
  "collect_test"
  "collect_test.pdb"
  "collect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
