
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/collect/collect_memory_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/collect_memory_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/collect_memory_test.cpp.o.d"
  "/root/repo/tests/collect/collect_model_fuzz_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/collect_model_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/collect_model_fuzz_test.cpp.o.d"
  "/root/repo/tests/collect/collect_resize_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/collect_resize_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/collect_resize_test.cpp.o.d"
  "/root/repo/tests/collect/collect_spec_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/collect_spec_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/collect_spec_test.cpp.o.d"
  "/root/repo/tests/collect/collect_step_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/collect_step_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/collect_step_test.cpp.o.d"
  "/root/repo/tests/collect/collect_yield_stress_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/collect_yield_stress_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/collect_yield_stress_test.cpp.o.d"
  "/root/repo/tests/collect/fast_collect_defer_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/fast_collect_defer_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/fast_collect_defer_test.cpp.o.d"
  "/root/repo/tests/collect/telescope_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/telescope_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/telescope_test.cpp.o.d"
  "/root/repo/tests/collect/update_opt_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/update_opt_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/update_opt_test.cpp.o.d"
  "/root/repo/tests/collect/wide_test.cpp" "tests/CMakeFiles/collect_test.dir/collect/wide_test.cpp.o" "gcc" "tests/CMakeFiles/collect_test.dir/collect/wide_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/dc_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/dc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/dc_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/reclaim/CMakeFiles/dc_reclaim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
