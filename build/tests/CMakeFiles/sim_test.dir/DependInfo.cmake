
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/drivers_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/drivers_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/drivers_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/dc_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/dc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/dc_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/reclaim/CMakeFiles/dc_reclaim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
