// Ablation: speculation vs a single global lock (Config::serialize_all).
//
// The classic TM question — what does optimistic concurrency buy over
// coarse locking? — applied to the Figure 3 workload. On a multicore host
// the speculative substrate scales with threads while the serial mode
// flat-lines; on a single-core host (where nothing truly runs in parallel)
// the lock's lower per-operation cost can win — reported honestly either
// way, with the lock-acquisition counts shown.
#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  if (opts.sample_interval_ms > 0.0) {
    // This ablation resets the substrate counters at every sweep point to
    // attribute abort rates per configuration — incompatible with the
    // sampler's monotonic-counter contract (stats.hpp: quiescent-only).
    std::fprintf(stderr,
                 "--sample-interval: not supported by this ablation (it "
                 "resets counters per sweep point)\n");
    return 2;
  }
  const bench::ObsSession obs_session(opts);
  if (!opts.csv) {
    std::printf(
        "== Ablation: speculative HTM vs global-lock serialization ==\n"
        "(Figure 3 workload, ArrayDynAppendDereg step 32)\n");
    bench::print_host_caveat();
  }
  util::Table table({"threads", "speculative_ops_us", "serialized_ops_us",
                     "spec_abort_pct"});
  const sim::MixedMix mix{};
  for (const uint32_t threads : sim::thread_sweep(opts)) {
    double thru[2];
    double abort_pct = 0;
    int col = 0;
    for (const bool serial : {false, true}) {
      htm::config().serialize_all = serial;
      htm::reset_stats();
      util::RunningStats stats;
      for (int r = 0; r < opts.repeats; ++r) {
        auto obj = collect::make_algorithm("ArrayDynAppendDereg",
                                           bench::params_for(64, threads));
        obj->set_step_size(32);
        stats.add(
            sim::run_mixed(*obj, threads, 64, 32, mix, opts.duration_ms));
      }
      thru[col] = stats.mean();
      if (!serial) abort_pct = 100.0 * htm::aggregate_stats().abort_rate();
      ++col;
    }
    table.add_row({util::Table::fmt(uint64_t{threads}),
                   util::Table::fmt(thru[0]), util::Table::fmt(thru[1]),
                   util::Table::fmt(abort_pct, 1)});
  }
  htm::config().serialize_all = false;
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
  }
  if (!opts.json_path.empty()) {
    bench::write_json_report(opts.json_path, "ablation_serial", table, opts);
  }
  return 0;
}
