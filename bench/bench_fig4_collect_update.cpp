// Figure 4 — Collect throughput under concurrent paced Updates.
//
// One collector thread; 15 updaters each update one of their handles every
// `update period` cycles (swept 1M -> 400); 64 handles registered before
// measurement. Telescoped algorithms run in adaptive step mode ("(adapt)"
// in the paper's legend). An `--no-extension` ablation knob disables the
// substrate's timestamp extension to show its effect on long Collects.
#include <cstring>

#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  bool no_extension = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-extension") == 0) {
      no_extension = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto opts =
      sim::Options::parse(static_cast<int>(args.size()), args.data());
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  htm::reset_stats();
  const bench::ObsSession obs_session(opts);
  htm::config().enable_extension = !no_extension;
  // Restore multicore-style transaction/writer overlap (see Config).
  htm::config().txn_yield_every_loads = 48;

  const uint32_t updaters =
      opts.max_threads > 1 ? opts.max_threads - 1 : 1;  // paper: 15
  if (!opts.csv) {
    std::printf(
        "== Figure 4: collect throughput [collects/us] vs update period "
        "==\n(1 collector + %u updaters, 64 handles%s)\n",
        updaters, no_extension ? ", timestamp extension DISABLED" : "");
    bench::print_host_caveat();
  }

  const std::vector<std::string> series = {
      "ArrayDynAppendDereg", "ArrayStatAppendDereg", "ListFastCollect",
      "ArrayDynSearchResize", "ArrayStatSearchNo",   "StaticBaseline"};
  const std::vector<uint64_t> periods = {
      1'000'000, 500'000, 200'000, 100'000, 50'000, 20'000, 10'000,
      8'000,     6'000,   4'000,   2'000,   1'000,  800,    600,
      400};

  std::vector<std::string> headers = {"period_cycles"};
  headers.insert(headers.end(), series.begin(), series.end());
  util::Table table(headers);

  for (const uint64_t period : periods) {
    std::vector<std::string> row = {util::Table::fmt(period)};
    for (const std::string& name : series) {
      util::RunningStats stats;
      for (int r = 0; r < opts.repeats; ++r) {
        auto obj =
            collect::make_algorithm(name, bench::params_for(64, updaters));
        if (bench::algo(name).telescoped) obj->set_adaptive(true);
        stats.add(sim::run_collect_update(*obj, updaters, 64, period,
                                          opts.duration_ms)
                      .collects_per_us);
      }
      row.push_back(util::Table::fmt(stats.mean()));
    }
    table.add_row(row);
  }
  return bench::report(table, opts, "fig4_collect_update");
}
