// Figure 3 — Collect-dominated mixed workload, throughput vs threads.
//
// Distribution: Collect 90%, Update 8%, Register 1%, DeRegister 1%; a total
// budget of 64 handles spread evenly over the threads, 32 registered before
// measurement. All eight algorithms run here (the paper drops HOHRC and the
// Dynamic baseline from later figures after this one shows them far
// behind). Telescoped algorithms use step 32, as in the paper's legend.
#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  htm::reset_stats();
  const bench::ObsSession obs_session(opts);
  if (!opts.csv) {
    std::printf(
        "== Figure 3: collect-dominated workload [ops/us] vs threads ==\n"
        "(mix: 90%% Collect / 8%% Update / 1%% Register / 1%% DeRegister; 64 "
        "slot budget, 32 preregistered)\n");
    bench::print_host_caveat();
  }
  // Restore multicore-style transaction/writer overlap on oversubscribed
  // hosts (see Config::txn_yield_every_loads).
  htm::config().txn_yield_every_loads = 16;

  const std::vector<std::string> series = {
      "ArrayStatSearchNo", "ArrayDynAppendDereg", "ArrayStatAppendDereg",
      "ListFastCollect",   "StaticBaseline",      "ArrayDynSearchResize",
      "ListHoHRC",         "DynamicBaseline"};

  std::vector<std::string> headers = {"threads"};
  headers.insert(headers.end(), series.begin(), series.end());
  util::Table table(headers);

  const sim::MixedMix mix{};  // 90/8/1/1
  for (const uint32_t threads : sim::thread_sweep(opts)) {
    std::vector<std::string> row = {util::Table::fmt(uint64_t{threads})};
    for (const std::string& name : series) {
      util::RunningStats stats;
      for (int r = 0; r < opts.repeats; ++r) {
        auto obj =
            collect::make_algorithm(name, bench::params_for(64, threads));
        // Step 32 for the telescoped series, per the paper's legend; HOHRC
        // runs untelescoped there (its per-node reference-count traffic is
        // exactly what Figure 3 exposes).
        if (name == "ListHoHRC") {
          obj->set_step_size(1);
        } else if (bench::algo(name).telescoped) {
          obj->set_step_size(32);
        }
        stats.add(sim::run_mixed(*obj, threads, 64, 32, mix,
                                 opts.duration_ms));
      }
      row.push_back(util::Table::fmt(stats.mean()));
    }
    table.add_row(row);
  }
  return bench::report(table, opts, "fig3_collect_dominated");
}
