// Ablation: conflict-detection granularity (word vs cache line).
//
// Real HTMs — Rock included — detect conflicts at cache-line granularity,
// so a paced Update to one handle falsely conflicts with Collect reads of
// *neighbouring* array slots (a 16-byte slot packs 4 to a line). This
// ablation reruns the Figure 4 workload for ArrayDynAppendDereg at both
// granularities and reports throughput plus the substrate's abort counts:
// expect more conflict aborts — and lower adaptive step sizes — with
// line-granularity detection.
#include <numeric>

#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  if (opts.sample_interval_ms > 0.0) {
    // This ablation resets the substrate counters at every sweep point to
    // attribute abort rates per configuration — incompatible with the
    // sampler's monotonic-counter contract (stats.hpp: quiescent-only).
    std::fprintf(stderr,
                 "--sample-interval: not supported by this ablation (it "
                 "resets counters per sweep point)\n");
    return 2;
  }
  const bench::ObsSession obs_session(opts);
  const uint32_t updaters = opts.max_threads > 1 ? opts.max_threads - 1 : 1;
  if (!opts.csv) {
    std::printf(
        "== Ablation: conflict granularity (word vs cache line) ==\n"
        "(Figure 4 workload, ArrayDynAppendDereg adaptive, 1 collector + %u "
        "updaters, 64 handles)\n",
        updaters);
    bench::print_host_caveat();
  }
  htm::config().txn_yield_every_loads = 48;

  const std::vector<uint64_t> periods = {1'000'000, 100'000, 10'000, 1'000};
  util::Table table({"period_cycles", "word_collects_us", "word_abort_pct",
                     "line_collects_us", "line_abort_pct"});
  for (const uint64_t period : periods) {
    double thru[2];
    double abort_pct[2];
    int col = 0;
    for (const uint32_t gran : {3u, 6u}) {
      htm::config().conflict_granularity_log2 = gran;
      htm::reset_stats();
      util::RunningStats stats;
      for (int r = 0; r < opts.repeats; ++r) {
        auto obj = collect::make_algorithm("ArrayDynAppendDereg",
                                           bench::params_for(64, updaters));
        obj->set_adaptive(true);
        stats.add(sim::run_collect_update(*obj, updaters, 64, period,
                                          opts.duration_ms)
                      .collects_per_us);
      }
      thru[col] = stats.mean();
      abort_pct[col] = 100.0 * htm::aggregate_stats().abort_rate();
      ++col;
    }
    table.add_row({util::Table::fmt(period), util::Table::fmt(thru[0]),
                   util::Table::fmt(abort_pct[0], 1),
                   util::Table::fmt(thru[1]),
                   util::Table::fmt(abort_pct[1], 1)});
  }
  htm::config().conflict_granularity_log2 = 3;
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\n(line granularity: a slot update dooms transactions reading any "
        "of the ~4 slots sharing its cache line)\n");
  }
  if (!opts.json_path.empty()) {
    bench::write_json_report(opts.json_path, "ablation_granularity", table,
                             opts);
  }
  return 0;
}
