// The paper's space claims (§1.1, §1.2, §5.5) as a table.
//
// §1.2: non-dynamic announcement schemes make quiescent memory proportional
// to the data structure's *historical* footprint; Dynamic Collect makes it
// proportional to the *current* one. For every algorithm we report shared
// bytes at four points of one history:
//   floor -> 16 registered -> 256 registered -> back to 16 registered
// plus how many slots its Collect traverses afterwards (the time-side echo
// of the same property, Figure 8).
#include <vector>

#include "bench_common.hpp"
#include "memory/pool.hpp"
#include "queue/htm_queue.hpp"
#include "queue/ms_queue.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  const bench::ObsSession obs_session(opts);
  if (!opts.csv) {
    std::printf(
        "== Space: quiescent shared memory vs registration history ==\n"
        "(history: register 16 -> grow to 256 -> deregister back to 16)\n\n");
  }
  util::Table table({"algorithm", "floor_B", "at16_B", "at256_B",
                     "back_to16_B", "collect_len@16", "dynamic"});
  for (const auto& info : collect::all_algorithms()) {
    auto obj = info.make(bench::params_for(256, 1));  // single-threaded history
    const std::size_t floor_b = obj->footprint_bytes();
    std::vector<collect::Handle> handles;
    for (collect::Value v = 0; v < 16; ++v) {
      handles.push_back(obj->register_handle(v));
    }
    const std::size_t at16 = obj->footprint_bytes();
    for (collect::Value v = 16; v < 256; ++v) {
      handles.push_back(obj->register_handle(v));
    }
    const std::size_t at256 = obj->footprint_bytes();
    while (handles.size() > 16) {
      obj->deregister(handles.back());
      handles.pop_back();
    }
    std::vector<collect::Value> out;
    obj->collect(out);  // lets list algorithms prune; measures scan length
    const std::size_t back16 = obj->footprint_bytes();
    table.add_row({info.name, util::Table::fmt(uint64_t{floor_b}),
                   util::Table::fmt(uint64_t{at16}),
                   util::Table::fmt(uint64_t{at256}),
                   util::Table::fmt(uint64_t{back16}),
                   util::Table::fmt(uint64_t{out.size()}),
                   info.is_dynamic ? "yes" : "no"});
    for (collect::Handle h : handles) obj->deregister(h);
  }
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
  }

  // The queue half of the story (§1.1).
  mem::pool_flush_thread_cache();
  const auto base = mem::pool_stats();
  uint64_t htm_quiescent = 0, ms_quiescent = 0;
  {
    queue::HtmQueue q;
    for (queue::Value i = 0; i < 4096; ++i) q.enqueue(i);
    queue::Value v;
    while (q.dequeue(&v)) {
    }
    htm_quiescent = mem::pool_stats().live_blocks - base.live_blocks;
  }
  {
    queue::MsQueue q;
    for (queue::Value i = 0; i < 4096; ++i) q.enqueue(i);
    queue::Value v;
    while (q.dequeue(&v)) {
    }
    ms_quiescent = q.pooled_nodes();
  }
  if (!opts.csv) {
    std::printf(
        "\nqueues after a 4096-entry burst, drained:\n"
        "  HtmQueue quiescent nodes      : %llu (frees on dequeue)\n"
        "  MsQueue pooled nodes          : %llu (historical maximum, §1.1)\n",
        (unsigned long long)htm_quiescent, (unsigned long long)ms_quiescent);
  }
  return 0;
}
