// Figure 7 — Collect throughput under Register/DeRegister churn.
//
// One collector + 15 churn threads; register period fixed at 20,000 cycles,
// deregister period swept 1M -> 1k; at most 64 registered handles.
// Telescoped algorithms use fixed step 32 (the paper's legend).
#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  htm::reset_stats();
  const bench::ObsSession obs_session(opts);
  const uint32_t churners = opts.max_threads > 1 ? opts.max_threads - 1 : 1;
  if (!opts.csv) {
    std::printf(
        "== Figure 7: collect throughput [collects/us] vs deregister period "
        "==\n(1 collector + %u register/deregister threads, <=64 handles, "
        "register period 20k cycles)\n",
        churners);
    bench::print_host_caveat();
  }
  // Restore multicore-style transaction/writer overlap on oversubscribed
  // hosts (see Config::txn_yield_every_loads).
  htm::config().txn_yield_every_loads = 16;

  const std::vector<std::string> series = {
      "ArrayStatAppendDereg", "ArrayDynAppendDereg", "ListFastCollect",
      "ArrayDynSearchResize", "ArrayStatSearchNo",   "StaticBaseline"};
  const std::vector<uint64_t> periods = {1'000'000, 500'000, 200'000,
                                         100'000,   50'000,  20'000,
                                         10'000,    8'000,   6'000,
                                         4'000,     2'000,   1'000};

  std::vector<std::string> headers = {"dereg_period_cycles"};
  headers.insert(headers.end(), series.begin(), series.end());
  util::Table table(headers);

  for (const uint64_t period : periods) {
    std::vector<std::string> row = {util::Table::fmt(period)};
    for (const std::string& name : series) {
      util::RunningStats stats;
      for (int r = 0; r < opts.repeats; ++r) {
        auto obj =
            collect::make_algorithm(name, bench::params_for(64, churners));
        if (bench::algo(name).telescoped) obj->set_step_size(32);
        stats.add(sim::run_collect_dereg(*obj, churners, 64, 20'000, period,
                                         opts.duration_ms)
                      .collects_per_us);
      }
      row.push_back(util::Table::fmt(stats.mean()));
    }
    table.add_row(row);
  }
  return bench::report(table, opts, "fig7_collect_dereg");
}
