// Open-loop session service under chaos — holding a latency SLO through
// fault storms, worker kills, and overload spikes.
//
// This is the robustness capstone over the whole stack: an arrival process
// (Poisson or bursty MMPP, --arrival-rate/--burstiness) generates sessions
// that Register on connect, issue Updates, and DeRegister on disconnect,
// dispatched through a bounded accept queue to a worker pool driving a
// CrashTolerantCollect. Latency is charged from *intended* arrival
// instants (coordinated-omission-safe); overload sheds connects (counted,
// annotated, never silent); admitted sessions always finish — or die with
// a chaos-killed worker, whose handles the lease reaper recovers while a
// fresh thread respawns onto the same worker index.
//
// --chaos SCRIPT runs a timed phase script (src/service/chaos.hpp) against
// the live service; per-phase recovery metrics (MTTR to SLO re-attainment,
// shed volume, orphan-reap latency) land in the "service" section of the
// v9 JSON report alongside the timeline's chaos_phase/shed_onset
// annotations. A clean run at a sustainable rate exits 0 with zero sheds;
// an SLO-violating run exits 3 unless --slo-observe.
//
// Memory backpressure (PR 10): with --mem-limit the pool is bounded and a
// mem-squeeze chaos phase (or plain overload) can push utilization past
// the admission watermark — connects are then shed as shed_mem, and a
// session that hits pool exhaustion mid-flight ends as oom (counted, never
// a process abort). --longtail FRAC:DWELL shifts the session mix toward
// persistent sessions so squeezes land on long-held state.
//
// Session accounting is conservation-checked before reporting:
//     generated == accepted + shed + shed_mem
//     accepted  == completed + killed + oom
// and the process exits 1 if either fails — that is a harness bug, not a
// robustness finding.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "htm/crash.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"

namespace {

// Merged CounterProvider: the substrate sample plus the service tier's
// shed/chaos counters, so timeline windows decompose both worlds on one
// axis. Must be stateless (plain function pointer) — service counters are
// file-static inside dc_service.
dc::obs::timeline::CounterSample service_counter_sample() {
  dc::obs::timeline::CounterSample c = dc::bench::detail::htm_counter_sample();
  const dc::service::Counters sc = dc::service::counters();
  c.sessions_shed = sc.shed;
  c.sessions_shed_mem = sc.shed_mem;
  c.chaos_phases = sc.chaos_phases;
  return c;
}

// Bounded-mode pool pre-warm: map slabs until the pool's OS footprint
// reaches ~85% of the capacity bound, then release the blocks (the
// never-unmapping pool keeps the footprint). A real memory-budgeted server
// pre-faults its arena the same way so steady-state latency never eats
// page faults — and it makes mem-squeeze phases deterministic: a squeeze
// to 90% of the limit lands below the warmed footprint regardless of how
// little the session workload itself allocates.
void prewarm_pool(uint64_t limit_bytes) {
  // Warm the node class first: the workload's only steady-state allocation
  // is the collect-list node (24 bytes -> 32-byte class). One slab of
  // pre-faulted nodes means the service itself never triggers a refill, so
  // os_bytes is pinned for the rest of the run and the squeeze bracket math
  // (utilization vs watermark, headroom after release) is deterministic.
  std::vector<void*> blocks;
  constexpr std::size_t kNodeWarm = 32;
  const uint64_t node_slab = dc::mem::pool_stats().os_bytes + 1;
  while (dc::mem::pool_stats().os_bytes < node_slab) {
    void* p = dc::mem::pool_try_allocate(kNodeWarm);
    if (p == nullptr) break;
    blocks.push_back(p);
  }
  // Bulk-fault the rest of the arena to ~85% of the cap with a large class.
  const uint64_t target = limit_bytes - limit_bytes / 100 * 15;
  constexpr std::size_t kWarmBlock = 16 * 1024;
  std::vector<void*> bulk;
  while (dc::mem::pool_stats().os_bytes < target) {
    void* p = dc::mem::pool_try_allocate(kWarmBlock);
    if (p == nullptr) break;  // limit denial: as warm as the cap allows
    bulk.push_back(p);
  }
  for (void* p : blocks) dc::mem::pool_deallocate(p, kNodeWarm);
  for (void* p : bulk) dc::mem::pool_deallocate(p, kWarmBlock);
  dc::mem::pool_flush_thread_cache();
  std::fprintf(stderr, "# pool pre-warmed to %llu / %llu bytes\n",
               static_cast<unsigned long long>(
                   dc::mem::pool_stats().os_bytes),
               static_cast<unsigned long long>(limit_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dc;
  auto opts = sim::Options::parse(argc, argv);
  // The service is a timed run, not a sweep: give it a usable default
  // window (the figure benches' 50 ms is too short for chaos phases).
  if (opts.duration_ms <= 50.0) opts.duration_ms = 500.0;
  htm::reset_stats();
  service::reset_counters();
  const bench::ObsSession obs_session(opts, &service_counter_sample);
  htm::crash::reset_all();

  service::ServiceConfig cfg;
  cfg.arrival_rate = opts.arrival_rate > 0.0 ? opts.arrival_rate : 2000.0;
  cfg.burstiness = opts.burstiness;
  cfg.workers = opts.workers > 0 ? opts.workers : 2;
  cfg.queue_capacity = opts.queue_capacity > 0 ? opts.queue_capacity : 64;
  cfg.duration_ms = opts.duration_ms;
  cfg.seed = 1;
  if (opts.longtail_fraction >= 0.0) {
    cfg.persistent_fraction = opts.longtail_fraction;
  }
  if (opts.longtail_requests > 0) {
    cfg.persistent_requests = opts.longtail_requests;
  }

  std::vector<service::ChaosPhase> phases;
  if (!opts.chaos_path.empty()) {
    std::string err;
    if (!service::load_script(opts.chaos_path, &phases, &err)) {
      std::fprintf(stderr, "--chaos: %s\n", err.c_str());
      return 2;
    }
  }
  std::vector<obs::slo::Target> targets;
  if (!opts.slo.empty()) {
    std::string err;
    if (!obs::slo::parse(opts.slo, &targets, &err)) {
      std::fprintf(stderr, "--slo: %s\n", err.c_str());
      return 2;
    }
  }

  if (!opts.csv) {
    std::printf(
        "== Open-loop session service: shedding, chaos, recovery ==\n"
        "(%.0f sessions/s%s, %u workers, queue %u, %.0f ms%s)\n",
        cfg.arrival_rate,
        cfg.burstiness > 0.0 ? " bursty" : " Poisson", cfg.workers,
        cfg.queue_capacity, cfg.duration_ms,
        phases.empty() ? ""
                       : (", " + std::to_string(phases.size()) +
                          " chaos phases")
                             .c_str());
    bench::print_host_caveat();
  }

  // Bounded-mode runs pre-fault the arena (see prewarm_pool). Keep the
  // limit comfortably above 8 slabs (512k): a too-tight cap makes the
  // warm itself hit the bound and the service starts inside a pressure
  // episode it can never leave.
  if (const uint64_t limit = mem::pool_effective_limit(); limit != 0) {
    prewarm_pool(limit);
  }

  service::Service svc(cfg);
  service::ChaosOrchestrator chaos(phases, &svc);
  svc.start();
  if (!phases.empty()) chaos.start();
  svc.run_generator();
  if (!phases.empty()) chaos.stop();
  svc.stop();

  // Close the final telemetry window before computing phase recovery
  // metrics from the retained windows (bench::report's stop() is
  // idempotent).
  obs::timeline::stop();
  const std::vector<service::PhaseReport> reports = chaos.reports(targets);
  const service::Counters c = service::counters();

  // Conservation: every generated session is accounted for exactly once.
  if (c.generated != c.accepted + c.shed + c.shed_mem ||
      c.accepted != c.completed + c.killed + c.oom) {
    std::fprintf(stderr,
                 "service: session accounting broken: generated=%llu "
                 "accepted=%llu shed=%llu shed_mem=%llu completed=%llu "
                 "killed=%llu oom=%llu\n",
                 static_cast<unsigned long long>(c.generated),
                 static_cast<unsigned long long>(c.accepted),
                 static_cast<unsigned long long>(c.shed),
                 static_cast<unsigned long long>(c.shed_mem),
                 static_cast<unsigned long long>(c.completed),
                 static_cast<unsigned long long>(c.killed),
                 static_cast<unsigned long long>(c.oom));
    return 1;
  }

  util::Table table({"arrival_rate", "burstiness", "workers", "generated",
                     "accepted", "shed", "shed_mem", "completed", "killed",
                     "oom", "requests", "worker_deaths", "respawns"});
  table.add_row({util::Table::fmt(cfg.arrival_rate),
                 util::Table::fmt(cfg.burstiness),
                 util::Table::fmt(uint64_t{cfg.workers}),
                 util::Table::fmt(c.generated), util::Table::fmt(c.accepted),
                 util::Table::fmt(c.shed), util::Table::fmt(c.shed_mem),
                 util::Table::fmt(c.completed), util::Table::fmt(c.killed),
                 util::Table::fmt(c.oom), util::Table::fmt(c.requests),
                 util::Table::fmt(c.worker_deaths),
                 util::Table::fmt(c.respawns)});

  if (!opts.csv && !reports.empty()) {
    std::printf("\n[chaos] phase recovery (MTTR = time to SLO re-attainment; "
                "0 = never violated, -1 = never recovered):\n");
    for (const service::PhaseReport& r : reports) {
      std::printf(
          "[chaos]   %-40s onset=%.1fms mttr=%.1fms shed=%llu%s\n",
          r.phase.spec.c_str(), r.onset_ms, r.mttr_ms,
          static_cast<unsigned long long>(r.shed_during),
          r.phase.kind == service::ChaosPhase::Kind::kKill
              ? (" orphans=" + std::to_string(r.orphans_reaped) +
                 " reap_latency=" + std::to_string(r.reap_latency_ms) + "ms")
                    .c_str()
              : "");
    }
  }

  // The v9 "service" section: config, conservation-checked session
  // accounting, and per-phase recovery reports.
  auto service_section = [&](std::FILE* f) {
    std::fprintf(
        f,
        "  \"service\": {\"arrival_rate\": %g, \"burstiness\": %g, "
        "\"workers\": %u, \"queue_capacity\": %u, \"duration_ms\": %g, "
        "\"persistent_fraction\": %g, \"persistent_requests\": %u, "
        "\"mem_shed_watermark\": %g, \"chaos_script\": \"%s\",\n"
        "    \"sessions_generated\": %llu, \"sessions_accepted\": %llu, "
        "\"sessions_shed\": %llu, \"sessions_shed_mem\": %llu, "
        "\"sessions_completed\": %llu, "
        "\"sessions_killed\": %llu, \"sessions_oom\": %llu, "
        "\"requests\": %llu, "
        "\"worker_deaths\": %llu, \"worker_respawns\": %llu, "
        "\"reap_batches\": %llu, \"chaos_phases\": %llu,\n"
        "    \"phases\": [",
        cfg.arrival_rate, cfg.burstiness, cfg.workers, cfg.queue_capacity,
        cfg.duration_ms, cfg.persistent_fraction, cfg.persistent_requests,
        cfg.mem_shed_watermark,
        bench::detail::json_escape(opts.chaos_path).c_str(),
        static_cast<unsigned long long>(c.generated),
        static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.shed),
        static_cast<unsigned long long>(c.shed_mem),
        static_cast<unsigned long long>(c.completed),
        static_cast<unsigned long long>(c.killed),
        static_cast<unsigned long long>(c.oom),
        static_cast<unsigned long long>(c.requests),
        static_cast<unsigned long long>(c.worker_deaths),
        static_cast<unsigned long long>(c.respawns),
        static_cast<unsigned long long>(c.reap_batches),
        static_cast<unsigned long long>(c.chaos_phases));
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const service::PhaseReport& r = reports[i];
      std::fprintf(
          f,
          "%s\n      {\"spec\": \"%s\", \"kind\": \"%s\", \"at_ms\": %g, "
          "\"onset_ms\": %.3f, \"mttr_ms\": %.3f, \"shed_during\": %llu, "
          "\"orphans_reaped\": %llu, \"reap_latency_ms\": %.3f}",
          i == 0 ? "" : ",",
          bench::detail::json_escape(r.phase.spec).c_str(),
          service::to_string(r.phase.kind), r.phase.at_ms, r.onset_ms,
          r.mttr_ms, static_cast<unsigned long long>(r.shed_during),
          static_cast<unsigned long long>(r.orphans_reaped),
          r.reap_latency_ms);
    }
    std::fprintf(f, "%s]},\n", reports.empty() ? "" : "\n    ");
  };

  return bench::report(table, opts, "service", service_section);
}
