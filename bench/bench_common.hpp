// Helpers shared by the figure-reproduction benchmark binaries.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "collect/registry.hpp"
#include "htm/stats.hpp"
#include "sim/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dc::bench {

// Construction parameters sized for a workload with `total_slots` handles
// spread over `worker_threads` registering threads (the static baseline's
// per-thread regions must fit the largest per-thread share).
inline collect::MakeParams params_for(uint32_t total_slots,
                                      uint32_t worker_threads) {
  collect::MakeParams p;
  const uint32_t per = (total_slots + worker_threads - 1) / worker_threads;
  p.static_capacity = static_cast<int32_t>(per * worker_threads);
  p.max_threads = worker_threads;
  p.min_size = 16;
  return p;
}

inline const collect::AlgoInfo& algo(const std::string& name) {
  for (const auto& info : collect::all_algorithms()) {
    if (info.name == name) return info;
  }
  std::fprintf(stderr, "unknown algorithm %s\n", name.c_str());
  std::abort();
}

// Prints the HTM substrate's commit/abort counters accumulated since the
// last reset — the diagnostics behind the figures' abort-rate narratives.
inline void print_htm_diagnostics() {
  const htm::TxnStats s = htm::aggregate_stats();
  std::printf(
      "\n[htm] commits=%llu aborts=%llu (conflict=%llu overflow=%llu "
      "explicit=%llu) abort-rate=%.1f%% tle-fallbacks=%llu\n"
      "[htm] clock-bumps=%llu read-set-hwm=%llu write-set-hwm=%llu\n",
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.aborts),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kConflict)]),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kOverflow)]),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kExplicit)]),
      100.0 * s.abort_rate(),
      static_cast<unsigned long long>(s.lock_fallbacks),
      static_cast<unsigned long long>(s.clock_bumps),
      static_cast<unsigned long long>(s.max_read_set),
      static_cast<unsigned long long>(s.max_write_set));
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

// Table cells are produced by util::Table::fmt, so most are plain numbers;
// emit those unquoted so consumers get JSON numbers, not strings.
inline bool is_json_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

inline void write_json_cell(std::FILE* f, const std::string& cell) {
  if (is_json_number(cell)) {
    std::fprintf(f, "%s", cell.c_str());
  } else {
    std::fprintf(f, "\"%s\"", json_escape(cell).c_str());
  }
}

}  // namespace detail

// Writes one benchmark's results as a JSON report (--json PATH): the swept
// table, the run options, and the HTM substrate counters accumulated over
// the run. The stable schema lets successive PRs track the performance
// trajectory (e.g. BENCH_fig3.json at the repo root) without scraping
// the human-readable tables.
inline void write_json_report(const std::string& path,
                              const std::string& bench_name,
                              const util::Table& table,
                              const sim::Options& opts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
    return;
  }
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (struct tm tmv; gmtime_r(&now, &tmv) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tmv);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n",
               detail::json_escape(bench_name).c_str());
  std::fprintf(f, "  \"generated_utc\": \"%s\",\n", stamp);
  std::fprintf(f,
               "  \"options\": {\"duration_ms\": %g, \"repeats\": %d, "
               "\"max_threads\": %u},\n",
               opts.duration_ms, opts.repeats, opts.max_threads);
  const htm::TxnStats s = htm::aggregate_stats();
  std::fprintf(
      f,
      "  \"htm\": {\"commits\": %llu, \"aborts\": %llu, "
      "\"abort_rate\": %.4f, \"lock_fallbacks\": %llu, "
      "\"nontxn_stores\": %llu, \"clock_bumps\": %llu, "
      "\"max_read_set\": %llu, \"max_write_set\": %llu},\n",
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.aborts), s.abort_rate(),
      static_cast<unsigned long long>(s.lock_fallbacks),
      static_cast<unsigned long long>(s.nontxn_stores),
      static_cast<unsigned long long>(s.clock_bumps),
      static_cast<unsigned long long>(s.max_read_set),
      static_cast<unsigned long long>(s.max_write_set));
  std::fprintf(f, "  \"columns\": [");
  const auto& headers = table.headers();
  for (std::size_t i = 0; i < headers.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 detail::json_escape(headers[i]).c_str());
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"rows\": [\n");
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    [");
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c != 0) std::fprintf(f, ", ");
      detail::write_json_cell(f, rows[r][c]);
    }
    std::fprintf(f, "]%s\n", r + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Shared tail of every table-driven figure benchmark: print (CSV or aligned
// + diagnostics) and, when requested, drop the JSON report.
inline void report(const util::Table& table, const sim::Options& opts,
                   const std::string& bench_name) {
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
    print_htm_diagnostics();
  }
  if (!opts.json_path.empty()) {
    write_json_report(opts.json_path, bench_name, table, opts);
  }
}

inline void print_host_caveat() {
  std::printf(
      "# NOTE: software-simulated HTM (TL2-style, 32-entry store buffer,\n"
      "# sandboxing via orec bump on free). The paper ran on a 16-core Rock\n"
      "# CPU; absolute numbers and scalability slopes are not comparable —\n"
      "# compare the relative ordering of the series (see EXPERIMENTS.md).\n");
}

}  // namespace dc::bench
