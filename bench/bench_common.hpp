// Helpers shared by the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "collect/registry.hpp"
#include "htm/stats.hpp"
#include "sim/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dc::bench {

// Construction parameters sized for a workload with `total_slots` handles
// spread over `worker_threads` registering threads (the static baseline's
// per-thread regions must fit the largest per-thread share).
inline collect::MakeParams params_for(uint32_t total_slots,
                                      uint32_t worker_threads) {
  collect::MakeParams p;
  const uint32_t per = (total_slots + worker_threads - 1) / worker_threads;
  p.static_capacity = static_cast<int32_t>(per * worker_threads);
  p.max_threads = worker_threads;
  p.min_size = 16;
  return p;
}

inline const collect::AlgoInfo& algo(const std::string& name) {
  for (const auto& info : collect::all_algorithms()) {
    if (info.name == name) return info;
  }
  std::fprintf(stderr, "unknown algorithm %s\n", name.c_str());
  std::abort();
}

// Prints the HTM substrate's commit/abort counters accumulated since the
// last reset — the diagnostics behind the figures' abort-rate narratives.
inline void print_htm_diagnostics() {
  const htm::TxnStats s = htm::aggregate_stats();
  std::printf(
      "\n[htm] commits=%llu aborts=%llu (conflict=%llu overflow=%llu "
      "explicit=%llu) abort-rate=%.1f%% tle-fallbacks=%llu\n",
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.aborts),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kConflict)]),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kOverflow)]),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kExplicit)]),
      100.0 * s.abort_rate(),
      static_cast<unsigned long long>(s.lock_fallbacks));
}

inline void print_host_caveat() {
  std::printf(
      "# NOTE: software-simulated HTM (TL2-style, 32-entry store buffer,\n"
      "# sandboxing via orec bump on free). The paper ran on a 16-core Rock\n"
      "# CPU; absolute numbers and scalability slopes are not comparable —\n"
      "# compare the relative ordering of the series (see EXPERIMENTS.md).\n");
}

}  // namespace dc::bench
