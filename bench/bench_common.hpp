// Helpers shared by the figure-reproduction benchmark binaries.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collect/registry.hpp"
#include "htm/config.hpp"
#include "htm/stats.hpp"
#include "memory/pool.hpp"
#include "obs/conflict_map.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/retry_stats.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dc::bench {

// Construction parameters sized for a workload with `total_slots` handles
// spread over `worker_threads` registering threads (the static baseline's
// per-thread regions must fit the largest per-thread share).
inline collect::MakeParams params_for(uint32_t total_slots,
                                      uint32_t worker_threads) {
  collect::MakeParams p;
  const uint32_t per = (total_slots + worker_threads - 1) / worker_threads;
  p.static_capacity = static_cast<int32_t>(per * worker_threads);
  p.max_threads = worker_threads;
  p.min_size = 16;
  return p;
}

inline const collect::AlgoInfo& algo(const std::string& name) {
  for (const auto& info : collect::all_algorithms()) {
    if (info.name == name) return info;
  }
  std::fprintf(stderr, "unknown algorithm %s\n", name.c_str());
  std::abort();
}

namespace detail {

// Adapts the substrate's per-thread counters to the timeline sampler's
// layering-neutral CounterSample (obs must not depend on htm, so the
// sampler pulls through this callback). Safe while workers are hot:
// TxnStats cells are single-writer RelaxedCounters.
inline obs::timeline::CounterSample htm_counter_sample() {
  const htm::TxnStats s = htm::aggregate_stats();
  obs::timeline::CounterSample c;
  c.commits = s.commits;
  c.aborts = s.aborts;
  c.lock_fallbacks = s.lock_fallbacks;
  c.tle_entries = s.tle_entries;
  c.faults_injected = s.faults_injected;
  c.crashes_injected = s.crashes_injected;
  c.storm_entries = s.storm_entries;
  c.storm_exits = s.storm_exits;
  c.lock_recoveries = s.lock_recoveries;
  c.orphans_reaped = s.orphans_reaped;
  c.sig_validations = s.sig_validations;
  c.sig_false_aborts = s.sig_false_aborts;
  c.sig_ring_overflows = s.sig_ring_overflows;
  // Pool counters ride the same sample so memory-pressure onsets land on
  // the same timeline axis as commits/aborts (all monotone; os_bytes never
  // shrinks by construction — the never-unmapping contract).
  const mem::PoolStats ps = mem::pool_stats();
  c.pool_allocations = ps.allocations;
  c.pool_deallocations = ps.deallocations;
  c.pool_os_bytes = ps.os_bytes;
  c.alloc_failures = ps.alloc_failures;
  c.alloc_faults_injected = ps.alloc_faults_injected;
  c.pool_caches_reaped = ps.cache_blocks_reaped;
  c.mem_pressure_onsets = ps.mem_pressure_onsets;
  c.mem_pressure_exits = ps.mem_pressure_exits;
  return c;
}

}  // namespace detail

// Applies the obs-layer runtime switches implied by the options for the
// lifetime of one benchmark run, and exports the Chrome trace on exit.
// Declare one at the top of every bench main, after Options::parse:
//   --trace PATH  opens every switch (event trace + conflict attribution +
//                 latency timing) and writes PATH at the end;
//   --hist        opens only the latency-timing switch;
//   --clock P     selects the global-clock policy before any worker starts;
//   --retry P     selects the retry policy (cause-aware vs fixed-threshold);
//   --validate M  selects the conflict-validation backend (exact walk vs
//                 Bloom signatures + commit ring) before any worker starts;
//   --fault-rate  arms the spurious-abort injector before any worker starts;
//   --crash-rate  arms the thread-death injector before any worker starts
//                 (worker bodies must run under crash::run_victim to opt in);
//   --sample-interval MS  starts the continuous-telemetry sampler
//                 (obs/timeline.hpp) before any worker starts, with the
//                 latency-timing switch opened so windows carry op
//                 percentiles; --slo SPEC arms per-window SLO targets and
//                 --metrics-out PATH writes the Prometheus exposition at
//                 teardown. With the interval at 0 (the default) no
//                 sampler thread is ever spawned — the zero-overhead
//                 guard tests and the validator both check this.
class ObsSession {
 public:
  // `provider` feeds the timeline sampler; benches with harness-level
  // counters of their own (bench_service merges sessions_shed/chaos_phases
  // into the substrate sample) pass a merged provider, everyone else takes
  // the default htm-only one.
  explicit ObsSession(const sim::Options& opts,
                      obs::timeline::CounterProvider provider =
                          &detail::htm_counter_sample)
      : opts_(opts), provider_(provider) {
    if (!opts_.clock.empty()) {
      htm::ClockPolicy policy = htm::config().clock_policy;
      if (!htm::parse_clock_policy(opts_.clock.c_str(), policy)) {
        std::fprintf(stderr, "--clock: unknown policy '%s' (gv1|gv5)\n",
                     opts_.clock.c_str());
        std::exit(2);
      }
      htm::config().clock_policy = policy;
    }
    if (!opts_.retry.empty()) {
      htm::RetryPolicy policy = htm::config().retry_policy;
      if (!htm::parse_retry_policy(opts_.retry.c_str(), policy)) {
        std::fprintf(stderr, "--retry: unknown policy '%s' (cause|fixed)\n",
                     opts_.retry.c_str());
        std::exit(2);
      }
      htm::config().retry_policy = policy;
    }
    if (!opts_.validate.empty()) {
      htm::ValidationPolicy policy = htm::config().validation;
      if (!htm::parse_validation_policy(opts_.validate.c_str(), policy)) {
        std::fprintf(stderr, "--validate: unknown backend '%s' (exact|sig)\n",
                     opts_.validate.c_str());
        std::exit(2);
      }
      htm::config().validation = policy;
    }
    if (opts_.fault_rate >= 0.0) {
      htm::config().fault.rate = opts_.fault_rate > 1.0 ? 1.0
                                                        : opts_.fault_rate;
    }
    if (opts_.crash_rate >= 0.0) {
      htm::config().crash.rate = opts_.crash_rate > 1.0 ? 1.0
                                                        : opts_.crash_rate;
    }
    if (opts_.mem_limit != ~0ull) {
      htm::config().mem.limit_bytes = opts_.mem_limit;
    }
    if (opts_.alloc_fault_rate >= 0.0) {
      htm::config().mem.alloc_fault_rate =
          opts_.alloc_fault_rate > 1.0 ? 1.0 : opts_.alloc_fault_rate;
    }
    if (!opts_.trace_path.empty()) {
      obs::set_all(true);
      if (!obs::kTraceCompiled) {
        std::fprintf(stderr,
                     "# --trace: event-trace hooks are compiled out; rebuild "
                     "with -DDC_TRACE=ON for transaction events (the trace "
                     "file will still be valid, but sparse; the JSON "
                     "report records trace.enabled=false)\n");
      }
    } else if (opts_.hist) {
      obs::set_timing(true);
    }
    if (opts_.sample_interval_ms > 0.0) {
      obs::timeline::SamplerConfig cfg;
      cfg.interval_ms = opts_.sample_interval_ms;
      cfg.provider = provider_;
      if (!opts_.slo.empty()) {
        std::string err;
        if (!obs::slo::parse(opts_.slo, &cfg.slo, &err)) {
          std::fprintf(stderr, "--slo: %s\n", err.c_str());
          std::exit(2);
        }
      }
      // Windows carry per-op latency percentiles only if the driver-level
      // timers record; sampling implies the timing switch.
      obs::set_timing(true);
      if (!obs::timeline::start(cfg)) {
        std::fprintf(stderr,
                     "--sample-interval: sampler failed to start (already "
                     "running?)\n");
        std::exit(2);
      }
      sampling_ = true;
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    // Close the final telemetry window before any exporter reads it
    // (idempotent: bench::report already stopped the sampler on the
    // normal path; this covers benches that exit without reporting).
    obs::timeline::stop();
    if (!opts_.metrics_path.empty()) {
      if (obs::timeline::export_prometheus(opts_.metrics_path)) {
        std::fprintf(stderr, "# metrics written to %s\n",
                     opts_.metrics_path.c_str());
      }
    }
    if (!opts_.trace_path.empty()) {
      if (obs::export_chrome_trace(opts_.trace_path)) {
        std::fprintf(stderr, "# trace written to %s (%llu events retained)\n",
                     opts_.trace_path.c_str(),
                     static_cast<unsigned long long>(
                         obs::snapshot_events().size()));
      }
      obs::set_all(false);
    } else if (opts_.hist) {
      obs::set_timing(false);
    }
    if (sampling_) obs::set_timing(false);
  }

 private:
  sim::Options opts_;
  obs::timeline::CounterProvider provider_;
  bool sampling_ = false;
};

// google-benchmark rejects flags it does not know, so the two benches built
// on it peel the obs options out of argv before benchmark::Initialize sees
// it. Returns an Options carrying only trace_path/hist; argc/argv are
// rewritten in place without the consumed arguments.
inline sim::Options extract_obs_options(int& argc, char** argv) {
  sim::Options opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      opts.trace_path = argv[++i];
    } else if (arg == "--clock" && i + 1 < argc) {
      opts.clock = argv[++i];
    } else if (arg == "--retry" && i + 1 < argc) {
      opts.retry = argv[++i];
    } else if (arg == "--validate" && i + 1 < argc) {
      opts.validate = argv[++i];
    } else if (arg == "--fault-rate" && i + 1 < argc) {
      opts.fault_rate = std::atof(argv[++i]);
    } else if (arg == "--crash-rate" && i + 1 < argc) {
      opts.crash_rate = std::atof(argv[++i]);
    } else if (arg == "--mem-limit" && i + 1 < argc) {
      const char* v = argv[++i];
      char* end = nullptr;
      unsigned long long bytes = std::strtoull(v, &end, 0);
      if (*end == 'k' || *end == 'K') bytes <<= 10;
      else if (*end == 'm' || *end == 'M') bytes <<= 20;
      else if (*end == 'g' || *end == 'G') bytes <<= 30;
      opts.mem_limit = bytes;
    } else if (arg == "--alloc-fault-rate" && i + 1 < argc) {
      opts.alloc_fault_rate = std::atof(argv[++i]);
    } else if (arg == "--sample-interval" && i + 1 < argc) {
      opts.sample_interval_ms = std::atof(argv[++i]);
    } else if (arg == "--slo" && i + 1 < argc) {
      opts.slo = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      opts.metrics_path = argv[++i];
    } else if (arg == "--hist") {
      opts.hist = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  // Same implication sim::Options::parse applies: SLOs / the Prometheus
  // exposition need the sampler, so default it to 10 ms windows.
  if (opts.sample_interval_ms == 0.0 &&
      (!opts.slo.empty() || !opts.metrics_path.empty())) {
    opts.sample_interval_ms = 10.0;
  }
  return opts;
}

// Prints the HTM substrate's commit/abort counters accumulated since the
// last reset — the diagnostics behind the figures' abort-rate narratives.
inline void print_htm_diagnostics() {
  const htm::TxnStats s = htm::aggregate_stats();
  std::printf(
      "\n[htm] commits=%llu aborts=%llu (conflict=%llu overflow=%llu "
      "explicit=%llu) abort-rate=%.1f%% tle-fallbacks=%llu\n"
      "[htm] clock=%s writer-commits=%llu clock-bumps=%llu "
      "sloppy-stamps=%llu resamples=%llu catchups=%llu\n"
      "[htm] coalesced-stores=%llu read-set-hwm=%llu write-set-hwm=%llu\n",
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.aborts),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kConflict)]),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kOverflow)]),
      static_cast<unsigned long long>(
          s.aborts_by_code[static_cast<int>(htm::AbortCode::kExplicit)]),
      100.0 * s.abort_rate(),
      static_cast<unsigned long long>(s.lock_fallbacks),
      htm::to_string(htm::config().clock_policy),
      static_cast<unsigned long long>(s.writer_commits),
      static_cast<unsigned long long>(s.clock_bumps),
      static_cast<unsigned long long>(s.sloppy_stamps),
      static_cast<unsigned long long>(s.clock_resamples),
      static_cast<unsigned long long>(s.clock_catchups),
      static_cast<unsigned long long>(s.coalesced_stores),
      static_cast<unsigned long long>(s.max_read_set),
      static_cast<unsigned long long>(s.max_write_set));
  std::printf(
      "[htm] retry=%s faults-injected=%llu tle-entries=%llu "
      "storm-enter/exit=%llu/%llu max-consec-aborts=%llu\n",
      htm::to_string(htm::config().retry_policy),
      static_cast<unsigned long long>(s.faults_injected),
      static_cast<unsigned long long>(s.tle_entries),
      static_cast<unsigned long long>(s.storm_entries),
      static_cast<unsigned long long>(s.storm_exits),
      static_cast<unsigned long long>(s.max_consec_aborts));
  if (htm::config().validation == htm::ValidationPolicy::kSignature ||
      s.sig_validations != 0 || s.sig_false_aborts != 0 ||
      s.sig_ring_overflows != 0) {
    std::printf(
        "[htm] validation=%s sig-validations=%llu sig-false-aborts=%llu "
        "sig-ring-overflows=%llu\n",
        htm::to_string(htm::config().validation),
        static_cast<unsigned long long>(s.sig_validations),
        static_cast<unsigned long long>(s.sig_false_aborts),
        static_cast<unsigned long long>(s.sig_ring_overflows));
  }
  if (s.crashes_injected != 0 || s.lock_recoveries != 0 ||
      s.orphans_reaped != 0) {
    std::printf(
        "[htm] crashes-injected=%llu lock-recoveries=%llu "
        "orphans-reaped=%llu\n",
        static_cast<unsigned long long>(s.crashes_injected),
        static_cast<unsigned long long>(s.lock_recoveries),
        static_cast<unsigned long long>(s.orphans_reaped));
  }
  // Memory-pressure diagnostics — only interesting when bounded mode,
  // allocation-fault injection, or a stranded-cache reap actually fired.
  const mem::PoolStats ps = mem::pool_stats();
  if (ps.limit_bytes != 0 || ps.alloc_failures != 0 ||
      ps.cache_blocks_stranded != 0) {
    std::printf(
        "[mem] limit=%llu os-bytes=%llu live-blocks=%llu "
        "alloc-failures=%llu (injected=%llu) pressure-onsets/exits=%llu/%llu "
        "caches-stranded/reaped=%llu/%llu\n",
        static_cast<unsigned long long>(ps.limit_bytes),
        static_cast<unsigned long long>(ps.os_bytes),
        static_cast<unsigned long long>(ps.live_blocks),
        static_cast<unsigned long long>(ps.alloc_failures),
        static_cast<unsigned long long>(ps.alloc_faults_injected),
        static_cast<unsigned long long>(ps.mem_pressure_onsets),
        static_cast<unsigned long long>(ps.mem_pressure_exits),
        static_cast<unsigned long long>(ps.cache_blocks_stranded),
        static_cast<unsigned long long>(ps.cache_blocks_reaped));
  }
  // Per-cause retry depth quantiles — which abort attempt number each cause
  // was recorded at (attempt 0 = first try); populated whenever aborts occur.
  for (std::size_t c = 0; c < obs::kNumRetryCauses; ++c) {
    const obs::RetrySummary rs = obs::summarize_retries(c);
    if (rs.count == 0) continue;
    std::printf(
        "[obs] retry %-12s n=%-9llu p50-attempt=%.0f p99-attempt=%.0f "
        "max-attempt=%llu\n",
        obs::retry_cause_name(static_cast<uint8_t>(c)),
        static_cast<unsigned long long>(rs.count), rs.p50_attempt,
        rs.p99_attempt, static_cast<unsigned long long>(rs.max_attempt));
  }
  // Per-operation latency quantiles — populated only on --hist/--trace runs
  // (or in DC_TRACE builds for the commit path).
  for (int op = 0; op < static_cast<int>(obs::OpKind::kNumOps); ++op) {
    const auto kind = static_cast<obs::OpKind>(op);
    const obs::OpSummary lat = obs::summarize_op(kind);
    if (lat.count == 0) continue;
    std::printf(
        "[obs] %-10s n=%-9llu p50=%.0fns p90=%.0fns p99=%.0fns max=%.0fns\n",
        obs::to_string(kind), static_cast<unsigned long long>(lat.count),
        lat.p50_ns, lat.p90_ns, lat.p99_ns, lat.max_ns);
  }
  // Conflict attribution — populated only when the conflict switch was open
  // in a DC_TRACE build (or when tests feed the table directly).
  const std::vector<obs::ConflictEntry> hot = obs::top_conflicts(5);
  if (!hot.empty()) {
    std::printf("[obs] hottest orecs by conflict aborts:\n");
    for (const obs::ConflictEntry& e : hot) {
      std::size_t dominant = 0;
      for (std::size_t c = 1; c < e.by_context.size(); ++c) {
        if (e.by_context[c] > e.by_context[dominant]) dominant = c;
      }
      std::printf("[obs]   orec %-10llu aborts=%-8llu top-algo=%s\n",
                  static_cast<unsigned long long>(e.orec_index),
                  static_cast<unsigned long long>(e.count),
                  obs::context_name(static_cast<uint8_t>(dominant)).c_str());
    }
  }
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

// Table cells are produced by util::Table::fmt, so most are plain numbers;
// emit those unquoted so consumers get JSON numbers, not strings.
inline bool is_json_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

inline void write_json_cell(std::FILE* f, const std::string& cell) {
  if (is_json_number(cell)) {
    std::fprintf(f, "%s", cell.c_str());
  } else {
    std::fprintf(f, "\"%s\"", json_escape(cell).c_str());
  }
}

// Emits a CounterSample as the body of a JSON object (no braces): the same
// twenty-four keys for the baseline and for every window's deltas, so
// validators can difference them uniformly. The two service-tier keys are
// all-zero outside service runs (validator-enforced against the presence
// of the "service" section); the memory-tier keys are all-zero unless a
// capacity bound / allocation-fault injection is configured (enforced the
// same way against options.mem_limit / options.alloc_fault_rate), except
// pool_allocations/pool_deallocations/pool_os_bytes which track the
// always-on pool.
inline void write_counter_fields(std::FILE* f,
                                 const obs::timeline::CounterSample& c) {
  std::fprintf(
      f,
      "\"commits\": %llu, \"aborts\": %llu, \"lock_fallbacks\": %llu, "
      "\"tle_entries\": %llu, \"faults_injected\": %llu, "
      "\"crashes_injected\": %llu, \"storm_entries\": %llu, "
      "\"storm_exits\": %llu, \"lock_recoveries\": %llu, "
      "\"orphans_reaped\": %llu, \"sig_validations\": %llu, "
      "\"sig_false_aborts\": %llu, \"sig_ring_overflows\": %llu, "
      "\"sessions_shed\": %llu, \"chaos_phases\": %llu, "
      "\"pool_allocations\": %llu, \"pool_deallocations\": %llu, "
      "\"pool_os_bytes\": %llu, \"alloc_failures\": %llu, "
      "\"alloc_faults_injected\": %llu, \"pool_caches_reaped\": %llu, "
      "\"mem_pressure_onsets\": %llu, \"mem_pressure_exits\": %llu, "
      "\"sessions_shed_mem\": %llu",
      static_cast<unsigned long long>(c.commits),
      static_cast<unsigned long long>(c.aborts),
      static_cast<unsigned long long>(c.lock_fallbacks),
      static_cast<unsigned long long>(c.tle_entries),
      static_cast<unsigned long long>(c.faults_injected),
      static_cast<unsigned long long>(c.crashes_injected),
      static_cast<unsigned long long>(c.storm_entries),
      static_cast<unsigned long long>(c.storm_exits),
      static_cast<unsigned long long>(c.lock_recoveries),
      static_cast<unsigned long long>(c.orphans_reaped),
      static_cast<unsigned long long>(c.sig_validations),
      static_cast<unsigned long long>(c.sig_false_aborts),
      static_cast<unsigned long long>(c.sig_ring_overflows),
      static_cast<unsigned long long>(c.sessions_shed),
      static_cast<unsigned long long>(c.chaos_phases),
      static_cast<unsigned long long>(c.pool_allocations),
      static_cast<unsigned long long>(c.pool_deallocations),
      static_cast<unsigned long long>(c.pool_os_bytes),
      static_cast<unsigned long long>(c.alloc_failures),
      static_cast<unsigned long long>(c.alloc_faults_injected),
      static_cast<unsigned long long>(c.pool_caches_reaped),
      static_cast<unsigned long long>(c.mem_pressure_onsets),
      static_cast<unsigned long long>(c.mem_pressure_exits),
      static_cast<unsigned long long>(c.sessions_shed_mem));
}

// The "mem" section of the v9 report: global pool accounting plus the
// per-thread ledgers, always present so the validator can re-prove the
// conservation laws offline (sum of thread ledgers == globals;
// allocations - deallocations == live_blocks; reaped <= stranded) and
// enforce the zero-overhead guard (failure/injection/pressure counters all
// zero whenever bounded mode, injection and crash injection are off).
inline void write_mem_section(std::FILE* f) {
  const mem::PoolStats ps = mem::pool_stats();
  std::fprintf(
      f,
      "  \"mem\": {\"limit_bytes\": %llu, \"alloc_fault_rate\": %g, "
      "\"os_bytes\": %llu, \"live_bytes\": %llu, \"live_blocks\": %llu, "
      "\"allocations\": %llu, \"deallocations\": %llu, "
      "\"alloc_failures\": %llu, \"alloc_faults_injected\": %llu, "
      "\"cache_blocks_stranded\": %llu, \"cache_blocks_reaped\": %llu, "
      "\"mem_pressure_onsets\": %llu, \"mem_pressure_exits\": %llu,\n"
      "    \"threads\": [",
      static_cast<unsigned long long>(ps.limit_bytes),
      htm::config().mem.alloc_fault_rate,
      static_cast<unsigned long long>(ps.os_bytes),
      static_cast<unsigned long long>(ps.live_bytes),
      static_cast<unsigned long long>(ps.live_blocks),
      static_cast<unsigned long long>(ps.allocations),
      static_cast<unsigned long long>(ps.deallocations),
      static_cast<unsigned long long>(ps.alloc_failures),
      static_cast<unsigned long long>(ps.alloc_faults_injected),
      static_cast<unsigned long long>(ps.cache_blocks_stranded),
      static_cast<unsigned long long>(ps.cache_blocks_reaped),
      static_cast<unsigned long long>(ps.mem_pressure_onsets),
      static_cast<unsigned long long>(ps.mem_pressure_exits));
  const std::vector<mem::PoolThreadStats> threads = mem::pool_thread_stats();
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const mem::PoolThreadStats& t = threads[i];
    std::fprintf(f,
                 "%s\n      {\"tid\": %u, \"allocations\": %llu, "
                 "\"deallocations\": %llu, \"alloc_failures\": %llu, "
                 "\"alloc_faults_injected\": %llu}",
                 i == 0 ? "" : ",", t.tid,
                 static_cast<unsigned long long>(t.allocations),
                 static_cast<unsigned long long>(t.deallocations),
                 static_cast<unsigned long long>(t.alloc_failures),
                 static_cast<unsigned long long>(t.alloc_faults_injected));
  }
  std::fprintf(f, "%s]},\n", threads.empty() ? "" : "\n    ");
}

// The "timeline" section of the v7 report. Absent entirely when the sampler
// never ran — its presence is itself the zero-overhead signal the validator
// keys on. Call only after obs::timeline::stop() (bench::report does) so
// the final partial window is included.
inline void write_timeline_section(std::FILE* f) {
  namespace tl = obs::timeline;
  if (tl::interval_ms() <= 0.0) return;
  const std::vector<tl::Window> wins = tl::windows();
  const std::vector<tl::Event> events = tl::annotations();
  std::fprintf(f,
               "  \"timeline\": {\"sample_interval_ms\": %g, "
               "\"windows_total\": %llu, \"windows_dropped\": %llu, "
               "\"events_dropped\": %llu,\n",
               tl::interval_ms(),
               static_cast<unsigned long long>(tl::windows_total()),
               static_cast<unsigned long long>(tl::windows_dropped()),
               static_cast<unsigned long long>(tl::events_dropped()));
  std::fprintf(f, "    \"baseline\": {");
  write_counter_fields(f, tl::baseline());
  std::fprintf(f, "},\n");
  std::fprintf(f, "    \"windows\": [");
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const tl::Window& w = wins[i];
    std::fprintf(f,
                 "%s\n      {\"i\": %llu, \"t_start_ms\": %.3f, "
                 "\"t_end_ms\": %.3f, ",
                 i == 0 ? "" : ",", static_cast<unsigned long long>(w.index),
                 w.t_start_ms, w.t_end_ms);
    write_counter_fields(f, w.delta);
    std::fprintf(f, ", \"ops\": {");
    bool first_op = true;
    for (std::size_t op = 0; op < tl::kNumOps; ++op) {
      const tl::OpWindow& ow = w.ops[op];
      if (ow.count == 0) continue;  // quiet ops omitted: windows stay small
      std::fprintf(f,
                   "%s\"%s\": {\"count\": %llu, \"p50_ns\": %.1f, "
                   "\"p90_ns\": %.1f, \"p99_ns\": %.1f, \"p999_ns\": %.1f}",
                   first_op ? "" : ", ",
                   obs::to_string(static_cast<obs::OpKind>(op)),
                   static_cast<unsigned long long>(ow.count), ow.p50_ns,
                   ow.p90_ns, ow.p99_ns, ow.p999_ns);
      first_op = false;
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "%s],\n", wins.empty() ? "" : "\n    ");
  std::fprintf(f, "    \"annotations\": [");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const tl::Event& e = events[i];
    std::fprintf(f,
                 "%s\n      {\"t_ms\": %.3f, \"window\": %llu, "
                 "\"kind\": \"%s\", \"value\": %llu}",
                 i == 0 ? "" : ",", e.t_ms,
                 static_cast<unsigned long long>(e.window),
                 tl::to_string(e.kind),
                 static_cast<unsigned long long>(e.value));
  }
  std::fprintf(f, "%s],\n", events.empty() ? "" : "\n    ");
  std::fprintf(f, "    \"annotation_totals\": {");
  for (int k = 0; k < static_cast<int>(tl::Annotation::kNumKinds); ++k) {
    std::fprintf(f, "%s\"%s\": %llu", k == 0 ? "" : ", ",
                 tl::to_string(static_cast<tl::Annotation>(k)),
                 static_cast<unsigned long long>(
                     tl::annotation_sum(static_cast<tl::Annotation>(k))));
  }
  std::fprintf(f, "},\n");
  const std::vector<obs::slo::TargetState> slo = tl::slo_results();
  std::fprintf(f,
               "    \"slo\": {\"violations_total\": %llu, "
               "\"reattainments\": %llu, \"targets\": [",
               static_cast<unsigned long long>(tl::slo_violations_total()),
               static_cast<unsigned long long>(tl::slo_reattainments()));
  for (std::size_t i = 0; i < slo.size(); ++i) {
    const obs::slo::TargetState& ts = slo[i];
    std::fprintf(f,
                 "%s\n      {\"spec\": \"%s\", \"op\": \"%s\", "
                 "\"quantile\": \"%s\", \"bound_ns\": %.1f, "
                 "\"windows_evaluated\": %llu, \"violations\": %llu, "
                 "\"worst_ns\": %.1f}",
                 i == 0 ? "" : ",", json_escape(ts.target.spec).c_str(),
                 obs::to_string(ts.target.op),
                 obs::slo::to_string(ts.target.quantile), ts.target.bound_ns,
                 static_cast<unsigned long long>(ts.windows_evaluated),
                 static_cast<unsigned long long>(ts.violations),
                 ts.worst_ns);
  }
  std::fprintf(f, "%s],\n", slo.empty() ? "" : "\n    ");
  // Violation episodes: contiguous runs of violating windows and whether
  // (and when) the SLO was re-attained — the raw material for MTTR.
  const std::vector<tl::SloEpisode> eps = tl::slo_episodes();
  std::fprintf(f, "    \"episodes\": [");
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const tl::SloEpisode& e = eps[i];
    std::fprintf(f,
                 "%s\n      {\"start_window\": %llu, \"t_start_ms\": %.3f, "
                 "\"end_window\": %llu, \"t_end_ms\": %.3f, "
                 "\"recovered\": %s, \"violating_windows\": %llu}",
                 i == 0 ? "" : ",",
                 static_cast<unsigned long long>(e.start_window),
                 e.t_start_ms, static_cast<unsigned long long>(e.end_window),
                 e.t_end_ms, e.recovered ? "true" : "false",
                 static_cast<unsigned long long>(e.violating_windows));
  }
  std::fprintf(f, "%s]}},\n", eps.empty() ? "" : "\n    ");
}

}  // namespace detail

// Writes one benchmark's results as a JSON report (--json PATH): the swept
// table, the run options, the HTM substrate counters accumulated over the
// run, and the obs layer's latency/conflict/trace summaries. The versioned
// schema lets successive PRs track the performance trajectory (e.g.
// BENCH_fig3.json at the repo root) without scraping the human tables.
//
// schema_version history:
//   1  bench/generated_utc/options/htm/columns/rows (implicit, pre-field)
//   2  adds "schema_version", htm.aborts_by_code, op_latency_ns, conflicts,
//      trace sections
//   3  adds options.clock (active clock policy) and the clock/coalescing
//      counters htm.writer_commits, htm.sloppy_stamps, htm.clock_resamples,
//      htm.clock_catchups, htm.coalesced_stores
//   4  adds options.retry + options.fault_rate, the robustness counters
//      htm.faults_injected, htm.tle_entries, htm.storm_entries,
//      htm.storm_exits, htm.max_consec_aborts, the three spurious
//      aborts_by_code entries (interrupt/tlb-miss/save-restore), and a
//      top-level "retry" section with per-cause attempt-depth quantiles
//   5  adds options.crash_rate and the crash-tolerance counters
//      htm.crashes_injected, htm.lock_recoveries, htm.orphans_reaped
//      (all three must be 0 when crash_rate is 0 — the zero-overhead
//      guard scripts/validate_report.py enforces)
//   6  adds options.validation (active validation backend), the signature
//      counters htm.sig_validations, htm.sig_false_aborts,
//      htm.sig_ring_overflows (all three must be 0 when validation is
//      "exact" — same zero-overhead guard), and the "validate" entry in
//      op_latency_ns
//   7  adds options.sample_interval_ms + options.slo, splits the trace
//      section into requested/enabled/compiled (so "--trace without
//      -DDC_TRACE" is distinguishable from "no events"), and — only when
//      the continuous-telemetry sampler ran — a "timeline" section:
//      tumbling windows (counter deltas + per-op interval percentiles),
//      anomaly annotations whose per-kind value sums decompose the
//      cumulative counters exactly, the baseline sample, and per-window
//      SLO verdicts. With --sample-interval 0 the section is absent and
//      the report is the v6 shape plus the three new scalar fields — the
//      zero-overhead guard scripts/validate_report.py enforces
//   8  adds options.slo_observe, two service-tier keys to every counter
//      block (sessions_shed, chaos_phases — all-zero outside service
//      runs), the shed_onset/chaos_phase annotation kinds, the slo
//      section's reattainments count + episodes list (violation episodes
//      and whether the SLO was re-attained — the raw material for MTTR),
//      and — only for the service harness (bench_service) — a "service"
//      section: session accounting (conservation-checked: generated ==
//      accepted + shed, accepted == completed + killed), harness config,
//      and per-chaos-phase recovery reports. Non-service reports must not
//      have the key — the same both-directions zero guard as every other
//      schema tier
//   9  adds options.mem_limit + options.alloc_fault_rate, the "alloc-failed"
//      aborts_by_code entry and retry cause, nine memory-tier keys to every
//      counter block (pool_allocations/pool_deallocations/pool_os_bytes
//      always live; alloc_failures, alloc_faults_injected,
//      pool_caches_reaped, mem_pressure_onsets, mem_pressure_exits,
//      sessions_shed_mem all-zero unless bounded mode / injection / crashes
//      are on — validator-enforced both directions), the
//      mem_pressure_onset/mem_pressure_exit/mem_shed_onset/alloc_fault_burst
//      annotation kinds, an always-present "mem" section (global pool
//      accounting + per-thread ledgers, conservation-checked offline), the
//      service section's shed_mem/oom counters and its v9 conservation laws
//      (generated == accepted + shed + shed_mem; accepted == completed +
//      killed + oom), and the mem-squeeze chaos phase kind
//
// `extra_section` (may be null) is invoked where optional sections live —
// after the timeline section, before "columns" — and must emit either
// nothing or one complete `  "key": {...},\n` entry; bench_service uses it
// for the "service" section.
inline void write_json_report(
    const std::string& path, const std::string& bench_name,
    const util::Table& table, const sim::Options& opts,
    const std::function<void(std::FILE*)>& extra_section = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
    return;
  }
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (struct tm tmv; gmtime_r(&now, &tmv) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tmv);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 9,\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n",
               detail::json_escape(bench_name).c_str());
  std::fprintf(f, "  \"generated_utc\": \"%s\",\n", stamp);
  std::fprintf(f,
               "  \"options\": {\"duration_ms\": %g, \"repeats\": %d, "
               "\"max_threads\": %u, \"hist\": %s, \"trace\": %s, "
               "\"clock\": \"%s\", \"retry\": \"%s\", \"validation\": \"%s\", "
               "\"fault_rate\": %g, \"crash_rate\": %g, "
               "\"mem_limit\": %llu, \"alloc_fault_rate\": %g, "
               "\"sample_interval_ms\": %g, \"slo\": \"%s\", "
               "\"slo_observe\": %s},\n",
               opts.duration_ms, opts.repeats, opts.max_threads,
               opts.hist ? "true" : "false",
               opts.trace_path.empty() ? "false" : "true",
               htm::to_string(htm::config().clock_policy),
               htm::to_string(htm::config().retry_policy),
               htm::to_string(htm::config().validation),
               htm::config().fault.rate, htm::config().crash.rate,
               static_cast<unsigned long long>(
                   htm::config().mem.limit_bytes),
               htm::config().mem.alloc_fault_rate,
               opts.sample_interval_ms,
               detail::json_escape(opts.slo).c_str(),
               opts.slo_observe ? "true" : "false");
  const htm::TxnStats s = htm::aggregate_stats();
  std::fprintf(
      f,
      "  \"htm\": {\"commits\": %llu, \"aborts\": %llu, "
      "\"abort_rate\": %.4f, \"lock_fallbacks\": %llu, "
      "\"nontxn_stores\": %llu, \"clock_bumps\": %llu, "
      "\"writer_commits\": %llu, \"sloppy_stamps\": %llu, "
      "\"clock_resamples\": %llu, \"clock_catchups\": %llu, "
      "\"coalesced_stores\": %llu, "
      "\"max_read_set\": %llu, \"max_write_set\": %llu, "
      "\"faults_injected\": %llu, \"tle_entries\": %llu, "
      "\"storm_entries\": %llu, \"storm_exits\": %llu, "
      "\"max_consec_aborts\": %llu, "
      "\"crashes_injected\": %llu, \"lock_recoveries\": %llu, "
      "\"orphans_reaped\": %llu, "
      "\"sig_validations\": %llu, \"sig_false_aborts\": %llu, "
      "\"sig_ring_overflows\": %llu,\n"
      "    \"aborts_by_code\": {",
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.aborts), s.abort_rate(),
      static_cast<unsigned long long>(s.lock_fallbacks),
      static_cast<unsigned long long>(s.nontxn_stores),
      static_cast<unsigned long long>(s.clock_bumps),
      static_cast<unsigned long long>(s.writer_commits),
      static_cast<unsigned long long>(s.sloppy_stamps),
      static_cast<unsigned long long>(s.clock_resamples),
      static_cast<unsigned long long>(s.clock_catchups),
      static_cast<unsigned long long>(s.coalesced_stores),
      static_cast<unsigned long long>(s.max_read_set),
      static_cast<unsigned long long>(s.max_write_set),
      static_cast<unsigned long long>(s.faults_injected),
      static_cast<unsigned long long>(s.tle_entries),
      static_cast<unsigned long long>(s.storm_entries),
      static_cast<unsigned long long>(s.storm_exits),
      static_cast<unsigned long long>(s.max_consec_aborts),
      static_cast<unsigned long long>(s.crashes_injected),
      static_cast<unsigned long long>(s.lock_recoveries),
      static_cast<unsigned long long>(s.orphans_reaped),
      static_cast<unsigned long long>(s.sig_validations),
      static_cast<unsigned long long>(s.sig_false_aborts),
      static_cast<unsigned long long>(s.sig_ring_overflows));
  for (int c = 0; c < static_cast<int>(htm::AbortCode::kNumCodes); ++c) {
    std::fprintf(f, "%s\"%s\": %llu", c == 0 ? "" : ", ",
                 htm::to_string(static_cast<htm::AbortCode>(c)),
                 static_cast<unsigned long long>(s.aborts_by_code[c]));
  }
  std::fprintf(f, "}},\n");
  // Per-cause retry depth: at which attempt index each abort cause struck.
  std::fprintf(f, "  \"retry\": {\"policy\": \"%s\", \"by_cause\": {\n",
               htm::to_string(htm::config().retry_policy));
  for (std::size_t c = 0; c < obs::kNumRetryCauses; ++c) {
    const obs::RetrySummary rs = obs::summarize_retries(static_cast<uint8_t>(c));
    std::fprintf(f,
                 "    \"%s\": {\"count\": %llu, \"p50_attempt\": %.1f, "
                 "\"p99_attempt\": %.1f, \"max_attempt\": %llu}%s\n",
                 obs::retry_cause_name(static_cast<uint8_t>(c)),
                 static_cast<unsigned long long>(rs.count), rs.p50_attempt,
                 rs.p99_attempt,
                 static_cast<unsigned long long>(rs.max_attempt),
                 c + 1 == obs::kNumRetryCauses ? "" : ",");
  }
  std::fprintf(f, "  }},\n");
  // Per-operation latency quantiles (empty histograms report count 0).
  std::fprintf(f, "  \"op_latency_ns\": {\n");
  for (int op = 0; op < static_cast<int>(obs::OpKind::kNumOps); ++op) {
    const auto kind = static_cast<obs::OpKind>(op);
    const obs::OpSummary lat = obs::summarize_op(kind);
    std::fprintf(f,
                 "    \"%s\": {\"count\": %llu, \"p50\": %.1f, \"p90\": %.1f, "
                 "\"p99\": %.1f, \"max\": %.1f, \"mean\": %.1f}%s\n",
                 obs::to_string(kind),
                 static_cast<unsigned long long>(lat.count), lat.p50_ns,
                 lat.p90_ns, lat.p99_ns, lat.max_ns, lat.mean_ns,
                 op + 1 == static_cast<int>(obs::OpKind::kNumOps) ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  // Conflict attribution: the hottest orecs and the algorithm that owned
  // the aborting transactions.
  const std::vector<obs::ConflictEntry> hot = obs::top_conflicts(5);
  std::fprintf(f,
               "  \"conflicts\": {\"recorded\": %llu, \"dropped\": %llu, "
               "\"top\": [",
               static_cast<unsigned long long>(obs::conflicts_recorded()),
               static_cast<unsigned long long>(obs::conflicts_dropped()));
  for (std::size_t i = 0; i < hot.size(); ++i) {
    const obs::ConflictEntry& e = hot[i];
    std::fprintf(f, "%s\n    {\"orec\": %llu, \"count\": %llu, \"by_algo\": {",
                 i == 0 ? "" : ",",
                 static_cast<unsigned long long>(e.orec_index),
                 static_cast<unsigned long long>(e.count));
    bool first = true;
    for (std::size_t c = 0; c < e.by_context.size(); ++c) {
      if (e.by_context[c] == 0) continue;
      std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ",
                   detail::json_escape(
                       obs::context_name(static_cast<uint8_t>(c)))
                       .c_str(),
                   static_cast<unsigned long long>(e.by_context[c]));
      first = false;
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "%s]},\n", hot.empty() ? "" : "\n  ");
  // --trace without -DDC_TRACE used to only warn on stderr; requested vs
  // enabled vs compiled lets the validator distinguish "no events because
  // nothing was asked for" from "asked for but compiled out".
  const bool trace_requested = obs::tracing_enabled();
  std::fprintf(f,
               "  \"trace\": {\"compiled\": %s, \"requested\": %s, "
               "\"enabled\": %s, \"events_emitted\": %llu},\n",
               obs::kTraceCompiled ? "true" : "false",
               trace_requested ? "true" : "false",
               trace_requested && obs::kTraceCompiled ? "true" : "false",
               static_cast<unsigned long long>(obs::events_emitted()));
  detail::write_mem_section(f);
  detail::write_timeline_section(f);
  if (extra_section) extra_section(f);
  std::fprintf(f, "  \"columns\": [");
  const auto& headers = table.headers();
  for (std::size_t i = 0; i < headers.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 detail::json_escape(headers[i]).c_str());
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"rows\": [\n");
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    [");
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c != 0) std::fprintf(f, ", ");
      detail::write_json_cell(f, rows[r][c]);
    }
    std::fprintf(f, "]%s\n", r + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Human diagnostics for the telemetry timeline: window/annotation tallies
// and per-target SLO verdicts. No-op when the sampler never ran.
inline void print_timeline_summary() {
  namespace tl = obs::timeline;
  if (tl::interval_ms() <= 0.0) return;
  std::printf(
      "[obs] timeline: %llu windows of %gms (%llu dropped), "
      "%llu annotations%s\n",
      static_cast<unsigned long long>(tl::windows_total()), tl::interval_ms(),
      static_cast<unsigned long long>(tl::windows_dropped()),
      static_cast<unsigned long long>(tl::annotations().size()),
      tl::events_dropped() != 0 ? " (some dropped)" : "");
  for (int k = 0; k < static_cast<int>(tl::Annotation::kNumKinds); ++k) {
    const auto kind = static_cast<tl::Annotation>(k);
    const uint64_t sum = tl::annotation_sum(kind);
    if (sum == 0) continue;
    std::printf("[obs]   %-14s total=%llu\n", tl::to_string(kind),
                static_cast<unsigned long long>(sum));
  }
  for (const obs::slo::TargetState& ts : tl::slo_results()) {
    std::printf(
        "[obs]   slo %-24s windows=%-6llu violations=%-6llu worst=%.0fns "
        "-> %s\n",
        ts.target.spec.c_str(),
        static_cast<unsigned long long>(ts.windows_evaluated),
        static_cast<unsigned long long>(ts.violations), ts.worst_ns,
        ts.violations == 0 ? "PASS" : "FAIL");
  }
  const std::vector<tl::SloEpisode> eps = tl::slo_episodes();
  if (!eps.empty()) {
    std::printf("[obs]   slo episodes=%zu re-attained=%llu\n", eps.size(),
                static_cast<unsigned long long>(tl::slo_reattainments()));
    for (const tl::SloEpisode& e : eps) {
      std::printf(
          "[obs]     episode @%.1fms %s after %.1fms (%llu bad windows)\n",
          e.t_start_ms, e.recovered ? "re-attained" : "NOT re-attained",
          e.t_end_ms - e.t_start_ms,
          static_cast<unsigned long long>(e.violating_windows));
    }
  }
}

// Shared tail of every table-driven figure benchmark: stop the telemetry
// sampler (closing its final partial window), print (CSV or aligned +
// diagnostics), drop the JSON report when requested, and return the
// process exit code (obs::slo::exit_code: 0 clean, 3 when any configured
// SLO target was violated — unless --slo-observe turned violations into
// report-only facts). Bench mains `return bench::report(...)`;
// `extra_section` flows through to write_json_report.
inline int report(
    const util::Table& table, const sim::Options& opts,
    const std::string& bench_name,
    const std::function<void(std::FILE*)>& extra_section = nullptr) {
  obs::timeline::stop();
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
    print_htm_diagnostics();
    print_timeline_summary();
  }
  if (!opts.json_path.empty()) {
    write_json_report(opts.json_path, bench_name, table, opts,
                      extra_section);
  }
  if (opts.slo_observe) return 0;
  return obs::slo::exit_code(obs::timeline::slo_violations_total());
}

inline void print_host_caveat() {
  std::printf(
      "# NOTE: software-simulated HTM (TL2-style, 32-entry store buffer,\n"
      "# sandboxing via orec bump on free). The paper ran on a 16-core Rock\n"
      "# CPU; absolute numbers and scalability slopes are not comparable —\n"
      "# compare the relative ordering of the series (see EXPERIMENTS.md).\n");
}

}  // namespace dc::bench
