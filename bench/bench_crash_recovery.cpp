// Crash-recovery storm — thread death under load and what it costs to
// survive it.
//
// Victim threads hammer a CrashTolerantCollect (register/update/deregister
// churn over a few persistent handles) while the crash injector kills them:
// one scripted death *while holding the TLE fallback lock* per round, plus
// rate-based deaths everywhere else (--crash-rate). The immortal main
// thread then plays survivor: it steals the abandoned lock (implicitly, the
// first time one of its transactions escalates), reaps the dead threads'
// orphaned handles, and verifies the Collect shrinks back to zero.
//
// With --crash-rate 0 the run is completely clean — no kills are scheduled
// and the three crash counters must stay zero. CI uses both modes: the
// injected run is validated with validate_report.py --expect-crashes, the
// clean run doubles as the zero-overhead guard.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "util/cycles.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  htm::reset_stats();
  const bench::ObsSession obs_session(opts);

  const double rate = htm::config().crash.rate;
  const bool injecting = rate > 0.0;
  const uint32_t victims =
      opts.max_threads > 4 ? 4 : (opts.max_threads < 2 ? 2 : opts.max_threads);
  const int rounds = opts.repeats;
  constexpr uint32_t kPersistentHandles = 4;
  constexpr uint32_t kChurnIters = 400;

  if (!opts.csv) {
    std::printf(
        "== Crash recovery: thread death, lock steal, orphan reap ==\n"
        "(%u victims x %d rounds, crash rate %g%s)\n",
        victims, rounds, rate,
        injecting ? ", one scripted lock-held kill per round" : "");
    bench::print_host_caveat();
  }
  htm::crash::reset_all();

  util::Table table({"round", "victims", "crashed", "survived",
                     "orphans_reaped", "leases_left", "collect_size",
                     "reap_us"});

  for (int round = 0; round < rounds; ++round) {
    collect::CrashTolerantCollect col(collect::make_algorithm(
        "ListFastCollect", bench::params_for(victims * kPersistentHandles + 8,
                                             victims + 1)));
    std::atomic<uint32_t> crashed{0};
    std::vector<std::thread> threads;
    threads.reserve(victims);
    for (uint32_t v = 0; v < victims; ++v) {
      threads.emplace_back([&, v] {
        htm::crash::reset_thread();
        const bool survived = htm::crash::run_victim([&] {
          std::vector<collect::Handle> mine;
          mine.reserve(kPersistentHandles);
          for (uint32_t h = 0; h < kPersistentHandles; ++h) {
            mine.push_back(col.register_handle((uint64_t{v} << 32) | h));
          }
          if (injecting && v == 0) {
            // Die a few atomic blocks from now, forced onto — and holding —
            // the TLE fallback lock. The handles above stay orphaned.
            htm::crash::schedule_self(htm::crash::Point::kLockHeld,
                                      /*blocks_from_now=*/2);
          }
          for (uint32_t i = 0; i < kChurnIters; ++i) {
            col.update(mine[i % kPersistentHandles], i);
            collect::Handle h = col.register_handle(~uint64_t{i});
            col.deregister(h);
          }
          for (collect::Handle h : mine) col.deregister(h);
        });
        if (!survived) crashed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();

    // Survivor's duty: reap until no orphan remains (one pass suffices when
    // no reaper dies, but the loop is the honest protocol).
    const uint64_t reap_start = util::rdcycles();
    std::size_t reaped = 0;
    while (col.orphan_count() != 0) reaped += col.reap_orphans();
    const double reap_us =
        util::cycles_to_ns(util::rdcycles() - reap_start) / 1000.0;
    std::vector<collect::Value> out;
    col.collect(out);

    table.add_row({util::Table::fmt(uint64_t{static_cast<uint32_t>(round)}),
                   util::Table::fmt(uint64_t{victims}),
                   util::Table::fmt(uint64_t{crashed.load()}),
                   util::Table::fmt(uint64_t{victims - crashed.load()}),
                   util::Table::fmt(uint64_t{reaped}),
                   util::Table::fmt(uint64_t{col.lease_count()}),
                   util::Table::fmt(uint64_t{out.size()}),
                   util::Table::fmt(reap_us)});
    if (out.size() != 0 || col.lease_count() != 0) {
      std::fprintf(stderr,
                   "crash_recovery: round %d left %zu values / %zu leases "
                   "after reap\n",
                   round, out.size(), col.lease_count());
      return 1;
    }
  }

  return bench::report(table, opts, "crash_recovery");
}
