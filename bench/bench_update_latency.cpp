// §5.1 — Update latency per algorithm (google-benchmark).
//
// The paper's table-in-prose: ~215 ns for the algorithms whose Update goes
// through a level of indirection inside a transaction
// (ArrayStatAppendDereg, ArrayDynSearchResize, ArrayDynAppendDereg) and
// ~135 ns for those that store directly to an address determined by the
// handle (lists, ArrayStatSearchNo, baselines). Absolute numbers differ on
// the software substrate; the two latency *classes* must separate.
// Register/DeRegister-pair and quiescent-Collect latencies are reported as
// supplementary rows.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace dc;

void bm_update(benchmark::State& state, const std::string& name) {
  auto obj = collect::make_algorithm(name, dc::bench::params_for(64, 1));
  collect::Handle h = obj->register_handle(1);
  collect::Value v = 2;
  for (auto _ : state) {
    obj->update(h, v++);
  }
  obj->deregister(h);
}

void bm_register_deregister(benchmark::State& state, const std::string& name) {
  auto obj = collect::make_algorithm(name, dc::bench::params_for(64, 1));
  collect::Value v = 1;
  for (auto _ : state) {
    collect::Handle h = obj->register_handle(v++);
    obj->deregister(h);
  }
}

void bm_collect64(benchmark::State& state, const std::string& name) {
  auto obj = collect::make_algorithm(name, dc::bench::params_for(64, 1));
  std::vector<collect::Handle> handles;
  for (collect::Value v = 0; v < 64; ++v) {
    handles.push_back(obj->register_handle(v));
  }
  obj->set_step_size(32);
  std::vector<collect::Value> out;
  for (auto _ : state) {
    obj->collect(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
  for (collect::Handle h : handles) obj->deregister(h);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel --trace/--hist off before google-benchmark sees (and rejects) them.
  const dc::sim::Options obs_opts = dc::bench::extract_obs_options(argc, argv);
  const dc::bench::ObsSession obs_session(obs_opts);
  for (const auto& info : dc::collect::all_algorithms()) {
    benchmark::RegisterBenchmark(("Update/" + info.name).c_str(), bm_update,
                                 info.name);
  }
  for (const auto& info : dc::collect::all_algorithms()) {
    benchmark::RegisterBenchmark(("RegisterDeregister/" + info.name).c_str(),
                                 bm_register_deregister, info.name);
  }
  for (const auto& info : dc::collect::all_algorithms()) {
    benchmark::RegisterBenchmark(("Collect64/" + info.name).c_str(),
                                 bm_collect64, info.name);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf(
      "== §5.1: single-thread operation latency ==\n"
      "(paper: Update ~215ns for ArrayStatAppendDereg/ArrayDynSearchResize/\n"
      " ArrayDynAppendDereg [transactional indirection], ~135ns for the\n"
      " rest [direct store]; expect the same two classes, shifted by the\n"
      " software-HTM constant)\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
