// Figure 5 — the step-size tradeoff and the adaptive mechanism, for
// ArrayDynAppendDereg under the Figure 4 workload.
//
// Series: fixed steps 8/16/32; "Best (adapt cost)" = the best fixed step at
// each point while collecting (but not using) adaptation data; "Adaptive" =
// the full §3.4 mechanism. In the paper, step 32 stops completing below a
// 2000-cycle update period, and Adaptive tracks Best; the bookkeeping
// overhead (20-30% on Rock, where it required reading failure registers)
// is much smaller in this software substrate.
#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  htm::reset_stats();
  const bench::ObsSession obs_session(opts);
  const uint32_t updaters = opts.max_threads > 1 ? opts.max_threads - 1 : 1;
  if (!opts.csv) {
    std::printf(
        "== Figure 5: adapting step size for ArrayDynAppendDereg "
        "[collects/us] ==\n(1 collector + %u updaters, 64 handles)\n",
        updaters);
    bench::print_host_caveat();
  }
  // Restore multicore-style transaction/writer overlap on oversubscribed
  // hosts (see Config::txn_yield_every_loads).
  htm::config().txn_yield_every_loads = 16;

  const std::vector<uint64_t> periods = {100'000, 50'000, 20'000, 10'000,
                                         8'000,   6'000,  4'000,  2'000,
                                         1'000,   800,    600,    400};
  util::Table table({"period_cycles", "Step8", "Step16", "Step32",
                     "Best(adapt-cost)", "Adaptive"});

  auto run_one = [&](uint32_t step, bool record_only, bool adaptive,
                     uint64_t period) {
    util::RunningStats stats;
    for (int r = 0; r < opts.repeats; ++r) {
      auto obj = collect::make_algorithm("ArrayDynAppendDereg",
                                         bench::params_for(64, updaters));
      if (adaptive) {
        obj->set_adaptive(true);
      } else {
        obj->set_step_size(step);
        if (record_only) obj->set_record_only(true);
      }
      stats.add(sim::run_collect_update(*obj, updaters, 64, period,
                                        opts.duration_ms)
                    .collects_per_us);
    }
    return stats.mean();
  };

  for (const uint64_t period : periods) {
    const double s8 = run_one(8, false, false, period);
    const double s16 = run_one(16, false, false, period);
    const double s32 = run_one(32, false, false, period);
    // Best with adaptation-cost: best fixed step, re-run with outcome
    // bookkeeping enabled.
    uint32_t best_step = 8;
    double best = s8;
    if (s16 > best) best = s16, best_step = 16;
    if (s32 > best) best = s32, best_step = 32;
    const double best_cost = run_one(best_step, true, false, period);
    const double adaptive = run_one(0, false, true, period);
    table.add_row({util::Table::fmt(period), util::Table::fmt(s8),
                   util::Table::fmt(s16), util::Table::fmt(s32),
                   util::Table::fmt(best_cost), util::Table::fmt(adaptive)});
  }
  return bench::report(table, opts, "fig5_adaptive_step");
}
