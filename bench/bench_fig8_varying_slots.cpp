// Figure 8 — Collect throughput over time as the number of registered
// handles alternates (16 <-> 64 every 500 ms, 3 s total).
//
// The signature shapes: StaticBaseline is flat (always scans the whole
// array); ArrayStatSearchNo degrades at the first growth and NEVER recovers
// (historical high-water mark); the Append algorithms and FastCollect track
// the registered count both ways.
#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  const bench::ObsSession obs_session(opts);
  const uint32_t updaters = opts.max_threads > 1 ? opts.max_threads - 1 : 1;
  htm::config().txn_yield_every_loads = 16;  // multicore-style overlap
  if (!opts.csv) {
    std::printf(
        "== Figure 8: collect throughput [collects/us] over time ==\n"
        "(1 collector + %u updaters, update period 20k cycles; registered "
        "handles alternate 16<->64 every 500 ms)\n",
        updaters);
    bench::print_host_caveat();
  }
  const std::vector<std::string> series = {
      "ArrayStatAppendDereg", "ArrayDynAppendDereg", "ListFastCollect",
      "ArrayStatSearchNo", "StaticBaseline"};
  constexpr double kPhaseMs = 500.0;
  constexpr double kTotalMs = 3000.0;
  constexpr double kBucketMs = 100.0;

  std::vector<std::vector<sim::TimePoint>> results;
  for (const std::string& name : series) {
    auto obj = collect::make_algorithm(name, bench::params_for(64, updaters));
    if (bench::algo(name).telescoped) obj->set_step_size(32);
    results.push_back(sim::run_varying_slots(*obj, updaters, 20'000, 16, 64,
                                             kPhaseMs, kTotalMs, kBucketMs));
  }

  std::vector<std::string> headers = {"time_ms", "phase_slots"};
  headers.insert(headers.end(), series.begin(), series.end());
  util::Table table(headers);
  std::size_t buckets = 0;
  for (const auto& r : results) buckets = std::max(buckets, r.size());
  for (std::size_t b = 0; b < buckets; ++b) {
    const double t = results[0].size() > b ? results[0][b].t_ms
                                           : static_cast<double>(b) * kBucketMs;
    const int phase = static_cast<int>(t / kPhaseMs);
    std::vector<std::string> row = {
        util::Table::fmt(t, 0),
        util::Table::fmt(uint64_t{phase % 2 == 0 ? 16u : 64u})};
    for (const auto& r : results) {
      row.push_back(b < r.size() ? util::Table::fmt(r[b].collects_per_us)
                                 : std::string{});
    }
    table.add_row(row);
  }
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
  }
  if (!opts.json_path.empty()) {
    bench::write_json_report(opts.json_path, "fig8_varying_slots", table,
                             opts);
  }
  return 0;
}
