// Figure 6 — fraction of slots collected at each step size by the adaptive
// ArrayDynAppendDereg, under the Figure 4 workload.
//
// As the update period shrinks (more contention) the adaptive controller
// spends more of its time at smaller steps; at long periods virtually all
// slots are collected at step 32.
#include <numeric>

#include "bench_common.hpp"
#include "htm/config.hpp"
#include "sim/drivers.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  const bench::ObsSession obs_session(opts);
  const uint32_t updaters = opts.max_threads > 1 ? opts.max_threads - 1 : 1;
  htm::config().txn_yield_every_loads = 16;  // multicore-style overlap
  if (!opts.csv) {
    std::printf(
        "== Figure 6: %% of slots collected per step size (adaptive "
        "ArrayDynAppendDereg) ==\n(1 collector + %u updaters, 64 handles; "
        "steps <4 folded into the '<=4' column)\n",
        updaters);
    bench::print_host_caveat();
  }
  const std::vector<uint64_t> periods = {8'000, 6'000, 4'000, 2'000,
                                         1'000, 800,   600,   400};
  util::Table table(
      {"period_cycles", "step<=4", "step8", "step16", "step32"});
  for (const uint64_t period : periods) {
    auto obj = collect::make_algorithm("ArrayDynAppendDereg",
                                       bench::params_for(64, updaters));
    obj->set_adaptive(true);
    obj->reset_step_stats();
    (void)sim::run_collect_update(*obj, updaters, 64, period,
                                  opts.duration_ms * opts.repeats);
    const auto slots = obj->slots_by_step();
    const double total = static_cast<double>(
        std::accumulate(slots.begin(), slots.end(), uint64_t{0}));
    auto pct = [&](double x) {
      return util::Table::fmt(total > 0 ? 100.0 * x / total : 0.0, 1);
    };
    table.add_row({util::Table::fmt(period),
                   pct(static_cast<double>(slots[0] + slots[1] + slots[2])),
                   pct(static_cast<double>(slots[3])),
                   pct(static_cast<double>(slots[4])),
                   pct(static_cast<double>(slots[5]))});
  }
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
  }
  if (!opts.json_path.empty()) {
    bench::write_json_report(opts.json_path, "fig6_step_distribution", table,
                             opts);
  }
  return 0;
}
