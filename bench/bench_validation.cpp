// Validation-backend crossover: exact read-set walk vs Bloom signatures.
//
// The exact backend re-checks every read orec each time a transaction must
// validate — O(|read set|) per validation. The signature backend replaces
// each walk with one scan of the bounded commit-signature ring —
// O(kRingSize), independent of the read set — after paying two bit-ORs
// into an 8 KB filter per tracked read. One validation per transaction
// therefore roughly trades the walk for the filter build; the backend pulls
// ahead when a transaction validates repeatedly, which is exactly what
// long reader transactions do under concurrent writers: every load that
// trips over a freshly-stamped orec re-validates the whole read set so far
// to extend the snapshot (try_extend), so a traversal racing W writers
// validates O(W) times and the exact walk's cost compounds.
//
// This bench recreates that regime deterministically with one thread: a
// transaction reads `rsize` words scattered over a 512 KB array (scattered,
// because pointer-structure traversals are the workload this substrate
// exists for, and because sequential reads map to consecutive orecs and
// make the exact walk an unrealistically prefetch-friendly linear scan).
// At kChurnStores evenly spaced points mid-pass it performs a
// strong-atomicity store to an array word *ahead* of the read cursor — a
// write the reader is about to run into, as if a concurrent writer had just
// committed there. Loading that word then forces a snapshot extension in
// both backends: the exact walk re-touches every orec read so far, the
// signature backend scans the ring. (Under GV5 some consecutive stores
// share a sloppy stamp the previous extension already absorbed, so the
// effective validation count per transaction is a bit below
// kChurnStores + 1.) The store target rotates every iteration so the
// signature backend's false-positive rate is an average over many bit
// patterns, not one fixed draw per sweep point.
//
// Reported latency is end-to-end per committed transaction, including
// retries the backend causes: at large read sets the 65536-bit Bloom filter
// saturates, ring entries collide with everything, and extensions turn into
// (classified, counted) false aborts — the honest price of O(1)
// validation, visible as the upper end of the sweep bending back toward
// exact.
#include <vector>

#include "bench_common.hpp"
#include "htm/config.hpp"
#include "htm/htm.hpp"
#include "htm/valring.hpp"
#include "util/cycles.hpp"
#include "util/rng.hpp"

namespace {

constexpr uint32_t kMaxReads = 1u << 16;  // 512 KB of uint64_t
constexpr uint32_t kChurnStores = 8;      // mid-pass writer interruptions per txn

struct Workspace {
  std::vector<uint64_t> arr;
  // First rsize entries of one fixed shuffle = the scattered read set for
  // that sweep point; identical for both backends by construction.
  std::vector<uint32_t> perm;
  uint64_t* sink;
};

// A commit target whose orec aliases none of the read array's, so the
// commit itself can never be a real conflict.
uint64_t g_sink_pool[1u << 17];

Workspace make_workspace() {
  using namespace dc;
  Workspace ws;
  ws.arr.assign(kMaxReads, 1);
  ws.perm.resize(kMaxReads);
  for (uint32_t i = 0; i < kMaxReads; ++i) ws.perm[i] = i;
  util::Xoshiro256 rng(0xB10051);  // fixed: same read sets in every run
  for (uint32_t i = kMaxReads - 1; i > 0; --i) {
    std::swap(ws.perm[i], ws.perm[rng.next_below(i + 1)]);
  }
  std::vector<bool> used(htm::kOrecCount, false);
  for (const uint64_t& w : ws.arr) {
    used[static_cast<std::size_t>(&htm::orec_for(&w) - htm::orec_table())] =
        true;
  }
  // orec_index is near-direct-mapped, so a small pool could land entirely
  // inside the array's contiguous index window; a 2^17-word span always has
  // words outside a 2^16-index window.
  for (uint64_t& w : g_sink_pool) {
    const auto idx =
        static_cast<std::size_t>(&htm::orec_for(&w) - htm::orec_table());
    if (used[idx]) continue;
    ws.sink = &w;
    return ws;
  }
  std::fprintf(stderr, "could not find an orec-disjoint sink word\n");
  std::abort();
}

// Mean latency (us) of one committed reader transaction of `rsize` scattered
// loads with kChurnStores mid-pass extension triggers, retries included,
// measured over one ~duration_ms window.
double run_window(Workspace& ws, uint32_t rsize, double duration_ms) {
  using namespace dc;
  const uint64_t budget =
      static_cast<uint64_t>(duration_ms * 1e6 * util::cycles_per_ns());
  uint64_t churn_val = 0;
  uint64_t iters = 0;
  const uint64_t t0 = util::rdcycles();
  uint64_t elapsed = 0;
  do {
    // Each churn store happens once per iteration, not once per attempt: a
    // store already issued before an abort must not be re-issued on the
    // retry, or a saturated Bloom filter would re-collide with the same
    // entry deterministically and retry forever. The retry's fresh snapshot
    // covers the already-published stamps, so skipped stores cost nothing.
    uint32_t stores_done = 0;
    const uint32_t seg = rsize / (kChurnStores + 1) + 1;
    for (;;) {
      try {
        htm::Txn txn;
        uint64_t sum = 0;
        uint32_t boundary = 0;
        for (uint32_t i = 0; i < rsize; ++i) {
          if (i > 0 && i % seg == 0 && i + 1 < rsize &&
              boundary++ == stores_done && stores_done < kChurnStores) {
            // "Concurrent writer" commits to a word strictly ahead of the
            // read cursor; the position rotates per iteration. Loading it
            // below forces a snapshot extension — a full validation in
            // both backends.
            const uint32_t ahead = static_cast<uint32_t>(
                (iters * 7919 + i) % (rsize - i - 1));
            ++stores_done;
            htm::nontxn_store(&ws.arr[ws.perm[i + 1 + ahead]], ++churn_val);
          }
          sum += txn.load(&ws.arr[ws.perm[i]]);
        }
        txn.store(ws.sink, sum + iters);
        txn.commit();
        break;
      } catch (const htm::TxnAbort&) {
        // Bloom false positive (sig backend at saturation): retry, and let
        // the retry's cost land in this iteration's latency.
      }
    }
    ++iters;
    elapsed = util::rdcycles() - t0;
  } while (elapsed < budget || iters < 10);
  return util::cycles_to_ns(elapsed) / 1000.0 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dc;
  const auto opts = sim::Options::parse(argc, argv);
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  htm::reset_stats();
  const bench::ObsSession obs_session(opts);
  // The sweep flips between both backends regardless of what the session
  // selected (--validate/DC_VALIDATE); the session's choice is restored on
  // exit. The report is emitted as validation=sig because that is what the
  // process's diagnostics show — sig counters are necessarily nonzero here,
  // and the schema's zero-when-exact invariant must keep holding for every
  // checked-in report.
  const htm::ValidationPolicy session_mode = htm::config().validation;
  if (!opts.csv) {
    std::printf(
        "== Validation backends: exact read-set walk vs Bloom signature "
        "ring ==\n"
        "(single reader, %u-word array, scattered reads, %u mid-pass "
        "extension triggers per txn, clock=%s)\n",
        kMaxReads, kChurnStores, htm::to_string(htm::config().clock_policy));
    bench::print_host_caveat();
  }

  Workspace ws = make_workspace();
  util::Table table({"rsize", "exact_us", "sig_us", "speedup"});
  uint32_t crossover = 0;
  for (uint32_t lg = 4; lg <= 16; ++lg) {
    const uint32_t rsize = 1u << lg;
    const htm::ValidationPolicy kModes[2] = {htm::ValidationPolicy::kExact,
                                             htm::ValidationPolicy::kSignature};
    util::RunningStats stats[2];
    // Interleave the two backends repeat by repeat (A/B/A/B), so slow drift
    // in host load lands on both series instead of biasing one.
    for (int m = 0; m < 2; ++m) {
      htm::config().validation = kModes[m];
      run_window(ws, rsize, 2.0);  // warm-up: page in, settle the ring
    }
    for (int r = 0; r < opts.repeats; ++r) {
      for (int m = 0; m < 2; ++m) {
        htm::config().validation = kModes[m];
        stats[m].add(run_window(ws, rsize, opts.duration_ms));
      }
    }
    const double mean[2] = {stats[0].mean(), stats[1].mean()};
    const double speedup = mean[1] > 0.0 ? mean[0] / mean[1] : 0.0;
    if (crossover == 0 && speedup > 1.0) crossover = rsize;
    table.add_row({util::Table::fmt(static_cast<uint64_t>(rsize)),
                   util::Table::fmt(mean[0], 3),
                   util::Table::fmt(mean[1], 3),
                   util::Table::fmt(speedup, 2)});
  }
  htm::config().validation = htm::ValidationPolicy::kSignature;

  if (!opts.csv) {
    if (crossover != 0) {
      std::printf(
          "\n(signature backend first wins at rsize=%u; speedup > 1 means "
          "sig is faster)\n",
          crossover);
    } else {
      std::printf("\n(no crossover in this sweep — exact won throughout)\n");
    }
  }
  const int rc = bench::report(table, opts, "validation");
  htm::config().validation = session_mode;
  return rc;
}
