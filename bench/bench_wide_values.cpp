// §5.1's prediction, measured: with multi-word values, algorithms that
// enjoyed naked-store Updates must synchronize, "largely closing the gap"
// to the transactional-indirection algorithms.
//
// Rows: Update latency for narrow (1-word) vs wide (4-word) values, for the
// naked-store representative (ArrayStatSearchNo) and the transactional
// representative (ArrayDynAppendDereg).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "collect/array_dyn_append_dereg.hpp"
#include "collect/array_stat_search_no.hpp"
#include "collect/wide.hpp"

namespace {

using namespace dc::collect;

void bm_narrow_search_no(benchmark::State& state) {
  ArrayStatSearchNo obj(64);
  Handle h = obj.register_handle(1);
  Value v = 2;
  for (auto _ : state) obj.update(h, v++);
  obj.deregister(h);
}
BENCHMARK(bm_narrow_search_no)->Name("Update/Narrow/ArrayStatSearchNo");

void bm_wide_search_no(benchmark::State& state) {
  WideArrayStatSearchNo obj(64);
  WideHandle h = obj.register_handle(WideValue::make(1, 2, 3));
  uint64_t s = 0;
  for (auto _ : state) {
    ++s;
    obj.update(h, WideValue::make(s, s + 1, s + 2));
  }
  obj.deregister(h);
}
BENCHMARK(bm_wide_search_no)->Name("Update/Wide/ArrayStatSearchNo");

void bm_narrow_append_dereg(benchmark::State& state) {
  ArrayDynAppendDereg obj(16);
  Handle h = obj.register_handle(1);
  Value v = 2;
  for (auto _ : state) obj.update(h, v++);
  obj.deregister(h);
}
BENCHMARK(bm_narrow_append_dereg)->Name("Update/Narrow/ArrayDynAppendDereg");

void bm_wide_append_dereg(benchmark::State& state) {
  WideArrayDynAppendDereg obj(16);
  WideHandle h = obj.register_handle(WideValue::make(1, 2, 3));
  uint64_t s = 0;
  for (auto _ : state) {
    ++s;
    obj.update(h, WideValue::make(s, s + 1, s + 2));
  }
  obj.deregister(h);
}
BENCHMARK(bm_wide_append_dereg)->Name("Update/Wide/ArrayDynAppendDereg");

}  // namespace

int main(int argc, char** argv) {
  // Peel --trace/--hist off before google-benchmark sees (and rejects) them.
  const dc::sim::Options obs_opts = dc::bench::extract_obs_options(argc, argv);
  const dc::bench::ObsSession obs_session(obs_opts);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf(
      "== Wide values (§5.1): does the naked-store Update advantage survive "
      "multi-word values? ==\n"
      "(paper's prediction: no — synchronization is needed either way, so "
      "the gap largely closes)\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
