// Figure 1 — FIFO queue throughput vs thread count.
//
// Paper series: "HTM" (simple transactional queue, frees on dequeue),
// "Michael-Scott" (thread-local pools, no reclamation), and "Michael-Scott
// ROP" (Pass-The-Buck reclamation). We additionally report the
// hazard-pointer variant. After each run the quiescent memory footprint is
// reported — the space property motivating the HTM queue (§1.1).
#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "memory/pool.hpp"
#include "queue/htm_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/ms_queue_hp.hpp"
#include "queue/ms_queue_rop.hpp"
#include "util/barrier.hpp"
#include "util/padded.hpp"
#include "util/rng.hpp"

namespace {

using namespace dc;

constexpr uint32_t kPrefill = 256;

struct RunResult {
  double ops_per_us;
  uint64_t quiescent_nodes;  // nodes still held after drain (space story)
};

template <class Q>
RunResult run_queue(uint32_t threads, double duration_ms) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  RunResult result{};
  {
    Q q;
    for (uint32_t i = 0; i < kPrefill; ++i) q.enqueue(i);
    std::atomic<bool> stop{false};
    util::SpinBarrier barrier(threads + 1);
    std::vector<util::Padded<uint64_t>> ops(threads);
    std::vector<std::thread> team;
    for (uint32_t t = 0; t < threads; ++t) {
      team.emplace_back([&, t] {
        util::Xoshiro256 rng(t + 1);
        barrier.arrive_and_wait();
        uint64_t n = 0;
        queue::Value v = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (rng.percent_chance(50)) {
            q.enqueue(v++);
          } else {
            q.dequeue(&v);
          }
          ++n;
        }
        ops[t].value = n;
      });
    }
    barrier.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(duration_ms * 1000)));
    stop.store(true, std::memory_order_release);
    for (auto& t : team) t.join();
    const double us = static_cast<double>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
                      1000.0;
    uint64_t total = 0;
    for (const auto& o : ops) total += o.value;
    result.ops_per_us = static_cast<double>(total) / us;
    // Drain and measure the quiescent footprint before destruction.
    queue::Value ignored;
    while (q.dequeue(&ignored)) {
    }
    if constexpr (requires { q.quiesce(); }) q.quiesce();
    uint64_t held = mem::pool_stats().live_blocks - before.live_blocks;
    if constexpr (requires { q.pooled_nodes(); }) held += q.pooled_nodes();
    result.quiescent_nodes = held;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = dc::sim::Options::parse(argc, argv);
  // Quiescent-only: clear the counters before ObsSession may start the
  // telemetry sampler (reset_stats aborts under a live sampler).
  dc::htm::reset_stats();
  const dc::bench::ObsSession obs_session(opts);
  if (!opts.csv) {
    std::printf("== Figure 1: queue throughput [ops/us] vs threads ==\n");
    dc::bench::print_host_caveat();
  }
  dc::util::Table table({"threads", "HTM", "Michael-Scott",
                         "Michael-Scott-ROP", "Michael-Scott-HP",
                         "HTM-quiescent-nodes", "MS-quiescent-nodes"});
  for (const uint32_t threads : dc::sim::thread_sweep(opts)) {
    dc::util::RunningStats htm_s, ms_s, rop_s, hp_s;
    uint64_t htm_nodes = 0, ms_nodes = 0;
    for (int r = 0; r < opts.repeats; ++r) {
      const auto a = run_queue<dc::queue::HtmQueue>(threads, opts.duration_ms);
      const auto b = run_queue<dc::queue::MsQueue>(threads, opts.duration_ms);
      const auto c =
          run_queue<dc::queue::MsQueueRop>(threads, opts.duration_ms);
      const auto d =
          run_queue<dc::queue::MsQueueHp>(threads, opts.duration_ms);
      htm_s.add(a.ops_per_us);
      ms_s.add(b.ops_per_us);
      rop_s.add(c.ops_per_us);
      hp_s.add(d.ops_per_us);
      htm_nodes = a.quiescent_nodes;
      ms_nodes = b.quiescent_nodes;
    }
    table.add_row({dc::util::Table::fmt(uint64_t{threads}),
                   dc::util::Table::fmt(htm_s.mean()),
                   dc::util::Table::fmt(ms_s.mean()),
                   dc::util::Table::fmt(rop_s.mean()),
                   dc::util::Table::fmt(hp_s.mean()),
                   dc::util::Table::fmt(htm_nodes),
                   dc::util::Table::fmt(ms_nodes)});
  }
  if (opts.csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\n(quiescent-nodes: entries still held after draining the queue —\n"
        " the HTM queue frees on dequeue; Michael-Scott pools retain the\n"
        " historical maximum, %u prefill + transient growth)\n",
        kPrefill);
    dc::bench::print_htm_diagnostics();
  }
  if (!opts.json_path.empty()) {
    dc::bench::write_json_report(opts.json_path, "fig1_queue", table, opts);
  }
  return 0;
}
