// Watching the adaptive telescoping controller (§3.4) react to contention.
//
//   build/examples/adaptive_telescoping
//
// Phase 1: a lone collector — the step size climbs to 32 (all slots
// collected in one or two transactions). Phase 2: an aggressive updater
// joins — aborts push the step back down. Phase 3: the updater leaves —
// the step recovers. The per-step slot histogram is printed after each
// phase.
#include <atomic>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "collect/array_dyn_append_dereg.hpp"
#include "htm/config.hpp"
#include "htm/stats.hpp"

namespace {

using namespace dc::collect;

void print_histogram(const char* phase, const std::vector<uint64_t>& slots) {
  const double total = static_cast<double>(
      std::accumulate(slots.begin(), slots.end(), uint64_t{0}));
  std::printf("%-28s", phase);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    std::printf("  step%-2u %5.1f%%", 1u << i,
                total > 0 ? 100.0 * static_cast<double>(slots[i]) / total
                          : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Mid-transaction yields let the single collector core actually overlap
  // with the updater (see htm::Config::txn_yield_every_loads).
  dc::htm::config().txn_yield_every_loads = 16;

  ArrayDynAppendDereg obj(16);
  std::vector<Handle> handles;
  for (Value v = 0; v < 64; ++v) handles.push_back(obj.register_handle(v));
  obj.set_adaptive(true);

  std::vector<Value> out;
  auto run_phase = [&](int collects) {
    obj.reset_step_stats();
    dc::htm::reset_stats();
    for (int i = 0; i < collects; ++i) obj.collect(out);
  };

  // Phase 1: no contention.
  run_phase(3000);
  print_histogram("phase 1 (quiet):", obj.slots_by_step());

  // Phase 2: hammering updater.
  std::atomic<bool> stop{false};
  std::thread updater([&] {
    Value v = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      obj.update(handles[static_cast<std::size_t>(v) % handles.size()], v);
      ++v;
    }
  });
  run_phase(300);
  const auto contended = dc::htm::aggregate_stats();
  stop.store(true);
  updater.join();
  print_histogram("phase 2 (contended):", obj.slots_by_step());
  std::printf("  (phase 2: %llu transaction aborts; the updater's own "
              "commits dominate the totals)\n",
              (unsigned long long)contended.aborts);

  // Phase 3: quiet again.
  run_phase(3000);
  print_histogram("phase 3 (quiet again):", obj.slots_by_step());

  for (Handle h : handles) obj.deregister(h);
  return 0;
}
