// The paper's §1.1 story, runnable: an HTM FIFO queue whose dequeue frees
// entries immediately, next to a Michael-Scott queue whose thread-local
// pools hold the historical maximum forever.
//
//   build/examples/htm_queue_demo
//
// Four producer/consumer threads churn both queues through a large burst,
// then drain; the pool statistics show the difference in quiescent
// footprint that motivates the whole paper.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "memory/pool.hpp"
#include "queue/htm_queue.hpp"
#include "queue/ms_queue.hpp"

namespace {

template <class Q>
void churn(Q& q, int threads, int burst) {
  std::vector<std::thread> team;
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      dc::queue::Value v = 0;
      // Grow phase: net enqueue pressure...
      for (int i = 0; i < burst; ++i) {
        q.enqueue(static_cast<dc::queue::Value>(t) << 32 | i);
        if (i % 4 == 0) q.dequeue(&v);
      }
      // ...then drain everything this thread can see.
      while (q.dequeue(&v)) {
      }
    });
  }
  for (auto& t : team) t.join();
}

}  // namespace

int main() {
  constexpr int kThreads = 4;
  constexpr int kBurst = 20'000;

  dc::mem::pool_flush_thread_cache();
  const auto base = dc::mem::pool_stats();

  std::printf("churning HTM queue (%d threads, %d-op bursts)...\n", kThreads,
              kBurst);
  uint64_t htm_live = 0;
  {
    dc::queue::HtmQueue q;
    churn(q, kThreads, kBurst);
    htm_live = dc::mem::pool_stats().live_blocks - base.live_blocks;
    std::printf("  quiescent live nodes (queue drained): %llu\n",
                (unsigned long long)htm_live);
  }

  std::printf("churning Michael-Scott queue (thread-local pools)...\n");
  {
    dc::queue::MsQueue q;
    churn(q, kThreads, kBurst);
    std::printf("  quiescent pooled nodes (queue drained): %llu\n",
                (unsigned long long)q.pooled_nodes());
    std::printf(
        "  -> the pools retain ~the historical maximum queue length;\n"
        "     that memory can never be used for anything else (§1.1).\n");
  }

  std::printf(
      "\nHTM queue held %llu nodes at quiescence: dequeue frees entries\n"
      "immediately — safe because a concurrent transaction that still\n"
      "holds a reference is guaranteed to abort (sandboxing).\n",
      (unsigned long long)htm_live);
  return 0;
}
