// Quickstart: the Dynamic Collect API in one page.
//
//   build/examples/quickstart
//
// Registers a few handles, updates them, takes a collect, deregisters —
// with the paper's flagship algorithm (ArrayDynAppendDereg, Figure 2),
// then does the same through the registry to show the uniform interface.
#include <cstdio>
#include <vector>

#include "collect/array_dyn_append_dereg.hpp"
#include "collect/registry.hpp"

int main() {
  using namespace dc::collect;

  // --- Direct use of one algorithm -------------------------------------
  ArrayDynAppendDereg collect_obj(/*min_size=*/16);

  // Register: binds a value to a fresh handle.
  Handle a = collect_obj.register_handle(100);
  Handle b = collect_obj.register_handle(200);
  Handle c = collect_obj.register_handle(300);

  // Update: rebinds a handle.
  collect_obj.update(b, 250);

  // Collect: returns the currently bound values (duplicates possible under
  // concurrency; none here).
  std::vector<Value> values;
  collect_obj.collect(values);
  std::printf("collect after updates:");
  for (Value v : values) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");  // expected (any order): 100 250 300

  // DeRegister: removes the binding; the handle must not be used again.
  collect_obj.deregister(a);
  collect_obj.collect(values);
  std::printf("collect after deregister(a):");
  for (Value v : values) std::printf(" %llu", (unsigned long long)v);
  std::printf("\n");  // expected: 250 300

  // Telescoping control (paper §3.4): fixed step or adaptive.
  collect_obj.set_step_size(32);  // copy up to 32 slots per transaction
  collect_obj.set_adaptive(true); // or let the abort rate drive the step

  collect_obj.deregister(b);
  collect_obj.deregister(c);

  // --- The same through the registry -----------------------------------
  std::printf("\nall algorithms, same interface:\n");
  for (const AlgoInfo& info : all_algorithms()) {
    auto obj = info.make(MakeParams{});
    Handle h = obj->register_handle(42);
    obj->update(h, 43);
    obj->collect(values);
    std::printf("  %-22s dynamic=%d htm=%d -> collected %zu value(s), "
                "first=%llu\n",
                info.name.c_str(), info.is_dynamic, info.uses_htm,
                values.size(),
                values.empty() ? 0ull : (unsigned long long)values[0]);
    obj->deregister(h);
  }
  return 0;
}
