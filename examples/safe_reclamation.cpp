// Dynamic Collect as a memory-reclamation announce/scan mechanism — the
// §1.2 connection made concrete.
//
//   build/examples/safe_reclamation
//
// Hazard-pointer/ROP-style reclamation *is* a Dynamic Collect client: a
// reader announces the pointer it is about to dereference by binding it to
// a registered handle (Register/Update), and a reclaimer may free a retired
// block only if a Collect does not return it. This example builds that
// protocol over ArrayDynAppendDereg: readers chase a shared "current
// snapshot" object while a writer keeps replacing and retiring it, and the
// retired objects are freed only when no announcement covers them.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "collect/array_dyn_append_dereg.hpp"
#include "htm/htm.hpp"

namespace {

using dc::collect::ArrayDynAppendDereg;
using dc::collect::Handle;
using dc::collect::Value;

struct Snapshot {
  uint64_t id;
  uint64_t payload;
  uint64_t checksum;  // id ^ payload: readers verify integrity
  std::atomic<bool> freed{false};
};

// The announce/scan protocol from §1.2, over any DynamicCollect.
class ReclaimDomain {
 public:
  explicit ReclaimDomain(ArrayDynAppendDereg& dc) : dc_(dc) {}

  // Reader side: announce intent to use p (bind its address), re-validate
  // the source, then it is safe to dereference until the next announce.
  Snapshot* announce(Handle h, const std::atomic<Snapshot*>& src) {
    Snapshot* p = src.load(std::memory_order_acquire);
    for (;;) {
      dc_.update(h, reinterpret_cast<Value>(p));
      Snapshot* again = src.load(std::memory_order_acquire);
      if (again == p) return p;
      p = again;
    }
  }

  void clear(Handle h) { dc_.update(h, 0); }

  // Reclaimer side: free retired blocks that no announcement covers.
  void retire(Snapshot* p) { retired_.push_back(p); }

  std::size_t flush() {
    std::vector<Value> announced;
    dc_.collect(announced);
    std::vector<Snapshot*> keep;
    std::size_t freed = 0;
    for (Snapshot* p : retired_) {
      const auto as_value = reinterpret_cast<Value>(p);
      if (std::find(announced.begin(), announced.end(), as_value) !=
          announced.end()) {
        keep.push_back(p);  // still announced: defer
      } else {
        p->freed.store(true, std::memory_order_release);
        delete p;
        ++freed;
      }
    }
    retired_.swap(keep);
    return freed;
  }

  std::size_t deferred() const { return retired_.size(); }

 private:
  ArrayDynAppendDereg& dc_;
  std::vector<Snapshot*> retired_;
};

}  // namespace

int main() {
  constexpr int kReaders = 3;
  constexpr uint64_t kGenerations = 20'000;

  ArrayDynAppendDereg announcements(16);
  ReclaimDomain domain(announcements);

  auto* first = new Snapshot{0, 1234, 0 ^ 1234, {}};
  std::atomic<Snapshot*> current{first};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // Register/DeRegister bracket the reader's lifetime — the dynamic
      // part of Dynamic Collect (threads and handles come and go).
      Handle h = announcements.register_handle(0);
      while (!stop.load(std::memory_order_relaxed)) {
        Snapshot* snap = domain.announce(h, current);
        // Protected window: snap cannot be freed while announced.
        if ((snap->id ^ snap->payload) != snap->checksum ||
            snap->freed.load(std::memory_order_acquire)) {
          torn_reads.fetch_add(1);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        domain.clear(h);
      }
      announcements.deregister(h);
    });
  }

  uint64_t freed_total = 0;
  for (uint64_t gen = 1; gen <= kGenerations; ++gen) {
    auto* fresh = new Snapshot{gen, gen * 31, gen ^ (gen * 31), {}};
    Snapshot* old = current.exchange(fresh, std::memory_order_acq_rel);
    domain.retire(old);
    if (gen % 64 == 0) freed_total += domain.flush();
    // Single-core host: hand the core to the readers regularly so the
    // protocol is actually exercised under concurrency.
    if (gen % 16 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  freed_total += domain.flush();
  freed_total += domain.flush();

  std::printf("generations retired : %llu\n",
              (unsigned long long)kGenerations);
  std::printf("freed via collect   : %llu\n", (unsigned long long)freed_total);
  std::printf("still deferred      : %zu\n", domain.deferred());
  std::printf("reader dereferences : %llu\n",
              (unsigned long long)reads.load());
  std::printf("torn/freed reads    : %llu  %s\n",
              (unsigned long long)torn_reads.load(),
              torn_reads.load() == 0 ? "(announce/scan protocol held)"
                                     : "(BUG!)");
  delete current.load();
  return torn_reads.load() == 0 ? 0 : 1;
}
