// SmallVector: a vector with inline storage for the first N elements.
//
// The HTM substrate's per-attempt scratch buffers (read set, write set,
// commit lock list) are bounded in the common case by the simulated 32-entry
// store buffer, so heap-backed std::vector pays indirection on every access
// for capacity it almost never needs. SmallVector keeps the first N elements
// in the object itself (for the thread-local scratch blocks that means: in
// one TLS-adjacent allocation, no pointer chase) and spills to the heap only
// past N. The spill buffer is kept on clear(), so steady-state reuse never
// allocates — the property the old reserve()d thread_local vectors relied on.
//
// Restricted to trivially copyable T: growth is a memcpy and clear() needs
// no destructor sweep, which keeps push_back a two-instruction fast path.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace dc::util {

template <class T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0);

 public:
  SmallVector() noexcept : data_(inline_), capacity_(N) {}
  ~SmallVector() {
    if (data_ != inline_) delete[] data_;
  }

  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }
  static constexpr std::size_t inline_capacity() noexcept { return N; }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }
  T& back() noexcept {
    assert(size_ > 0);
    return data_[size_ - 1];
  }
  const T& back() const noexcept {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  // Drops the elements but keeps any heap spill buffer for reuse.
  void clear() noexcept { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }

  // Inserts `v` before index `pos` (<= size()), shifting the tail up.
  void insert_at(std::size_t pos, const T& v) {
    assert(pos <= size_);
    if (size_ == capacity_) grow();
    std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(T));
    data_[pos] = v;
    ++size_;
  }

  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

 private:
  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* heap = new T[new_cap];
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    capacity_ = new_cap;
  }

  T* data_;
  std::size_t size_ = 0;
  std::size_t capacity_;
  T inline_[N];
};

}  // namespace dc::util
