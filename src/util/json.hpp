// Minimal JSON parser (header-only).
//
// Exists so the observability tests can *validate* what the exporters
// write — the --json benchmark reports and the Chrome trace files — by
// parsing them back rather than grepping for substrings, without taking a
// dependency the container may not have. Strict enough for that job:
// full JSON grammar, escape decoding (\uXXXX is decoded to UTF-8), a depth
// limit, and trailing-garbage rejection. Not optimized; do not put it on a
// hot path.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dc::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // nullopt on any syntax error (including trailing non-whitespace).
  static std::optional<Json> parse(std::string_view text) {
    Parser p{text, 0};
    std::optional<Json> v = p.parse_value(0);
    if (!v.has_value()) return std::nullopt;
    p.skip_ws();
    if (p.pos != text.size()) return std::nullopt;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool boolean() const noexcept { return bool_; }
  double number() const noexcept { return number_; }
  const std::string& str() const noexcept { return string_; }
  const std::vector<Json>& items() const noexcept { return items_; }
  const std::map<std::string, Json>& fields() const noexcept {
    return fields_;
  }

  // Object member lookup; nullptr if absent or not an object.
  const Json* find(const std::string& key) const noexcept {
    if (type_ != Type::kObject) return nullptr;
    const auto it = fields_.find(key);
    return it == fields_.end() ? nullptr : &it->second;
  }

  std::size_t size() const noexcept {
    return type_ == Type::kArray ? items_.size() : fields_.size();
  }

 private:
  struct Parser {
    std::string_view text;
    std::size_t pos;
    static constexpr int kMaxDepth = 64;

    void skip_ws() {
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }

    bool eat(char c) {
      if (pos < text.size() && text[pos] == c) {
        ++pos;
        return true;
      }
      return false;
    }

    bool eat_word(std::string_view w) {
      if (text.substr(pos, w.size()) == w) {
        pos += w.size();
        return true;
      }
      return false;
    }

    std::optional<Json> parse_value(int depth) {
      if (depth > kMaxDepth) return std::nullopt;
      skip_ws();
      if (pos >= text.size()) return std::nullopt;
      const char c = text[pos];
      if (c == '{') return parse_object(depth);
      if (c == '[') return parse_array(depth);
      if (c == '"') return parse_string_value();
      if (eat_word("true")) return Json(true);
      if (eat_word("false")) return Json(false);
      if (eat_word("null")) return Json();
      return parse_number();
    }

    std::optional<Json> parse_object(int depth) {
      ++pos;  // '{'
      Json v;
      v.type_ = Type::kObject;
      skip_ws();
      if (eat('}')) return v;
      for (;;) {
        skip_ws();
        std::optional<std::string> key = parse_string_raw();
        if (!key.has_value()) return std::nullopt;
        skip_ws();
        if (!eat(':')) return std::nullopt;
        std::optional<Json> member = parse_value(depth + 1);
        if (!member.has_value()) return std::nullopt;
        v.fields_.emplace(std::move(*key), std::move(*member));
        skip_ws();
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }

    std::optional<Json> parse_array(int depth) {
      ++pos;  // '['
      Json v;
      v.type_ = Type::kArray;
      skip_ws();
      if (eat(']')) return v;
      for (;;) {
        std::optional<Json> item = parse_value(depth + 1);
        if (!item.has_value()) return std::nullopt;
        v.items_.push_back(std::move(*item));
        skip_ws();
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }

    std::optional<Json> parse_string_value() {
      std::optional<std::string> s = parse_string_raw();
      if (!s.has_value()) return std::nullopt;
      Json v;
      v.type_ = Type::kString;
      v.string_ = std::move(*s);
      return v;
    }

    std::optional<std::string> parse_string_raw() {
      if (!eat('"')) return std::nullopt;
      std::string out;
      while (pos < text.size()) {
        char c = text[pos++];
        if (c == '"') return out;
        if (c != '\\') {
          out += c;
          continue;
        }
        if (pos >= text.size()) return std::nullopt;
        const char esc = text[pos++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out += esc;
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two separate 3-byte sequences; good enough for
            // validation).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      }
      return std::nullopt;  // unterminated
    }

    std::optional<Json> parse_number() {
      const std::size_t start = pos;
      if (eat('-')) {
      }
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
              text[pos] == '+' || text[pos] == '-')) {
        ++pos;
      }
      if (pos == start) return std::nullopt;
      const std::string tok(text.substr(start, pos - start));
      char* end = nullptr;
      const double d = std::strtod(tok.c_str(), &end);
      if (end == nullptr || *end != '\0') return std::nullopt;
      Json v;
      v.type_ = Type::kNumber;
      v.number_ = d;
      return v;
    }
  };

  Json() = default;
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

}  // namespace dc::util
