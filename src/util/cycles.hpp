// Cycle-granularity timing, used to express workload pacing in the same
// units as the paper ("update period [cycles]").
//
// On x86-64 we read the TSC directly; elsewhere we fall back to
// steady_clock scaled by a calibrated cycles-per-nanosecond factor so the
// "cycles" axis of the reproduced figures stays meaningful.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace dc::util {

// Current timestamp in CPU cycles (monotonic on any post-2008 x86).
inline uint64_t rdcycles() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  extern uint64_t rdcycles_fallback() noexcept;
  return rdcycles_fallback();
#endif
}

// Measured TSC frequency in cycles per nanosecond (calibrated once, at first
// use, against steady_clock over a few milliseconds).
double cycles_per_ns() noexcept;

inline uint64_t ns_to_cycles(uint64_t ns) noexcept {
  return static_cast<uint64_t>(static_cast<double>(ns) * cycles_per_ns());
}

inline double cycles_to_ns(uint64_t cycles) noexcept {
  return static_cast<double>(cycles) / cycles_per_ns();
}

// Spin (without yielding) until at least `period` cycles have elapsed since
// `start`. Returns the cycle count at exit. Used by the pacing loops of the
// Collect-Update and Collect-(De)Register benchmarks.
uint64_t spin_until(uint64_t start, uint64_t period) noexcept;

}  // namespace dc::util
