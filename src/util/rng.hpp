// Small, fast pseudo-random number generators for workload drivers and tests.
//
// The benchmark harness needs per-thread generators that are cheap (a few
// cycles per draw) and deterministic given a seed, so that runs are
// repeatable.  <random> engines are too heavyweight for inner benchmark
// loops; xoshiro256** is the standard choice for this niche.
#pragma once

#include <cstdint>

namespace dc::util {

// SplitMix64: used to expand a single seed into generator state.
// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  constexpr uint64_t next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr uint64_t next() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  // the slight modulo bias is irrelevant for workload mixing.
  constexpr uint64_t next_below(uint64_t bound) noexcept {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability `percent`/100.
  constexpr bool percent_chance(uint64_t percent) noexcept {
    return next_below(100) < percent;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace dc::util
