// Cache-line padding helpers.
//
// The substrate and benchmark drivers keep per-thread counters; without
// padding they would false-share and distort the very contention effects the
// reproduction is trying to measure.
#pragma once

#include <cstddef>
#include <new>

namespace dc::util {

inline constexpr std::size_t kCacheLine = 64;

// A T padded out to (a multiple of) a cache line.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }

 private:
  char pad_[kCacheLine - (sizeof(T) % kCacheLine == 0 ? kCacheLine
                                                      : sizeof(T) % kCacheLine)]{};
};

}  // namespace dc::util
