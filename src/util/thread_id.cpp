#include "util/thread_id.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dc::util {

namespace {

std::atomic<uint64_t> g_used[kMaxThreads / 64];
std::atomic<uint32_t> g_high_water{0};

uint32_t claim_id() noexcept {
  for (;;) {
    for (uint32_t word = 0; word < kMaxThreads / 64; ++word) {
      uint64_t bits = g_used[word].load(std::memory_order_relaxed);
      while (bits != ~0ULL) {
        const uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(~bits));
        if (g_used[word].compare_exchange_weak(bits, bits | (1ULL << bit),
                                               std::memory_order_acq_rel)) {
          const uint32_t id = word * 64 + bit;
          uint32_t hw = g_high_water.load(std::memory_order_relaxed);
          while (hw < id + 1 &&
                 !g_high_water.compare_exchange_weak(
                     hw, id + 1, std::memory_order_relaxed)) {
          }
          return id;
        }
      }
    }
    // All kMaxThreads ids in use simultaneously: a configuration error for
    // this research harness, not a runtime condition to recover from.
    std::fprintf(stderr, "dc::util::thread_id: more than %u live threads\n",
                 kMaxThreads);
    std::abort();
  }
}

struct ThreadSlot {
  uint32_t id = claim_id();
  ~ThreadSlot() {
    g_used[id / 64].fetch_and(~(1ULL << (id % 64)), std::memory_order_acq_rel);
  }
};

thread_local ThreadSlot* t_slot = nullptr;
thread_local ThreadSlot t_storage_helper;  // ensures destructor registration

ThreadSlot& slot() noexcept {
  if (t_slot == nullptr) t_slot = &t_storage_helper;
  return *t_slot;
}

}  // namespace

uint32_t thread_id() noexcept { return slot().id; }

void release_thread_id() noexcept {
  // Id release happens in ~ThreadSlot at thread exit; this hook exists so
  // tests can assert recycling without spawning OS threads. It frees the
  // current id and immediately claims a replacement so slot().id stays valid.
  ThreadSlot& s = slot();
  g_used[s.id / 64].fetch_and(~(1ULL << (s.id % 64)),
                              std::memory_order_acq_rel);
  s.id = claim_id();
}

uint32_t thread_id_high_water() noexcept {
  return g_high_water.load(std::memory_order_relaxed);
}

}  // namespace dc::util
