#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>

namespace dc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dc::util
