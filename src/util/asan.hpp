// AddressSanitizer interop helpers.
//
// Under -DDC_SANITIZE=address the pool allocator poisons freed blocks
// (ASAN_POISON_MEMORY_REGION) so stray *raw* reads of reclaimed memory —
// plain pointer dereferences that bypass the HTM substrate — are caught by
// ASan. Substrate-mediated accesses (Txn::load/store write-back,
// nontxn_load/nontxn_store) are the sanctioned channel the paper's
// sandboxing story covers: they stay exempt via DC_NO_SANITIZE_ADDRESS on
// the word-access primitives, because a transactional read of freed memory
// is *defined* behaviour here — the orec version bump dooms the reader,
// which is the whole point (footnote 1).
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define DC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DC_ASAN 1
#endif
#endif

#if defined(DC_ASAN)
#include <sanitizer/asan_interface.h>
#define DC_NO_SANITIZE_ADDRESS __attribute__((no_sanitize("address")))
#else
#define DC_NO_SANITIZE_ADDRESS
#endif

namespace dc::util {

inline void asan_poison([[maybe_unused]] const void* p,
                        [[maybe_unused]] std::size_t bytes) noexcept {
#if defined(DC_ASAN)
  ASAN_POISON_MEMORY_REGION(p, bytes);
#endif
}

inline void asan_unpoison([[maybe_unused]] const void* p,
                          [[maybe_unused]] std::size_t bytes) noexcept {
#if defined(DC_ASAN)
  ASAN_UNPOISON_MEMORY_REGION(p, bytes);
#endif
}

// True when `p` lies in a region poisoned by asan_poison (always false in
// non-ASan builds). Used by tests to assert the freed-block poisoning
// contract, and by Txn::load's abort path to tag a doomed read of freed
// memory as kIllegalAccess instead of a generic conflict.
inline bool asan_is_poisoned([[maybe_unused]] const void* p) noexcept {
#if defined(DC_ASAN)
  return __asan_address_is_poisoned(p) != 0;
#else
  return false;
#endif
}

}  // namespace dc::util
