// Tagged (counted) pointers for ABA-safe CAS, as used by the original
// Michael–Scott queue and the Pass-The-Buck handoff slots.
//
// std::atomic<TaggedPtr<T>> is 16 bytes; with -mcx16 GCC implements its CAS
// with cmpxchg16b (falling back to libatomic otherwise — slower but still
// correct).
#pragma once

#include <cstdint>

namespace dc::util {

template <class T>
struct TaggedPtr {
  T* ptr = nullptr;
  uint64_t tag = 0;

  friend bool operator==(const TaggedPtr&, const TaggedPtr&) = default;
};

}  // namespace dc::util
