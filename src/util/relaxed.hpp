// Single-writer counters a concurrent sampler may read.
//
// The per-thread stat blocks (htm::TxnStats) and latency-histogram cells
// (obs::LogHistogram) are written only by their owning thread, but the
// continuous-telemetry sampler (obs/timeline.hpp) reads them every few
// milliseconds while writers are hot. A plain uint64_t would make every
// such read a data race; a std::atomic fetch_add would put a `lock` prefix
// on every hot-path increment. RelaxedCounter is the middle ground the
// single-writer constraint makes sound: writes are expressed as
// store(load()+1, relaxed), which the compiler folds to a plain `add
// qword ptr` (no lock prefix, identical codegen to the pre-telemetry plain
// field), while concurrent relaxed loads from the sampler are race-free
// and — because only the owner ever writes — always observe a monotonic
// value between resets.
//
// Contract: at most one thread writes a given counter at a time (++/+=/=);
// any number of threads may read concurrently. Cross-thread *writes*
// (reset_stats zeroing another thread's block) remain quiescent-only,
// exactly as before — relaxed stores do not order against the owner's.
#pragma once

#include <atomic>
#include <cstdint>

namespace dc::util {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter() noexcept = default;
  constexpr RelaxedCounter(uint64_t v) noexcept : v_(v) {}  // NOLINT: implicit

  // Copies snapshot the source with a relaxed load (used by value-type
  // aggregation: htm::aggregate_stats / obs::aggregate_histogram return
  // by value).
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    store(o.load());
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) noexcept {
    store(v);
    return *this;
  }

  operator uint64_t() const noexcept { return load(); }
  uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void store(uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }

  RelaxedCounter& operator++() noexcept {
    store(load() + 1);
    return *this;
  }
  uint64_t operator++(int) noexcept {
    const uint64_t old = load();
    store(old + 1);
    return old;
  }
  RelaxedCounter& operator+=(uint64_t d) noexcept {
    store(load() + d);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace dc::util
