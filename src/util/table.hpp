// Aligned-row table printing (paper-style series) with optional CSV output.
//
// Every benchmark binary prints one table per reproduced figure: the first
// column is the swept parameter (threads, update period, time), and each
// further column is one algorithm series, matching the paper's plots.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(uint64_t v);
  static std::string fmt(int64_t v);

  // Aligned human-readable output.
  void print(std::FILE* out = stdout) const;
  // Machine-readable output.
  void print_csv(std::FILE* out = stdout) const;

  // Raw access for external reporters (e.g. the benchmark JSON writer).
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dc::util
