#include "util/cycles.hpp"

#include <chrono>

namespace dc::util {

namespace {

double calibrate() noexcept {
  using clock = std::chrono::steady_clock;
  // Warm the TSC/clock path, then measure over ~2ms; that is ample for the
  // ~1% accuracy the pacing loops need.
  (void)rdcycles();
  const auto t0 = clock::now();
  const uint64_t c0 = rdcycles();
  for (;;) {
    const auto t1 = clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns >= 2'000'000) {
      const uint64_t c1 = rdcycles();
      return static_cast<double>(c1 - c0) / static_cast<double>(ns);
    }
  }
}

}  // namespace

double cycles_per_ns() noexcept {
  static const double ratio = calibrate();
  return ratio;
}

uint64_t spin_until(uint64_t start, uint64_t period) noexcept {
  uint64_t now = rdcycles();
  while (now - start < period) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_pause();
#endif
    now = rdcycles();
  }
  return now;
}

#if !(defined(__x86_64__) || defined(_M_X64))
uint64_t rdcycles_fallback() noexcept {
  using clock = std::chrono::steady_clock;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      clock::now().time_since_epoch())
                      .count();
  return static_cast<uint64_t>(ns);
}
#endif

}  // namespace dc::util
