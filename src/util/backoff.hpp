// Bounded exponential backoff for transaction retry and CAS loops.
//
// The paper (§7) notes that back-off is one of the "common practical
// techniques" precluded by fully asynchronous theoretical models; the
// substrate uses it the way Rock software did.
#pragma once

#include <cstdint>
#include <thread>

#include "sched/checkpoint.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace dc::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  // `min_spins`/`max_spins` bound the pause-loop length. Each pause() draws
  // the next window with *decorrelated jitter* — uniform in
  // [min, min(max, 3 * previous)] — so the expected window still grows
  // ~1.5x per round toward the cap, but contending threads desynchronize
  // instead of marching in lock step, and a lucky short draw shrinks the
  // window again (the pre-jitter doubling policy pinned at max forever once
  // saturated, yielding with no jitter at all). On a machine with fewer
  // cores than runnable threads the yield matters far more than the pause
  // count, so a round whose window could reach the cap also yields to the
  // scheduler.
  explicit Backoff(uint32_t min_spins = 4, uint32_t max_spins = 1024) noexcept
      : min_(min_spins == 0 ? 1 : min_spins),
        max_(max_spins < min_ ? min_ : max_spins),
        current_(min_),
        // Per-instance stream: the object address decorrelates two threads
        // that constructed with identical arguments at the same time. |1
        // keeps the xorshift state nonzero (zero is its fixed point).
        rng_((0x9e3779b97f4a7c15ULL ^ reinterpret_cast<uintptr_t>(this)) | 1) {
  }

  void pause() noexcept {
    // Every spin loop in the substrate waits through here (TLE acquire,
    // write-lock acquisition, strong-atomicity CAS loops, barriers), so
    // this one checkpoint makes all of them preemption points for the
    // deterministic scheduler. Under a scheduler the pause itself is
    // pointless — no other thread is running — so skip the spin.
    sched::checkpoint(sched::Kind::kBackoff);
    if (sched::active()) return;
    const uint64_t cap3 = static_cast<uint64_t>(current_) * 3;
    const uint32_t cap =
        cap3 >= max_ ? max_ : static_cast<uint32_t>(cap3 < min_ ? min_ : cap3);
    current_ = min_ + static_cast<uint32_t>(next_rand() % (cap - min_ + 1));
    for (uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (cap >= max_) std::this_thread::yield();
  }

  // Re-arms the window to the minimum. The htm::atomic() retry loop calls
  // this after a commit so one contended episode does not tax the next.
  void reset() noexcept { current_ = min_; }

  // The spin count of the most recent window (tests; bounded by
  // [min_spins, max_spins]).
  uint32_t last_window() const noexcept { return current_; }

 private:
  // xorshift64: two adds and three shifts per draw — jitter must not cost
  // more than the spin it randomizes.
  uint64_t next_rand() noexcept {
    uint64_t x = rng_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_ = x;
    return x;
  }

  uint32_t min_;
  uint32_t max_;
  uint32_t current_;
  uint64_t rng_;
};

}  // namespace dc::util
