// Bounded exponential backoff for transaction retry and CAS loops.
//
// The paper (§7) notes that back-off is one of the "common practical
// techniques" precluded by fully asynchronous theoretical models; the
// substrate uses it the way Rock software did.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace dc::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  // `min_spins`/`max_spins` bound the pause-loop length; the loop doubles on
  // every call. On a machine with fewer cores than runnable threads the
  // yield threshold matters far more than the pause count, so after the
  // spin budget is exhausted we yield to the scheduler.
  explicit Backoff(uint32_t min_spins = 4, uint32_t max_spins = 1024) noexcept
      : current_(min_spins), max_(max_spins) {}

  void pause() noexcept {
    if (current_ >= max_) {
      std::this_thread::yield();
      return;
    }
    for (uint32_t i = 0; i < current_; ++i) cpu_relax();
    current_ *= 2;
  }

  void reset(uint32_t min_spins = 4) noexcept { current_ = min_spins; }

 private:
  uint32_t current_;
  uint32_t max_;
};

}  // namespace dc::util
