// Sense-reversing spin barrier for benchmark start/stop synchronization.
//
// std::barrier would do, but a spin barrier with a yield fallback gives much
// tighter start alignment on the oversubscribed single-core hosts this
// reproduction runs on, which matters for short measurement windows.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/backoff.hpp"

namespace dc::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) noexcept
      : parties_(parties), remaining_(parties), sense_(false) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    Backoff backoff(8, 256);
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      backoff.pause();
    }
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> remaining_;
  std::atomic<bool> sense_;
};

}  // namespace dc::util
