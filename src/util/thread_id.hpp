// Small dense thread identifiers.
//
// Several subsystems (HTM statistics, hazard pointers, the static baseline's
// per-thread slots) need a compact index per participating thread. IDs are
// assigned on first use and recycled when a thread detaches, so long test
// runs that create and join many threads do not exhaust the table.
#pragma once

#include <cstdint>

namespace dc::util {

inline constexpr uint32_t kMaxThreads = 256;

// Dense id of the calling thread in [0, kMaxThreads). Assigned on first call.
uint32_t thread_id() noexcept;

// Releases the calling thread's id for reuse. Called automatically at thread
// exit; exposed for tests.
void release_thread_id() noexcept;

// Highest id ever handed out plus one (upper bound for scanning per-thread
// tables).
uint32_t thread_id_high_water() noexcept;

}  // namespace dc::util
