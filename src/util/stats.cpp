#include "util/stats.hpp"

#include <algorithm>

namespace dc::util {

Histogram::Histogram(std::vector<double> bucket_upper_bounds)
    : bounds_(std::move(bucket_upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::add(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++total_;
}

double Histogram::fraction(std::size_t i) const noexcept {
  return total_ == 0
             ? 0.0
             : static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

}  // namespace dc::util
