// Running statistics and throughput aggregation for the benchmark harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dc::util {

// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Simple fixed-bucket histogram (used for latency distributions in tests and
// the step-size distribution of Figure 6).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_upper_bounds);

  void add(double x) noexcept;
  // Buckets 0..bounds-1 are (prev, bound]; the last bucket is the overflow.
  uint64_t bucket_count(std::size_t i) const noexcept { return counts_[i]; }
  double bucket_bound(std::size_t i) const noexcept { return bounds_[i]; }
  std::size_t buckets() const noexcept { return counts_.size(); }
  uint64_t total() const noexcept { return total_; }
  double fraction(std::size_t i) const noexcept;

 private:
  std::vector<double> bounds_;  // ascending; last bucket is unbounded above
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace dc::util
