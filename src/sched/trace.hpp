// Schedule traces: the decision log of one deterministic run.
//
// A trace is the complete record of scheduling decisions — one step per
// checkpoint, `(thread, kind, next)` — plus the header needed to
// reconstitute the run (seed, policy, thread count). Serialized as a
// small line-oriented text format (DESIGN.md §13) so failing schedules
// can be checked into the repo and diffed:
//
//   # dc-sched-trace v1
//   name tle_steal
//   seed 42
//   policy pct
//   threads 3
//   steps 137
//   trace
//   0 S 0
//   0 L 1
//   1 B 0
//   ...
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/checkpoint.hpp"

namespace dc::sched {

struct TraceStep {
  uint32_t thread;  // who hit the checkpoint
  Kind kind;        // what kind of checkpoint
  uint32_t next;    // who was scheduled next (== thread means "stayed")
};

inline bool operator==(const TraceStep& a, const TraceStep& b) {
  return a.thread == b.thread && a.kind == b.kind && a.next == b.next;
}

struct Trace {
  std::string name;
  uint64_t seed = 0;
  std::string policy;
  uint32_t threads = 0;
  bool truncated = false;  // step log hit max_trace_steps; header-only tail
  std::vector<TraceStep> steps;

  std::string serialize() const;
  static bool parse(const std::string& text, Trace* out);
  bool write_file(const std::string& path) const;
  static bool read_file(const std::string& path, Trace* out);
};

}  // namespace dc::sched
