// Exhaustive schedule enumeration for tiny tests (DESIGN.md §13).
//
// Depth-first search over the decision tree: at each checkpoint the
// options are "stay" plus every other ready thread; the search replays
// a decision prefix, extends it with default (stay) choices, and
// backtracks through siblings until the frontier is exhausted or the
// schedule budget runs out. Only feasible for bodies with a handful of
// checkpoints each — branching is exponential — which is exactly the
// shape of the exact race tests it exists for.
#pragma once

#include <functional>

#include "sched/sched.hpp"

namespace dc::sched {

struct ExploreOptions {
  uint64_t max_schedules = 10000;
  // Decisions beyond this depth follow the default arm (no branching);
  // bounds the tree for bodies with long deterministic tails.
  uint32_t depth_bound = 64;
  uint64_t max_steps = 1u << 16;
  std::string name = "explore";
};

struct ExploreResult {
  uint64_t schedules = 0;  // schedules actually executed
  bool complete = false;   // the full bounded tree was covered
  uint64_t failures = 0;   // schedules for which check() returned false
  Trace first_failure;     // trace of the first failing schedule
};

// Runs every schedule of the bounded tree. make_bodies is called once
// per schedule and must return bodies over fresh state; check (may be
// null) runs after each schedule and returns false to flag it.
ExploreResult explore(
    const ExploreOptions& opts,
    const std::function<std::vector<std::function<void()>>()>& make_bodies,
    const std::function<bool()>& check);

}  // namespace dc::sched
