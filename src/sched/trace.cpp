#include "sched/trace.hpp"

#include <cstdio>
#include <sstream>

namespace dc::sched {

const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kThreadStart: return "thread_start";
    case Kind::kThreadExit: return "thread_exit";
    case Kind::kTxnLoad: return "txn_load";
    case Kind::kTxnStore: return "txn_store";
    case Kind::kCommitEntry: return "commit_entry";
    case Kind::kLockAcquire: return "lock_acquire";
    case Kind::kLockRelease: return "lock_release";
    case Kind::kLockSteal: return "lock_steal";
    case Kind::kBackoff: return "backoff";
    case Kind::kFaultFire: return "fault_fire";
    case Kind::kCrashFire: return "crash_fire";
    case Kind::kLeaseStamp: return "lease_stamp";
    case Kind::kLeaseReap: return "lease_reap";
    case Kind::kYield: return "yield";
    case Kind::kAllocFault: return "alloc_fault";
    case Kind::kNumKinds: break;
  }
  return "?";
}

char kind_code(Kind k) noexcept {
  switch (k) {
    case Kind::kThreadStart: return 'S';
    case Kind::kThreadExit: return 'X';
    case Kind::kTxnLoad: return 'L';
    case Kind::kTxnStore: return 'W';
    case Kind::kCommitEntry: return 'C';
    case Kind::kLockAcquire: return 'A';
    case Kind::kLockRelease: return 'R';
    case Kind::kLockSteal: return 'T';
    case Kind::kBackoff: return 'B';
    case Kind::kFaultFire: return 'F';
    case Kind::kCrashFire: return 'K';
    case Kind::kLeaseStamp: return 'E';
    case Kind::kLeaseReap: return 'P';
    case Kind::kYield: return 'Y';
    case Kind::kAllocFault: return 'M';
    case Kind::kNumKinds: break;
  }
  return '?';
}

bool kind_from_code(char c, Kind* out) noexcept {
  for (uint8_t i = 0; i < static_cast<uint8_t>(Kind::kNumKinds); ++i) {
    const Kind k = static_cast<Kind>(i);
    if (kind_code(k) == c) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::string Trace::serialize() const {
  std::ostringstream os;
  os << "# dc-sched-trace v1\n";
  os << "name " << (name.empty() ? "run" : name) << "\n";
  os << "seed " << seed << "\n";
  os << "policy " << (policy.empty() ? "?" : policy) << "\n";
  os << "threads " << threads << "\n";
  if (truncated) os << "truncated 1\n";
  os << "steps " << steps.size() << "\n";
  os << "trace\n";
  for (const TraceStep& s : steps) {
    os << s.thread << ' ' << kind_code(s.kind) << ' ' << s.next << '\n';
  }
  os << "end\n";
  return os.str();
}

bool Trace::parse(const std::string& text, Trace* out) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line.rfind("# dc-sched-trace v1", 0) != 0) {
    return false;
  }
  Trace t;
  bool in_steps = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!in_steps) {
      std::istringstream ls(line);
      std::string key;
      ls >> key;
      if (key == "trace") {
        in_steps = true;
      } else if (key == "name") {
        ls >> t.name;
      } else if (key == "seed") {
        ls >> t.seed;
      } else if (key == "policy") {
        ls >> t.policy;
      } else if (key == "threads") {
        ls >> t.threads;
      } else if (key == "truncated") {
        int v = 0;
        ls >> v;
        t.truncated = (v != 0);
      } else if (key == "steps") {
        uint64_t n = 0;
        ls >> n;
        t.steps.reserve(n);
      } else {
        return false;  // unknown header key: refuse rather than misparse
      }
    } else {
      if (line == "end") {
        saw_end = true;
        break;
      }
      std::istringstream ls(line);
      uint32_t thread = 0, next = 0;
      char code = 0;
      if (!(ls >> thread >> code >> next)) return false;
      Kind k;
      if (!kind_from_code(code, &k)) return false;
      t.steps.push_back(TraceStep{thread, k, next});
    }
  }
  if (!saw_end) return false;
  *out = std::move(t);
  return true;
}

bool Trace::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = serialize();
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  return n == text.size() && rc == 0;
}

bool Trace::read_file(const std::string& path, Trace* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse(text, out);
}

}  // namespace dc::sched
