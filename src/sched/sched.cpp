#include "sched/sched.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <semaphore>
#include <stdexcept>
#include <thread>

namespace dc::sched {
namespace detail {

// dc_sched sits below dc_util in the link order (so util::Backoff can
// checkpoint), which means it cannot use util's RNGs; SplitMix64 is
// four lines and statistically plenty for scheduling decisions.
struct Rng {
  uint64_t s;
  uint64_t next() noexcept {
    uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t below(uint64_t n) noexcept { return n != 0 ? next() % n : 0; }
};

class Engine;

struct LogicalContext {
  Engine* engine = nullptr;
  uint32_t index = 0;
};

class Engine {
 public:
  Engine(const Options& opts, std::vector<std::function<void()>> bodies)
      : opts_(opts), bodies_(std::move(bodies)), n_(static_cast<uint32_t>(bodies_.size())),
        rng_{opts.seed ^ 0xdcdcdcdc5c4ed000ull} {
    slots_.reserve(n_);
    for (uint32_t i = 0; i < n_; ++i) {
      slots_.push_back(std::make_unique<Slot>());
      slots_[i]->ctx = LogicalContext{this, i};
    }
    trace_.name = opts_.name;
    trace_.seed = opts_.seed;
    trace_.policy = to_string(opts_.policy);
    trace_.threads = n_;
    if (opts_.policy == Policy::kPct) init_pct();
  }

  RunResult run_all();
  void on_checkpoint(uint32_t self, Kind k);
  uint64_t seed() const noexcept { return opts_.seed; }

 private:
  struct Slot {
    std::binary_semaphore go{0};
    std::thread os;
    LogicalContext ctx{};
    bool done = false;
    std::exception_ptr error;
  };

  void worker_main(uint32_t idx);
  uint32_t on_exit(uint32_t self);
  void build_ready();
  uint32_t pick(uint32_t self, Kind k, uint64_t seen);
  uint32_t pick_random(uint32_t self);
  uint32_t pick_pct(uint32_t self, Kind k);
  uint32_t pick_replay(uint32_t self, Kind k);
  uint32_t next_ready_after(uint32_t self);
  void init_pct();
  void demote(uint32_t t) { priority_[t] = --pct_floor_; }
  void mark_diverged() {
    if (!diverged_) {
      diverged_ = true;
      divergence_step_ = steps_;
    }
  }
  void record(uint32_t self, Kind k, uint32_t next) {
    if (trace_.steps.size() < opts_.max_trace_steps) {
      trace_.steps.push_back(TraceStep{self, k, next});
    } else {
      trace_.truncated = true;
    }
  }
  void handoff(uint32_t self, uint32_t next) {
    slots_[next]->go.release();
    slots_[self]->go.acquire();
  }
  [[noreturn]] void hard_abort(uint32_t self, Kind k);

  Options opts_;
  std::vector<std::function<void()>> bodies_;
  uint32_t n_;
  Rng rng_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::binary_semaphore main_go_{0};
  Trace trace_;
  uint64_t steps_ = 0;
  bool exhausted_ = false;
  bool diverged_ = false;
  uint64_t divergence_step_ = 0;
  uint64_t replay_idx_ = 0;
  uint64_t seen_[kMaxLogicalThreads][static_cast<size_t>(Kind::kNumKinds)] = {};
  uint32_t ready_[kMaxLogicalThreads];
  uint32_t ready_count_ = 0;
  int64_t priority_[kMaxLogicalThreads] = {};
  int64_t pct_floor_ = 0;
  std::vector<uint64_t> change_points_;
  size_t change_idx_ = 0;
};

thread_local LogicalContext* t_ctx = nullptr;

namespace {
std::atomic<Engine*> g_current{nullptr};

bool throw_safe(Kind k) noexcept {
  // Kinds reached only from contexts the htm wrappers unwind correctly
  // (Txn::load/store/commit propagate through `catch (...) { doom();
  // throw; }`) or from plain test-body code (kYield). Everything else
  // — backoff, the noexcept lock protocol — must never see a throw.
  return k == Kind::kTxnLoad || k == Kind::kTxnStore ||
         k == Kind::kCommitEntry || k == Kind::kYield;
}
}  // namespace

void Engine::init_pct() {
  // Distinct initial priorities: a random permutation of [1, n].
  uint32_t order[kMaxLogicalThreads];
  for (uint32_t i = 0; i < n_; ++i) order[i] = i;
  for (uint32_t i = n_; i > 1; --i) {
    std::swap(order[i - 1], order[rng_.below(i)]);
  }
  for (uint32_t i = 0; i < n_; ++i) priority_[order[i]] = static_cast<int64_t>(i) + 1;
  change_points_.reserve(opts_.pct_depth);
  for (uint32_t i = 0; i < opts_.pct_depth; ++i) {
    change_points_.push_back(1 + rng_.below(opts_.pct_horizon));
  }
  std::sort(change_points_.begin(), change_points_.end());
}

void Engine::build_ready() {
  ready_count_ = 0;
  for (uint32_t i = 0; i < n_; ++i) {
    if (!slots_[i]->done) ready_[ready_count_++] = i;
  }
}

uint32_t Engine::next_ready_after(uint32_t self) {
  for (uint32_t d = 1; d <= n_; ++d) {
    const uint32_t i = (self + d) % n_;
    if (!slots_[i]->done) return i;
  }
  return kNoThread;
}

uint32_t Engine::pick_random(uint32_t self) {
  const bool stayable = !slots_[self]->done;
  if (stayable && opts_.switch_denom > 1 &&
      rng_.below(opts_.switch_denom) != 0) {
    return self;
  }
  return ready_[rng_.below(ready_count_)];
}

uint32_t Engine::pick_pct(uint32_t self, Kind k) {
  if (!slots_[self]->done) {
    if (k == Kind::kBackoff || k == Kind::kYield) {
      // A spinner is waiting on someone else's progress; letting it keep
      // its priority would starve the thread it waits on forever.
      demote(self);
    } else if (change_idx_ < change_points_.size() &&
               steps_ >= change_points_[change_idx_]) {
      ++change_idx_;
      demote(self);
    }
  }
  uint32_t best = ready_[0];
  for (uint32_t i = 1; i < ready_count_; ++i) {
    if (priority_[ready_[i]] > priority_[best]) best = ready_[i];
  }
  return best;
}

uint32_t Engine::pick_replay(uint32_t self, Kind k) {
  const Trace* t = opts_.replay;
  if (!diverged_ && t != nullptr) {
    if (replay_idx_ < t->steps.size()) {
      const TraceStep& ts = t->steps[replay_idx_];
      if (ts.thread == self && ts.kind == k) {
        ++replay_idx_;
        const uint32_t nx = ts.next;
        if (nx == self && !slots_[self]->done) return self;
        if (nx < n_ && nx != self && !slots_[nx]->done) return nx;
        if (ready_count_ == 0) return self;  // recorded no-choice step
        mark_diverged();  // recorded next is no longer schedulable
      } else {
        mark_diverged();
      }
    } else if (!t->truncated) {
      // Ran past a complete recording: this run takes more steps than
      // the original did, so the interleaving already differs.
      mark_diverged();
    }
  }
  if (ready_count_ == 0) return self;
  return pick_random(self);
}

uint32_t Engine::pick(uint32_t self, Kind k, uint64_t seen) {
  build_ready();
  if (opts_.policy == Policy::kReplay) return pick_replay(self, k);
  if (ready_count_ == 0) return self;
  switch (opts_.policy) {
    case Policy::kRandomWalk:
      return pick_random(self);
    case Policy::kPct:
      return pick_pct(self, k);
    case Policy::kCallback: {
      const bool exiting = slots_[self]->done;
      // For exit decisions the ready list already excludes self.
      Decision d{self, k, steps_, seen, ready_, ready_count_};
      const int32_t r = opts_.controller ? opts_.controller(d) : kStay;
      if (r != kStay) {
        const uint32_t u = static_cast<uint32_t>(r);
        if (u < n_ && !slots_[u]->done) return u;
      }
      return exiting ? ready_[0] : self;
    }
    case Policy::kReplay:
      break;  // handled above
  }
  return self;
}

void Engine::on_checkpoint(uint32_t self, Kind k) {
  ++steps_;
  const uint64_t seen = ++seen_[self][static_cast<size_t>(k)];
  if (!exhausted_ && steps_ > opts_.max_steps) exhausted_ = true;
  uint32_t next;
  if (exhausted_) {
    if (throw_safe(k)) throw BudgetExceeded{};
    // Hard backstop: if round-robin draining cannot finish the run
    // (every thread wedged at a noexcept checkpoint), dump and abort
    // rather than hang CI.
    if (steps_ > opts_.max_steps * 16 + 100000) hard_abort(self, k);
    next = next_ready_after(self);
    if (next == kNoThread) next = self;
  } else {
    next = pick(self, k, seen);
  }
  record(self, k, next);
  if (next != self) handoff(self, next);
}

uint32_t Engine::on_exit(uint32_t self) {
  slots_[self]->done = true;
  ++steps_;
  const uint64_t seen = ++seen_[self][static_cast<size_t>(Kind::kThreadExit)];
  uint32_t next;
  if (exhausted_) {
    next = next_ready_after(self);
  } else {
    next = pick(self, Kind::kThreadExit, seen);
  }
  if (next == self || next == kNoThread || slots_[next]->done) {
    next = kNoThread;
  }
  record(self, Kind::kThreadExit, next == kNoThread ? self : next);
  return next;
}

void Engine::worker_main(uint32_t idx) {
  Slot& me = *slots_[idx];
  me.go.acquire();
  t_ctx = &me.ctx;
  try {
    on_checkpoint(idx, Kind::kThreadStart);
    bodies_[idx]();
  } catch (const BudgetExceeded&) {
    // Livelock containment: the body was unwound mid-flight; fine.
  } catch (...) {
    me.error = std::current_exception();
  }
  t_ctx = nullptr;
  const uint32_t next = on_exit(idx);
  if (next == kNoThread) {
    main_go_.release();
  } else {
    slots_[next]->go.release();
  }
}

void Engine::hard_abort(uint32_t self, Kind k) {
  std::fprintf(stderr,
               "[sched] FATAL: schedule wedged after budget exhaustion "
               "(thread %u at %s, %" PRIu64 " steps); trace tail:\n",
               self, to_string(k), steps_);
  const size_t tail = std::min<size_t>(trace_.steps.size(), 200);
  for (size_t i = trace_.steps.size() - tail; i < trace_.steps.size(); ++i) {
    const TraceStep& s = trace_.steps[i];
    std::fprintf(stderr, "  %u %c %u\n", s.thread, kind_code(s.kind), s.next);
  }
  std::abort();
}

RunResult Engine::run_all() {
  Engine* expected = nullptr;
  if (!g_current.compare_exchange_strong(expected, this)) {
    throw std::logic_error("sched::run: runs must not nest");
  }
  for (uint32_t i = 0; i < n_; ++i) {
    slots_[i]->os = std::thread([this, i] { worker_main(i); });
  }
  slots_[0]->go.release();
  main_go_.acquire();
  for (uint32_t i = 0; i < n_; ++i) slots_[i]->os.join();
  g_current.store(nullptr);
  for (uint32_t i = 0; i < n_; ++i) {
    if (slots_[i]->error) std::rethrow_exception(slots_[i]->error);
  }
  RunResult r;
  r.steps = steps_;
  r.budget_exhausted = exhausted_;
  r.replay_diverged = diverged_;
  r.divergence_step = divergence_step_;
  r.trace = std::move(trace_);
  return r;
}

void checkpoint_slow(Kind k) {
  LogicalContext* c = t_ctx;
  c->engine->on_checkpoint(c->index, k);
}

}  // namespace detail

const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kRandomWalk: return "random";
    case Policy::kPct: return "pct";
    case Policy::kReplay: return "replay";
    case Policy::kCallback: return "callback";
  }
  return "?";
}

uint64_t run_seed() noexcept {
  const detail::LogicalContext* c = detail::t_ctx;
  return c != nullptr ? c->engine->seed() : 0;
}

uint32_t self_index() noexcept {
  const detail::LogicalContext* c = detail::t_ctx;
  return c != nullptr ? c->index : kNoThread;
}

RunResult run(const Options& opts, std::vector<std::function<void()>> bodies) {
  if (bodies.empty() || bodies.size() > kMaxLogicalThreads) {
    throw std::invalid_argument("sched::run: need 1..64 bodies");
  }
  detail::Engine engine(opts, std::move(bodies));
  return engine.run_all();
}

}  // namespace dc::sched
