// sched::checkpoint — the preemption hook of the deterministic scheduler.
//
// The substrate calls checkpoint(kind) at every point where a real
// multicore interleaving could place a context switch that matters:
// transactional loads and stores, commit entry, the TLE lock protocol
// (acquire / release / steal), every Backoff::pause (which covers all
// spin loops in the substrate), injected fault/crash firing, and the
// lease stamp/reap edges. When no scheduler is active the hook is one
// thread-local load and a predicted-not-taken branch; when the library
// is configured out (-DDC_SCHED=OFF) it compiles to nothing, mirroring
// the DC_TRACE zero-overhead contract.
//
// This header is the only sched dependency the substrate needs, and it
// depends on nothing but <cstdint> — dc_sched sits *below* dc_util so
// that util::Backoff itself can checkpoint.
#pragma once

#include <cstdint>

namespace dc::sched {

// Checkpoint taxonomy (DESIGN.md §13). The kind is advisory for the
// policies (PCT demotes spinners at kBackoff) and descriptive in the
// trace; the scheduler may switch threads at any of them.
enum class Kind : uint8_t {
  kThreadStart = 0,  // logical thread first scheduled (harness-emitted)
  kThreadExit,       // logical thread body returned (harness-emitted)
  kTxnLoad,          // Txn::load entry
  kTxnStore,         // Txn::store entry
  kCommitEntry,      // Txn::commit entry
  kLockAcquire,      // tle_acquire entry
  kLockRelease,      // tle_release entry (before the owner-word CAS)
  kLockSteal,        // a recovery steal of the TLE lock just succeeded
  kBackoff,          // util::Backoff::pause (every spin loop)
  kFaultFire,        // an armed spurious abort is about to fire
  kCrashFire,        // an armed thread death is about to fire
  kLeaseStamp,       // CrashTolerantCollect::stamp_lease entry
  kLeaseReap,        // reap_orphans phase boundary
  kYield,            // explicit sched::yield() / Txn::yield_now
  kAllocFault,       // a pool allocation is about to fail (limit or injected)
  kNumKinds,
};

const char* to_string(Kind k) noexcept;
// One-letter codes used by the trace text format.
char kind_code(Kind k) noexcept;
bool kind_from_code(char c, Kind* out) noexcept;

namespace detail {
struct LogicalContext;  // defined in sched.cpp
extern thread_local LogicalContext* t_ctx;
void checkpoint_slow(Kind k);
}  // namespace detail

// True while the calling thread is a logical thread of an active run.
inline bool active() noexcept {
#if defined(DC_SCHED)
  return detail::t_ctx != nullptr;
#else
  return false;
#endif
}

inline void checkpoint(Kind k) {
#if defined(DC_SCHED)
  if (detail::t_ctx != nullptr) [[unlikely]] detail::checkpoint_slow(k);
#else
  (void)k;
#endif
}

// Explicit preemption point for test bodies.
inline void yield() { checkpoint(Kind::kYield); }

inline constexpr uint32_t kNoThread = ~0u;

// Seed of the active run (0 when the caller is not a logical thread).
// The fault/crash injection layers mix this into their per-thread RNG
// streams so injected chaos is part of the schedule and replays with it.
uint64_t run_seed() noexcept;

// Logical index of the calling thread within the active run, or
// kNoThread when not under a scheduler.
uint32_t self_index() noexcept;

}  // namespace dc::sched
