// Deterministic cooperative scheduler (DESIGN.md §13).
//
// Runs N logical threads such that exactly one executes at any instant;
// control moves between them only at sched::checkpoint sites, and every
// decision about who runs next is drawn from a seeded policy. Same seed
// in, byte-identical schedule trace and interleaving out — which turns
// any red concurrency test into a one-command deterministic repro.
//
// Logical threads are real OS threads (the substrate leans on
// thread_local state — dense thread ids, txn scratch, injection
// streams — which fibers sharing one OS thread would alias), gated by
// per-thread binary semaphores so only the chosen one is ever runnable.
// Determinism therefore does not depend on the host scheduler at all:
// the handoff is explicit.
//
// Policies:
//   * kRandomWalk — at each checkpoint, switch with probability
//     1/switch_denom to a uniformly chosen ready thread.
//   * kPct — PCT-style priority preemption: random initial priorities,
//     pct_depth change points at random step indices demote the running
//     thread; the highest-priority ready thread always runs. Backoff
//     and yield checkpoints also demote, so spin-waiters cannot starve
//     the thread they are waiting on.
//   * kReplay — follow a recorded Trace step-for-step; divergence (the
//     observed (thread, kind) no longer matches the recording) is
//     flagged and the run continues under the seeded random walk.
//   * kCallback — a user controller decides every switch; used by the
//     exact race tests ("preempt thread 0 at its second kCommitEntry").
//
// Livelock containment: after max_steps decisions the run is declared
// budget-exhausted. Threads at throw-safe checkpoints (txn load/store/
// commit entry — paths the htm wrappers unwind correctly) unwind via
// BudgetExceeded; threads at noexcept checkpoints (backoff, the lock
// protocol) are round-robined so lock holders can finish and release.
// A hard secondary bound dumps the trace to stderr and aborts, so a
// wedged schedule can never hang CI silently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/checkpoint.hpp"
#include "sched/trace.hpp"

namespace dc::sched {

enum class Policy : uint8_t { kRandomWalk, kPct, kReplay, kCallback };
const char* to_string(Policy p) noexcept;

// Thrown out of a logical thread's body when the schedule budget is
// exhausted (livelock containment). Deliberately not derived from
// std::exception so substrate catch blocks cannot swallow it; the
// scheduler's body wrapper catches it.
struct BudgetExceeded {};

// Context handed to a kCallback controller at every checkpoint.
struct Decision {
  uint32_t thread;       // who is at the checkpoint
  Kind kind;             // what kind
  uint64_t step;         // global decision index (1-based)
  uint64_t seen;         // 1-based count of this (thread, kind) pair
  const uint32_t* ready; // indices of schedulable threads, ascending
  uint32_t ready_count;  // (excludes `thread` itself for kThreadExit)
};

// Controller return value meaning "stay on the current thread".
inline constexpr int32_t kStay = -1;

struct Options {
  uint64_t seed = 1;
  Policy policy = Policy::kRandomWalk;
  std::string name = "run";

  // kRandomWalk: P(switch) = 1/switch_denom at each checkpoint.
  uint32_t switch_denom = 2;

  // kPct: number of priority change points and the step horizon they
  // are drawn from.
  uint32_t pct_depth = 3;
  uint64_t pct_horizon = 4096;

  // Budget: decisions before the run is declared livelocked.
  uint64_t max_steps = 1u << 20;
  // Trace log cap; past it the run continues untraced (truncated=1).
  uint64_t max_trace_steps = 1u << 22;

  // kReplay: the recording to follow. Not owned; must outlive run().
  const Trace* replay = nullptr;

  // kCallback: the controller. Returns a thread index or kStay;
  // out-of-range / not-ready results mean kStay.
  std::function<int32_t(const Decision&)> controller;
};

struct RunResult {
  uint64_t steps = 0;
  bool budget_exhausted = false;
  bool replay_diverged = false;
  uint64_t divergence_step = 0;  // first mismatching step (1-based)
  Trace trace;
};

inline constexpr uint32_t kMaxLogicalThreads = 64;

// Runs the bodies to completion under a deterministic schedule and
// returns the decision trace. Bodies run on fresh OS threads; any
// exception other than BudgetExceeded escaping a body is rethrown to
// the caller after all threads are joined. Runs must not nest.
RunResult run(const Options& opts, std::vector<std::function<void()>> bodies);

}  // namespace dc::sched
