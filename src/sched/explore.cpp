#include "sched/explore.hpp"

#include <vector>

namespace dc::sched {

ExploreResult explore(
    const ExploreOptions& opts,
    const std::function<std::vector<std::function<void()>>()>& make_bodies,
    const std::function<bool()>& check) {
  ExploreResult res;
  std::vector<uint32_t> prefix;   // chosen option index per decision depth
  std::vector<uint32_t> breadth;  // option count observed at that depth
  while (res.schedules < opts.max_schedules) {
    uint32_t depth = 0;
    Options o;
    o.policy = Policy::kCallback;
    o.name = opts.name;
    o.max_steps = opts.max_steps;
    o.seed = res.schedules + 1;  // only labels the trace; decisions are ours
    o.controller = [&](const Decision& d) -> int32_t {
      // Option list: kStay first (when the thread can continue), then
      // every other ready thread, ascending. Deterministic bodies give
      // the same option count at the same depth for the same prefix.
      const bool exiting = (d.kind == Kind::kThreadExit);
      int32_t options[kMaxLogicalThreads + 1];
      uint32_t count = 0;
      if (!exiting) options[count++] = kStay;
      for (uint32_t i = 0; i < d.ready_count; ++i) {
        if (d.ready[i] != d.thread) {
          options[count++] = static_cast<int32_t>(d.ready[i]);
        }
      }
      if (count == 0) return kStay;
      const uint32_t my_depth = depth++;
      if (my_depth >= opts.depth_bound) return options[0];
      if (my_depth == prefix.size()) {
        prefix.push_back(0);
        breadth.push_back(count);
      } else {
        breadth[my_depth] = count;
      }
      uint32_t choice = prefix[my_depth];
      if (choice >= count) choice = count - 1;
      return options[choice];
    };
    RunResult r = run(o, make_bodies());
    ++res.schedules;
    if (check && !check()) {
      ++res.failures;
      if (res.failures == 1) res.first_failure = std::move(r.trace);
    }
    // This run may have branched off earlier than the previous one and
    // ended sooner; drop stale deeper entries before backtracking.
    if (depth < prefix.size()) {
      const uint32_t reached = depth < opts.depth_bound ? depth : opts.depth_bound;
      prefix.resize(reached);
      breadth.resize(reached);
    }
    while (!prefix.empty() && prefix.back() + 1 >= breadth.back()) {
      prefix.pop_back();
      breadth.pop_back();
    }
    if (prefix.empty()) {
      res.complete = true;
      break;
    }
    ++prefix.back();
  }
  return res;
}

}  // namespace dc::sched
