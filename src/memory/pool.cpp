#include "memory/pool.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "htm/htm.hpp"
#include "htm/txn.hpp"
#include "obs/trace.hpp"
#include "util/asan.hpp"

namespace dc::mem {

namespace {

// Size classes: powers of two from 16 bytes to 16 MiB. Anything larger is a
// configuration error for these workloads.
constexpr std::size_t kMinClassLog2 = 4;
constexpr std::size_t kMaxClassLog2 = 24;
constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

// Blocks per slab for small classes (slabs are at least 64 KiB so the
// system allocator is touched rarely).
constexpr std::size_t kSlabBytes = 64 * 1024;

// Thread-local cache depth per class.
constexpr std::size_t kCacheDepth = 32;

std::size_t class_of(std::size_t bytes) noexcept {
  const std::size_t need = bytes < 16 ? 16 : bytes;
  const auto log2 = static_cast<std::size_t>(
      std::bit_width(need - 1) < static_cast<int>(kMinClassLog2)
          ? kMinClassLog2
          : std::bit_width(need - 1));
  return log2 - kMinClassLog2;
}

std::size_t class_bytes(std::size_t cls) noexcept {
  return std::size_t{1} << (cls + kMinClassLog2);
}

struct GlobalPool {
  std::mutex mu;
  std::vector<void*> free_lists[kNumClasses];
  std::atomic<uint64_t> os_bytes{0};
  std::atomic<uint64_t> live_bytes{0};
  std::atomic<uint64_t> live_blocks{0};
  std::atomic<uint64_t> allocations{0};
  std::atomic<uint64_t> deallocations{0};

  // Carves a fresh slab into blocks of class `cls` and pushes them onto the
  // global free list. Caller holds mu.
  void refill_locked(std::size_t cls) {
    const std::size_t bsz = class_bytes(cls);
    const std::size_t slab = bsz > kSlabBytes ? bsz : kSlabBytes;
    // Slabs are aligned to the block size (<= 4 KiB) or to 64 bytes for
    // bigger blocks; 16-byte alignment is all callers rely on.
    void* base = ::operator new(slab, std::align_val_t{64});
    os_bytes.fetch_add(slab, std::memory_order_relaxed);
    auto* bytes = static_cast<char*>(base);
    for (std::size_t off = 0; off + bsz <= slab; off += bsz) {
      free_lists[cls].push_back(bytes + off);
    }
  }
};

GlobalPool& global_pool() noexcept {
  // Leaked intentionally: blocks must stay mapped for the whole process
  // lifetime (sandboxing contract).
  static GlobalPool* pool = new GlobalPool;
  return *pool;
}

struct ThreadCache {
  std::vector<void*> lists[kNumClasses];

  ~ThreadCache() { flush(); }

  void flush() noexcept {
    GlobalPool& g = global_pool();
    std::lock_guard lock(g.mu);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      for (void* p : lists[c]) g.free_lists[c].push_back(p);
      lists[c].clear();
    }
  }
};

ThreadCache& thread_cache() noexcept {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

void* pool_allocate(std::size_t bytes) {
  assert(!dc::htm::in_transaction() &&
         "allocation inside a transaction (Rock could not either, §6)");
  const std::size_t cls = class_of(bytes);
  if (cls >= kNumClasses) {
    std::fprintf(stderr, "pool_allocate: %zu bytes exceeds max class\n",
                 bytes);
    std::abort();
  }
  GlobalPool& g = global_pool();
  ThreadCache& tc = thread_cache();
  if (tc.lists[cls].empty()) {
    std::lock_guard lock(g.mu);
    if (g.free_lists[cls].empty()) g.refill_locked(cls);
    // Move up to half a cache depth in one batch.
    const std::size_t take =
        g.free_lists[cls].size() < kCacheDepth / 2 ? g.free_lists[cls].size()
                                                   : kCacheDepth / 2;
    for (std::size_t i = 0; i < take; ++i) {
      tc.lists[cls].push_back(g.free_lists[cls].back());
      g.free_lists[cls].pop_back();
    }
  }
  void* p = tc.lists[cls].back();
  tc.lists[cls].pop_back();
  util::asan_unpoison(p, class_bytes(cls));  // recycled block: legal again
  g.live_bytes.fetch_add(class_bytes(cls), std::memory_order_relaxed);
  g.live_blocks.fetch_add(1, std::memory_order_relaxed);
  g.allocations.fetch_add(1, std::memory_order_relaxed);
  obs::trace_pool_event(/*is_alloc=*/true,
                        static_cast<uint32_t>(class_bytes(cls)));
  return p;
}

void pool_deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  assert(!dc::htm::in_transaction() &&
         "deallocation inside a transaction (Rock could not either, §6)");
  const std::size_t cls = class_of(bytes);
  // Sandboxing: doom all speculative readers of this block and poison it,
  // atomically per word (see htm::invalidate_range). In ASan builds the
  // freed block is additionally region-poisoned, so a *raw* read that
  // bypasses the substrate trips ASan; substrate-mediated reads of freed
  // memory stay sanctioned (defined to abort the reader) — see util/asan.hpp.
  dc::htm::invalidate_range(p, class_bytes(cls), /*poison=*/true);
  util::asan_poison(p, class_bytes(cls));
  GlobalPool& g = global_pool();
  ThreadCache& tc = thread_cache();
  tc.lists[cls].push_back(p);
  if (tc.lists[cls].size() > kCacheDepth) {
    std::lock_guard lock(g.mu);
    while (tc.lists[cls].size() > kCacheDepth / 2) {
      g.free_lists[cls].push_back(tc.lists[cls].back());
      tc.lists[cls].pop_back();
    }
  }
  g.live_bytes.fetch_sub(class_bytes(cls), std::memory_order_relaxed);
  g.live_blocks.fetch_sub(1, std::memory_order_relaxed);
  g.deallocations.fetch_add(1, std::memory_order_relaxed);
  obs::trace_pool_event(/*is_alloc=*/false,
                        static_cast<uint32_t>(class_bytes(cls)));
}

void* pool_allocate_in_txn(dc::htm::Txn& txn, std::size_t bytes) {
  // Pool metadata is not transactional state, so the fast path is the
  // normal allocation; the abort hook undoes it if the attempt fails. The
  // hook runs after the transaction context is torn down (Txn::~Txn), so
  // calling pool_deallocate from it is legal.
  assert(dc::htm::in_transaction() &&
         "use pool_allocate outside transactions");
  const std::size_t cls = class_of(bytes);
  if (cls >= kNumClasses) {
    std::fprintf(stderr, "pool_allocate_in_txn: %zu bytes exceeds max class\n",
                 bytes);
    std::abort();
  }
  GlobalPool& g = global_pool();
  ThreadCache& tc = thread_cache();
  if (tc.lists[cls].empty()) {
    std::lock_guard lock(g.mu);
    if (g.free_lists[cls].empty()) g.refill_locked(cls);
    const std::size_t take =
        g.free_lists[cls].size() < kCacheDepth / 2 ? g.free_lists[cls].size()
                                                   : kCacheDepth / 2;
    for (std::size_t i = 0; i < take; ++i) {
      tc.lists[cls].push_back(g.free_lists[cls].back());
      g.free_lists[cls].pop_back();
    }
  }
  void* p = tc.lists[cls].back();
  tc.lists[cls].pop_back();
  util::asan_unpoison(p, class_bytes(cls));  // recycled block: legal again
  g.live_bytes.fetch_add(class_bytes(cls), std::memory_order_relaxed);
  g.live_blocks.fetch_add(1, std::memory_order_relaxed);
  g.allocations.fetch_add(1, std::memory_order_relaxed);
  obs::trace_pool_event(/*is_alloc=*/true,
                        static_cast<uint32_t>(class_bytes(cls)));
  txn.on_abort(
      [](void* block, std::size_t sz) { pool_deallocate(block, sz); }, p,
      bytes);
  return p;
}

PoolStats pool_stats() noexcept {
  GlobalPool& g = global_pool();
  return PoolStats{
      g.os_bytes.load(std::memory_order_relaxed),
      g.live_bytes.load(std::memory_order_relaxed),
      g.live_blocks.load(std::memory_order_relaxed),
      g.allocations.load(std::memory_order_relaxed),
      g.deallocations.load(std::memory_order_relaxed),
  };
}

void pool_flush_thread_cache() noexcept { thread_cache().flush(); }

}  // namespace dc::mem
