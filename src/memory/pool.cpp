#include "memory/pool.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "htm/config.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "htm/retry.hpp"
#include "htm/txn.hpp"
#include "obs/trace.hpp"
#include "sched/checkpoint.hpp"
#include "util/asan.hpp"
#include "util/relaxed.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace dc::mem {

namespace {

// Size classes: powers of two from 16 bytes to 16 MiB. Anything larger is a
// configuration error for these workloads.
constexpr std::size_t kMinClassLog2 = 4;
constexpr std::size_t kMaxClassLog2 = 24;
constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

// Blocks per slab for small classes (slabs are at least 64 KiB so the
// system allocator is touched rarely).
constexpr std::size_t kSlabBytes = 64 * 1024;

// Thread-local cache depth per class.
constexpr std::size_t kCacheDepth = 32;

std::size_t class_of(std::size_t bytes) noexcept {
  const std::size_t need = bytes < 16 ? 16 : bytes;
  const auto log2 = static_cast<std::size_t>(
      std::bit_width(need - 1) < static_cast<int>(kMinClassLog2)
          ? kMinClassLog2
          : std::bit_width(need - 1));
  return log2 - kMinClassLog2;
}

std::size_t class_bytes(std::size_t cls) noexcept {
  return std::size_t{1} << (cls + kMinClassLog2);
}

// Per-thread allocation ledger, one slot per dense thread id (recycled ids
// share a slot across incarnations — the previous owner is gone, so the
// single-writer contract holds at any instant). Slots are RelaxedCounter
// cells so the telemetry sampler and the conservation check can read them
// while workers are hot, and are never freed (retention contract).
struct ThreadLedger {
  util::RelaxedCounter allocations;
  util::RelaxedCounter deallocations;
  util::RelaxedCounter alloc_failures;
  util::RelaxedCounter alloc_faults_injected;
  // Injection addressing: the attempt counter scripts index, advanced only
  // while injection is enabled (mirrors fault::begin_block).
  uint64_t alloc_index = 0;
  util::Xoshiro256 rng{1};
  bool seeded = false;
  uint32_t tid = 0;
};

// A dead thread's cache contents, moved out of its thread_local storage at
// destruction time so the blocks stay addressable after the OS thread is
// gone. The record is the *reaper's discovery surface* — nothing returns
// these blocks to circulation except pool_reap_stranded_caches().
struct StrandedCache {
  htm::crash::Token owner;
  std::vector<void*> lists[kNumClasses];
  uint64_t blocks = 0;
};

struct GlobalPool {
  std::mutex mu;
  std::vector<void*> free_lists[kNumClasses];
  std::atomic<uint64_t> os_bytes{0};
  std::atomic<uint64_t> live_bytes{0};
  std::atomic<uint64_t> live_blocks{0};
  std::atomic<uint64_t> allocations{0};
  std::atomic<uint64_t> deallocations{0};
  std::atomic<uint64_t> alloc_failures{0};
  std::atomic<uint64_t> alloc_faults_injected{0};
  std::atomic<uint64_t> cache_blocks_stranded{0};
  std::atomic<uint64_t> cache_blocks_reaped{0};
  std::atomic<uint64_t> mem_pressure_onsets{0};
  std::atomic<uint64_t> mem_pressure_exits{0};
  // Chaos-time cap (pool_set_limit_override); 0 = use Config::mem.
  std::atomic<uint64_t> limit_override{0};
  // Pressure flag; transitions only under mu so onset/exit pair up.
  std::atomic<bool> pressure{false};

  // Ledger registry, indexed by dense thread id. Guarded by ledger_mu for
  // growth; the slots themselves are single-writer.
  std::mutex ledger_mu;
  std::vector<ThreadLedger*> ledgers;

  std::vector<StrandedCache*> stranded;  // guarded by mu

  // Scripted allocation faults (quiescent-set, like fault::set_script).
  std::vector<ScriptedAllocFault> script;
  std::atomic<bool> script_active{false};

  uint64_t effective_limit() const noexcept {
    const uint64_t ov = limit_override.load(std::memory_order_relaxed);
    return ov != 0 ? ov : htm::config().mem.limit_bytes;
  }

  // Carves a fresh slab into blocks of class `cls` and pushes them onto the
  // global free list, unless the capacity bound forbids the growth. Caller
  // holds mu. Returns false on a limit denial (and opens a pressure
  // episode); a successful refill closes one.
  bool refill_locked(std::size_t cls) {
    const std::size_t bsz = class_bytes(cls);
    const std::size_t slab = bsz > kSlabBytes ? bsz : kSlabBytes;
    const uint64_t limit = effective_limit();
    if (limit != 0 &&
        os_bytes.load(std::memory_order_relaxed) + slab > limit) {
      if (!pressure.load(std::memory_order_relaxed)) {
        pressure.store(true, std::memory_order_relaxed);
        mem_pressure_onsets.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    // Slabs are aligned to the block size (<= 4 KiB) or to 64 bytes for
    // bigger blocks; 16-byte alignment is all callers rely on.
    void* base = ::operator new(slab, std::align_val_t{64});
    os_bytes.fetch_add(slab, std::memory_order_relaxed);
    auto* bytes = static_cast<char*>(base);
    for (std::size_t off = 0; off + bsz <= slab; off += bsz) {
      free_lists[cls].push_back(bytes + off);
    }
    if (pressure.load(std::memory_order_relaxed)) {
      pressure.store(false, std::memory_order_relaxed);
      mem_pressure_exits.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
};

GlobalPool& global_pool() noexcept {
  // Leaked intentionally: blocks must stay mapped for the whole process
  // lifetime (sandboxing contract).
  static GlobalPool* pool = [] {
    auto* g = new GlobalPool;
    // The kAllocFailed retry policy (htm/retry.hpp) waits for "reclamation
    // progress" before giving up; the htm layer cannot link the pool, so
    // it observes progress through this probe — any growth in blocks
    // returned to circulation (frees + stranded-cache reaps).
    htm::set_reclaim_probe([]() noexcept -> uint64_t {
      GlobalPool& gp = global_pool();
      return gp.deallocations.load(std::memory_order_relaxed) +
             gp.cache_blocks_reaped.load(std::memory_order_relaxed);
    });
    return g;
  }();
  return *pool;
}

ThreadLedger& ledger() noexcept {
  thread_local ThreadLedger* mine = nullptr;
  const uint32_t tid = util::thread_id();
  // A recycled dense id hands the slot to the new incarnation; the cached
  // pointer must be re-resolved if this OS thread's id ever changed (it
  // cannot — ids are per-OS-thread — so the null check suffices).
  if (mine == nullptr) {
    GlobalPool& g = global_pool();
    std::lock_guard lock(g.ledger_mu);
    if (g.ledgers.size() <= tid) g.ledgers.resize(tid + 1, nullptr);
    if (g.ledgers[tid] == nullptr) {
      g.ledgers[tid] = new ThreadLedger;  // retained forever
      g.ledgers[tid]->tid = tid;
    }
    mine = g.ledgers[tid];
  }
  return *mine;
}

struct ThreadCache {
  std::vector<void*> lists[kNumClasses];

  ~ThreadCache() {
    // A dead thread performs no cleanup: flushing here would be the
    // simulator cheating on behalf of a thread that, on real hardware,
    // just stopped. Strand the cache instead and let a survivor-run
    // reaper recover it (pool_reap_stranded_caches).
    if (htm::crash::self_dead()) {
      strand();
    } else {
      flush();
    }
  }

  void flush() noexcept {
    GlobalPool& g = global_pool();
    std::lock_guard lock(g.mu);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      for (void* p : lists[c]) g.free_lists[c].push_back(p);
      lists[c].clear();
    }
  }

  void strand() noexcept {
    GlobalPool& g = global_pool();
    auto* rec = new StrandedCache;  // freed by the reaper
    rec->owner = htm::crash::self_token();
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      rec->blocks += lists[c].size();
      rec->lists[c] = std::move(lists[c]);
    }
    if (rec->blocks == 0) {
      delete rec;
      return;
    }
    std::lock_guard lock(g.mu);
    g.stranded.push_back(rec);
    g.cache_blocks_stranded.fetch_add(rec->blocks,
                                      std::memory_order_relaxed);
  }
};

ThreadCache& thread_cache() noexcept {
  thread_local ThreadCache cache;
  return cache;
}

// Decides whether this allocation attempt is denied by the injector.
// Mirrors fault::plan: scripted entries match first, then the rate draw;
// the attempt counter advances only while some injection source is active.
bool alloc_fault_fires(GlobalPool& g, ThreadLedger& led) {
  const double rate = htm::config().mem.alloc_fault_rate;
  const bool scripted = g.script_active.load(std::memory_order_relaxed);
  if (rate <= 0.0 && !scripted) return false;
  const uint64_t idx = led.alloc_index++;
  if (scripted) {
    std::lock_guard lock(g.ledger_mu);
    for (const ScriptedAllocFault& e : g.script) {
      if ((e.tid == kAnyThread || e.tid == led.tid) && e.index == idx) {
        return true;
      }
    }
  }
  if (rate <= 0.0) return false;
  if (!led.seeded) {
    // Same seed-mixing discipline as fault.cpp: the stream is a pure
    // function of (seed, tid), plus the sched run seed so injected
    // failures are part of a recorded schedule and replay with it.
    const uint64_t seed = htm::config().mem.alloc_fault_seed ^
                          sched::run_seed() ^
                          (0x9e3779b97f4a7c15ULL * (led.tid + 1));
    led.rng = util::Xoshiro256(seed);
    led.seeded = true;
  }
  return led.rng.next_double() < rate;
}

// The shared allocation core. Returns nullptr on denial (injected fault or
// limit-gated refill), with all failure accounting done.
void* allocate_core(std::size_t cls, std::size_t req_bytes,
                    const char* who) {
  if (cls >= kNumClasses) {
    std::fprintf(stderr, "%s: %zu bytes exceeds max class\n", who,
                 req_bytes);
    std::abort();
  }
  GlobalPool& g = global_pool();
  ThreadLedger& led = ledger();
  if (alloc_fault_fires(g, led)) {
    // An injected allocator failure: a schedule decision point, like
    // kFaultFire — replayed schedules re-fire it at the same step.
    sched::checkpoint(sched::Kind::kAllocFault);
    led.alloc_failures++;
    led.alloc_faults_injected++;
    g.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    g.alloc_faults_injected.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  ThreadCache& tc = thread_cache();
  if (tc.lists[cls].empty()) {
    std::lock_guard lock(g.mu);
    if (g.free_lists[cls].empty() && !g.refill_locked(cls)) {
      // Bounded mode denied the growth; recycled blocks may still arrive,
      // so this is a transient failure, not a verdict.
      led.alloc_failures++;
      g.alloc_failures.fetch_add(1, std::memory_order_relaxed);
      sched::checkpoint(sched::Kind::kAllocFault);
      return nullptr;
    }
    // Move up to half a cache depth in one batch.
    const std::size_t take =
        g.free_lists[cls].size() < kCacheDepth / 2 ? g.free_lists[cls].size()
                                                   : kCacheDepth / 2;
    for (std::size_t i = 0; i < take; ++i) {
      tc.lists[cls].push_back(g.free_lists[cls].back());
      g.free_lists[cls].pop_back();
    }
  }
  void* p = tc.lists[cls].back();
  tc.lists[cls].pop_back();
  util::asan_unpoison(p, class_bytes(cls));  // recycled block: legal again
  g.live_bytes.fetch_add(class_bytes(cls), std::memory_order_relaxed);
  g.live_blocks.fetch_add(1, std::memory_order_relaxed);
  g.allocations.fetch_add(1, std::memory_order_relaxed);
  led.allocations++;
  obs::trace_pool_event(/*is_alloc=*/true,
                        static_cast<uint32_t>(class_bytes(cls)));
  return p;
}

}  // namespace

void* pool_try_allocate(std::size_t bytes) {
  assert(!dc::htm::in_transaction() &&
         "allocation inside a transaction (Rock could not either, §6)");
  return allocate_core(class_of(bytes), bytes, "pool_allocate");
}

void* pool_allocate(std::size_t bytes) {
  void* p = pool_try_allocate(bytes);
  if (p == nullptr) throw PoolExhausted{};
  return p;
}

void pool_deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  assert(!dc::htm::in_transaction() &&
         "deallocation inside a transaction (Rock could not either, §6)");
  const std::size_t cls = class_of(bytes);
  // Sandboxing: doom all speculative readers of this block and poison it,
  // atomically per word (see htm::invalidate_range). In ASan builds the
  // freed block is additionally region-poisoned, so a *raw* read that
  // bypasses the substrate trips ASan; substrate-mediated reads of freed
  // memory stay sanctioned (defined to abort the reader) — see util/asan.hpp.
  dc::htm::invalidate_range(p, class_bytes(cls), /*poison=*/true);
  util::asan_poison(p, class_bytes(cls));
  GlobalPool& g = global_pool();
  ThreadCache& tc = thread_cache();
  tc.lists[cls].push_back(p);
  if (tc.lists[cls].size() > kCacheDepth) {
    std::lock_guard lock(g.mu);
    while (tc.lists[cls].size() > kCacheDepth / 2) {
      g.free_lists[cls].push_back(tc.lists[cls].back());
      tc.lists[cls].pop_back();
    }
  }
  g.live_bytes.fetch_sub(class_bytes(cls), std::memory_order_relaxed);
  g.live_blocks.fetch_sub(1, std::memory_order_relaxed);
  g.deallocations.fetch_add(1, std::memory_order_relaxed);
  ledger().deallocations++;
  obs::trace_pool_event(/*is_alloc=*/false,
                        static_cast<uint32_t>(class_bytes(cls)));
}

void* pool_allocate_in_txn(dc::htm::Txn& txn, std::size_t bytes) {
  // Pool metadata is not transactional state, so the fast path is the
  // normal allocation; the abort hook undoes it if the attempt fails. The
  // hook runs after the transaction context is torn down (Txn::~Txn), so
  // calling pool_deallocate from it is legal.
  assert(dc::htm::in_transaction() &&
         "use pool_allocate outside transactions");
  void* p = allocate_core(class_of(bytes), bytes, "pool_allocate_in_txn");
  if (p == nullptr) {
    // Raise the failure as a first-class abort cause: the retry loop knows
    // an allocation failure is neither spurious (retry-now is futile until
    // something frees) nor a conflict (backoff alone cannot help) nor a
    // capacity overflow (the TLE lock cannot conjure memory) — see the
    // kAllocFailed policy in htm/retry.hpp.
    txn.abort(htm::AbortCode::kAllocFailed);
  }
  txn.on_abort(
      [](void* block, std::size_t sz) { pool_deallocate(block, sz); }, p,
      bytes);
  return p;
}

PoolStats pool_stats() noexcept {
  GlobalPool& g = global_pool();
  return PoolStats{
      g.os_bytes.load(std::memory_order_relaxed),
      g.live_bytes.load(std::memory_order_relaxed),
      g.live_blocks.load(std::memory_order_relaxed),
      g.allocations.load(std::memory_order_relaxed),
      g.deallocations.load(std::memory_order_relaxed),
      g.effective_limit(),
      g.alloc_failures.load(std::memory_order_relaxed),
      g.alloc_faults_injected.load(std::memory_order_relaxed),
      g.cache_blocks_stranded.load(std::memory_order_relaxed),
      g.cache_blocks_reaped.load(std::memory_order_relaxed),
      g.mem_pressure_onsets.load(std::memory_order_relaxed),
      g.mem_pressure_exits.load(std::memory_order_relaxed),
  };
}

std::vector<PoolThreadStats> pool_thread_stats() {
  GlobalPool& g = global_pool();
  std::lock_guard lock(g.ledger_mu);
  std::vector<PoolThreadStats> out;
  out.reserve(g.ledgers.size());
  for (const ThreadLedger* led : g.ledgers) {
    if (led == nullptr) continue;
    out.push_back(PoolThreadStats{led->tid, led->allocations.load(),
                                  led->deallocations.load(),
                                  led->alloc_failures.load(),
                                  led->alloc_faults_injected.load()});
  }
  return out;
}

void pool_flush_thread_cache() noexcept { thread_cache().flush(); }

uint64_t pool_effective_limit() noexcept {
  return global_pool().effective_limit();
}

void pool_set_limit_override(uint64_t bytes) noexcept {
  GlobalPool& g = global_pool();
  g.limit_override.store(bytes, std::memory_order_relaxed);
  // Re-evaluate pressure under the new cap, both directions: a squeeze
  // that removes slab headroom opens the episode at its onset (a recycled
  // workload may never attempt a refill while capped, yet the pool IS
  // under pressure — the admission watermark sheds on it), and a release
  // (or a raise) that restores headroom ends it immediately, so squeeze
  // MTTR is measured from the release, not from the next incidental
  // refill.
  std::lock_guard lock(g.mu);
  const uint64_t limit = g.effective_limit();
  const bool headroom =
      limit == 0 ||
      g.os_bytes.load(std::memory_order_relaxed) + kSlabBytes <= limit;
  const bool pressure = g.pressure.load(std::memory_order_relaxed);
  if (headroom && pressure) {
    g.pressure.store(false, std::memory_order_relaxed);
    g.mem_pressure_exits.fetch_add(1, std::memory_order_relaxed);
  } else if (!headroom && !pressure) {
    g.pressure.store(true, std::memory_order_relaxed);
    g.mem_pressure_onsets.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t pool_limit_override() noexcept {
  return global_pool().limit_override.load(std::memory_order_relaxed);
}

double pool_utilization() noexcept {
  GlobalPool& g = global_pool();
  const uint64_t limit = g.effective_limit();
  if (limit == 0) return 0.0;
  return static_cast<double>(g.os_bytes.load(std::memory_order_relaxed)) /
         static_cast<double>(limit);
}

bool pool_under_pressure() noexcept {
  return global_pool().pressure.load(std::memory_order_relaxed);
}

void pool_set_alloc_fault_script(std::vector<ScriptedAllocFault> script) {
  GlobalPool& g = global_pool();
  std::lock_guard lock(g.ledger_mu);
  g.script = std::move(script);
  g.script_active.store(!g.script.empty(), std::memory_order_relaxed);
}

void pool_clear_alloc_fault_script() { pool_set_alloc_fault_script({}); }

void pool_reset_alloc_fault_thread() noexcept {
  ThreadLedger& led = ledger();
  led.alloc_index = 0;
  led.seeded = false;
}

std::size_t pool_reap_stranded_caches() noexcept {
  GlobalPool& g = global_pool();
  std::lock_guard lock(g.mu);
  std::size_t reclaimed = 0;
  for (StrandedCache* rec : g.stranded) {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      for (void* p : rec->lists[c]) g.free_lists[c].push_back(p);
    }
    reclaimed += rec->blocks;
    delete rec;
  }
  g.stranded.clear();
  if (reclaimed != 0) {
    g.cache_blocks_reaped.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  return reclaimed;
}

uint64_t pool_stranded_blocks() noexcept {
  GlobalPool& g = global_pool();
  return g.cache_blocks_stranded.load(std::memory_order_relaxed) -
         g.cache_blocks_reaped.load(std::memory_order_relaxed);
}

}  // namespace dc::mem
