// Never-unmapping slab pool — the allocator beneath every transactional
// data structure in this reproduction.
//
// Why a custom allocator: the paper's algorithms free memory that concurrent
// transactions may still (speculatively) dereference, relying on Rock's
// sandboxing to turn such accesses into aborts rather than faults (footnote
// 1). To reproduce that contract in software:
//
//   1. memory handed out by the pool is NEVER returned to the operating
//      system, so a stale dereference cannot fault;
//   2. deallocate() advances the ownership records covering the block (and
//      poisons it) via htm::invalidate_range, so any transaction holding a
//      stale pointer aborts at its next access or at commit validation;
//   3. blocks are recycled freely afterwards — which is exactly the "frees
//      the dequeued entry's memory to the operating system" behaviour as
//      observed by the algorithms (space is proportional to live data, not
//      to historical maxima).
//
// Correct-use contract (documented invariant, asserted where cheap): a block
// may be deallocated only after a committed transaction has made it
// unreachable from transactionally-visible shared state, and never from
// inside a transaction (Rock could not run malloc/free transactionally
// either, paper §6).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace dc::htm {
class Txn;
}

namespace dc::mem {

struct PoolStats {
  // Bytes obtained from the system allocator for slabs (high-water mark of
  // the pool itself; never shrinks — that is the point).
  uint64_t os_bytes;
  // Bytes currently handed out to callers.
  uint64_t live_bytes;
  // Number of live blocks.
  uint64_t live_blocks;
  uint64_t allocations;
  uint64_t deallocations;
};

// Allocates `bytes` (rounded up to a size class). Never returns nullptr;
// aborts the process on out-of-memory (acceptable for a research harness).
// Must not be called inside a transaction.
void* pool_allocate(std::size_t bytes);

// Returns a block to the pool. `bytes` must be the size passed to
// pool_allocate. Bumps the block's ownership records and poisons it before
// recycling (see file comment). Must not be called inside a transaction.
void pool_deallocate(void* p, std::size_t bytes) noexcept;

PoolStats pool_stats() noexcept;

// Drains the calling thread's local caches back to the global pool
// (used by tests that assert recycling behaviour).
void pool_flush_thread_cache() noexcept;

// Typed helpers ------------------------------------------------------------

// Allocate + construct. Construction happens before the block is published
// to any shared structure, so plain (non-transactional) initialization is
// safe — UNLESS the block may be a recycled one that a doomed transaction
// (holding a stale pointer from before the previous free) is still reading
// through std::atomic_ref. The sandboxing contract makes such reads benign
// at the protocol level (validation aborts the reader), but a plain store
// racing with an atomic load is still a C++ data race. Structures whose
// freed nodes can be observed by in-flight transactions must initialize
// recycled blocks with init_store() below instead of constructor writes.
template <class T, class... Args>
T* create(Args&&... args) {
  void* p = pool_allocate(sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

// Initializing store into freshly allocated (possibly recycled) pool
// memory. Relaxed is enough: the only concurrent readers are doomed
// transactions about to fail validation, so no ordering is communicated —
// the atomicity alone keeps the overlap defined behaviour. Compiles to a
// plain store on mainstream hardware.
template <class T>
void init_store(T* addr, T v) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "init_store covers word-sized fields only");
  std::atomic_ref<T>(*addr).store(v, std::memory_order_relaxed);
}

// Destroy + free. See the correct-use contract above.
template <class T>
void destroy(T* p) noexcept {
  if (p == nullptr) return;
  p->~T();
  pool_deallocate(p, sizeof(T));
}

// TM-aware allocation (paper §6) ---------------------------------------
//
// Rock forbade the CAS-bearing malloc inside transactions, forcing the
// paper's algorithms to split allocation out of their atomic blocks ("this
// complication is ... not a fundamental limitation of HTM"). This substrate
// has no such restriction if the allocation is transaction-aware: the block
// comes from the pool immediately (pool metadata is not transactional
// state), and an abort hook returns it, so a retried body simply allocates
// afresh. On commit the object is owned as if allocated outside.
//
// The object is constructed with plain stores (it is private until some
// committed transaction publishes a pointer to it).
void* pool_allocate_in_txn(dc::htm::Txn& txn, std::size_t bytes);

template <class T, class... Args>
T* create_in_txn(dc::htm::Txn& txn, Args&&... args) {
  // On abort only the raw block is reclaimed (no destructor call), so the
  // type must not own resources.
  static_assert(std::is_trivially_destructible_v<T>,
                "create_in_txn requires a trivially destructible type");
  void* p = pool_allocate_in_txn(txn, sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

template <class T>
T* create_array(std::size_t n) {
  void* p = pool_allocate(sizeof(T) * n);
  T* a = static_cast<T*>(p);
  for (std::size_t i = 0; i < n; ++i) ::new (a + i) T();
  return a;
}

// create_array for arrays that are freed and recycled while doomed
// transactions may still be reading the previous incarnation of the block
// (the resizable Collect arrays): zero-initialization happens through
// word-granularity atomic stores instead of constructor writes, for the
// same reason as init_store above. The layout constraints keep those
// stores aligned with how transactional readers access the fields.
template <class T>
T* create_array_atomic_init(std::size_t n) {
  // All-zero bytes must be a valid default state for T (the stores below
  // replace value-initialization; zero-valued field initializers are fine).
  static_assert(std::is_trivially_copyable_v<T>,
                "atomic zero-init replaces the constructor");
  static_assert(sizeof(T) % sizeof(uint64_t) == 0 &&
                    alignof(T) >= alignof(uint64_t),
                "blocks must split into aligned words");
  void* p = pool_allocate(sizeof(T) * n);
  auto* words = static_cast<uint64_t*>(p);
  const std::size_t nwords = sizeof(T) * n / sizeof(uint64_t);
  for (std::size_t i = 0; i < nwords; ++i) init_store(&words[i], uint64_t{0});
  return static_cast<T*>(p);
}

template <class T>
void destroy_array(T* a, std::size_t n) noexcept {
  if (a == nullptr) return;
  for (std::size_t i = 0; i < n; ++i) a[i].~T();
  pool_deallocate(a, sizeof(T) * n);
}

}  // namespace dc::mem
