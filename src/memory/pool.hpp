// Never-unmapping slab pool — the allocator beneath every transactional
// data structure in this reproduction.
//
// Why a custom allocator: the paper's algorithms free memory that concurrent
// transactions may still (speculatively) dereference, relying on Rock's
// sandboxing to turn such accesses into aborts rather than faults (footnote
// 1). To reproduce that contract in software:
//
//   1. memory handed out by the pool is NEVER returned to the operating
//      system, so a stale dereference cannot fault;
//   2. deallocate() advances the ownership records covering the block (and
//      poisons it) via htm::invalidate_range, so any transaction holding a
//      stale pointer aborts at its next access or at commit validation;
//   3. blocks are recycled freely afterwards — which is exactly the "frees
//      the dequeued entry's memory to the operating system" behaviour as
//      observed by the algorithms (space is proportional to live data, not
//      to historical maxima).
//
// Correct-use contract (documented invariant, asserted where cheap): a block
// may be deallocated only after a committed transaction has made it
// unreachable from transactionally-visible shared state, and never from
// inside a transaction (Rock could not run malloc/free transactionally
// either, paper §6).
//
// Memory pressure (DESIGN.md §15): by default the pool is unbounded and an
// OS-level out-of-memory still aborts the process (there is nothing useful
// to do). With a capacity bound (Config::mem.limit_bytes, --mem-limit /
// DC_MEM) exhaustion becomes a *recoverable* condition instead: the pool
// refuses to map new slabs past the limit and the allocation FAILS —
// pool_try_allocate returns nullptr, pool_allocate throws PoolExhausted
// (a std::bad_alloc), and pool_allocate_in_txn aborts the enclosing
// transaction with AbortCode::kAllocFailed so the cause-aware retry policy
// can wait for reclamation (htm/retry.hpp). Recycled blocks keep the pool
// serviceable at the cap: only growth is denied, never reuse. The same
// failure paths are exercised without a limit by seeded allocation-fault
// injection (Config::mem.alloc_fault_rate, --alloc-fault-rate) and by
// scripted per-allocation schedules, mirroring the fault.* / crash.* tiers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace dc::htm {
class Txn;
}

namespace dc::mem {

struct PoolStats {
  // Bytes obtained from the system allocator for slabs (high-water mark of
  // the pool itself; never shrinks — that is the point).
  uint64_t os_bytes;
  // Bytes currently handed out to callers.
  uint64_t live_bytes;
  // Number of live blocks.
  uint64_t live_blocks;
  uint64_t allocations;
  uint64_t deallocations;
  // The capacity bound in force when the snapshot was taken (the chaos
  // override if one is active, else Config::mem.limit_bytes; 0 = unbounded).
  uint64_t limit_bytes;
  // Allocation attempts that failed — limit denials plus injected faults.
  // Zero whenever bounded mode and injection are both off (the checkable
  // zero-overhead invariant, like faults_injected / crashes_injected).
  uint64_t alloc_failures;
  // The subset of alloc_failures raised by the injector.
  uint64_t alloc_faults_injected;
  // Blocks stranded in dead threads' local caches (cumulative; see
  // pool_reap_stranded_caches) and blocks the reaper recovered from them.
  // reaped <= stranded always; stranded - reaped is the current leak.
  uint64_t cache_blocks_stranded;
  uint64_t cache_blocks_reaped;
  // Memory-pressure episode edges: a limit denial while not under pressure
  // opens an episode; the next successful slab refill (or a limit raise
  // that restores headroom) closes it. The timeline sampler turns these
  // into mem_pressure_onset / mem_pressure_exit annotations.
  uint64_t mem_pressure_onsets;
  uint64_t mem_pressure_exits;
};

// Per-thread allocation ledger (dense thread id). Kept forever like the
// TxnStats registry (retention contract, src/htm/stats.hpp): a dead
// worker's counts must survive into the post-run conservation check. The
// conservation law the validator re-proves offline: the per-thread
// allocations/deallocations sum to the pool's global counters, and
// allocations - deallocations == live_blocks — two independently
// maintained ledgers that a double free or a stranded-cache miscount
// would split.
struct PoolThreadStats {
  uint32_t tid;
  uint64_t allocations;
  uint64_t deallocations;
  uint64_t alloc_failures;
  uint64_t alloc_faults_injected;
};

// The caller-visible bounded-mode failure (only ever thrown when a capacity
// bound or injection is configured — the unbounded default cannot raise it).
struct PoolExhausted : std::bad_alloc {
  const char* what() const noexcept override {
    return "dc::mem: pool capacity limit reached";
  }
};

// Allocates `bytes` (rounded up to a size class), or nullptr when bounded
// mode denies growth / an injected allocation fault fires. Must not be
// called inside a transaction. Asking for more than the largest size class
// is a configuration error and still aborts.
void* pool_try_allocate(std::size_t bytes);

// Allocates `bytes` (rounded up to a size class). Never returns nullptr:
// throws PoolExhausted where pool_try_allocate would return nullptr (which
// requires bounded mode or injection to be on — the unbounded clean path
// cannot throw). Must not be called inside a transaction.
void* pool_allocate(std::size_t bytes);

// Returns a block to the pool. `bytes` must be the size passed to
// pool_allocate. Bumps the block's ownership records and poisons it before
// recycling (see file comment). Must not be called inside a transaction.
void pool_deallocate(void* p, std::size_t bytes) noexcept;

PoolStats pool_stats() noexcept;

// Snapshot of every thread ledger (see PoolThreadStats).
std::vector<PoolThreadStats> pool_thread_stats();

// Drains the calling thread's local caches back to the global pool
// (used by tests that assert recycling behaviour).
void pool_flush_thread_cache() noexcept;

// ----- Capacity bound ------------------------------------------------------

// The bound currently in force: the runtime override if set, else
// Config::mem.limit_bytes. 0 = unbounded.
uint64_t pool_effective_limit() noexcept;

// Runtime limit override for externally-orchestrated memory squeezes.
// Config::mem.limit_bytes is quiescent-only (like every Config knob); a
// chaos orchestrator that wants to shrink the effective cap *while workers
// run* sets the override instead (one atomic, read per refill). 0 clears
// the override and falls back to the configured limit. Setting it
// re-evaluates the pressure flag in both directions: a squeeze below the
// mapped footprint opens an episode at its onset (even if the capped
// workload never attempts a refill), and clearing (or raising) closes it
// so a squeeze release shows up as a mem_pressure_exit without waiting
// for the next refill.
void pool_set_limit_override(uint64_t bytes) noexcept;
uint64_t pool_limit_override() noexcept;  // 0 when no override is active

// os_bytes / effective limit, or 0.0 when unbounded. May exceed 1.0 after
// a squeeze shrank the limit below what is already mapped — exactly the
// condition admission control sheds on (service layer).
double pool_utilization() noexcept;

// True between a mem_pressure_onset and its matching exit.
bool pool_under_pressure() noexcept;

// ----- Allocation-fault injection ------------------------------------------

inline constexpr uint32_t kAnyThread = ~0u;

// One scripted denial: the `index`-th allocation attempt on thread `tid`
// (counted from the last pool_reset_alloc_fault_thread() there; attempts
// are numbered only while injection is enabled) fails. Mirrors
// fault::ScriptedAbort / crash::ScriptedCrash addressing.
struct ScriptedAllocFault {
  uint32_t tid = kAnyThread;
  uint64_t index = 0;
};

// Installs (replaces) the scripted schedule. Quiescent-only, like
// fault::set_script. An empty vector clears the script.
void pool_set_alloc_fault_script(std::vector<ScriptedAllocFault> script);
void pool_clear_alloc_fault_script();

// Rezeroes the calling thread's allocation-attempt counter and re-seeds its
// draw stream from the current Config::mem.alloc_fault_seed. Tests call
// this so scripts can address attempts relative to the test's start.
void pool_reset_alloc_fault_thread() noexcept;

// ----- Stranded-cache recovery ---------------------------------------------
//
// A thread that dies (htm/crash.hpp) strands its local cache: a real dead
// thread performs no cleanup, so those freed-but-cached blocks are
// unreachable by every survivor — capacity leaks at up to kCacheDepth
// blocks per size class per death, forever, under --crash-rate. The pool
// models this honestly (a dead victim's cache is never flushed back) and
// routes recovery through the same survivor-run reaper that recovers
// orphaned Collect handles: CrashTolerantCollect::reap_orphans calls
// pool_reap_stranded_caches() after its lease pass.

// Returns stranded blocks to the global free lists. Survivor-callable at
// any time; returns the number of blocks recovered.
std::size_t pool_reap_stranded_caches() noexcept;

// Blocks currently stranded (cache_blocks_stranded - cache_blocks_reaped).
uint64_t pool_stranded_blocks() noexcept;

// Typed helpers ------------------------------------------------------------

// Allocate + construct. Construction happens before the block is published
// to any shared structure, so plain (non-transactional) initialization is
// safe — UNLESS the block may be a recycled one that a doomed transaction
// (holding a stale pointer from before the previous free) is still reading
// through std::atomic_ref. The sandboxing contract makes such reads benign
// at the protocol level (validation aborts the reader), but a plain store
// racing with an atomic load is still a C++ data race. Structures whose
// freed nodes can be observed by in-flight transactions must initialize
// recycled blocks with init_store() below instead of constructor writes.
template <class T, class... Args>
T* create(Args&&... args) {
  void* p = pool_allocate(sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

// Initializing store into freshly allocated (possibly recycled) pool
// memory. Relaxed is enough: the only concurrent readers are doomed
// transactions about to fail validation, so no ordering is communicated —
// the atomicity alone keeps the overlap defined behaviour. Compiles to a
// plain store on mainstream hardware.
template <class T>
void init_store(T* addr, T v) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "init_store covers word-sized fields only");
  std::atomic_ref<T>(*addr).store(v, std::memory_order_relaxed);
}

// Destroy + free. See the correct-use contract above.
template <class T>
void destroy(T* p) noexcept {
  if (p == nullptr) return;
  p->~T();
  pool_deallocate(p, sizeof(T));
}

// TM-aware allocation (paper §6) ---------------------------------------
//
// Rock forbade the CAS-bearing malloc inside transactions, forcing the
// paper's algorithms to split allocation out of their atomic blocks ("this
// complication is ... not a fundamental limitation of HTM"). This substrate
// has no such restriction if the allocation is transaction-aware: the block
// comes from the pool immediately (pool metadata is not transactional
// state), and an abort hook returns it, so a retried body simply allocates
// afresh. On commit the object is owned as if allocated outside.
//
// The object is constructed with plain stores (it is private until some
// committed transaction publishes a pointer to it).
//
// Failure raises AbortCode::kAllocFailed through txn.abort(): the retry
// policy backs off waiting for reclamation progress and escalates to
// htm::TxnOutOfMemory — never to the TLE lock, which cannot conjure memory.
void* pool_allocate_in_txn(dc::htm::Txn& txn, std::size_t bytes);

template <class T, class... Args>
T* create_in_txn(dc::htm::Txn& txn, Args&&... args) {
  // On abort only the raw block is reclaimed (no destructor call), so the
  // type must not own resources.
  static_assert(std::is_trivially_destructible_v<T>,
                "create_in_txn requires a trivially destructible type");
  void* p = pool_allocate_in_txn(txn, sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

template <class T>
T* create_array(std::size_t n) {
  void* p = pool_allocate(sizeof(T) * n);
  T* a = static_cast<T*>(p);
  for (std::size_t i = 0; i < n; ++i) ::new (a + i) T();
  return a;
}

// create_array for arrays that are freed and recycled while doomed
// transactions may still be reading the previous incarnation of the block
// (the resizable Collect arrays): zero-initialization happens through
// word-granularity atomic stores instead of constructor writes, for the
// same reason as init_store above. The layout constraints keep those
// stores aligned with how transactional readers access the fields.
template <class T>
T* create_array_atomic_init(std::size_t n) {
  // All-zero bytes must be a valid default state for T (the stores below
  // replace value-initialization; zero-valued field initializers are fine).
  static_assert(std::is_trivially_copyable_v<T>,
                "atomic zero-init replaces the constructor");
  static_assert(sizeof(T) % sizeof(uint64_t) == 0 &&
                    alignof(T) >= alignof(uint64_t),
                "blocks must split into aligned words");
  void* p = pool_allocate(sizeof(T) * n);
  auto* words = static_cast<uint64_t*>(p);
  const std::size_t nwords = sizeof(T) * n / sizeof(uint64_t);
  for (std::size_t i = 0; i < nwords; ++i) init_store(&words[i], uint64_t{0});
  return static_cast<T*>(p);
}

template <class T>
void destroy_array(T* a, std::size_t n) noexcept {
  if (a == nullptr) return;
  for (std::size_t i = 0; i < n; ++i) a[i].~T();
  pool_deallocate(a, sizeof(T) * n);
}

}  // namespace dc::mem
