// Never-unmapping slab pool — the allocator beneath every transactional
// data structure in this reproduction.
//
// Why a custom allocator: the paper's algorithms free memory that concurrent
// transactions may still (speculatively) dereference, relying on Rock's
// sandboxing to turn such accesses into aborts rather than faults (footnote
// 1). To reproduce that contract in software:
//
//   1. memory handed out by the pool is NEVER returned to the operating
//      system, so a stale dereference cannot fault;
//   2. deallocate() advances the ownership records covering the block (and
//      poisons it) via htm::invalidate_range, so any transaction holding a
//      stale pointer aborts at its next access or at commit validation;
//   3. blocks are recycled freely afterwards — which is exactly the "frees
//      the dequeued entry's memory to the operating system" behaviour as
//      observed by the algorithms (space is proportional to live data, not
//      to historical maxima).
//
// Correct-use contract (documented invariant, asserted where cheap): a block
// may be deallocated only after a committed transaction has made it
// unreachable from transactionally-visible shared state, and never from
// inside a transaction (Rock could not run malloc/free transactionally
// either, paper §6).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace dc::htm {
class Txn;
}

namespace dc::mem {

struct PoolStats {
  // Bytes obtained from the system allocator for slabs (high-water mark of
  // the pool itself; never shrinks — that is the point).
  uint64_t os_bytes;
  // Bytes currently handed out to callers.
  uint64_t live_bytes;
  // Number of live blocks.
  uint64_t live_blocks;
  uint64_t allocations;
  uint64_t deallocations;
};

// Allocates `bytes` (rounded up to a size class). Never returns nullptr;
// aborts the process on out-of-memory (acceptable for a research harness).
// Must not be called inside a transaction.
void* pool_allocate(std::size_t bytes);

// Returns a block to the pool. `bytes` must be the size passed to
// pool_allocate. Bumps the block's ownership records and poisons it before
// recycling (see file comment). Must not be called inside a transaction.
void pool_deallocate(void* p, std::size_t bytes) noexcept;

PoolStats pool_stats() noexcept;

// Drains the calling thread's local caches back to the global pool
// (used by tests that assert recycling behaviour).
void pool_flush_thread_cache() noexcept;

// Typed helpers ------------------------------------------------------------

// Allocate + construct. Construction happens before the block is published
// to any shared structure, so plain (non-transactional) initialization is
// safe.
template <class T, class... Args>
T* create(Args&&... args) {
  void* p = pool_allocate(sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

// Destroy + free. See the correct-use contract above.
template <class T>
void destroy(T* p) noexcept {
  if (p == nullptr) return;
  p->~T();
  pool_deallocate(p, sizeof(T));
}

// TM-aware allocation (paper §6) ---------------------------------------
//
// Rock forbade the CAS-bearing malloc inside transactions, forcing the
// paper's algorithms to split allocation out of their atomic blocks ("this
// complication is ... not a fundamental limitation of HTM"). This substrate
// has no such restriction if the allocation is transaction-aware: the block
// comes from the pool immediately (pool metadata is not transactional
// state), and an abort hook returns it, so a retried body simply allocates
// afresh. On commit the object is owned as if allocated outside.
//
// The object is constructed with plain stores (it is private until some
// committed transaction publishes a pointer to it).
void* pool_allocate_in_txn(dc::htm::Txn& txn, std::size_t bytes);

template <class T, class... Args>
T* create_in_txn(dc::htm::Txn& txn, Args&&... args) {
  // On abort only the raw block is reclaimed (no destructor call), so the
  // type must not own resources.
  static_assert(std::is_trivially_destructible_v<T>,
                "create_in_txn requires a trivially destructible type");
  void* p = pool_allocate_in_txn(txn, sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

template <class T>
T* create_array(std::size_t n) {
  void* p = pool_allocate(sizeof(T) * n);
  T* a = static_cast<T*>(p);
  for (std::size_t i = 0; i < n; ++i) ::new (a + i) T();
  return a;
}

template <class T>
void destroy_array(T* a, std::size_t n) noexcept {
  if (a == nullptr) return;
  for (std::size_t i = 0; i < n; ++i) a[i].~T();
  pool_deallocate(a, sizeof(T) * n);
}

}  // namespace dc::mem
