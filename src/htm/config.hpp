// Runtime configuration of the simulated HTM.
//
// Defaults model Sun's Rock prototype as described in the paper and in
// [Dice et al., ASPLOS'09]: a 32-entry store buffer bounds transactional
// stores, transactions are sandboxed, and there is no guarantee that any
// transaction eventually commits (hence the optional TLE fallback, §6).
#pragma once

#include <atomic>
#include <cstdint>

namespace dc::htm {

// Global-version-clock policy (TL2 "GV" variants).
//
//   kGv1  The textbook shared counter: every visible writing commit (and
//         every strong-atomicity store) performs one fetch_add on the global
//         clock. Simple, totally ordered, and the reference against which
//         the sloppy clock is validated — but that fetch_add is the last
//         shared write left on the commit fast path.
//
//   kGv5  Sloppy clock: a committing writer never writes the shared counter.
//         It stamps its orecs with
//             max(clock sample, snapshot, released orecs' versions) + stride
//         where stride is the thread's nonzero dense id, so stamps run
//         *ahead* of the shared clock. A reader that observes a version
//         ahead of its snapshot does not abort: it advances the shared clock
//         to the observed version (CAS-max; the only shared-clock write this
//         policy performs, proportional to real data freshness rather than
//         to commit rate), revalidates its read set, and adopts the new
//         snapshot. See DESIGN.md §7 for the safety argument.
enum class ClockPolicy : uint8_t {
  kGv1 = 0,
  kGv5,
};

const char* to_string(ClockPolicy policy) noexcept;

// Parses "gv1"/"gv5" (case-sensitive). Returns false on anything else.
bool parse_clock_policy(const char* name, ClockPolicy& out) noexcept;

// Process default: ClockPolicy::kGv5, overridable by the DC_CLOCK
// environment variable ("gv1" or "gv5"; read once, at first use).
ClockPolicy default_clock_policy() noexcept;

// Retry policy of htm::atomic() (htm/retry.hpp).
//
//   kFixed  The pre-fault-model behaviour, kept as the reference: every
//           abort — whatever its cause — pays one backoff pause, and the
//           block escalates to the TLE lock after Config::tle_after_aborts
//           consecutive failures.
//
//   kCause  Cause-aware (default). Spurious Rock-style aborts (interrupt /
//           TLB miss / save-restore) are re-executed immediately — the
//           condition was transient, waiting buys nothing; conflicts pay a
//           jittered capped backoff; deterministic capacity overflows
//           escalate straight to TLE instead of burning tle_after_aborts
//           futile re-executions. Every abort still counts toward the TLE
//           backstop, so a 100% fault storm cannot livelock a block.
enum class RetryPolicy : uint8_t {
  kFixed = 0,
  kCauseAware,
};

const char* to_string(RetryPolicy policy) noexcept;

// Parses "fixed"/"cause" (case-sensitive). Returns false on anything else.
bool parse_retry_policy(const char* name, RetryPolicy& out) noexcept;

// Process default: RetryPolicy::kCauseAware, overridable by the DC_RETRY
// environment variable ("fixed" or "cause"; read once, at first use).
RetryPolicy default_retry_policy() noexcept;

// Conflict-validation backend (htm/sigset.hpp, htm/valring.hpp).
//
//   kExact      The TL2 reference: per-load revalidation and commit-time
//               validation walk the exact read set, loading every read
//               orec and comparing its version against the snapshot.
//               O(|read set|) random orec loads per validation — the cost
//               the signature backend exists to amortize.
//
//   kSignature  Bloom-signature validation: each attempt accumulates the
//               indices of its read orecs into a fixed-size per-attempt
//               signature (two hash bits per orec, zero allocations);
//               committing writers publish their write signature into a
//               bounded global ring stamped with their commit version.
//               Validation intersects the read signature against ring
//               entries newer than the snapshot — O(ring) word-ANDs
//               instead of O(|read set|) orec loads. Empty intersection
//               means valid; a hit aborts (false positives are safe, only
//               costing a retry); a ring wrap past the snapshot falls back
//               conservatively to the exact walk. See DESIGN.md §11 for
//               why false negatives are impossible.
enum class ValidationPolicy : uint8_t {
  kExact = 0,
  kSignature,
};

const char* to_string(ValidationPolicy policy) noexcept;

// Parses "exact"/"sig" (case-sensitive). Returns false on anything else.
bool parse_validation_policy(const char* name, ValidationPolicy& out) noexcept;

// Process default: ValidationPolicy::kExact, overridable by the DC_VALIDATE
// environment variable ("exact" or "sig"; read once, at first use).
ValidationPolicy default_validation_policy() noexcept;

// Fault-injection knobs (htm/fault.hpp). Defaults: injection off.
struct FaultConfig {
  // Probability in [0, 1] that one speculative attempt is hit by a spurious
  // abort (drawn per attempt from a seeded per-thread stream, so a given
  // (seed, thread, attempt sequence) always faults at the same points).
  double rate = 0.0;
  // Seed of the injector's random stream; mixed with the dense thread id so
  // threads draw independently but reproducibly.
  uint64_t seed = 0x5eedfau;
};

// Process default: injection off, overridable by the DC_FAULT environment
// variable ("RATE" or "RATE:SEED", e.g. "0.1" or "0.1:42"; read once).
FaultConfig default_fault_config() noexcept;

// Thread-death injection knobs (htm/crash.hpp). Defaults: injection off.
struct CrashConfig {
  // Probability in [0, 1] that one atomic block kills its (opted-in) thread,
  // drawn per block from a seeded per-thread stream. Which crash point fires
  // (mid-transaction / commit entry / holding the TLE lock) is drawn from
  // the same stream.
  double rate = 0.0;
  // Seed of the injector's random stream; mixed with the dense thread id.
  uint64_t seed = 0xdeadf0u;
};

// Process default: injection off, overridable by the DC_CRASH environment
// variable ("RATE" or "RATE:SEED", e.g. "0.02" or "0.02:7"; read once).
CrashConfig default_crash_config() noexcept;

// Memory-pressure knobs (memory/pool.hpp, DESIGN.md §15). Defaults: the
// pool is unbounded and allocation-fault injection is off — the PR-1
// never-fail contract, byte for byte.
struct MemConfig {
  // Bounded-capacity mode: the pool refuses to map new slabs once its OS
  // footprint would exceed this many bytes (0 = unbounded). Recycled blocks
  // keep flowing at the cap, so denial is transient backpressure, not a
  // verdict. Chaos squeezes tighten the cap at runtime via
  // mem::pool_set_limit_override without touching this value.
  uint64_t limit_bytes = 0;

  // Probability in [0, 1] that one pool allocation attempt is denied by the
  // injector (drawn per attempt from a seeded per-thread stream, mixed with
  // the sched run seed so injected failures replay with a recorded
  // schedule). Scripted denials (mem::pool_set_alloc_fault_script) are
  // configured separately and fire regardless of the rate.
  double alloc_fault_rate = 0.0;

  // Seed of the injector's random stream; mixed with the dense thread id.
  uint64_t alloc_fault_seed = 0xa110cu;

  // kAllocFailed retry budget (htm/retry.hpp): how many consecutive failed
  // allocation attempts *without reclamation progress* a block tolerates
  // before the retry loop escalates to TxnOutOfMemory. Progress (any free
  // or stranded-cache reap, observed through the reclaim probe) resets the
  // streak — a waiting block never gives up while memory is coming back.
  uint32_t alloc_retry_limit = 16;
};

// Process default: unbounded / injection off, overridable by the DC_MEM
// environment variable ("BYTES", e.g. "67108864") and DC_ALLOC_FAULT
// ("RATE" or "RATE:SEED", same grammar as DC_FAULT; both read once).
MemConfig default_mem_config() noexcept;

struct Config {
  // Maximum number of transactional stores per transaction (unique words
  // written plus explicit charges for stores to private memory, which Rock's
  // store buffer also held). Exceeding it aborts with AbortCode::kOverflow.
  uint32_t store_buffer_capacity = 32;

  // Transactional Lock Elision fallback (§6): after this many consecutive
  // aborts of one atomic block, acquire the global fallback lock and run the
  // block non-speculatively. 0 disables TLE (pure best-effort HTM, as on
  // Rock without software mitigation).
  uint32_t tle_after_aborts = 64;

  // Timestamp extension: when a load observes a version newer than the
  // transaction's read version, revalidate the read set and advance instead
  // of aborting. Disabling this models a plainer HTM conflict response and
  // is an ablation knob for the benchmarks.
  bool enable_extension = true;

  // Run every atomic block under the global fallback lock (no speculation
  // at all): the "coarse global lock" baseline that transactional memory is
  // classically compared against. Ablation knob; default off.
  bool serialize_all = false;

  // Conflict-detection granularity: log2 of the bytes covered by one
  // ownership record. 3 (default) = 8-byte word; 6 = 64-byte cache line,
  // which is how real HTMs (Rock included) actually detect conflicts —
  // adjacent data false-shares. Change only while no transactions run.
  uint32_t conflict_granularity_log2 = 3;

  // Which global-clock policy commits and strong-atomicity stores use; see
  // ClockPolicy above. Change only while no transactions run (each attempt
  // snapshots it; mixing policies across *runs* is safe because both stamp
  // rules enforce per-orec version monotonicity).
  ClockPolicy clock_policy = default_clock_policy();

  // Commit-time write coalescing: runs of buffered stores that exactly tile
  // one aligned 8-byte word (they necessarily share an ownership record) are
  // written back — and pre-checked by the silent-commit scan — as a single
  // 8-byte access instead of one access per entry. Keeps the write-back of a
  // field-by-field struct update atomic at word grain even for sub-word
  // fields. Little-endian hosts only (disabled automatically elsewhere).
  bool enable_write_coalescing = true;

  // How htm::atomic() reacts to each abort cause; see RetryPolicy above.
  // Change only while no transactions run.
  RetryPolicy retry_policy = default_retry_policy();

  // Which conflict-validation backend loads and commits use; see
  // ValidationPolicy above. Change only while no transactions run (each
  // attempt snapshots it, and the signature ring is only fed while the
  // process-wide policy is kSignature — a mid-run flip would leave a
  // window the ring never saw).
  ValidationPolicy validation = default_validation_policy();

  // Differential-oracle modifier of the signature backend (tests only, no
  // environment/CLI spelling): with validation == kSignature, every
  // validation runs the exact walk first — which stays authoritative for
  // the commit/abort decision — and then the signature scan, counting
  // divergence instead of acting on it. "Exact conflict but signature
  // valid" is a false negative (forbidden; sigring::
  // crosscheck_false_negatives), "exact valid but signature hit" a false
  // positive (safe; TxnStats::sig_false_aborts). The exact-first ordering
  // matters: the walk's acquire load of the culprit orec synchronizes with
  // the writer's publish-before-release, so by the time the scan runs the
  // matching ring/in-flight entry is guaranteed visible and the zero-
  // false-negative assertion is sound even under full concurrency.
  bool validation_crosscheck = false;

  // Spurious-abort injection; see FaultConfig and htm/fault.hpp. Scripted
  // schedules (fault::set_script) are configured separately and override
  // the rate for matching attempts.
  FaultConfig fault = default_fault_config();

  // Thread-death injection; see CrashConfig and htm/crash.hpp. Scripted
  // schedules (crash::set_script) and per-thread one-shots
  // (crash::schedule_self) are configured separately.
  CrashConfig crash = default_crash_config();

  // Memory-pressure model: pool capacity bound, allocation-fault injection,
  // and the kAllocFailed retry budget; see MemConfig and memory/pool.hpp.
  MemConfig mem = default_mem_config();

  // Abort-storm graceful degradation (htm/retry.hpp): each atomic call-site
  // keeps a contention score (+2 per conflict abort, -1 per commit, capped).
  // When the score reaches storm_enter_score the site enters a sticky
  // serialized (TLE) mode — every block at that site runs under the
  // fallback lock — and it leaves the mode once commits drain the score to
  // storm_exit_score (hysteresis, so the site does not flap at the
  // boundary). Requires TLE (tle_after_aborts != 0); disabled under
  // serialize_all (everything is already serial).
  bool storm_detection = true;
  uint32_t storm_enter_score = 32;
  uint32_t storm_exit_score = 8;

  // Single-core fidelity knob: yield to the scheduler every N transactional
  // loads (0 = never). On the paper's 16-core machine a transaction's whole
  // window is exposed to concurrently *running* writers; on a single-core
  // host the OS timeslice hides that overlap, collapsing conflict rates.
  // Yielding mid-transaction restores the exposure window (longer
  // transactions yield more, so larger telescoping steps see more conflicts
  // — the very tradeoff Figures 5/6 measure). Benchmarks enable this; tests
  // leave it off.
  uint32_t txn_yield_every_loads = 0;
};

// Process-global configuration. Benchmarks/tests set it between runs while
// no transactions execute; it is not meant to be flipped mid-transaction.
Config& config() noexcept;

}  // namespace dc::htm
