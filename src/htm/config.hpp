// Runtime configuration of the simulated HTM.
//
// Defaults model Sun's Rock prototype as described in the paper and in
// [Dice et al., ASPLOS'09]: a 32-entry store buffer bounds transactional
// stores, transactions are sandboxed, and there is no guarantee that any
// transaction eventually commits (hence the optional TLE fallback, §6).
#pragma once

#include <atomic>
#include <cstdint>

namespace dc::htm {

struct Config {
  // Maximum number of transactional stores per transaction (unique words
  // written plus explicit charges for stores to private memory, which Rock's
  // store buffer also held). Exceeding it aborts with AbortCode::kOverflow.
  uint32_t store_buffer_capacity = 32;

  // Transactional Lock Elision fallback (§6): after this many consecutive
  // aborts of one atomic block, acquire the global fallback lock and run the
  // block non-speculatively. 0 disables TLE (pure best-effort HTM, as on
  // Rock without software mitigation).
  uint32_t tle_after_aborts = 64;

  // Timestamp extension: when a load observes a version newer than the
  // transaction's read version, revalidate the read set and advance instead
  // of aborting. Disabling this models a plainer HTM conflict response and
  // is an ablation knob for the benchmarks.
  bool enable_extension = true;

  // Run every atomic block under the global fallback lock (no speculation
  // at all): the "coarse global lock" baseline that transactional memory is
  // classically compared against. Ablation knob; default off.
  bool serialize_all = false;

  // Conflict-detection granularity: log2 of the bytes covered by one
  // ownership record. 3 (default) = 8-byte word; 6 = 64-byte cache line,
  // which is how real HTMs (Rock included) actually detect conflicts —
  // adjacent data false-shares. Change only while no transactions run.
  uint32_t conflict_granularity_log2 = 3;

  // Single-core fidelity knob: yield to the scheduler every N transactional
  // loads (0 = never). On the paper's 16-core machine a transaction's whole
  // window is exposed to concurrently *running* writers; on a single-core
  // host the OS timeslice hides that overlap, collapsing conflict rates.
  // Yielding mid-transaction restores the exposure window (longer
  // transactions yield more, so larger telescoping steps see more conflicts
  // — the very tradeoff Figures 5/6 measure). Benchmarks enable this; tests
  // leave it off.
  uint32_t txn_yield_every_loads = 0;
};

// Process-global configuration. Benchmarks/tests set it between runs while
// no transactions execute; it is not meant to be flipped mid-transaction.
Config& config() noexcept;

}  // namespace dc::htm
