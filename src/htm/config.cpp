#include "htm/config.hpp"

#include <cstdlib>
#include <cstring>

namespace dc::htm {

const char* to_string(ClockPolicy policy) noexcept {
  switch (policy) {
    case ClockPolicy::kGv1:
      return "gv1";
    case ClockPolicy::kGv5:
      return "gv5";
  }
  return "?";
}

bool parse_clock_policy(const char* name, ClockPolicy& out) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "gv1") == 0) {
    out = ClockPolicy::kGv1;
    return true;
  }
  if (std::strcmp(name, "gv5") == 0) {
    out = ClockPolicy::kGv5;
    return true;
  }
  return false;
}

ClockPolicy default_clock_policy() noexcept {
  // Read once: the CI matrix (and scripts/check.sh --clock) pins the whole
  // test run to one policy without a rebuild. Tests that need a specific
  // policy set Config::clock_policy explicitly instead.
  static const ClockPolicy def = [] {
    ClockPolicy p = ClockPolicy::kGv5;
    parse_clock_policy(std::getenv("DC_CLOCK"), p);
    return p;
  }();
  return def;
}

const char* to_string(RetryPolicy policy) noexcept {
  switch (policy) {
    case RetryPolicy::kFixed:
      return "fixed";
    case RetryPolicy::kCauseAware:
      return "cause";
  }
  return "?";
}

bool parse_retry_policy(const char* name, RetryPolicy& out) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "fixed") == 0) {
    out = RetryPolicy::kFixed;
    return true;
  }
  if (std::strcmp(name, "cause") == 0) {
    out = RetryPolicy::kCauseAware;
    return true;
  }
  return false;
}

RetryPolicy default_retry_policy() noexcept {
  // Read once, like DC_CLOCK: scripts/check.sh and CI pin the whole run to
  // one policy without a rebuild; tests that need a specific policy set
  // Config::retry_policy explicitly.
  static const RetryPolicy def = [] {
    RetryPolicy p = RetryPolicy::kCauseAware;
    parse_retry_policy(std::getenv("DC_RETRY"), p);
    return p;
  }();
  return def;
}

const char* to_string(ValidationPolicy policy) noexcept {
  switch (policy) {
    case ValidationPolicy::kExact:
      return "exact";
    case ValidationPolicy::kSignature:
      return "sig";
  }
  return "?";
}

bool parse_validation_policy(const char* name,
                             ValidationPolicy& out) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "exact") == 0) {
    out = ValidationPolicy::kExact;
    return true;
  }
  if (std::strcmp(name, "sig") == 0) {
    out = ValidationPolicy::kSignature;
    return true;
  }
  return false;
}

ValidationPolicy default_validation_policy() noexcept {
  // Read once, like DC_CLOCK/DC_RETRY: the CI matrix and scripts/check.sh
  // --validate pin a whole run to one backend without a rebuild; tests that
  // need a specific backend set Config::validation explicitly.
  static const ValidationPolicy def = [] {
    ValidationPolicy p = ValidationPolicy::kExact;
    parse_validation_policy(std::getenv("DC_VALIDATE"), p);
    return p;
  }();
  return def;
}

FaultConfig default_fault_config() noexcept {
  // DC_FAULT="RATE" or "RATE:SEED". Out-of-range rates clamp to [0, 1];
  // unparsable values leave injection off.
  static const FaultConfig def = [] {
    FaultConfig f;
    const char* env = std::getenv("DC_FAULT");
    if (env == nullptr) return f;
    char* end = nullptr;
    const double rate = std::strtod(env, &end);
    if (end == env) return f;
    f.rate = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
    if (*end == ':') {
      f.seed = std::strtoull(end + 1, nullptr, 0);
    }
    return f;
  }();
  return def;
}

CrashConfig default_crash_config() noexcept {
  // DC_CRASH="RATE" or "RATE:SEED", same grammar as DC_FAULT.
  static const CrashConfig def = [] {
    CrashConfig c;
    const char* env = std::getenv("DC_CRASH");
    if (env == nullptr) return c;
    char* end = nullptr;
    const double rate = std::strtod(env, &end);
    if (end == env) return c;
    c.rate = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
    if (*end == ':') {
      c.seed = std::strtoull(end + 1, nullptr, 0);
    }
    return c;
  }();
  return def;
}

MemConfig default_mem_config() noexcept {
  // DC_MEM="BYTES" (pool capacity bound), DC_ALLOC_FAULT="RATE" or
  // "RATE:SEED" (same grammar as DC_FAULT). Unparsable values leave the
  // pool unbounded / injection off.
  static const MemConfig def = [] {
    MemConfig m;
    if (const char* env = std::getenv("DC_MEM")) {
      char* end = nullptr;
      const unsigned long long bytes = std::strtoull(env, &end, 0);
      if (end != env) m.limit_bytes = bytes;
    }
    if (const char* env = std::getenv("DC_ALLOC_FAULT")) {
      char* end = nullptr;
      const double rate = std::strtod(env, &end);
      if (end != env) {
        m.alloc_fault_rate = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
        if (*end == ':') {
          m.alloc_fault_seed = std::strtoull(end + 1, nullptr, 0);
        }
      }
    }
    return m;
  }();
  return def;
}

Config& config() noexcept {
  static Config cfg;
  return cfg;
}

}  // namespace dc::htm
