#include "htm/config.hpp"

#include <cstdlib>
#include <cstring>

namespace dc::htm {

const char* to_string(ClockPolicy policy) noexcept {
  switch (policy) {
    case ClockPolicy::kGv1:
      return "gv1";
    case ClockPolicy::kGv5:
      return "gv5";
  }
  return "?";
}

bool parse_clock_policy(const char* name, ClockPolicy& out) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "gv1") == 0) {
    out = ClockPolicy::kGv1;
    return true;
  }
  if (std::strcmp(name, "gv5") == 0) {
    out = ClockPolicy::kGv5;
    return true;
  }
  return false;
}

ClockPolicy default_clock_policy() noexcept {
  // Read once: the CI matrix (and scripts/check.sh --clock) pins the whole
  // test run to one policy without a rebuild. Tests that need a specific
  // policy set Config::clock_policy explicitly instead.
  static const ClockPolicy def = [] {
    ClockPolicy p = ClockPolicy::kGv5;
    parse_clock_policy(std::getenv("DC_CLOCK"), p);
    return p;
  }();
  return def;
}

Config& config() noexcept {
  static Config cfg;
  return cfg;
}

}  // namespace dc::htm
