#include "htm/config.hpp"

namespace dc::htm {

Config& config() noexcept {
  static Config cfg;
  return cfg;
}

}  // namespace dc::htm
