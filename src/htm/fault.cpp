#include "htm/fault.hpp"

#include <atomic>
#include <utility>

#include "htm/config.hpp"
#include "sched/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace dc::htm::fault {

namespace {

// The script lives behind one atomic flag: the retry hot path reads only
// `script_on` (relaxed) when deciding whether to scan; installation is
// quiescent-only (documented in fault.hpp), so the vector itself needs no
// lock.
std::vector<ScriptedAbort>& script_storage() noexcept {
  static std::vector<ScriptedAbort>* s = new std::vector<ScriptedAbort>;
  return *s;
}

std::atomic<bool> g_script_on{false};

// Runtime storm override (see fault.hpp). Negative = inactive. Relaxed is
// enough: the injector is probabilistic, so the exact attempt at which a
// worker observes the new rate is immaterial — what matters is that the
// read itself is race-free, which Config::fault.rate (a plain double)
// cannot offer mid-run.
std::atomic<double> g_rate_override{-1.0};

struct ThreadFaultState {
  uint64_t blocks = 0;
  bool seeded = false;
  util::Xoshiro256 rng{0};
};

ThreadFaultState& state() noexcept {
  thread_local ThreadFaultState s;
  return s;
}

void seed_stream(ThreadFaultState& s) noexcept {
  // Expand the config seed with the dense thread id through SplitMix64 so
  // adjacent ids do not draw correlated streams.
  // Under the deterministic scheduler the stream is a pure function of
  // (config seed, schedule seed, logical thread index), so injected chaos
  // is part of the schedule and replays with it. Outside a scheduled run
  // run_seed() is 0 and the identity is the dense thread id — bit-for-bit
  // the pre-scheduler stream.
  const uint64_t who = sched::active()
                           ? static_cast<uint64_t>(sched::self_index())
                           : static_cast<uint64_t>(util::thread_id());
  util::SplitMix64 mix(config().fault.seed ^ sched::run_seed() ^
                       (0x9e3779b97f4a7c15ULL * (who + 1)));
  s.rng = util::Xoshiro256(mix.next());
  s.seeded = true;
}

}  // namespace

bool injection_enabled() noexcept {
  return effective_rate() > 0.0 ||
         g_script_on.load(std::memory_order_relaxed);
}

uint64_t begin_block() noexcept { return state().blocks++; }

Decision plan(uint64_t block, uint32_t attempt) noexcept {
  Decision d;
  if (g_script_on.load(std::memory_order_relaxed)) {
    const uint32_t tid = util::thread_id();
    for (const ScriptedAbort& e : script_storage()) {
      if ((e.tid == kAnyThread || e.tid == tid) &&
          (e.block == kAnyBlock || e.block == block) &&
          e.attempt == attempt) {
        d.fire = true;
        d.code = e.code;
        d.after_ops = e.after_ops;
        return d;
      }
    }
  }
  const double rate = effective_rate();
  if (rate > 0.0) {
    ThreadFaultState& s = state();
    if (!s.seeded) seed_stream(s);
    if (s.rng.next_double() < rate) {
      d.fire = true;
      // Rock's spurious causes, drawn uniformly; the op countdown spreads
      // the abort point across the attempt (0..23 ops in — past the body's
      // op count it fires at commit, modelling an interrupt landing between
      // the last access and the commit instruction).
      static constexpr AbortCode kSpurious[3] = {
          AbortCode::kInterrupt, AbortCode::kTlbMiss, AbortCode::kSaveRestore};
      d.code = kSpurious[s.rng.next_below(3)];
      d.after_ops = static_cast<uint32_t>(s.rng.next_below(24));
    }
  }
  return d;
}

void set_rate_override(double rate) noexcept {
  if (rate > 1.0) rate = 1.0;
  g_rate_override.store(rate < 0.0 ? -1.0 : rate,
                        std::memory_order_relaxed);
}

double rate_override() noexcept {
  return g_rate_override.load(std::memory_order_relaxed);
}

double effective_rate() noexcept {
  const double o = g_rate_override.load(std::memory_order_relaxed);
  return o >= 0.0 ? o : config().fault.rate;
}

void set_script(std::vector<ScriptedAbort> script) {
  script_storage() = std::move(script);
  g_script_on.store(!script_storage().empty(), std::memory_order_relaxed);
}

void clear_script() { set_script({}); }

void reset_thread() noexcept {
  ThreadFaultState& s = state();
  s.blocks = 0;
  s.seeded = false;  // re-seed lazily from the current Config::fault.seed
}

}  // namespace dc::htm::fault
