// Contention management for htm::atomic(): pluggable retry policy, abort
// cause triage, and per-call-site abort-storm degradation.
//
// Rock-era TLE software had to answer one question after every failed
// transaction: retry now, retry later, or give up and take the lock? The
// right answer depends on *why* the attempt died (paper §6; Dice et al.,
// ASPLOS'09 report exactly this cause triage for Rock):
//
//   cause            transient?   policy kCauseAware        policy kFixed
//   ---------------  -----------  ------------------------  -------------
//   interrupt        yes          retry immediately         backoff
//   tlb-miss         yes          retry immediately         backoff
//   save-restore     yes          retry immediately         backoff
//   conflict         contention   jittered capped backoff   backoff
//   explicit         algorithmic  jittered capped backoff   backoff
//   illegal-access   transient*   jittered capped backoff   backoff
//   overflow         no           escalate straight to TLE  backoff
//   alloc-failed     resource     wait for reclamation, then give up (both
//                                 policies — see below)
//
//   (* illegal-access means the transaction read freed memory; the retry
//      re-reads fresh pointers, so it behaves like a conflict.)
//
// alloc-failed is the one cause the TLE lock cannot cure: serializing the
// block re-runs the same allocation against the same exhausted pool, so
// escalation would convert an out-of-memory condition into a livelock under
// the lock. Instead the controller backs off waiting for *reclamation
// progress* — any block returned to circulation, observed through the
// reclaim probe the pool registers at startup (set_reclaim_probe; the htm
// layer never links dc_memory). Progress resets the wait budget;
// Config::mem.alloc_retry_limit consecutive failures with no progress
// escalate to a caller-visible TxnOutOfMemory (htm/abort.hpp) instead of
// TLE. Because this is a correctness matter, not a tuning choice, both
// retry policies handle it identically.
//
// Every abort — spurious included — counts toward the Config::
// tle_after_aborts backstop, so even a 100% injected fault storm cannot
// livelock a block: it escalates and completes under the lock.
//
// Storm mode: each atomic() call-site owns a StormState (a function-local
// static in the template, so every distinct lambda gets its own). Conflict
// aborts add 2 to its score, commits drain 1; crossing
// Config::storm_enter_score flips the site into a *sticky* serialized mode
// where every block runs under the TLE lock immediately — no speculative
// attempts feeding the storm — until commits drain the score back to
// Config::storm_exit_score (hysteresis: enter high, exit low, so the site
// does not flap at the boundary). The stats surface the transitions
// (storm_entries/storm_exits) and the starvation high-water mark
// (max_consec_aborts).
#pragma once

#include <atomic>
#include <cstdint>

#include "htm/config.hpp"
#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/stats.hpp"
#include "htm/txn.hpp"
#include "obs/retry_stats.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"

namespace dc::htm {

// Reclamation-progress probe for the kAllocFailed wait policy. The pool
// registers a function returning a monotone counter of blocks returned to
// circulation (frees + stranded-cache reaps); the retry controller compares
// successive readings to tell "memory is coming back, keep waiting" from
// "nothing is moving, give up". Registered once at pool startup — the
// dependency points memory -> htm, never the reverse (same inversion as the
// obs counter providers). reclaim_progress() returns 0 while no probe is
// registered.
using ReclaimProbe = uint64_t (*)();
void set_reclaim_probe(ReclaimProbe probe) noexcept;
uint64_t reclaim_progress() noexcept;

namespace detail {

// Sticky per-call-site contention state. Constructed as a function-local
// static inside the atomic() template — one per distinct body lambda — and
// registered globally so tests can reset all sites between cases
// (reset_storm_sites()).
class StormState {
 public:
  StormState() noexcept { register_site(this); }
  StormState(const StormState&) = delete;
  StormState& operator=(const StormState&) = delete;

  static constexpr uint32_t kAbortWeight = 2;

  // A speculative attempt at this site aborted on a conflict.
  void note_abort(uint32_t enter_score) noexcept {
    const uint32_t s =
        score_.fetch_add(kAbortWeight, std::memory_order_relaxed) +
        kAbortWeight;
    if (s >= enter_score && !serialized_.load(std::memory_order_relaxed)) {
      bool expected = false;
      if (serialized_.compare_exchange_strong(expected, true,
                                              std::memory_order_relaxed)) {
        local_stats().storm_entries++;
        obs::trace_storm(true, s);
      }
    }
    // Cap the score so a long storm cannot push the exit arbitrarily far
    // into the recovery: once commits return, the site leaves serialized
    // mode within ~2*enter_score of them.
    uint32_t cur = s;
    while (cur > 2 * enter_score &&
           !score_.compare_exchange_weak(cur, 2 * enter_score,
                                         std::memory_order_relaxed)) {
    }
  }

  // A block at this site committed (speculatively or under the lock).
  void note_commit(uint32_t exit_score) noexcept {
    uint32_t s = score_.load(std::memory_order_relaxed);
    // Fast path: an uncontended site keeps score 0 — one relaxed load.
    while (s > 0 &&
           !score_.compare_exchange_weak(s, s - 1,
                                         std::memory_order_relaxed)) {
    }
    const uint32_t after = s > 0 ? s - 1 : 0;
    if (after <= exit_score && serialized_.load(std::memory_order_relaxed)) {
      bool expected = true;
      if (serialized_.compare_exchange_strong(expected, false,
                                              std::memory_order_relaxed)) {
        local_stats().storm_exits++;
        obs::trace_storm(false, after);
      }
    }
  }

  bool serialized() const noexcept {
    return serialized_.load(std::memory_order_relaxed);
  }

  uint32_t score() const noexcept {
    return score_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    score_.store(0, std::memory_order_relaxed);
    serialized_.store(false, std::memory_order_relaxed);
  }

 private:
  static void register_site(StormState* s);  // retry.cpp

  std::atomic<uint32_t> score_{0};
  std::atomic<bool> serialized_{false};
};

// Drives one atomic block's retry sequence. Constructed per atomic() call;
// snapshots the config and the fault-injection switch once so the loop's
// per-attempt cost is a handful of predictable branches.
class RetryController {
 public:
  RetryController(const Config& cfg, StormState& storm) noexcept
      : cfg_(cfg),
        storm_(storm),
        backoff_(4, 2048),
        fault_on_(fault::injection_enabled()),
        block_(fault_on_ ? fault::begin_block() : 0),
        storm_on_(cfg.storm_detection && cfg.tle_after_aborts != 0 &&
                  !cfg.serialize_all) {
    if (crash::injection_enabled()) [[unlikely]] {
      crash::heartbeat();  // liveness signal for lock-recovery waiters
      crash_plan_ = crash::plan(crash::begin_block());
    }
  }

  uint32_t attempt() const noexcept { return attempt_; }

  // True when the next attempt must run under the fallback lock. Counts the
  // block's tle_entries the first time an *escalation* (not serialize_all)
  // reaches the lock.
  bool use_lock() noexcept {
    // A kLockHeld crash plan forces the block onto the fallback lock so the
    // thread deterministically dies while holding it.
    const bool force_lock =
        crash_plan_.fire && crash_plan_.point == crash::Point::kLockHeld;
    const bool lock = cfg_.serialize_all || escalated_ || force_lock ||
                      (storm_on_ && storm_.serialized());
    if (lock && !cfg_.serialize_all && !counted_entry_) {
      counted_entry_ = true;
      local_stats().tle_entries++;
    }
    return lock;
  }

  // Arms `txn` with this attempt's planned fault, if injection decides so.
  void arm_fault(Txn& txn) noexcept {
    if (fault_on_) [[unlikely]] {
      const fault::Decision d = fault::plan(block_, attempt_);
      if (d.fire) txn.arm_fault(d.code, d.after_ops);
    }
  }

  // Arms `txn` with this block's planned crash, if any. Called on both the
  // speculative and lock-mode paths: unlike faults, a crash can strike a
  // TLE holder (that case is the recoverable lock's whole reason to exist).
  void arm_crash(Txn& txn) noexcept {
    if (crash_plan_.fire) [[unlikely]] {
      txn.arm_crash(crash_plan_.point, crash_plan_.after_ops);
    }
  }

  // A speculative attempt aborted with `code`. Throws TxnOutOfMemory (and
  // only that) when a kAllocFailed streak exhausts its reclamation-wait
  // budget — the one exit from the retry loop that is not a commit.
  void on_abort(AbortCode code) {
    obs::record_retry(static_cast<uint8_t>(code), attempt_);
    ++attempt_;
    if (code == AbortCode::kAllocFailed) {
      on_alloc_failed();
      return;
    }
    if (code == AbortCode::kConflict && storm_on_) {
      storm_.note_abort(cfg_.storm_enter_score);
    }
    const bool tle = cfg_.tle_after_aborts != 0;
    if (cfg_.retry_policy == RetryPolicy::kCauseAware) {
      if (is_spurious(code)) {
        // Transient: re-execute now. Still counts toward the backstop so a
        // sustained fault storm escalates instead of spinning forever.
        if (tle && attempt_ >= cfg_.tle_after_aborts) escalated_ = true;
        return;
      }
      if (code == AbortCode::kOverflow && tle) {
        // Deterministic: the same body re-executed will overflow again.
        escalated_ = true;
        return;
      }
    }
    if (tle && attempt_ >= cfg_.tle_after_aborts) {
      escalated_ = true;
      return;
    }
    backoff_.pause();
  }

  // An attempt under the lock aborted (explicit abort in lock mode); the
  // block stays in lock mode and retries after a pause. Allocation can fail
  // under the lock too (the lock cannot conjure memory), so kAllocFailed
  // takes the same bounded-wait/escalate path as in speculative mode.
  void on_lock_abort(AbortCode code) {
    obs::record_retry(static_cast<uint8_t>(code), attempt_);
    ++attempt_;
    if (code == AbortCode::kAllocFailed) {
      on_alloc_failed();
      return;
    }
    backoff_.pause();
  }

  // The block committed (either mode). Updates the storm score, the
  // starvation high-water mark, and re-arms the backoff window (satellite
  // contract: one contended episode must not tax the caller's next block —
  // collect algorithms reuse long-lived Backoffs the same way).
  void on_commit() noexcept {
    if (storm_on_) storm_.note_commit(cfg_.storm_exit_score);
    if (attempt_ != 0) {
      TxnStats& st = local_stats();
      if (attempt_ > st.max_consec_aborts) st.max_consec_aborts = attempt_;
      backoff_.reset();
    }
  }

 private:
  // Bounded wait for reclamation: the streak counts consecutive alloc
  // failures that saw *no* probe movement; any progress re-arms the budget.
  // Never sets escalated_ — TLE is not an answer to an empty pool.
  void on_alloc_failed() {
    const uint64_t progress = reclaim_progress();
    if (alloc_fail_streak_ == 0 || progress != reclaim_snapshot_) {
      reclaim_snapshot_ = progress;
      alloc_fail_streak_ = 1;
    } else if (++alloc_fail_streak_ > cfg_.mem.alloc_retry_limit) {
      throw TxnOutOfMemory{};
    }
    backoff_.pause();
  }

  const Config& cfg_;
  StormState& storm_;
  util::Backoff backoff_;
  uint32_t attempt_ = 0;
  const bool fault_on_;
  const uint64_t block_;
  const bool storm_on_;
  crash::Decision crash_plan_{};
  bool escalated_ = false;
  bool counted_entry_ = false;
  uint64_t reclaim_snapshot_ = 0;
  uint32_t alloc_fail_streak_ = 0;
};

}  // namespace detail

// Resets every call-site's storm state (score and serialized flag). Tests
// call it between cases: the states are function-local statics, so a
// parameterized suite reusing one call-site would otherwise leak storm mode
// from one param to the next. Quiescent-only.
void reset_storm_sites() noexcept;

// Number of call-sites currently in the sticky serialized mode
// (diagnostics).
std::size_t storm_serialized_sites() noexcept;

}  // namespace dc::htm
