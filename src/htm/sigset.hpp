// Fixed-size Bloom signature over ownership-record indices.
//
// The signature validation backend (ValidationPolicy::kSignature, DESIGN.md
// §11) summarizes a transaction's read set — and a committing writer's write
// set — as a 65536-bit Bloom filter keyed by orec index. Two bit positions
// per index come from a single multiplicative mix of the index the orec
// table already computed, so accumulating a read costs two OR-into-word
// operations and zero allocations, and conflict detection between a read
// signature and a write signature is a word-wise AND with early exit.
//
// Bloom semantics: add() never fails and membership never under-reports, so
// an empty intersection *proves* the two sets share no orec (no false
// negatives); a nonzero intersection may be a hash collision (false
// positive), which the caller treats as a conflict — safe, it only costs a
// retry. Saturation degrades gracefully the same way: a read set large
// enough to set most of the 65536 bits just intersects with everything and
// aborts/falls back more, it never admits a stale read.
//
// Sizing: 65536 bits = 8 KB per signature. What the size buys is a low
// per-validation false-positive rate in the regime where the backend is
// supposed to win — read sets of a few thousand to a few tens of thousands
// of distinct orecs, where the O(|read set|) exact walk costs tens of
// microseconds per validation. At fill fraction f a precise single-orec
// probe false-hits with probability ~f², so a 16 K-word read set (~39%
// fill) still validates cleanly ~85% of the time; a 4× smaller filter is
// saturated there and aborts almost every validation. The cost is 8 KB per
// signature (one per thread plus the ring payloads, a few MB process-wide,
// scanned only for entries newer than the snapshot), not per-read work —
// add() is two bit-ORs regardless of size.
#pragma once

#include <cstdint>
#include <cstring>

namespace dc::htm {

class SigSet {
 public:
  static constexpr uint32_t kBits = 65536;
  static constexpr uint32_t kWords = kBits / 64;

  struct Bits {
    uint32_t first;
    uint32_t second;
  };

  // Two bit positions from one Fibonacci-hash multiply. The orec index is
  // already a mixed hash of the address (orec.hpp), but consecutive indices
  // differ in low bits only; the multiply spreads them across the whole
  // filter, and the two positions are drawn from disjoint runs of the
  // product so they collide independently. (A cache-line-blocked variant —
  // both bits confined to one 64-byte line — was measured and rejected: the
  // filter is small enough to sit in L1 during the read pass, so blocking
  // saved nothing while the uneven per-block fill raised the false-positive
  // rate ~1.6x.)
  static constexpr Bits bits_of(uint64_t orec_idx) noexcept {
    const uint64_t h = (orec_idx + 1) * 0x9E3779B97F4A7C15ull;
    return Bits{static_cast<uint32_t>((h >> 20) & (kBits - 1)),
                static_cast<uint32_t>((h >> 40) & (kBits - 1))};
  }

  void add(uint64_t orec_idx) noexcept {
    const Bits b = bits_of(orec_idx);
    w_[b.first >> 6] |= 1ull << (b.first & 63);
    w_[b.second >> 6] |= 1ull << (b.second & 63);
  }

  // True when orec_idx *may* have been added (both its bits set); false is
  // definitive.
  bool maybe_contains(uint64_t orec_idx) const noexcept {
    const Bits b = bits_of(orec_idx);
    return (w_[b.first >> 6] & (1ull << (b.first & 63))) != 0 &&
           (w_[b.second >> 6] & (1ull << (b.second & 63))) != 0;
  }

  // True when the two signatures share any set bit. A shared element always
  // intersects (its two bits are set in both); disjoint sets intersect only
  // on a hash collision. Note this is stricter than per-element membership —
  // a single colliding bit triggers — which biases toward (safe) false
  // positives, never false negatives.
  bool intersects(const SigSet& other) const noexcept {
    for (uint32_t i = 0; i < kWords; ++i) {
      if ((w_[i] & other.w_[i]) != 0) return true;
    }
    return false;
  }

  bool empty() const noexcept {
    for (uint32_t i = 0; i < kWords; ++i) {
      if (w_[i] != 0) return false;
    }
    return true;
  }

  void clear() noexcept { std::memset(w_, 0, sizeof(w_)); }

  const uint64_t* words() const noexcept { return w_; }

 private:
  // Cache-line aligned so each 512-bit block is exactly one line — the
  // blocked bits_of() guarantee above depends on it.
  alignas(64) uint64_t w_[kWords] = {};
};

}  // namespace dc::htm
