// Public API of the simulated hardware transactional memory.
//
//   htm::atomic([&](htm::Txn& txn) { ... });   // the paper's `atomic {}`
//
// The body runs speculatively; on conflict/overflow it is re-executed after
// backoff. If Config::tle_after_aborts consecutive attempts fail, the block
// runs under a global fallback lock (Transactional Lock Elision, paper §6).
// The body must therefore be written to be re-executable: no side effects
// outside txn.load/txn.store except on memory it owns exclusively, and any
// transaction-private accumulation (e.g. a Collect result set) must be reset
// at the top of the body or managed by the caller.
//
// Strong atomicity (paper §6): nontxn_store makes a non-transactional store
// that conflicts correctly with concurrent transactions; nontxn_load is a
// plain atomic load (single-word, may observe "flickering" values, which is
// exactly the latitude the Dynamic Collect spec grants).
#pragma once

#include <type_traits>
#include <utility>

#include "htm/abort.hpp"
#include "htm/clock.hpp"
#include "htm/config.hpp"
#include "htm/stats.hpp"
#include "htm/txn.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/cycles.hpp"
#include "util/thread_id.hpp"

namespace dc::htm {

namespace detail {

// The TLE fallback lock word. Transactions read it (transactionally) at
// begin; the acquirer bumps its orec, which dooms every in-flight
// transaction, then waits for in-flight write-backs to drain.
uint64_t* tle_lock_word() noexcept;
void tle_acquire() noexcept;
void tle_release() noexcept;

// Commit with the obs commit-duration histogram around it (DC_TRACE builds
// only; otherwise exactly txn.commit()). Only committing attempts record —
// a validation failure unwinds past the sample.
inline void commit_timed(Txn& txn) {
#if defined(DC_TRACE)
  if (obs::timing_enabled()) {
    const uint64_t c0 = util::rdcycles();
    txn.commit();
    obs::record_op(obs::OpKind::kCommit, util::rdcycles() - c0);
    return;
  }
#endif
  txn.commit();
}

}  // namespace detail

// Non-transactional (strong-atomicity) store: acquires the word's ownership
// record, stores, and releases it at a fresh version, so concurrent
// transactions that read the word abort rather than miss the update.
template <TxnWord T>
void nontxn_store(T* addr, T value) noexcept {
  Orec& o = orec_for(addr);
  const OrecValue mine = make_locked(~0ULL >> 1);  // anonymous owner token
  util::Backoff backoff(2, 64);
  OrecValue cur = o.value.load(std::memory_order_relaxed);
  for (;;) {
    if (!orec_is_locked(cur) &&
        o.value.compare_exchange_weak(cur, mine, std::memory_order_acq_rel)) {
      break;
    }
    backoff.pause();
    cur = o.value.load(std::memory_order_relaxed);
  }
  detail::atomic_word_store(addr, value);
  // Release at a policy-stamped fresh version: under GV1 this is the
  // classic fetch_add; under GV5 the store stays off the shared clock and
  // stamps past the replaced version instead.
  const ClockStamp stamp =
      writer_stamp(config().clock_policy, orec_version(cur),
                   orec_version(cur), util::thread_id() + 1);
  o.value.store(make_version(stamp.wv), std::memory_order_release);
  local_stats().nontxn_stores++;
}

// Non-transactional compare-and-swap with the same conflict visibility as
// nontxn_store. Used by the TLE lock and by non-HTM baseline algorithms
// that share data with transactions.
template <TxnWord T>
bool nontxn_cas(T* addr, T expected, T desired) noexcept {
  Orec& o = orec_for(addr);
  const OrecValue mine = make_locked(~0ULL >> 1);
  util::Backoff backoff(2, 64);
  OrecValue cur = o.value.load(std::memory_order_relaxed);
  for (;;) {
    if (!orec_is_locked(cur) &&
        o.value.compare_exchange_weak(cur, mine, std::memory_order_acq_rel)) {
      break;
    }
    backoff.pause();
    cur = o.value.load(std::memory_order_relaxed);
  }
  const T observed = detail::atomic_word_load(addr);
  bool success = false;
  if (observed == expected) {
    detail::atomic_word_store(addr, desired);
    success = true;
  }
  if (success) {
    const ClockStamp stamp =
        writer_stamp(config().clock_policy, orec_version(cur),
                     orec_version(cur), util::thread_id() + 1);
    o.value.store(make_version(stamp.wv), std::memory_order_release);
  } else {
    o.value.store(cur, std::memory_order_release);
  }
  return success;
}

// Non-transactional load. Single-word atomic; values written by an
// in-flight commit may be observed the instant they are written back.
template <TxnWord T>
T nontxn_load(const T* addr) noexcept {
  return detail::atomic_word_load(addr);
}

// Dooms any in-flight transaction that has read a word in [p, p+bytes) by
// advancing the covering ownership records. The pool allocator calls this
// on deallocation — it is the mechanism behind the sandboxing guarantee
// that a transaction dereferencing freed memory aborts instead of faulting.
//
// When `poison` is true, each fully-covered 8-byte word is overwritten with
// 0xDD bytes *under its ownership-record lock*, so the poisoning itself is
// correctly versioned: a transaction either reads the pre-free value at a
// read version that predates the free (and is serialized before it), or
// observes the version bump and aborts. Poison lets tests catch
// non-transactional use-after-free, which the orec mechanism cannot see.
void invalidate_range(void* p, std::size_t bytes, bool poison = false) noexcept;

inline constexpr uint64_t kPoisonWord = 0xDDDDDDDDDDDDDDDDULL;

// Exclusive, non-speculative execution section: acquires the global
// fallback lock, dooms in-flight transactions, and blocks new ones from
// committing until destruction. The §6 escape hatch for operations that
// cannot make progress speculatively (e.g. a FastCollect traversal starved
// by deregister churn): inside the section, shared state may be read with
// nontxn_load at full fidelity.
class SerialSection {
 public:
  SerialSection() { detail::tle_acquire(); }
  ~SerialSection() { detail::tle_release(); }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;
};

// Outcome of a single transaction attempt (for callers that drive their own
// retry policy, e.g. the adaptive telescoping controller of §3.4).
struct TryResult {
  bool committed;
  AbortCode code;  // kNone when committed
};

// Runs `body` as exactly one transaction attempt (no retry, no TLE).
// `body` must be void(Txn&).
template <class F>
TryResult try_once(F&& body) {
  if (config().serialize_all) {
    // Serial-execution ablation: no speculation, always under the lock.
    detail::tle_acquire();
    struct Release {
      ~Release() { detail::tle_release(); }
    } release;
    try {
      Txn txn(/*lock_mode=*/true);
      local_stats().lock_fallbacks++;
      obs::trace_tle_fallback(0);
      body(txn);
      txn.commit();
      local_stats().commits++;
      return TryResult{true, AbortCode::kNone};
    } catch (const TxnAbort& a) {  // explicit abort under the lock
      local_stats().aborts++;
      local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
      return TryResult{false, a.code};
    }
  }
  if (nontxn_load(detail::tle_lock_word()) != 0) {
    // Behave like a transaction started while the fallback lock is held.
    local_stats().aborts++;
    local_stats()
        .aborts_by_code[static_cast<std::size_t>(AbortCode::kConflict)]++;
    return TryResult{false, AbortCode::kConflict};
  }
  try {
    Txn txn;
    if (txn.load(detail::tle_lock_word()) != 0) {
      txn.abort(AbortCode::kConflict);
    }
    body(txn);
    detail::commit_timed(txn);
    local_stats().commits++;
    return TryResult{true, AbortCode::kNone};
  } catch (const TxnAbort& a) {
    local_stats().aborts++;
    local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
    return TryResult{false, a.code};
  }
}

// Runs `body` atomically, retrying with backoff until it commits (or, after
// Config::tle_after_aborts failures, under the fallback lock). Returns the
// body's return value. This is the `atomic { ... }` of the paper's
// pseudocode.
template <class F>
decltype(auto) atomic(F&& body) {
  using Result = std::invoke_result_t<F&, Txn&>;
  util::Backoff backoff(4, 2048);
  const uint32_t tle_threshold = config().tle_after_aborts;
  const bool serialize = config().serialize_all;
  for (uint32_t attempt = 0;; ++attempt) {
    const bool use_lock =
        serialize || (tle_threshold != 0 && attempt >= tle_threshold);
    if (use_lock) {
      struct TleGuard {
        TleGuard() { detail::tle_acquire(); }
        ~TleGuard() { detail::tle_release(); }
      };
      try {
        TleGuard guard;
        Txn txn(/*lock_mode=*/true);
        local_stats().lock_fallbacks++;
        obs::trace_tle_fallback(attempt);
#if defined(DC_TRACE)
        txn.set_trace_attempt(attempt);
#endif
        if constexpr (std::is_void_v<Result>) {
          body(txn);
          txn.commit();
          return;
        } else {
          Result r = body(txn);
          txn.commit();
          return r;
        }
      } catch (const TxnAbort&) {
        // An explicit abort under the lock: release and retry (still in
        // lock mode on the next iteration, since attempt keeps growing).
        backoff.pause();
        continue;
      }
    }
    try {
      Txn txn;
#if defined(DC_TRACE)
      txn.set_trace_attempt(attempt);
#endif
      if (txn.load(detail::tle_lock_word()) != 0) {
        txn.abort(AbortCode::kConflict);
      }
      if constexpr (std::is_void_v<Result>) {
        body(txn);
        detail::commit_timed(txn);
        local_stats().commits++;
        return;
      } else {
        Result r = body(txn);
        detail::commit_timed(txn);
        local_stats().commits++;
        return r;
      }
    } catch (const TxnAbort& a) {
      local_stats().aborts++;
      local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
      backoff.pause();
    }
  }
}

}  // namespace dc::htm
