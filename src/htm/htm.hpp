// Public API of the simulated hardware transactional memory.
//
//   htm::atomic([&](htm::Txn& txn) { ... });   // the paper's `atomic {}`
//
// The body runs speculatively; on conflict/overflow it is re-executed after
// backoff. If Config::tle_after_aborts consecutive attempts fail, the block
// runs under a global fallback lock (Transactional Lock Elision, paper §6).
// The body must therefore be written to be re-executable: no side effects
// outside txn.load/txn.store except on memory it owns exclusively, and any
// transaction-private accumulation (e.g. a Collect result set) must be reset
// at the top of the body or managed by the caller.
//
// Strong atomicity (paper §6): nontxn_store makes a non-transactional store
// that conflicts correctly with concurrent transactions; nontxn_load is a
// plain atomic load (single-word, may observe "flickering" values, which is
// exactly the latitude the Dynamic Collect spec grants).
#pragma once

#include <type_traits>
#include <utility>

#include "htm/abort.hpp"
#include "htm/clock.hpp"
#include "htm/config.hpp"
#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/retry.hpp"
#include "htm/stats.hpp"
#include "htm/txn.hpp"
#include "htm/valring.hpp"
#include "obs/histogram.hpp"
#include "obs/retry_stats.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/cycles.hpp"
#include "util/thread_id.hpp"

namespace dc::htm {

namespace detail {

// The TLE fallback lock word. Transactions read it (transactionally) at
// begin; the acquirer bumps its orec, which dooms every in-flight
// transaction, then waits for in-flight write-backs to drain.
uint64_t* tle_lock_word() noexcept;
void tle_acquire() noexcept;
void tle_release() noexcept;

// Commit with the obs commit-duration histogram around it (DC_TRACE builds
// only; otherwise exactly txn.commit()). Only committing attempts record —
// a validation failure unwinds past the sample.
inline void commit_timed(Txn& txn) {
#if defined(DC_TRACE)
  if (obs::timing_enabled()) {
    const uint64_t c0 = util::rdcycles();
    txn.commit();
    obs::record_op(obs::OpKind::kCommit, util::rdcycles() - c0);
    return;
  }
#endif
  txn.commit();
}

}  // namespace detail

// Non-transactional (strong-atomicity) store: acquires the word's ownership
// record, stores, and releases it at a fresh version, so concurrent
// transactions that read the word abort rather than miss the update.
template <TxnWord T>
void nontxn_store(T* addr, T value) noexcept {
  Orec& o = orec_for(addr);
  // Signature-backend visibility (valring.hpp): a strong-atomicity store is
  // a one-orec writing commit, so it follows the same protocol — in-flight
  // before the lock CAS, ring publish before the orec release, in-flight
  // end after it. The exact backend skips all of it (one branch).
  const bool sig = config().validation == ValidationPolicy::kSignature;
  const auto orec_idx = static_cast<uint64_t>(&o - orec_table());
  if (sig) sigring::begin_inflight_single(orec_idx);
  const OrecValue mine = make_locked(~0ULL >> 1);  // anonymous owner token
  util::Backoff backoff(2, 64);
  OrecValue cur = o.value.load(std::memory_order_relaxed);
  for (;;) {
    if (!orec_is_locked(cur) &&
        o.value.compare_exchange_weak(cur, mine, std::memory_order_acq_rel)) {
      break;
    }
    backoff.pause();
    cur = o.value.load(std::memory_order_relaxed);
  }
  detail::atomic_word_store(addr, value);
  // Release at a policy-stamped fresh version: under GV1 this is the
  // classic fetch_add; under GV5 the store stays off the shared clock and
  // stamps past the replaced version instead.
  const ClockStamp stamp =
      writer_stamp(config().clock_policy, orec_version(cur),
                   orec_version(cur), util::thread_id() + 1);
  if (sig) sigring::publish_single(orec_idx, stamp.wv);
  o.value.store(make_version(stamp.wv), std::memory_order_release);
  if (sig) sigring::end_inflight();
  local_stats().nontxn_stores++;
}

// Non-transactional compare-and-swap with the same conflict visibility as
// nontxn_store. Used by the TLE lock and by non-HTM baseline algorithms
// that share data with transactions.
template <TxnWord T>
bool nontxn_cas(T* addr, T expected, T desired) noexcept {
  Orec& o = orec_for(addr);
  // Same signature-visibility protocol as nontxn_store. This is what keeps
  // TLE exclusivity intact under the signature backend: the TLE lock is
  // taken with nontxn_cas, and every speculative attempt reads the lock
  // word, so the acquirer's in-flight entry / ring publish is what dooms
  // in-flight readers that never load the lock orec at validation time.
  const bool sig = config().validation == ValidationPolicy::kSignature;
  const auto orec_idx = static_cast<uint64_t>(&o - orec_table());
  if (sig) sigring::begin_inflight_single(orec_idx);
  const OrecValue mine = make_locked(~0ULL >> 1);
  util::Backoff backoff(2, 64);
  OrecValue cur = o.value.load(std::memory_order_relaxed);
  for (;;) {
    if (!orec_is_locked(cur) &&
        o.value.compare_exchange_weak(cur, mine, std::memory_order_acq_rel)) {
      break;
    }
    backoff.pause();
    cur = o.value.load(std::memory_order_relaxed);
  }
  const T observed = detail::atomic_word_load(addr);
  bool success = false;
  if (observed == expected) {
    detail::atomic_word_store(addr, desired);
    success = true;
  }
  if (success) {
    const ClockStamp stamp =
        writer_stamp(config().clock_policy, orec_version(cur),
                     orec_version(cur), util::thread_id() + 1);
    if (sig) sigring::publish_single(orec_idx, stamp.wv);
    o.value.store(make_version(stamp.wv), std::memory_order_release);
  } else {
    // Failed CAS: memory unchanged, orec restored — nothing to publish.
    o.value.store(cur, std::memory_order_release);
  }
  if (sig) sigring::end_inflight();
  return success;
}

// Non-transactional load. Single-word atomic; values written by an
// in-flight commit may be observed the instant they are written back.
template <TxnWord T>
T nontxn_load(const T* addr) noexcept {
  return detail::atomic_word_load(addr);
}

// Dooms any in-flight transaction that has read a word in [p, p+bytes) by
// advancing the covering ownership records. The pool allocator calls this
// on deallocation — it is the mechanism behind the sandboxing guarantee
// that a transaction dereferencing freed memory aborts instead of faulting.
//
// When `poison` is true, each fully-covered 8-byte word is overwritten with
// 0xDD bytes *under its ownership-record lock*, so the poisoning itself is
// correctly versioned: a transaction either reads the pre-free value at a
// read version that predates the free (and is serialized before it), or
// observes the version bump and aborts. Poison lets tests catch
// non-transactional use-after-free, which the orec mechanism cannot see.
void invalidate_range(void* p, std::size_t bytes, bool poison = false) noexcept;

inline constexpr uint64_t kPoisonWord = 0xDDDDDDDDDDDDDDDDULL;

// Exclusive, non-speculative execution section: acquires the global
// fallback lock, dooms in-flight transactions, and blocks new ones from
// committing until destruction. The §6 escape hatch for operations that
// cannot make progress speculatively (e.g. a FastCollect traversal starved
// by deregister churn): inside the section, shared state may be read with
// nontxn_load at full fidelity.
class SerialSection {
 public:
  SerialSection() { detail::tle_acquire(); }
  // A thread killed by the crash injector abandons, not releases, the lock
  // (survivors steal it via the recoverable-lock protocol); releasing here
  // would hand the thief's ownership away.
  ~SerialSection() {
    if (!crash::self_dead()) detail::tle_release();
  }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;
};

// Outcome of a single transaction attempt (for callers that drive their own
// retry policy, e.g. the adaptive telescoping controller of §3.4).
struct TryResult {
  bool committed;
  AbortCode code;  // kNone when committed
};

// Runs `body` as exactly one transaction attempt (no retry, no TLE).
// `body` must be void(Txn&). Callers drive their own retry loops, so the
// fault injector treats each call as a one-attempt block, and a non-TxnAbort
// exception escaping the body dooms the attempt before propagating.
template <class F>
TryResult try_once(F&& body) {
  if (config().serialize_all) {
    // Serial-execution ablation: no speculation, always under the lock.
    detail::tle_acquire();
    struct Release {
      // Abandon (do not release) the lock if the crash injector killed us
      // inside the section; a survivor steals it.
      ~Release() {
        if (!crash::self_dead()) detail::tle_release();
      }
    } release;
    try {
      Txn txn(/*lock_mode=*/true);
      if (crash::injection_enabled()) [[unlikely]] {
        crash::heartbeat();
        const crash::Decision cd = crash::plan(crash::begin_block());
        if (cd.fire) txn.arm_crash(cd.point, cd.after_ops);
      }
      local_stats().lock_fallbacks++;
      obs::trace_tle_fallback(0);
      try {
        body(txn);
      } catch (const TxnAbort&) {
        throw;
      } catch (const crash::ThreadCrash&) {
        throw;  // a dying thread is not a doomed attempt: no abort ledger
      } catch (...) {
        txn.doom();
        throw;
      }
      txn.commit();
      local_stats().commits++;
      return TryResult{true, AbortCode::kNone};
    } catch (const TxnAbort& a) {  // explicit abort under the lock
      local_stats().aborts++;
      local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
      obs::record_retry(static_cast<uint8_t>(a.code), 0);
      return TryResult{false, a.code};
    }
  }
  if (nontxn_load(detail::tle_lock_word()) != 0) {
    // Behave like a transaction started while the fallback lock is held.
    local_stats().aborts++;
    local_stats()
        .aborts_by_code[static_cast<std::size_t>(AbortCode::kConflict)]++;
    return TryResult{false, AbortCode::kConflict};
  }
  try {
    Txn txn;
    if (fault::injection_enabled()) [[unlikely]] {
      const fault::Decision d = fault::plan(fault::begin_block(), 0);
      if (d.fire) txn.arm_fault(d.code, d.after_ops);
    }
    if (crash::injection_enabled()) [[unlikely]] {
      crash::heartbeat();
      crash::Decision cd = crash::plan(crash::begin_block());
      if (cd.fire) {
        // try_once never escalates to the fallback lock, so a kLockHeld
        // plan degenerates to a commit-entry death of this attempt.
        if (cd.point == crash::Point::kLockHeld) {
          cd.point = crash::Point::kCommitEntry;
          cd.after_ops = ~0u;
        }
        txn.arm_crash(cd.point, cd.after_ops);
      }
    }
    if (txn.load(detail::tle_lock_word()) != 0) {
      txn.abort(AbortCode::kConflict);
    }
    try {
      body(txn);
    } catch (const TxnAbort&) {
      throw;
    } catch (const crash::ThreadCrash&) {
      throw;  // a dying thread is not a doomed attempt: no abort ledger
    } catch (...) {
      txn.doom();
      throw;
    }
    detail::commit_timed(txn);
    local_stats().commits++;
    return TryResult{true, AbortCode::kNone};
  } catch (const TxnAbort& a) {
    local_stats().aborts++;
    local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
    obs::record_retry(static_cast<uint8_t>(a.code), 0);
    return TryResult{false, a.code};
  }
}

// Runs `body` atomically, retrying until it commits. How each failed
// attempt is retried — immediately, after jittered backoff, or escalated to
// the fallback lock — is decided by the cause-aware retry controller
// (htm/retry.hpp; Config::retry_policy selects the legacy fixed behaviour).
// Each call-site additionally owns a sticky abort-storm state: under
// sustained conflict the whole site degrades to serialized (TLE) execution
// and recovers once commits return. Returns the body's return value. This
// is the `atomic { ... }` of the paper's pseudocode.
//
// A non-TxnAbort exception thrown by the body dooms the attempt (orec locks
// released, buffered stores discarded, abort hooks run) and then propagates
// to the caller — the block is NOT retried; rethrowing out of an atomic
// block is the supported way to bail out with a user error.
template <class F>
decltype(auto) atomic(F&& body) {
  using Result = std::invoke_result_t<F&, Txn&>;
  // One storm state per call-site: each distinct body lambda instantiates
  // its own copy of this template, so the static is per-source-location.
  static detail::StormState storm;
  detail::RetryController rc(config(), storm);
  for (;;) {
    if (rc.use_lock()) {
      struct TleGuard {
        TleGuard() { detail::tle_acquire(); }
        // A crash inside the section abandons the lock for a survivor to
        // steal; releasing a stamp that is no longer ours would be wrong.
        ~TleGuard() {
          if (!crash::self_dead()) detail::tle_release();
        }
      };
      try {
        TleGuard guard;
        Txn txn(/*lock_mode=*/true);
        rc.arm_crash(txn);  // a kLockHeld plan dies right here, lock held
        local_stats().lock_fallbacks++;
        obs::trace_tle_fallback(rc.attempt());
#if defined(DC_TRACE)
        txn.set_trace_attempt(rc.attempt());
#endif
        if constexpr (std::is_void_v<Result>) {
          try {
            body(txn);
          } catch (const TxnAbort&) {
            throw;
          } catch (const crash::ThreadCrash&) {
            throw;  // dying thread, not a doomed attempt: no abort ledger
          } catch (...) {
            txn.doom();
            throw;
          }
          txn.commit();
          local_stats().commits++;
          rc.on_commit();
          return;
        } else {
          Result r = [&]() -> Result {
            try {
              return body(txn);
            } catch (const TxnAbort&) {
              throw;
            } catch (const crash::ThreadCrash&) {
              throw;
            } catch (...) {
              txn.doom();
              throw;
            }
          }();
          txn.commit();
          local_stats().commits++;
          rc.on_commit();
          return r;
        }
      } catch (const TxnAbort& a) {
        // An explicit abort under the lock: release, pause, retry (the
        // block stays in lock mode — escalation is sticky).
        local_stats().aborts++;
        local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
        rc.on_lock_abort(a.code);
        continue;
      }
    }
    try {
      Txn txn;
#if defined(DC_TRACE)
      txn.set_trace_attempt(rc.attempt());
#endif
      rc.arm_fault(txn);
      rc.arm_crash(txn);
      if (txn.load(detail::tle_lock_word()) != 0) {
        txn.abort(AbortCode::kConflict);
      }
      if constexpr (std::is_void_v<Result>) {
        try {
          body(txn);
        } catch (const TxnAbort&) {
          throw;
        } catch (const crash::ThreadCrash&) {
          throw;  // dying thread, not a doomed attempt: no abort ledger
        } catch (...) {
          txn.doom();
          throw;
        }
        detail::commit_timed(txn);
        local_stats().commits++;
        rc.on_commit();
        return;
      } else {
        Result r = [&]() -> Result {
          try {
            return body(txn);
          } catch (const TxnAbort&) {
            throw;
          } catch (const crash::ThreadCrash&) {
            throw;
          } catch (...) {
            txn.doom();
            throw;
          }
        }();
        detail::commit_timed(txn);
        local_stats().commits++;
        rc.on_commit();
        return r;
      }
    } catch (const TxnAbort& a) {
      local_stats().aborts++;
      local_stats().aborts_by_code[static_cast<std::size_t>(a.code)]++;
      rc.on_abort(a.code);
    }
  }
}

}  // namespace dc::htm
