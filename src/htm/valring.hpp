// Commit-signature ring + in-flight writer table for the signature
// validation backend (ValidationPolicy::kSignature; DESIGN.md §11).
//
// Writers that change memory — visible writing commits, lock-mode
// write-backs, strong-atomicity stores, range invalidations — make their
// write set observable to signature validation in two stages:
//
//   1. In-flight table: before acquiring its first orec lock the writer
//      parks its write signature in a per-thread seqlocked slot and raises
//      its bit in one shared occupancy mask; the bit drops only after the
//      locks are released. An intersecting in-flight entry is a conflict
//      regardless of the reader's snapshot — it is the signature analog of
//      the exact walk's "orec locked ⇒ abort", covering the window in which
//      the writer's stamp either does not exist yet or is not yet published.
//   2. Ring: after write-back and before releasing its locks the writer
//      publishes {write signature, commit stamp} into a bounded global ring.
//      Validation intersects the read signature against every entry whose
//      stamp exceeds the reader's snapshot. Publish-before-release is the
//      linchpin: any reader that can observe a released orec version also
//      observes the matching ring entry (the release store orders the
//      publish before it), so a committed-but-unpublished write is never
//      visible.
//
// Eviction is handled by a watermark: before overwriting a slot the
// publisher raises a global CAS-max watermark over the evicted entry's
// stamp, so a reader whose snapshot predates anything evicted sees
// watermark > rv after its scan and falls back to the exact walk instead of
// trusting an incomplete ring. Ordering: the watermark is raised before the
// slot's seqlock reopens, and readers check it after scanning, so an entry
// can never vanish into the gap between a reader's slot visit and its
// watermark check.
//
// All signature payload words are relaxed atomics guarded by per-slot
// seqlocks; a reader that cannot stabilize a slot degrades conservatively
// (in-flight ⇒ conflict, ring ⇒ exact fallback). Nothing here blocks.
#pragma once

#include <atomic>
#include <cstdint>

#include "htm/sigset.hpp"

namespace dc::htm::sigring {

// Ring capacity. 256 entries cover the last 256 visible writes process-wide;
// with the stamp filter a scan is one relaxed load per stale slot and a
// word-wise AND (or one precise index probe) per fresh one. Sized so a scan
// (~6KB of packed slot headers) stays cheap next to the O(|read set|) orec
// walk it replaces, while keeping wrap — hence exact-walk fallback — rare
// for read-mostly workloads.
inline constexpr uint32_t kRingSize = 256;

// One in-flight slot per dense thread id. Threads beyond the table (ids >=
// kInflightSlots) cannot park a signature, so their first publish pins the
// watermark at the maximum: every signature validation from then on falls
// back to the exact walk. Correct, observable (sig_ring_overflows), merely
// slow.
inline constexpr uint32_t kInflightSlots = 64;

enum class ScanOutcome : uint8_t {
  kValid = 0,   // no intersection with any writer newer than the snapshot
  kConflict,    // intersection (possibly a Bloom false positive) — abort
  kFallback,    // ring cannot decide — rerun the exact walk
};

struct ScanResult {
  ScanOutcome outcome;
  // Largest stamp among intersecting ring entries (0 for in-flight hits and
  // non-conflict outcomes). The abort path feeds it to clock_catch_up so the
  // retry's fresh snapshot covers the entry instead of re-hitting it — the
  // liveness valve under GV5, whose sloppy stamps can run arbitrarily far
  // ahead of the shared clock.
  uint64_t hit_stamp;
};

// Parks `write_sig` in the calling thread's in-flight slot and raises its
// occupancy bit. Call before the first orec-lock CAS of the write-back;
// pair with end_inflight() after the locks are released (on every path,
// including aborts). Threads without a slot degrade as described above.
void begin_inflight(const SigSet& write_sig) noexcept;

// Single-orec form (strong-atomicity stores, one-orec commits): the entry
// is stored as the raw orec index, not a degenerate signature. Publishing
// skips the signature copy, and the scan tests it with maybe_contains (both
// hash bits must appear in the read signature), squaring the false-positive
// rate relative to the any-shared-bit signature intersection.
void begin_inflight_single(uint64_t orec_idx) noexcept;

// Drops the calling thread's occupancy bit. The parked signature stays in
// the slot as garbage — masked off until the next begin_inflight.
void end_inflight() noexcept;

// Publishes {write_sig, stamp} into the ring. Call after write-back and
// BEFORE releasing the orec locks (see the ordering argument above). stamp
// must be the commit version the locks are about to be released to (the
// maximum across orecs when they differ, as in lock mode and range
// invalidation); stamps are never 0. The _single form uses the precise
// one-orec representation described at begin_inflight_single.
void publish(const SigSet& write_sig, uint64_t stamp) noexcept;
void publish_single(uint64_t orec_idx, uint64_t stamp) noexcept;

// Intersects `read_sig` against all in-flight writers (except the calling
// thread's own slot — a committing transaction validating its own
// read/write overlap must not self-abort) and against every ring entry with
// stamp > rv. See ScanOutcome; never blocks.
ScanResult scan(const SigSet& read_sig, uint64_t rv) noexcept;

// Largest stamp ever evicted from the ring (0 = nothing evicted yet).
uint64_t evicted_watermark() noexcept;

// Largest stamp ever published (0 = nothing published yet). Signature-mode
// transactions absorb this into the shared clock at begin: under GV5 the
// ring fills with sloppy stamps that run arbitrarily far ahead of the clock
// a reader samples its snapshot from, and a snapshot below the whole ring
// makes every scan intersect every entry — all Bloom noise, no information.
// Absorbing the newest published stamp (clock rule 2, the same catch-up
// readers perform when they trip over a sloppy orec) restores the intended
// regime: only writes that commit during the transaction look new.
uint64_t newest_stamp() noexcept;

// Total entries ever published (diagnostics/tests).
uint64_t published_count() noexcept;

// Differential-oracle ledger (Config::validation_crosscheck): number of
// validations where the exact walk found a conflict but the signature scan
// reported valid. Must stay 0 — a nonzero value is a soundness bug in the
// backend, not a tunable. Process-global, reset only by reset().
std::atomic<uint64_t>& crosscheck_false_negatives() noexcept;

// Test-only: clears the ring, the in-flight table, the watermark, and the
// crosscheck ledger. Call only while no transactions or strong-atomicity
// operations run.
void reset() noexcept;

}  // namespace dc::htm::sigring
