// Deterministic thread-death injection and the liveness registry that lets
// survivors recover from it.
//
// PR 4's fault model (htm/fault.hpp) covers *aborting* threads: the attempt
// dies, the retry loop re-executes, and no state escapes. This layer covers
// *dying* threads — the hardest failure mode the paper's thesis speaks to
// (§1, §3: strong atomicity keeps reclamation safe even when participants
// misbehave). A crash kills the simulated thread at an arbitrary point by
// abandoning its state without cleanup: mid-transaction, at commit entry,
// or while holding the TLE fallback lock. The substrate's job is that none
// of this corrupts survivors:
//
//  * A crash always fires *before* commit write-back, so the enclosing
//    atomic block never commits — hardware rollback discards the buffered
//    write set and every single-transaction operation stays all-or-nothing.
//  * The TLE lock word is owner-stamped ((epoch << 16) | (tid + 1)); waiters
//    that observe a dead owner across a validated timeout steal the lock
//    (htm/htm.cpp, `lock_recoveries`).
//  * A dead thread's registered Collect handles are reaped by survivors via
//    the lease layer (collect/lease.hpp, `orphans_reaped`).
//
// Injection modes mirror fault.hpp and are combinable:
//
//  * Rate-based: Config::crash.rate is the per-atomic-block probability that
//    the block's owning thread dies inside it, drawn from a per-thread
//    stream seeded with Config::crash.seed mixed with the dense thread id.
//  * Scripted: set_script() installs explicit schedules ("kill thread t in
//    its n-th block at point p after m ops").
//  * Self-scheduled: schedule_self() arms a one-shot kill for the calling
//    thread only — the deterministic trigger tests use to die at an exact
//    point (e.g. while holding the TLE lock) without touching other threads.
//
// Only threads that opted in — by running inside run_victim() or calling
// enable_self() — are ever killed by rate or scripted draws. This keeps the
// test harness's main thread and a benchmark's measuring threads immortal
// under a global DC_CRASH rate.
//
// The crash itself is a crash::ThreadCrash exception thrown from inside the
// armed transaction. It is deliberately *not* derived from TxnAbort or
// std::exception: the substrate's wrappers rethrow it untouched (a crash is
// not an abort — no retry, no abort accounting), and run_victim() is the
// only intended catcher. Once a thread has crashed it is marked dead in the
// liveness registry and must not run further Collect operations.
#pragma once

#include <cstdint>
#include <vector>

namespace dc::htm::crash {

// Matches any thread / any block / any worker in a ScriptedCrash.
inline constexpr uint32_t kAnyThread = ~0u;
inline constexpr uint64_t kAnyBlock = ~0ull;
inline constexpr uint32_t kAnyWorker = ~0u;

// Where inside the atomic block the thread dies.
enum class Point : uint8_t {
  // From a transactional load/store after `after_ops` ops (or at commit
  // entry if the body issues fewer) — the mid-transaction death.
  kTxnOp = 0,
  // At commit() entry: the body ran to completion but the commit never
  // starts. Under the TLE lock this dies with the write set still buffered,
  // which is exactly the state a lock steal must be able to discard.
  kCommitEntry,
  // Force the block onto the TLE fallback lock first, then die inside it:
  // the thread is killed *while holding the lock*. Waiters must detect the
  // dead owner and steal the lock.
  kLockHeld,
};

const char* to_string(Point p) noexcept;

// The simulated thread death. Intentionally not a TxnAbort and not a
// std::exception: nothing in the substrate may absorb it by accident.
struct ThreadCrash {
  Point point = Point::kTxnOp;
};

// One scripted kill: crash the `block`-th atomic block begun on thread
// `tid` (counted from the last reset_thread() there) at `point`, after the
// block has issued `after_ops` transactional ops. Matches opted-in
// (run_victim/enable_self) threads only.
//
// `worker` addresses the kill by *logical worker index* instead of (or in
// addition to) the dense thread id: a service worker pool binds each
// member to a stable index via bind_worker(), and that binding survives the
// OS thread being respawned after a death — so "kill worker 3" stays
// meaningful across incarnations, which raw thread ids (recycled at thread
// exit) cannot promise. kAnyWorker (the default) keeps the pre-existing
// tid/block addressing semantics unchanged.
struct ScriptedCrash {
  uint32_t tid = kAnyThread;
  uint64_t block = kAnyBlock;
  Point point = Point::kTxnOp;
  uint32_t after_ops = 0;
  uint32_t worker = kAnyWorker;
};

// What plan() decided for one atomic block.
struct Decision {
  bool fire = false;
  Point point = Point::kTxnOp;
  uint32_t after_ops = 0;
};

// Identifies one incarnation of a dense thread id. The epoch disambiguates
// id recycling: a new OS thread that inherits a dead thread's dense id
// bumps the slot's epoch, so stale tokens (lease entries, the stamped TLE
// lock word) remain recognizably orphaned.
struct Token {
  uint32_t tid = 0;
  uint64_t epoch = 0;
};

// True when any injection source is active (rate > 0, a script installed,
// a pending self-schedule, or a dead thread whose mess may still need
// recovery). Snapshotted once per block / lock acquisition so the
// injection-off hot path costs one predictable branch.
bool injection_enabled() noexcept;

// Returns the calling thread's crash-block index (post-incrementing the
// per-thread counter, separate from fault::begin_block's).
uint64_t begin_block() noexcept;

// Decides whether the calling thread dies in this block. Self-schedules
// match first, then scripted entries, then the rate draw; scripted and
// rate kills hit opted-in threads only.
Decision plan(uint64_t block) noexcept;

// Installs (replaces) the scripted schedule. Quiescent-only, like
// fault::set_script. An empty vector clears the script.
void set_script(std::vector<ScriptedCrash> script);
void clear_script();

// Arms a one-shot kill for the calling thread: die at `point` in the
// atomic block begun `blocks_from_now` blocks from now (0 = the next
// block), after `after_ops` transactional ops. Implies opt-in for that one
// kill even outside run_victim().
void schedule_self(Point point, uint64_t blocks_from_now = 0,
                   uint32_t after_ops = 0) noexcept;

// Marks the calling thread kill-eligible for rate/scripted draws until it
// dies or reset_thread() runs.
void enable_self() noexcept;

// ----- Worker addressing + runtime kill mailbox ----------------------------
// set_script() is quiescent-only, which is fine for tests but useless to a
// chaos orchestrator that wants to kill a worker *while the service runs*.
// The mailbox is the runtime-safe alternative: one atomic slot per logical
// worker index, armed by any thread at any time and consumed by the bound
// worker at its next atomic block. Pending kills turn injection_enabled()
// on, so an otherwise-injection-free run still takes the instrumented path
// the moment a kill is requested.

// Binds the calling thread to logical worker index `widx` (< kMaxWorkers)
// AND marks it kill-eligible — the pool-construction-time opt-in: call once
// when the worker starts instead of threading run_victim's per-call opt-in
// through every operation. The binding is thread-local and cleared by
// reset_thread(); a respawned worker re-binds the same index.
inline constexpr uint32_t kMaxWorkers = 256;
void bind_worker(uint32_t widx) noexcept;

// The calling thread's bound worker index, or kAnyWorker if unbound.
uint32_t bound_worker() noexcept;

// Arms a one-shot kill for whichever opted-in thread is currently bound to
// `widx`: it fires at that worker's next atomic block, at `point`, after
// `after_ops` transactional ops. `after_blocks` defers the death: the
// consuming block converts the kill into a self-schedule that fires that
// many atomic blocks later (an idle worker consumes the mailbox on its
// next session's first block — admission — where death orphans nothing;
// a small deferral lands the kill mid-session with a lease held). Both
// counts are truncated to 16 bits. Safe from any thread while the victim
// runs (one relaxed exchange on the victim's slot). Re-arming an already
// armed slot overwrites the pending kill. Returns false for an
// out-of-range index.
bool request_worker_kill(uint32_t widx, Point point = Point::kTxnOp,
                         uint32_t after_ops = 0,
                         uint32_t after_blocks = 0) noexcept;

// Number of armed worker kills not yet consumed.
uint32_t worker_kills_pending() noexcept;

// Runs `body` on the calling thread with kill-eligibility enabled and
// absorbs a ThreadCrash: returns true if the body completed, false if it
// crashed. After a crash the thread is dead (self_dead()) and must not run
// further Collect operations; locks it abandoned are recoverable by
// survivors.
template <typename Body>
bool run_victim(Body&& body) {
  enable_self();
  try {
    body();
    return true;
  } catch (const ThreadCrash&) {
    return false;
  }
}

// ----- Liveness registry ---------------------------------------------------
// One padded slot per dense thread id: a heartbeat the thread bumps while
// injection is enabled, the incarnation epoch, and the authoritative dead
// flag set when a crash fires (the simulator knows death exactly, like a
// robust futex's owner-died bit; the heartbeat exists so waiters validate a
// timeout instead of trusting a single racy read).

// Bumps the calling thread's heartbeat (registering its slot on first use).
void heartbeat() noexcept;

// Current heartbeat / epoch of a dense thread id.
uint64_t heartbeat_of(uint32_t tid) noexcept;
uint64_t epoch_of(uint32_t tid) noexcept;

// The calling thread's (tid, epoch) token.
Token self_token() noexcept;

// True if the incarnation named by the token is gone: its dead flag is set,
// or its slot's epoch moved on (the id was recycled by a new thread).
bool token_orphaned(Token t) noexcept;

// True if the incarnation currently holding dense id `tid` is dead.
bool is_dead(uint32_t tid) noexcept;

// Marks the calling thread dead. Called by the crash machinery; exposed for
// tests that simulate death without a transaction in flight.
void mark_dead() noexcept;

// True if the calling thread has crashed.
bool self_dead() noexcept;

// Rezeroes the calling thread's block counter, re-seeds its draw stream,
// clears any pending self-schedule, and revives the thread (fresh epoch).
// Tests call it so scripts address blocks relative to the test's start.
void reset_thread() noexcept;

// Clears the script and revives every slot (fresh epochs, dead flags
// cleared, dead-count zeroed). Quiescent-only; tests call it between runs.
void reset_all() noexcept;

}  // namespace dc::htm::crash
