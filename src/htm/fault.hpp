// Deterministic spurious-abort injection (the Rock best-effort fault model).
//
// The paper's substrate is *best-effort*: Rock transactions failed for
// reasons unrelated to the data they touched — interrupts, TLB misses,
// register-window save/restore traps [Dice et al., ASPLOS'09 §4] — and the
// software layers above (retry loops, backoff, the §6 TLE fallback) exist
// precisely to absorb those failures. This simulator never hits such
// conditions on its own, so without injection those layers are dead code.
//
// Two injection modes, combinable:
//
//  * Rate-based: Config::fault.rate gives the per-speculative-attempt
//    probability of a spurious abort. Draws come from a per-thread
//    util::Xoshiro256 stream seeded with Config::fault.seed mixed with the
//    dense thread id, so a given (seed, thread, attempt sequence) faults at
//    the same points on every run. The injected cause (kInterrupt /
//    kTlbMiss / kSaveRestore) and the number of transactional ops the
//    attempt survives before the abort fires are drawn from the same
//    stream.
//
//  * Scripted: set_script() installs an explicit schedule — "abort attempt
//    k of the n-th transaction on thread t after m ops with cause c" — for
//    reproducible unit tests of exact retry behaviour. Scripted entries are
//    matched before the rate draw.
//
// Mechanics: htm::atomic()/try_once() consult plan() once per speculative
// attempt and, if it fires, *arm* the Txn (Txn::arm_fault). The armed
// attempt raises the fault from its next transactional load/store once the
// op countdown expires, or at commit() entry if the body issued fewer ops —
// so an armed attempt always aborts, making the per-attempt rate exact.
// Lock-mode (TLE) attempts are never armed: the fallback path models
// non-speculative execution, which Rock's checkpoint machinery did not
// cover.
//
// Thread attribution uses util::thread_id(); the per-thread transaction
// counter read by scripts advances only while injection is enabled, and
// reset_thread() rezeroes the calling thread's counter and re-seeds its
// stream (tests call it to make block numbering start at 0).
#pragma once

#include <cstdint>
#include <vector>

#include "htm/abort.hpp"

namespace dc::htm::fault {

// Matches any thread / any block in a ScriptedAbort.
inline constexpr uint32_t kAnyThread = ~0u;
inline constexpr uint64_t kAnyBlock = ~0ull;

// One scripted injection: abort attempt `attempt` of the `block`-th atomic
// block begun on thread `tid` (both counted from the last reset_thread()
// on that thread), with cause `code`, after the attempt has issued
// `after_ops` transactional loads/stores (0 = the first op aborts; larger
// than the body's op count = the abort fires at commit).
struct ScriptedAbort {
  uint32_t tid = kAnyThread;
  uint64_t block = kAnyBlock;
  uint32_t attempt = 0;
  AbortCode code = AbortCode::kInterrupt;
  uint32_t after_ops = 0;
};

// What plan() decided for one attempt.
struct Decision {
  bool fire = false;
  AbortCode code = AbortCode::kNone;
  uint32_t after_ops = 0;
};

// True when any injection source is active (rate > 0 or a script is
// installed). The retry loop snapshots this once per block so the
// injection-off hot path costs one predictable branch.
bool injection_enabled() noexcept;

// Returns the calling thread's atomic-block index (post-incrementing the
// per-thread counter). Called once per atomic block while injection is
// enabled.
uint64_t begin_block() noexcept;

// Decides whether attempt `attempt` of block `block` on the calling thread
// should be hit. Scripted entries match first; otherwise the rate draw.
Decision plan(uint64_t block, uint32_t attempt) noexcept;

// Installs (replaces) the scripted schedule. Quiescent-only, like config():
// set while no transactions run. An empty vector clears the script.
void set_script(std::vector<ScriptedAbort> script);
void clear_script();

// Runtime rate override for externally-orchestrated fault storms. The base
// Config::fault.rate is a plain double and therefore quiescent-only; a
// chaos orchestrator that wants to raise the spurious-abort rate for a
// timed window *while workers run* sets the override instead (one atomic,
// read per attempt). A negative value (the default) clears the override
// and falls back to Config::fault.rate; values are clamped to [0, 1].
// The per-thread draw streams are unaffected — only the threshold moves.
void set_rate_override(double rate) noexcept;
double rate_override() noexcept;  // negative when no override is active

// The rate plan() is currently drawing against (override if set, else
// Config::fault.rate).
double effective_rate() noexcept;

// Rezeroes the calling thread's block counter and re-seeds its draw stream
// from the current Config::fault.seed. Tests call this so scripts can
// address blocks relative to the test's start.
void reset_thread() noexcept;

}  // namespace dc::htm::fault
