// Pluggable global-version-clock policies (Config::clock_policy).
//
// Every site that releases an ownership record at a fresh version — a
// writing commit, a lock-mode store, a strong-atomicity store, a range
// invalidation — obtains that version from writer_stamp(); every reader
// that observes a version ahead of its snapshot recovers through
// resample_clock(). Concentrating both rules here is what makes the policy
// pluggable: the substrate never touches the global clock directly.
//
// Safety contract (the TL2 argument, restated for sloppy stamps):
//
//  1. Per-orec versions never decrease. writer_stamp() floors the new
//     version at one past the highest version being replaced, so even a
//     blind overwrite of a sloppily-stamped word keeps the orec monotone
//     (and a GV1 run following a GV5 run cannot step versions backwards).
//
//  2. A transaction's read version never exceeds the shared clock at the
//     moment it was adopted. Begin samples the clock; resample_clock()
//     CAS-maxes the clock up to any observed sloppy version *before* the
//     reader adopts it. Hence for any writer, stamp > clock-sample >= the
//     snapshot of every transaction that began (or extended) earlier, so no
//     reader can mix pre- and post-commit values of one writer's write set
//     without its validation noticing.
//
//  3. Readers that observe a version ahead of their snapshot revalidate
//     their entire read set at the old snapshot before adopting the new one
//     (Txn::try_extend), which closes the window between rules 1 and 2.
#pragma once

#include <cstdint>

#include "htm/config.hpp"
#include "htm/orec.hpp"
#include "htm/stats.hpp"

namespace dc::htm {

// Result of writer_stamp(): the version to release the written orecs at,
// and whether the clock proves the read set cannot have changed since the
// snapshot was taken (GV1's wv == rv+1 fast path; never true under GV5,
// where sloppy stamps advance versions invisibly to the shared clock).
struct ClockStamp {
  uint64_t wv;
  bool read_set_unchanged;
};

// Advances the shared clock to at least `v`. Returns true iff this call's
// CAS performed the advance (a racing winner covering `v` returns false).
inline bool clock_catch_up(uint64_t v) noexcept {
  std::atomic<uint64_t>& gv = global_clock();
  uint64_t cur = gv.load(std::memory_order_acquire);
  while (cur < v) {
    if (gv.compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                 std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

// The version a visible write releases its orecs at.
//   snapshot:  the writer's read version.
//   prev_max:  highest version among the orecs being released (their
//              pre-lock values; 0 when unknown sites pass a single prev).
//   stride:    the writer's nonzero per-thread stride (dense thread id + 1);
//              GV5 stamps from different threads land on disjoint residues,
//              so concurrent disjoint commits rarely share a stamp.
inline ClockStamp writer_stamp(ClockPolicy policy, uint64_t snapshot,
                               uint64_t prev_max, uint64_t stride) noexcept {
  TxnStats& st = local_stats();
  if (policy == ClockPolicy::kGv1) {
    const uint64_t raw =
        global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;
    st.clock_bumps++;
    // raw == snapshot+1 proves no commit (GV1 or catch-up) intervened since
    // the snapshot; prev_max <= snapshot additionally rules out sloppy
    // residue from an earlier GV5 run hiding behind an unchanged clock.
    const bool unchanged = raw == snapshot + 1 && prev_max <= snapshot;
    return ClockStamp{raw > prev_max ? raw : prev_max + 1, unchanged};
  }
  uint64_t base = global_clock().load(std::memory_order_acquire);
  if (snapshot > base) base = snapshot;
  if (prev_max > base) base = prev_max;
  st.sloppy_stamps++;
  return ClockStamp{base + stride, false};
}

// The read version a transaction adopts after observing `observed` ahead of
// its snapshot. Keeps rule 2: the clock is raised to cover `observed`
// before the caller may adopt it. The caller must still revalidate its read
// set at the *old* snapshot before using the returned value.
inline uint64_t resample_clock(uint64_t observed) noexcept {
  uint64_t now = global_clock().load(std::memory_order_acquire);
  if (observed > now) {
    if (clock_catch_up(observed)) local_stats().clock_catchups++;
    now = observed;
  }
  return now;
}

}  // namespace dc::htm
