#include "htm/orec.hpp"

#include <memory>

namespace dc::htm {

Orec* orec_table() noexcept {
  // Heap-allocated once and intentionally leaked: orecs must outlive every
  // static-storage object that might run transactions during shutdown.
  static Orec* table = new Orec[kOrecCount];
  return table;
}

std::atomic<uint64_t>& global_clock() noexcept {
  alignas(dc::util::kCacheLine) static std::atomic<uint64_t> clock{0};
  return clock;
}

std::atomic<uint32_t>& writeback_count() noexcept {
  alignas(dc::util::kCacheLine) static std::atomic<uint32_t> count{0};
  return count;
}

}  // namespace dc::htm
