// Per-thread transaction statistics.
//
// The paper's evaluation reports abort behaviour indirectly (step-size
// adaptation, Figure 5/6) and we additionally surface commit/abort counts in
// every benchmark for diagnosis. Counters are thread-local and aggregated on
// demand, so the hot path is a plain increment.
#pragma once

#include <array>
#include <cstdint>

#include "htm/abort.hpp"

namespace dc::htm {

struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  std::array<uint64_t, static_cast<std::size_t>(AbortCode::kNumCodes)>
      aborts_by_code{};
  uint64_t lock_fallbacks = 0;  // atomic blocks completed under the TLE lock
  uint64_t nontxn_stores = 0;   // strong-atomicity stores

  TxnStats& operator+=(const TxnStats& o) noexcept {
    commits += o.commits;
    aborts += o.aborts;
    for (std::size_t i = 0; i < aborts_by_code.size(); ++i)
      aborts_by_code[i] += o.aborts_by_code[i];
    lock_fallbacks += o.lock_fallbacks;
    nontxn_stores += o.nontxn_stores;
    return *this;
  }

  double abort_rate() const noexcept {
    const uint64_t attempts = commits + aborts;
    return attempts == 0
               ? 0.0
               : static_cast<double>(aborts) / static_cast<double>(attempts);
  }
};

// The calling thread's counters (registered in a global registry on first
// use so aggregate_stats can sum across threads, including exited ones).
TxnStats& local_stats() noexcept;

// Sum of all threads' counters since the last reset.
TxnStats aggregate_stats() noexcept;

// Zeroes all threads' counters. Call only while no transactions run.
void reset_stats() noexcept;

}  // namespace dc::htm
