// Per-thread transaction statistics.
//
// The paper's evaluation reports abort behaviour indirectly (step-size
// adaptation, Figure 5/6) and we additionally surface commit/abort counts in
// every benchmark for diagnosis. Counters are thread-local and aggregated on
// demand, so the hot path is a plain increment.
//
// Counters are util::RelaxedCounter (single-writer cells with race-free
// relaxed reads): each cell is written only by its owning thread, which
// keeps the increment a plain add, while the continuous-telemetry sampler
// (obs/timeline.hpp) may call aggregate_stats() every few milliseconds with
// writers hot. Sums taken while threads run are per-cell-consistent, not
// cross-cell-consistent (a sampler may see a commit whose aborts_by_code
// entry lands in the next sample); window deltas absorb that skew.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "htm/abort.hpp"
#include "util/relaxed.hpp"

namespace dc::htm {

using Counter = util::RelaxedCounter;

struct TxnStats {
  Counter commits = 0;
  Counter aborts = 0;
  std::array<Counter, static_cast<std::size_t>(AbortCode::kNumCodes)>
      aborts_by_code{};
  Counter lock_fallbacks = 0;  // atomic blocks completed under the TLE lock
  Counter nontxn_stores = 0;   // strong-atomicity stores
  // Shared-clock fetch_adds performed by this thread (GV1 writing commits,
  // lock-mode/strong-atomicity stores, range invalidations). Read-only and
  // unchanged-value commits never bump the clock, and under
  // ClockPolicy::kGv5 neither do writing commits (they stamp sloppily; see
  // sloppy_stamps), so this counter makes the commit fast paths — and the
  // shared-write reduction the sloppy clock exists for — observable.
  Counter clock_bumps = 0;
  // Commits whose write-back changed memory (the transactions that pay a
  // clock bump under GV1). clock_bumps / writer_commits is the shared-write
  // cost per visible writing commit: ~1 under GV1, 0 under GV5.
  Counter writer_commits = 0;
  // GV5 stamps taken without touching the shared clock (writing commits,
  // lock-mode/strong-atomicity stores, range invalidations under kGv5).
  Counter sloppy_stamps = 0;
  // Successful read-version re-samples: loads that observed a version ahead
  // of the transaction's snapshot, revalidated the read set, and continued
  // instead of aborting (TL2 timestamp extension; under GV5 this is the
  // normal way readers absorb sloppy stamps).
  Counter clock_resamples = 0;
  // Re-samples that had to advance the shared clock to the observed sloppy
  // version (CAS-max). The only shared-clock *write* GV5 performs — counted
  // separately from clock_bumps so the zero-shared-write commit property
  // stays assertable.
  Counter clock_catchups = 0;
  // Write-back stores saved by commit-time coalescing of adjacent sub-word
  // runs (a run of k entries tiling one aligned word costs 1 store, saving
  // k-1).
  Counter coalesced_stores = 0;
  // Spurious aborts raised by the fault injector (htm/fault.hpp). Included
  // in aborts/aborts_by_code too; kept separately so "injection off" is a
  // checkable invariant (faults_injected must be 0).
  Counter faults_injected = 0;
  // Atomic blocks that escalated from speculation to the TLE lock (counted
  // once per block, at the first lock-mode attempt; serialize_all blocks —
  // which never intended to speculate — do not count). lock_fallbacks, by
  // contrast, counts lock-mode *attempts* including serialize_all.
  Counter tle_entries = 0;
  // Abort-storm detector transitions (htm/retry.hpp): call-sites entering /
  // leaving the sticky serialized mode.
  Counter storm_entries = 0;
  Counter storm_exits = 0;
  // Thread deaths raised by the crash injector (htm/crash.hpp). A crash is
  // *not* an abort: the enclosing block never commits and never retries, so
  // crashes appear in no other counter. "Injection off" stays a checkable
  // invariant (crashes_injected must be 0).
  Counter crashes_injected = 0;
  // TLE fallback locks stolen from a dead owner after a validated timeout
  // (htm/htm.cpp): the recoverable-lock protocol's success count.
  Counter lock_recoveries = 0;
  // Orphaned Collect handles of dead threads DeRegistered by a survivor-run
  // reaper (collect/lease.hpp).
  Counter orphans_reaped = 0;
  // Signature-backend validations (ValidationPolicy::kSignature) performed
  // by this thread: every commit-time validation and every timestamp-
  // extension revalidation that went through the signature scan, whatever
  // its outcome. Zero whenever the backend is kExact — a checkable
  // zero-overhead invariant, like faults_injected / crashes_injected.
  Counter sig_validations = 0;
  // Signature validations that aborted on a Bloom intersection the exact
  // walk (run once on that cold abort path, purely to classify) would have
  // passed: the backend's false-positive cost. Safe — the transaction just
  // retries — but the crossover measurement needs it observable.
  Counter sig_false_aborts = 0;
  // Signature validations that could not be decided from the ring — the
  // ring wrapped past the snapshot (eviction watermark), a slot never
  // stabilized, or the thread had no in-flight slot — and fell back to the
  // exact walk. The conservative escape hatch, counted so ring-sizing
  // regressions are visible.
  Counter sig_ring_overflows = 0;
  // Starvation accounting: the largest number of consecutive aborts any one
  // atomic block on this thread suffered before finally committing
  // (high-water mark; aggregated by max).
  Counter max_consec_aborts = 0;
  // High-water marks of per-attempt read-set / write-set entries *after*
  // dedup (a repeated load or store of one word counts once). These expose
  // the load-time read-set dedup and store-time write dedup directly.
  Counter max_read_set = 0;
  Counter max_write_set = 0;

  TxnStats& operator+=(const TxnStats& o) noexcept {
    commits += o.commits;
    aborts += o.aborts;
    for (std::size_t i = 0; i < aborts_by_code.size(); ++i)
      aborts_by_code[i] += o.aborts_by_code[i];
    lock_fallbacks += o.lock_fallbacks;
    nontxn_stores += o.nontxn_stores;
    clock_bumps += o.clock_bumps;
    writer_commits += o.writer_commits;
    sloppy_stamps += o.sloppy_stamps;
    clock_resamples += o.clock_resamples;
    clock_catchups += o.clock_catchups;
    coalesced_stores += o.coalesced_stores;
    faults_injected += o.faults_injected;
    tle_entries += o.tle_entries;
    storm_entries += o.storm_entries;
    storm_exits += o.storm_exits;
    crashes_injected += o.crashes_injected;
    lock_recoveries += o.lock_recoveries;
    orphans_reaped += o.orphans_reaped;
    sig_validations += o.sig_validations;
    sig_false_aborts += o.sig_false_aborts;
    sig_ring_overflows += o.sig_ring_overflows;
    if (o.max_consec_aborts > max_consec_aborts) {
      max_consec_aborts = o.max_consec_aborts;
    }
    if (o.max_read_set > max_read_set) max_read_set = o.max_read_set;
    if (o.max_write_set > max_write_set) max_write_set = o.max_write_set;
    return *this;
  }

  double abort_rate() const noexcept {
    const uint64_t attempts = commits + aborts;
    return attempts == 0
               ? 0.0
               : static_cast<double>(aborts) / static_cast<double>(attempts);
  }
};

// The calling thread's counters (registered in a global registry on first
// use so aggregate_stats can sum across threads, including exited ones).
//
// Registry retention contract: each thread's block is heap-allocated on the
// thread's first transaction and *retained for the process lifetime* — it
// is deliberately never freed when the thread exits. This is what lets
// benchmarks join their workers and then read aggregate_stats() without a
// torn sum, and it means:
//   * registered_thread_count() grows monotonically (thread-id recycling
//     does not reclaim blocks: a reused util::thread_id registers a fresh
//     block for the new thread);
//   * memory grows by sizeof(TxnStats) per distinct thread ever running a
//     transaction — bounded in practice, but do not spawn unbounded
//     short-lived transactional threads expecting the registry to shrink;
//   * reset_stats() ZEROES every block, including exited threads', and
//     frees none of them.
TxnStats& local_stats() noexcept;

// Sum of all threads' counters since the last reset.
TxnStats aggregate_stats() noexcept;

// Zeroes all threads' counters (exited threads' blocks included — see the
// retention contract above). Call only while no transactions run.
void reset_stats() noexcept;

// Number of per-thread blocks ever registered (live + exited threads).
// Monotonic; exposed so tests and diagnostics can observe the retention
// contract.
std::size_t registered_thread_count() noexcept;

}  // namespace dc::htm
