#include "htm/valring.hpp"

#include <bit>

#include "util/padded.hpp"
#include "util/thread_id.hpp"

namespace dc::htm::sigring {
namespace {

// How many times a reader retries an unstable seqlock before degrading.
// Writers hold a slot's seqlock only for the ~64-word signature copy, so a
// handful of retries outwaits any single writer; repeated instability means
// the slot is being republished under us and the conservative outcome is
// taken instead of spinning unboundedly.
constexpr int kSeqlockRetries = 64;

// Signature payload words are atomics accessed relaxed under the seqlock:
// the seqlock (acquire on seq, acquire fence before the re-check) provides
// the ordering, the atomic type keeps torn reads defined and TSan quiet.
//
// Single-orec writers (strong-atomicity stores, one-orec commits) dominate
// most workloads, and as degenerate Bloom signatures they would be both
// expensive (a full kWords copy to park two bits) and noisy (the word-wise
// AND fires on EITHER of the entry's two hash bits). Slots therefore carry
// the raw orec index when the write set is a single orec (`single` !=
// kNoSingle): publishing skips the signature copy entirely and the scan
// tests it with SigSet::maybe_contains — BOTH bits must be set in the read
// signature — which squares the false-positive rate at no soundness cost (a
// genuinely-read orec always has both bits set).
constexpr uint64_t kNoSingle = ~uint64_t{0};

// Ring storage is split structure-of-arrays: the scan's hot loop reads only
// the packed 24-byte headers (kRingSize of them span ~6 KB — a couple of
// dozen cache lines), and the 2 KB signature payload of a slot is touched
// only when its stamp beats the snapshot AND the entry is not in the
// precise single-orec form. With payloads inline the same scan strides one
// cache miss per slot across half a megabyte, which would tax every
// validation for data it almost never needs.
struct RingHdr {
  std::atomic<uint64_t> seq{0};    // even = stable, odd = being written
  std::atomic<uint64_t> stamp{0};  // commit version; 0 = never used
  std::atomic<uint64_t> single{kNoSingle};  // orec idx, or kNoSingle => sig
};

struct alignas(util::kCacheLine) RingSig {
  std::atomic<uint64_t> w[SigSet::kWords]{};
};

struct alignas(util::kCacheLine) InflightSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> single{kNoSingle};
  std::atomic<uint64_t> sig[SigSet::kWords]{};
};

RingHdr g_hdr[kRingSize];
RingSig g_payload[kRingSize];
InflightSlot g_inflight[kInflightSlots];
std::atomic<uint64_t> g_head{0};        // next ring sequence number
std::atomic<uint64_t> g_watermark{0};   // max evicted stamp (CAS-max)
std::atomic<uint64_t> g_occupancy{0};   // bit i = in-flight slot i active
std::atomic<uint64_t> g_published{0};
std::atomic<uint64_t> g_newest{0};      // max published stamp (CAS-max)
std::atomic<uint64_t> g_crosscheck_fn{0};

void cas_max(std::atomic<uint64_t>& a, uint64_t v) noexcept {
  uint64_t cur = a.load(std::memory_order_acquire);
  while (cur < v && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
  }
}

// Copies `sig` into `slot.sig` under its seqlock. Ring slots are claimed by
// CAS (two publishers can race for one slot only after head wraps the whole
// ring mid-copy); in-flight slots are owner-only, so their odd transition is
// a plain store.
void copy_words(std::atomic<uint64_t>* dst, const uint64_t* src) noexcept {
  for (uint32_t i = 0; i < SigSet::kWords; ++i) {
    dst[i].store(src[i], std::memory_order_relaxed);
  }
}

// Reads a slot's signature words and returns whether any ANDs with rs.
// Validity must be confirmed by the caller's seqlock re-check.
bool words_intersect(const std::atomic<uint64_t>* words,
                     const SigSet& rs) noexcept {
  const uint64_t* r = rs.words();
  for (uint32_t i = 0; i < SigSet::kWords; ++i) {
    if ((r[i] & words[i].load(std::memory_order_relaxed)) != 0) return true;
  }
  return false;
}

// True when the entry described by (single, sig words) may share an orec
// with rs. Validity must be confirmed by the caller's seqlock re-check.
bool entry_hits(uint64_t single, const std::atomic<uint64_t>* words,
                const SigSet& rs) noexcept {
  if (single != kNoSingle) return rs.maybe_contains(single);
  return words_intersect(words, rs);
}

// Parks an entry in the calling thread's in-flight slot. `sig` is null for
// the precise single-orec form.
void inflight_park(const SigSet* sig, uint64_t single) noexcept {
  const uint32_t tid = util::thread_id();
  if (tid >= kInflightSlots) {
    // No slot to park in: pin the watermark so every scan from now on falls
    // back to the exact walk. Permanent (until reset()) but sound, and loud
    // in sig_ring_overflows.
    cas_max(g_watermark, ~uint64_t{0});
    return;
  }
  InflightSlot& s = g_inflight[tid];
  const uint64_t s0 = s.seq.load(std::memory_order_relaxed);
  s.seq.store(s0 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.single.store(single, std::memory_order_relaxed);
  if (sig != nullptr) copy_words(s.sig, sig->words());
  s.seq.store(s0 + 2, std::memory_order_release);
  // acq_rel: the RMW's release side orders the entry copy before the bit
  // for any reader that acquires the mask.
  g_occupancy.fetch_or(uint64_t{1} << tid, std::memory_order_acq_rel);
}

}  // namespace

void begin_inflight(const SigSet& write_sig) noexcept {
  inflight_park(&write_sig, kNoSingle);
}

void begin_inflight_single(uint64_t orec_idx) noexcept {
  inflight_park(nullptr, orec_idx);
}

void end_inflight() noexcept {
  const uint32_t tid = util::thread_id();
  if (tid >= kInflightSlots) return;
  g_occupancy.fetch_and(~(uint64_t{1} << tid), std::memory_order_release);
}

namespace {

void publish_entry(const SigSet* sig, uint64_t single,
                   uint64_t stamp) noexcept {
  const uint64_t idx =
      g_head.fetch_add(1, std::memory_order_relaxed) & (kRingSize - 1);
  RingHdr& hdr = g_hdr[idx];
  uint64_t s0 = hdr.seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((s0 & 1) == 0 &&
        hdr.seq.compare_exchange_weak(s0, s0 + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      break;
    }
    s0 = hdr.seq.load(std::memory_order_relaxed);
  }
  // Raise the watermark over the entry being evicted BEFORE the slot
  // reopens: a reader that misses the old entry either catches the seqlock
  // odd/moved (and degrades) or runs its post-scan watermark check against
  // a value already covering the eviction.
  const uint64_t old_stamp = hdr.stamp.load(std::memory_order_relaxed);
  if (old_stamp != 0) cas_max(g_watermark, old_stamp);
  hdr.single.store(single, std::memory_order_relaxed);
  if (sig != nullptr) copy_words(g_payload[idx].w, sig->words());
  hdr.stamp.store(stamp, std::memory_order_relaxed);
  hdr.seq.store(s0 + 2, std::memory_order_release);
  g_published.fetch_add(1, std::memory_order_relaxed);
  cas_max(g_newest, stamp);
}

}  // namespace

void publish(const SigSet& write_sig, uint64_t stamp) noexcept {
  publish_entry(&write_sig, kNoSingle, stamp);
}

void publish_single(uint64_t orec_idx, uint64_t stamp) noexcept {
  publish_entry(nullptr, orec_idx, stamp);
}

ScanResult scan(const SigSet& read_sig, uint64_t rv) noexcept {
  // Stage 1: in-flight writers. Their stamps are undrawn or unpublished, so
  // the snapshot cannot filter them; an intersecting in-flight entry is a
  // conflict regardless of rv — exactly the window in which the exact walk
  // would find the orec locked. Skip the caller's own slot: a committing
  // transaction that both read and wrote a word validates that overlap
  // through pre-lock versions, not by conflicting with itself.
  const uint32_t self = util::thread_id();
  uint64_t mask = g_occupancy.load(std::memory_order_acquire);
  if (self < kInflightSlots) mask &= ~(uint64_t{1} << self);
  while (mask != 0) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    const InflightSlot& s = g_inflight[i];
    for (int tries = 0;; ++tries) {
      const uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if ((s1 & 1) == 0) {
        const bool hit = entry_hits(
            s.single.load(std::memory_order_relaxed), s.sig, read_sig);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) == s1) {
          if (hit) return {ScanOutcome::kConflict, 0};
          break;
        }
      }
      if (tries >= kSeqlockRetries) {
        // Can't stabilize the slot: its owner is mid-republish, i.e. inside
        // a lock window either way. Conservative conflict.
        return {ScanOutcome::kConflict, 0};
      }
    }
  }

  // Stage 2: finalized ring entries newer than the snapshot. Publish order
  // is not stamp order (GV5 stamps are sloppy and threads interleave), so
  // every slot is examined — the stamp filter makes a stale slot one
  // relaxed load. The scan completes before conflicts are reported so
  // hit_stamp is the *maximum* offending stamp (one catch-up suffices).
  uint64_t hit_stamp = 0;
  for (uint32_t i = 0; i < kRingSize; ++i) {
    const RingHdr& hdr = g_hdr[i];
    for (int tries = 0;; ++tries) {
      const uint64_t s1 = hdr.seq.load(std::memory_order_acquire);
      if ((s1 & 1) == 0) {
        const uint64_t stamp = hdr.stamp.load(std::memory_order_relaxed);
        if (stamp <= rv) {
          // At or below the snapshot: serialized before this transaction,
          // skip. No seqlock re-check needed — if the slot is concurrently
          // overwritten, the entry we might miss is covered either by its
          // own publish (a later scan pass is not owed to us: the new
          // entry's writer still holds its locks, so stage 1 or the
          // post-scan watermark check covers it) or by the watermark the
          // overwriter raised first.
          break;
        }
        const bool hit =
            entry_hits(hdr.single.load(std::memory_order_relaxed),
                       g_payload[i].w, read_sig);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (hdr.seq.load(std::memory_order_relaxed) == s1) {
          if (hit && stamp > hit_stamp) hit_stamp = stamp;
          break;
        }
      }
      if (tries >= kSeqlockRetries) return {ScanOutcome::kFallback, 0};
    }
  }
  if (hit_stamp != 0) return {ScanOutcome::kConflict, hit_stamp};

  // Stage 3: wrap check, deliberately AFTER the scan. An entry evicted
  // before or during the scan raised the watermark before its slot
  // reopened; if anything newer than the snapshot was evicted, the ring is
  // not a complete record of (rv, now] and the exact walk must decide.
  if (g_watermark.load(std::memory_order_acquire) > rv) {
    return {ScanOutcome::kFallback, 0};
  }
  return {ScanOutcome::kValid, 0};
}

uint64_t evicted_watermark() noexcept {
  return g_watermark.load(std::memory_order_acquire);
}

uint64_t published_count() noexcept {
  return g_published.load(std::memory_order_relaxed);
}

uint64_t newest_stamp() noexcept {
  return g_newest.load(std::memory_order_acquire);
}

std::atomic<uint64_t>& crosscheck_false_negatives() noexcept {
  return g_crosscheck_fn;
}

void reset() noexcept {
  for (RingHdr& hdr : g_hdr) {
    hdr.seq.store(0, std::memory_order_relaxed);
    hdr.stamp.store(0, std::memory_order_relaxed);
    hdr.single.store(kNoSingle, std::memory_order_relaxed);
  }
  for (RingSig& p : g_payload) {
    for (auto& w : p.w) w.store(0, std::memory_order_relaxed);
  }
  for (InflightSlot& s : g_inflight) {
    s.seq.store(0, std::memory_order_relaxed);
    s.single.store(kNoSingle, std::memory_order_relaxed);
    for (auto& w : s.sig) w.store(0, std::memory_order_relaxed);
  }
  g_head.store(0, std::memory_order_relaxed);
  g_watermark.store(0, std::memory_order_relaxed);
  g_occupancy.store(0, std::memory_order_relaxed);
  g_published.store(0, std::memory_order_relaxed);
  g_newest.store(0, std::memory_order_relaxed);
  g_crosscheck_fn.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

}  // namespace dc::htm::sigring
