// Ownership records ("orecs"): the conflict-detection substrate.
//
// Every 8-byte word of the address space hashes to one versioned lock in a
// global table, the standard word-granularity TL2 arrangement. An orec value
// is either
//   version << 1          (unlocked; version = global-clock time of the last
//                          commit that wrote a word mapping here), or
//   (owner_token << 1)|1  (locked during a commit's write-back, or for the
//                          duration of a strong-atomicity store).
//
// The table is the moral equivalent of the cache-coherence metadata a real
// HTM snoops: bumping an orec is how writes, strong-atomicity stores, and
// frees of memory become visible as conflicts to concurrent transactions.
#pragma once

#include <atomic>
#include <cstdint>

#include "htm/config.hpp"
#include "util/padded.hpp"

namespace dc::htm {

using OrecValue = uint64_t;

inline constexpr OrecValue kLockBit = 1;

inline constexpr bool orec_is_locked(OrecValue v) noexcept {
  return (v & kLockBit) != 0;
}
inline constexpr uint64_t orec_version(OrecValue v) noexcept { return v >> 1; }
inline constexpr OrecValue make_version(uint64_t version) noexcept {
  return version << 1;
}
inline constexpr OrecValue make_locked(uint64_t owner_token) noexcept {
  return (owner_token << 1) | kLockBit;
}

struct Orec {
  std::atomic<OrecValue> value{0};
};

// 2^20 orecs = 8 MiB of metadata; large enough that distinct hot words in
// the reproduced workloads essentially never false-share an orec.
inline constexpr uint64_t kOrecCountLog2 = 20;
inline constexpr uint64_t kOrecCount = 1ULL << kOrecCountLog2;

Orec* orec_table() noexcept;

// Table index of the orec guarding the conflict-granule containing `addr`,
// for a given granularity. Factored out so the transaction hot path can use
// a per-attempt snapshot of the granularity instead of re-reading config().
inline uint64_t orec_index(uintptr_t addr,
                           uint32_t conflict_granularity_log2) noexcept {
  const uintptr_t a = addr >> conflict_granularity_log2;
  // Mix in higher bits so that same-offset words of page-aligned
  // allocations do not systematically collide.
  return (a ^ (a >> kOrecCountLog2)) & (kOrecCount - 1);
}

// The orec guarding the conflict-granule (word or cache line, per
// Config::conflict_granularity_log2) containing `addr`.
inline Orec& orec_for(const void* addr) noexcept {
  const auto idx = orec_index(reinterpret_cast<uintptr_t>(addr),
                              config().conflict_granularity_log2);
  return orec_table()[idx];
}

// Global version clock. Commits and strong-atomicity stores advance it;
// transactions sample it at begin (read version) and on extension.
std::atomic<uint64_t>& global_clock() noexcept;

// Number of commits currently in their lock/write-back window. The TLE
// fallback (htm.hpp) waits for this to drain after acquiring the fallback
// lock, which is what makes lock-mode execution exclusive against the lazy
// write-back of this STM (real HTM write-back is atomic, so hardware TLE
// does not need this).
std::atomic<uint32_t>& writeback_count() noexcept;

}  // namespace dc::htm
