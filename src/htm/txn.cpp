#include "htm/txn.hpp"

#include <algorithm>
#include <thread>

#include "util/backoff.hpp"
#include "util/thread_id.hpp"

namespace dc::htm {

namespace {

thread_local bool t_in_transaction = false;

}  // namespace

bool in_transaction() noexcept { return t_in_transaction; }

void Txn::yield_now() { std::this_thread::yield(); }

namespace detail {
void set_in_transaction(bool v) noexcept { t_in_transaction = v; }
}  // namespace detail

std::vector<Orec*>& Txn::scratch_read_set() noexcept {
  thread_local std::vector<Orec*> v = [] {
    std::vector<Orec*> init;
    init.reserve(256);
    return init;
  }();
  return v;
}

std::vector<Txn::WriteEntry>& Txn::scratch_write_set() noexcept {
  thread_local std::vector<WriteEntry> v = [] {
    std::vector<WriteEntry> init;
    init.reserve(64);
    return init;
  }();
  return v;
}

std::vector<Txn::LockedOrec>& Txn::scratch_locked() noexcept {
  thread_local std::vector<LockedOrec> v = [] {
    std::vector<LockedOrec> init;
    init.reserve(64);
    return init;
  }();
  return v;
}

std::vector<Txn::AbortHook>& Txn::scratch_abort_hooks() noexcept {
  thread_local std::vector<AbortHook> v;
  return v;
}

Txn::Txn(bool lock_mode)
    : rv_(global_clock().load(std::memory_order_acquire)),
      my_token_(static_cast<uint64_t>(util::thread_id()) + 1),
      lock_mode_(lock_mode),
      read_set_(scratch_read_set()),
      write_set_(scratch_write_set()),
      locked_(scratch_locked()),
      abort_hooks_(scratch_abort_hooks()) {
  assert(!t_in_transaction && "nested atomic blocks are not supported");
  t_in_transaction = true;
  read_set_.clear();
  write_set_.clear();
  locked_.clear();
  abort_hooks_.clear();
}

Txn::~Txn() {
  // Leave the transaction context first: abort hooks (e.g. a TM-aware
  // allocator returning a block) are entitled to use the allocator.
  t_in_transaction = false;
  if (!committed_) {
    for (const AbortHook& h : abort_hooks_) h.fn(h.p, h.bytes);
  }
  abort_hooks_.clear();
}

void Txn::on_abort(void (*fn)(void*, std::size_t), void* p,
                   std::size_t bytes) {
  abort_hooks_.push_back(AbortHook{fn, p, bytes});
}

void Txn::abort(AbortCode code) {
  rollback_locks();
  throw TxnAbort{code};
}

bool Txn::try_extend() noexcept {
  if (!config().enable_extension) return false;
  const uint64_t new_rv = global_clock().load(std::memory_order_acquire);
  // Extension is sound only if nothing already read has changed since it
  // was read, i.e. every read orec is still unlocked at a version <= rv_.
  for (const Orec* o : read_set_) {
    const OrecValue v = o->value.load(std::memory_order_acquire);
    if (orec_is_locked(v) || orec_version(v) > rv_) return false;
  }
  rv_ = new_rv;
  return true;
}

bool Txn::validate_read_set() const noexcept {
  const OrecValue mine = make_locked(my_token_);
  for (const Orec* o : read_set_) {
    const OrecValue v = o->value.load(std::memory_order_acquire);
    if (v == mine) {
      // Read-write overlap: this transaction holds the lock, so the live
      // value cannot be compared; validate the version captured when the
      // lock was acquired instead. (Skipping this check would let a commit
      // that slipped in between our read and our lock acquisition be
      // silently overwritten — a lost update.)
      const OrecValue before = pre_lock_version(o);
      if (orec_version(before) > rv_) return false;
      continue;
    }
    if (orec_is_locked(v) || orec_version(v) > rv_) return false;
  }
  return true;
}

OrecValue Txn::pre_lock_version(const Orec* o) const noexcept {
  // locked_ is sorted by orec pointer (see acquire_write_locks).
  auto lo = locked_.begin();
  auto hi = locked_.end();
  while (lo < hi) {
    auto mid = lo + (hi - lo) / 2;
    if (mid->orec < o) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == locked_.end() || lo->orec != o) {
    // Cannot happen (every orec locked with my token is in locked_), but
    // fail safe by reporting an impossible version so validation aborts.
    assert(false && "orec locked by this txn missing from lock list");
    return make_version(~0ULL >> 1);
  }
  return lo->previous;
}

void Txn::acquire_write_locks() {
  // Gather the distinct orecs covering the write set, in a global order
  // (table address) so concurrent committers cannot deadlock.
  locked_.clear();
  for (const WriteEntry& w : write_set_) {
    Orec* o = &orec_for(reinterpret_cast<void*>(w.addr));
    locked_.push_back(LockedOrec{o, 0});
  }
  std::sort(locked_.begin(), locked_.end(),
            [](const LockedOrec& a, const LockedOrec& b) {
              return a.orec < b.orec;
            });
  locked_.erase(std::unique(locked_.begin(), locked_.end(),
                            [](const LockedOrec& a, const LockedOrec& b) {
                              return a.orec == b.orec;
                            }),
                locked_.end());

  const OrecValue mine = make_locked(my_token_);
  for (std::size_t i = 0; i < locked_.size(); ++i) {
    Orec* o = locked_[i].orec;
    util::Backoff backoff(2, 64);
    for (int spin = 0;; ++spin) {
      OrecValue cur = o->value.load(std::memory_order_relaxed);
      if (!orec_is_locked(cur)) {
        if (o->value.compare_exchange_weak(cur, mine,
                                           std::memory_order_acq_rel)) {
          locked_[i].previous = cur;
          break;
        }
        continue;
      }
      if (spin >= 128) {
        // Give up rather than wait on another committer: best-effort HTM
        // resolves conflicts by aborting, not blocking.
        for (std::size_t j = 0; j < i; ++j) {
          locked_[j].orec->value.store(locked_[j].previous,
                                       std::memory_order_release);
        }
        locked_.clear();
        throw TxnAbort{AbortCode::kConflict};
      }
      backoff.pause();
    }
  }
}

void Txn::rollback_locks() noexcept {
  for (const LockedOrec& l : locked_) {
    l.orec->value.store(l.previous, std::memory_order_release);
  }
  locked_.clear();
}

void Txn::release_locks_to(uint64_t version) noexcept {
  const OrecValue v = make_version(version);
  for (const LockedOrec& l : locked_) {
    l.orec->value.store(v, std::memory_order_release);
  }
  locked_.clear();
}

void Txn::write_back() noexcept {
  for (const WriteEntry& w : write_set_) {
    void* p = reinterpret_cast<void*>(w.addr);
    switch (w.size) {
      case 1:
        detail::atomic_word_store(static_cast<uint8_t*>(p),
                                  static_cast<uint8_t>(w.value));
        break;
      case 2:
        detail::atomic_word_store(static_cast<uint16_t*>(p),
                                  static_cast<uint16_t>(w.value));
        break;
      case 4:
        detail::atomic_word_store(static_cast<uint32_t*>(p),
                                  static_cast<uint32_t>(w.value));
        break;
      default:
        detail::atomic_word_store(static_cast<uint64_t*>(p), w.value);
        break;
    }
  }
}

void Txn::commit() {
  if (lock_mode_) {
    // Under the TLE lock the transaction is exclusive; apply the buffered
    // stores through the orec-bumping path so doomed speculative readers
    // observe the conflict.
    for (const WriteEntry& w : write_set_) {
      lock_mode_store(reinterpret_cast<void*>(w.addr), w.value, w.size);
    }
    committed_ = true;
    return;
  }
  if (write_set_.empty()) {
    // Read-only transactions are already serializable at rv_: every load
    // validated its orec against rv_ at read time.
    committed_ = true;
    return;
  }
  // Announce the lock/write-back window so the TLE fallback can drain it.
  struct WritebackScope {
    WritebackScope() {
      writeback_count().fetch_add(1, std::memory_order_acq_rel);
    }
    ~WritebackScope() {
      writeback_count().fetch_sub(1, std::memory_order_acq_rel);
    }
  } scope;
  acquire_write_locks();
  const uint64_t wv = global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;
  // TL2 fast path: if nothing committed between begin and lock acquisition,
  // the read set cannot have changed.
  if (wv != rv_ + 1 && !validate_read_set()) {
    rollback_locks();
    throw TxnAbort{AbortCode::kConflict};
  }
  write_back();
  release_locks_to(wv);
  committed_ = true;
}

void Txn::lock_mode_store(void* addr, uint64_t bits, uint8_t size) noexcept {
  // Under the TLE lock, stores still go through the word's orec so that
  // doomed concurrent transactions observe the conflict (strong atomicity).
  Orec& o = orec_for(addr);
  const OrecValue mine = make_locked(my_token_);
  util::Backoff backoff(2, 64);
  OrecValue cur = o.value.load(std::memory_order_relaxed);
  for (;;) {
    if (!orec_is_locked(cur) &&
        o.value.compare_exchange_weak(cur, mine, std::memory_order_acq_rel)) {
      break;
    }
    backoff.pause();
    cur = o.value.load(std::memory_order_relaxed);
  }
  switch (size) {
    case 1:
      detail::atomic_word_store(static_cast<uint8_t*>(addr),
                                static_cast<uint8_t>(bits));
      break;
    case 2:
      detail::atomic_word_store(static_cast<uint16_t*>(addr),
                                static_cast<uint16_t>(bits));
      break;
    case 4:
      detail::atomic_word_store(static_cast<uint32_t*>(addr),
                                static_cast<uint32_t>(bits));
      break;
    default:
      detail::atomic_word_store(static_cast<uint64_t*>(addr), bits);
      break;
  }
  const uint64_t wv =
      global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;
  o.value.store(make_version(wv), std::memory_order_release);
}

}  // namespace dc::htm
