#include "htm/txn.hpp"

#include <bit>
#include <thread>

#include "htm/clock.hpp"
#include "htm/stats.hpp"
#include "htm/valring.hpp"
#include "obs/conflict_map.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/cycles.hpp"
#include "util/thread_id.hpp"

namespace dc::htm {

namespace {

thread_local bool t_in_transaction = false;

}  // namespace

bool in_transaction() noexcept { return t_in_transaction; }

void Txn::yield_now() {
  // Under the deterministic scheduler an OS yield is meaningless (no
  // other logical thread is runnable); hand the decision to the policy.
  if (sched::active()) {
    sched::checkpoint(sched::Kind::kYield);
    return;
  }
  std::this_thread::yield();
}

namespace detail {
void set_in_transaction(bool v) noexcept { t_in_transaction = v; }
}  // namespace detail

Txn::Scratch& Txn::Scratch::get() noexcept {
  thread_local Scratch s;
  return s;
}

Txn::Txn(bool lock_mode) : Txn(lock_mode, config(), Scratch::get()) {}

Txn::Txn(bool lock_mode, const Config& cfg, Scratch& s)
    : rv_(global_clock().load(std::memory_order_acquire)),
      // The token is the orec lock-owner id and the GV5 stamp stride;
      // both only need uniqueness among concurrently running threads.
      // Under the deterministic scheduler the run-local logical index is
      // used instead of the dense thread id, whose assignment depends on
      // process history — with it, GV5's tid-striped sloppy stamps would
      // differ between a recording and its replay.
      my_token_(sched::active()
                    ? static_cast<uint64_t>(sched::self_index()) + 1
                    : static_cast<uint64_t>(util::thread_id()) + 1),
      orec_table_(orec_table()),
      store_capacity_(cfg.store_buffer_capacity),
      yield_every_(cfg.txn_yield_every_loads),
      granularity_log2_(cfg.conflict_granularity_log2),
      clock_policy_(cfg.clock_policy),
      extension_enabled_(cfg.enable_extension),
      coalesce_(cfg.enable_write_coalescing &&
                std::endian::native == std::endian::little),
      sig_mode_(cfg.validation == ValidationPolicy::kSignature),
      sig_crosscheck_(cfg.validation == ValidationPolicy::kSignature &&
                      cfg.validation_crosscheck),
      lock_mode_(lock_mode),
      s_(s),
      epoch_(++s.epoch) {
  assert(!t_in_transaction && "nested atomic blocks are not supported");
  t_in_transaction = true;
  s_.read_set.clear();
  s_.write_set.clear();
  s_.locked.clear();
  s_.abort_hooks.clear();
  if (sig_mode_) {
    s_.read_sig.clear();
    // Absorb the ring's newest published stamp before taking the snapshot
    // for real. Under GV5 the ring is full of sloppy stamps far ahead of the
    // shared clock; a snapshot below them would make the scan intersect the
    // entire ring (pure Bloom noise) and mass-fallback on the eviction
    // watermark. Raising the clock first (rule 2, same as reader absorb on a
    // sloppy orec) keeps the serialization argument unchanged — the snapshot
    // is still a value the shared clock actually held.
    const uint64_t newest = sigring::newest_stamp();
    if (newest > rv_) {
      clock_catch_up(newest);
      rv_ = global_clock().load(std::memory_order_acquire);
    }
  }
  obs::trace_txn_begin(lock_mode);
}

Txn::~Txn() {
  // Leave the transaction context first: abort hooks (e.g. a TM-aware
  // allocator returning a block) are entitled to use the allocator.
  t_in_transaction = false;
  TxnStats& st = local_stats();
  if (s_.read_set.size() > st.max_read_set) st.max_read_set = s_.read_set.size();
  if (s_.write_set.size() > st.max_write_set) {
    st.max_write_set = s_.write_set.size();
  }
  if (committed_) {
    obs::trace_txn_commit(read_set_size(), write_set_size(), trace_attempt_);
  } else {
    obs::trace_txn_abort(static_cast<uint8_t>(last_abort_), read_set_size(),
                         write_set_size(), trace_attempt_);
#if defined(DC_TRACE)
    // Conflict attribution: charge the abort to the culprit orec under the
    // recording thread's context (the benchmark driver labels it with the
    // running Collect algorithm).
    if (last_abort_ == AbortCode::kConflict && conflict_orec_ != nullptr &&
        obs::conflicts_enabled()) {
      obs::record_conflict(
          static_cast<uint64_t>(conflict_orec_ - orec_table_));
    }
#endif
    for (const AbortHook& h : s_.abort_hooks) h.fn(h.p, h.bytes);
  }
  s_.abort_hooks.clear();
}

void Txn::on_abort(void (*fn)(void*, std::size_t), void* p,
                   std::size_t bytes) {
  s_.abort_hooks.push_back(AbortHook{fn, p, bytes});
}

void Txn::abort(AbortCode code) {
  last_abort_ = code;
  rollback_locks();
  throw TxnAbort{code};
}

void Txn::fire_fault() {
  // A schedule decision point: the injected abort is part of the recorded
  // interleaving, so a replayed schedule re-fires it at the same step.
  sched::checkpoint(sched::Kind::kFaultFire);
  // The armed spurious abort strikes: disarm first (abort() must not
  // re-enter), account it, and unwind like any other abort.
  fault_armed_ = false;
  local_stats().faults_injected++;
  obs::trace_fault_injected(static_cast<uint8_t>(fault_code_),
                            trace_attempt_, fault_ops_done_);
  abort(fault_code_);
}

void Txn::fire_crash() {
  sched::checkpoint(sched::Kind::kCrashFire);
  // The thread dies here: no commit, no retry. Deliberately *not* counted
  // as an abort (aborts/aborts_by_code stay the retry loop's ledger); the
  // destructor still runs — modelling the hardware discarding the
  // checkpoint — so buffered stores vanish and abort hooks return in-txn
  // allocations that were never published.
  crash_armed_ = false;
  last_abort_ = AbortCode::kExplicit;  // forensics: attempt did not commit
  local_stats().crashes_injected++;
  obs::trace_crash_injected(static_cast<uint8_t>(crash_point_),
                            crash_ops_done_, lock_mode_);
  crash::mark_dead();
  throw crash::ThreadCrash{crash_point_};
}

void Txn::doom() noexcept {
  // A user exception is unwinding through the wrapper: release held orec
  // locks (a commit-time validation failure may have left none, but the
  // body could also have been interrupted mid-acquire in a future
  // refactor — rollback_locks is idempotent) and record the attempt as an
  // explicit abort so the destructor's trace/abort-hook path runs and the
  // aborts_by_code sum stays equal to aborts.
  rollback_locks();
  last_abort_ = AbortCode::kExplicit;
  TxnStats& st = local_stats();
  st.aborts++;
  st.aborts_by_code[static_cast<std::size_t>(AbortCode::kExplicit)]++;
}

bool Txn::try_extend(uint64_t observed) noexcept {
  if (!extension_enabled_) return false;
  // Re-sample rule: raise the shared clock to cover the observed version
  // (GV5 sloppy stamps run ahead of it) before this snapshot may adopt it.
  const uint64_t new_rv = resample_clock(observed);
  // Extension is sound only if nothing already read has changed since it
  // was read. The dispatcher runs at the OLD rv_ (not yet advanced): in
  // exact mode that is the classic unlocked-at-version<=rv_ walk; in sig
  // mode the ring scan at the old snapshot catches any writer that stamped
  // between rv_ and new_rv — including one whose sloppy stamp new_rv is
  // about to absorb — exactly as the walk would.
  Orec* bad = nullptr;
  if (!validate_reads(&bad)) return false;
  local_stats().clock_resamples++;
  obs::trace_clock_resample(static_cast<uint32_t>(rv_),
                            static_cast<uint32_t>(new_rv),
                            read_set_size());
  rv_ = new_rv;
  return true;
}

Orec* Txn::validate_read_set() const noexcept {
  const OrecValue mine = make_locked(my_token_);
  for (Orec* o : s_.read_set) {
    const OrecValue v = o->value.load(std::memory_order_acquire);
    if (v == mine) {
      // Read-write overlap: this transaction holds the lock, so the live
      // value cannot be compared; validate the version captured when the
      // lock was acquired instead. (Skipping this check would let a commit
      // that slipped in between our read and our lock acquisition be
      // silently overwritten — a lost update.)
      const OrecValue before = pre_lock_version(o);
      if (orec_version(before) > rv_) return o;
      continue;
    }
    if (orec_is_locked(v) || orec_version(v) > rv_) return o;
  }
  return nullptr;
}

bool Txn::validate_reads(Orec** culprit) noexcept {
#if defined(DC_TRACE)
  // Per-validation latency probe, same gate and bucket schema as the commit
  // histogram so exact and sig runs are directly comparable in --json
  // diagnostics.
  if (obs::timing_enabled()) {
    const uint64_t c0 = util::rdcycles();
    const bool ok = validate_reads_impl(culprit);
    obs::record_op(obs::OpKind::kValidate, util::rdcycles() - c0);
    return ok;
  }
#endif
  return validate_reads_impl(culprit);
}

bool Txn::validate_reads_impl(Orec** culprit) noexcept {
  *culprit = nullptr;
  if (!sig_mode_) {
    *culprit = validate_read_set();
    return *culprit == nullptr;
  }
  TxnStats& st = local_stats();
  st.sig_validations++;
  if (sig_crosscheck_) {
    // Differential oracle (tests): the exact walk stays authoritative and
    // runs FIRST — its acquire load of a conflicting orec synchronizes with
    // the writer's publish-before-release, so the subsequent scan is
    // guaranteed to see the matching ring/in-flight entry and divergence
    // counts are free of benign races. See Config::validation_crosscheck.
    Orec* bad = validate_read_set();
    const sigring::ScanResult r = sigring::scan(s_.read_sig, rv_);
    if (r.outcome == sigring::ScanOutcome::kFallback) {
      st.sig_ring_overflows++;
    } else if (bad != nullptr && r.outcome == sigring::ScanOutcome::kValid) {
      sigring::crosscheck_false_negatives().fetch_add(
          1, std::memory_order_relaxed);
    } else if (bad == nullptr &&
               r.outcome == sigring::ScanOutcome::kConflict) {
      st.sig_false_aborts++;
    }
    *culprit = bad;
    return bad == nullptr;
  }
  const sigring::ScanResult r = sigring::scan(s_.read_sig, rv_);
  if (r.outcome == sigring::ScanOutcome::kValid) return true;
  if (r.outcome == sigring::ScanOutcome::kFallback) {
    // The ring wrapped past the snapshot (or a slot never stabilized): it
    // is no longer a complete record of (rv_, now], so the exact walk
    // decides. Counted, and traced so ring-sizing regressions show up.
    st.sig_ring_overflows++;
    obs::trace_sig_fallback(read_set_size(), static_cast<uint32_t>(rv_));
    *culprit = validate_read_set();
    return *culprit == nullptr;
  }
  // Signature hit => abort (a Bloom false positive is just a wasted retry,
  // never a safety issue). Two pieces of cold-path bookkeeping before the
  // throw: classify the hit against the exact walk so false aborts are
  // observable, and raise the shared clock over the offending stamp so the
  // retry's fresh snapshot filters that ring entry out instead of re-
  // hitting it — without this, a persistent Bloom collision with a GV5
  // sloppy stamp far ahead of the clock could starve the reader until the
  // TLE backstop (which remains the hard liveness guarantee).
  Orec* bad = validate_read_set();
  if (bad == nullptr) st.sig_false_aborts++;
  if (r.hit_stamp != 0) clock_catch_up(r.hit_stamp);
  *culprit = bad;
  return false;
}

OrecValue Txn::pre_lock_version(const Orec* o) const noexcept {
  // s_.locked is sorted by orec pointer (maintained by note_write_orec).
  auto lo = s_.locked.begin();
  auto hi = s_.locked.end();
  while (lo < hi) {
    auto mid = lo + (hi - lo) / 2;
    if (mid->orec < o) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == s_.locked.end() || lo->orec != o) {
    // Cannot happen (every orec locked with my token is in s_.locked), but
    // fail safe by reporting an impossible version so validation aborts.
    assert(false && "orec locked by this txn missing from lock list");
    return make_version(~0ULL >> 1);
  }
  return lo->previous;
}

void Txn::acquire_write_locks() {
  // s_.locked already holds the distinct orecs covering the write set in a
  // global order (table address, maintained at store() time), so concurrent
  // committers cannot deadlock and no commit-time sort is needed.
  const OrecValue mine = make_locked(my_token_);
  max_prev_ = 0;
  for (std::size_t i = 0; i < s_.locked.size(); ++i) {
    Orec* o = s_.locked[i].orec;
    util::Backoff backoff(2, 64);
    for (int spin = 0;; ++spin) {
      OrecValue cur = o->value.load(std::memory_order_relaxed);
      if (!orec_is_locked(cur)) {
        if (o->value.compare_exchange_weak(cur, mine,
                                           std::memory_order_acq_rel)) {
          s_.locked[i].previous = cur;
          if (orec_version(cur) > max_prev_) max_prev_ = orec_version(cur);
          break;
        }
        continue;
      }
      if (spin >= 128) {
        // Give up rather than wait on another committer: best-effort HTM
        // resolves conflicts by aborting, not blocking.
        for (std::size_t j = 0; j < i; ++j) {
          s_.locked[j].orec->value.store(s_.locked[j].previous,
                                         std::memory_order_release);
        }
        locks_held_ = 0;
        last_abort_ = AbortCode::kConflict;
        conflict_orec_ = o;
        throw TxnAbort{AbortCode::kConflict};
      }
      backoff.pause();
    }
  }
  locks_held_ = static_cast<uint32_t>(s_.locked.size());
}

void Txn::rollback_locks() noexcept {
  for (uint32_t i = 0; i < locks_held_; ++i) {
    s_.locked[i].orec->value.store(s_.locked[i].previous,
                                   std::memory_order_release);
  }
  locks_held_ = 0;
}

void Txn::release_locks_to(uint64_t version) noexcept {
  const OrecValue v = make_version(version);
  for (uint32_t i = 0; i < locks_held_; ++i) {
    s_.locked[i].orec->value.store(v, std::memory_order_release);
  }
  locks_held_ = 0;
}

std::size_t Txn::coalesce_run(std::size_t i, uint64_t* packed) const
    noexcept {
  // The write set is sorted by address and duplicate-free, so a run of
  // sub-word entries that exactly tiles one aligned 8-byte word — and
  // therefore shares that word's ownership record — is contiguous here.
  // Only exact tiling coalesces: a gap would force a read-modify-write of
  // bytes this transaction never stored.
  const WriteEntry& first = s_.write_set[i];
  if (first.size == 8) return 1;
  const uintptr_t word = first.addr & ~uintptr_t{7};
  if (first.addr != word) return 1;
  uint64_t value = 0;
  uintptr_t next = word;
  std::size_t j = i;
  while (j < s_.write_set.size() && s_.write_set[j].addr == next &&
         next + s_.write_set[j].size <= word + 8) {
    // to_bits zero-fills past the entry's size, so packing is a shift-or
    // (little-endian byte order; coalesce_ is off on big-endian hosts).
    value |= s_.write_set[j].value << ((next - word) * 8);
    next += s_.write_set[j].size;
    ++j;
  }
  if (next != word + 8 || j - i < 2) return 1;
  *packed = value;
  return j - i;
}

void Txn::write_back() noexcept {
  TxnStats& st = local_stats();
  for (std::size_t i = 0; i < s_.write_set.size();) {
    if (coalesce_) {
      uint64_t packed;
      const std::size_t run = coalesce_run(i, &packed);
      if (run > 1) {
        detail::atomic_word_store(
            reinterpret_cast<uint64_t*>(s_.write_set[i].addr), packed);
        st.coalesced_stores += run - 1;
        i += run;
        continue;
      }
    }
    const WriteEntry& w = s_.write_set[i++];
    void* p = reinterpret_cast<void*>(w.addr);
    switch (w.size) {
      case 1:
        detail::atomic_word_store(static_cast<uint8_t*>(p),
                                  static_cast<uint8_t>(w.value));
        break;
      case 2:
        detail::atomic_word_store(static_cast<uint16_t*>(p),
                                  static_cast<uint16_t>(w.value));
        break;
      case 4:
        detail::atomic_word_store(static_cast<uint32_t*>(p),
                                  static_cast<uint32_t>(w.value));
        break;
      default:
        detail::atomic_word_store(static_cast<uint64_t*>(p), w.value);
        break;
    }
  }
}

bool Txn::writes_unchanged() const noexcept {
  for (std::size_t i = 0; i < s_.write_set.size();) {
    if (coalesce_) {
      // One 8-byte load checks a whole tiled run (same single version check
      // granularity as the coalesced write-back).
      uint64_t packed;
      const std::size_t run = coalesce_run(i, &packed);
      if (run > 1) {
        if (detail::atomic_word_load(reinterpret_cast<const uint64_t*>(
                s_.write_set[i].addr)) != packed) {
          return false;
        }
        i += run;
        continue;
      }
    }
    const WriteEntry& w = s_.write_set[i++];
    const void* p = reinterpret_cast<const void*>(w.addr);
    uint64_t cur;
    switch (w.size) {
      case 1:
        cur = detail::atomic_word_load(static_cast<const uint8_t*>(p));
        break;
      case 2:
        cur = detail::atomic_word_load(static_cast<const uint16_t*>(p));
        break;
      case 4:
        cur = detail::atomic_word_load(static_cast<const uint32_t*>(p));
        break;
      default:
        cur = detail::atomic_word_load(static_cast<const uint64_t*>(p));
        break;
    }
    if (cur != w.value) return false;
  }
  return true;
}

void Txn::commit() {
  // Commit entry is the interleaving that matters most for conflict
  // detection — the window between the body's last access and the
  // write-lock acquisition — and was unreachable by the old
  // load-only yield points.
  sched::checkpoint(sched::Kind::kCommitEntry);
  if (crash_armed_) {
    // The body issued fewer ops than the crash's countdown (or the plan was
    // kCommitEntry): the thread dies at the commit instruction, before any
    // write-back — under the TLE lock this abandons the lock with the write
    // set still buffered, the state the recoverable lock must discard.
    fire_crash();
  }
  if (fault_armed_) {
    // The body issued fewer ops than the fault's countdown: the spurious
    // abort lands between the last access and the commit instruction.
    fire_fault();
  }
  if (s_.write_set.empty()) {
    // Read-only transactions are already serializable at rv_: every load
    // validated its orec against rv_ at read time (lock mode reads memory
    // directly under exclusion). No lock, no clock bump, no signature work.
    committed_ = true;
    return;
  }
  // Signature-backend visibility (valring.hpp): park the write signature in
  // this thread's in-flight slot BEFORE the first orec-lock CAS and keep it
  // there until AFTER the locks are released — the in-flight window must
  // strictly cover the lock window so a scan that misses the (not yet
  // published) commit stamp still sees the writer, mirroring the exact
  // walk's "locked => conflict". The guard ends the window on every exit,
  // including the abort throws below and a mid-acquire give-up.
  SigSet write_sig;
  struct InflightScope {
    bool active = false;
    ~InflightScope() {
      if (active) sigring::end_inflight();
    }
  } inflight;
  // Single-orec write sets (the common case) use the ring's precise
  // representation: no signature to build or copy, and scans match them on
  // both hash bits instead of any shared bit.
  const bool sig_single = sig_mode_ && s_.locked.size() == 1;
  const uint64_t sig_single_idx =
      sig_single ? static_cast<uint64_t>(s_.locked[0].orec - orec_table_) : 0;
  if (sig_mode_) {
    if (sig_single) {
      sigring::begin_inflight_single(sig_single_idx);
    } else {
      for (const LockedOrec& l : s_.locked) {
        write_sig.add(static_cast<uint64_t>(l.orec - orec_table_));
      }
      sigring::begin_inflight(write_sig);
    }
    inflight.active = true;
  }
  if (lock_mode_) {
    // Under the TLE lock the transaction is exclusive; apply the buffered
    // stores through the orec-bumping path so doomed speculative readers
    // observe the conflict. The ring entry carries the largest stamp the
    // block released (per-orec stamps differ) and is published after the
    // per-orec releases — sound here because the in-flight window stays
    // open across that gap, closing only after the publish.
    uint64_t max_wv = 0;
    for (const WriteEntry& w : s_.write_set) {
      const uint64_t wv =
          lock_mode_store(reinterpret_cast<void*>(w.addr), w.value, w.size);
      if (wv > max_wv) max_wv = wv;
    }
    if (inflight.active && max_wv != 0) {
      if (sig_single) {
        sigring::publish_single(sig_single_idx, max_wv);
      } else {
        sigring::publish(write_sig, max_wv);
      }
    }
    committed_ = true;
    return;
  }
  // Announce the lock/write-back window so the TLE fallback can drain it.
  struct WritebackScope {
    WritebackScope() {
      writeback_count().fetch_add(1, std::memory_order_acq_rel);
    }
    ~WritebackScope() {
      writeback_count().fetch_sub(1, std::memory_order_acq_rel);
    }
  } scope;
  acquire_write_locks();
  if (writes_unchanged()) {
    // Every buffered store would write back the value already in memory, so
    // the write-back is invisible to concurrent readers and the commit is
    // observably read-only. Serialize it at this instant — all written words
    // are locked with their values in place, and the reads are consistent
    // here iff nothing read changed since rv_ — and skip the clock stamp
    // entirely. Under GV1 an unchanged clock proves the read set unchanged
    // (every visible write bumps it); under GV5 sloppy stamps advance
    // versions invisibly to the clock, so the silent path always validates.
    const uint64_t now = global_clock().load(std::memory_order_acquire);
    const bool provably_unchanged = clock_policy_ == ClockPolicy::kGv1 &&
                                    now == rv_ && max_prev_ <= rv_;
    Orec* bad = nullptr;
    if (provably_unchanged || validate_reads(&bad)) {
      // Silent commits publish nothing: memory is unchanged and the locks
      // roll back to their previous versions, so there is no write for any
      // reader to miss.
      rollback_locks();  // restore pre-lock orec versions; nothing changed
      committed_ = true;
      return;
    }
    rollback_locks();
    last_abort_ = AbortCode::kConflict;
    conflict_orec_ = bad;
    throw TxnAbort{AbortCode::kConflict};
  }
  // GV1: one shared fetch_add, with TL2's wv == rv+1 validation skip.
  // GV5: no shared-clock write at all — stamp past everything this commit
  // can see (clock sample, snapshot, replaced versions), and always
  // validate, because sloppy stamps make the clock blind to recent writes.
  const ClockStamp stamp =
      writer_stamp(clock_policy_, rv_, max_prev_, my_token_);
  if (!stamp.read_set_unchanged) {
    Orec* bad = nullptr;
    if (!validate_reads(&bad)) {
      rollback_locks();
      last_abort_ = AbortCode::kConflict;
      conflict_orec_ = bad;
      throw TxnAbort{AbortCode::kConflict};
    }
  }
  write_back();
  // Publish-before-release (valring.hpp): once an orec is released to
  // stamp.wv, any reader that observes that version also finds this ring
  // entry, so signature validation never misses a completed commit.
  if (inflight.active) {
    if (sig_single) {
      sigring::publish_single(sig_single_idx, stamp.wv);
    } else {
      sigring::publish(write_sig, stamp.wv);
    }
  }
  release_locks_to(stamp.wv);
  local_stats().writer_commits++;
  committed_ = true;
}

uint64_t Txn::lock_mode_store(void* addr, uint64_t bits,
                              uint32_t size) noexcept {
  // Under the TLE lock, stores still go through the word's orec so that
  // doomed concurrent transactions observe the conflict (strong atomicity).
  Orec& o = orec_for(addr);
  const OrecValue mine = make_locked(my_token_);
  util::Backoff backoff(2, 64);
  OrecValue cur = o.value.load(std::memory_order_relaxed);
  for (;;) {
    if (!orec_is_locked(cur) &&
        o.value.compare_exchange_weak(cur, mine, std::memory_order_acq_rel)) {
      break;
    }
    backoff.pause();
    cur = o.value.load(std::memory_order_relaxed);
  }
  switch (size) {
    case 1:
      detail::atomic_word_store(static_cast<uint8_t*>(addr),
                                static_cast<uint8_t>(bits));
      break;
    case 2:
      detail::atomic_word_store(static_cast<uint16_t*>(addr),
                                static_cast<uint16_t>(bits));
      break;
    case 4:
      detail::atomic_word_store(static_cast<uint32_t*>(addr),
                                static_cast<uint32_t>(bits));
      break;
    default:
      detail::atomic_word_store(static_cast<uint64_t*>(addr), bits);
      break;
  }
  const ClockStamp stamp =
      writer_stamp(clock_policy_, rv_, orec_version(cur), my_token_);
  o.value.store(make_version(stamp.wv), std::memory_order_release);
  return stamp.wv;
}

}  // namespace dc::htm
