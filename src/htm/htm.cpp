#include "htm/htm.hpp"

#include "htm/clock.hpp"
#include "util/backoff.hpp"
#include "util/padded.hpp"
#include "util/thread_id.hpp"

namespace dc::htm {

namespace detail {

uint64_t* tle_lock_word() noexcept {
  alignas(dc::util::kCacheLine) static uint64_t word = 0;
  return &word;
}

void tle_acquire() noexcept {
  // Acquire the word with full conflict visibility (nontxn_cas bumps the
  // orec and global clock), then wait for in-flight commit write-backs to
  // drain. After the bump, no transaction can begin a new write-back:
  //  - transactions begun after the bump read the lock word as 1 at begin
  //    and abort;
  //  - transactions begun before have the lock word's orec in their read
  //    set at a version now older than the bump, so commit validation (and
  //    load-time extension) fails.
  util::Backoff backoff(8, 1024);
  while (!nontxn_cas(tle_lock_word(), uint64_t{0}, uint64_t{1})) {
    backoff.pause();
  }
  backoff.reset();
  while (writeback_count().load(std::memory_order_acquire) != 0) {
    backoff.pause();
  }
}

void tle_release() noexcept { nontxn_store(tle_lock_word(), uint64_t{0}); }

}  // namespace detail

void invalidate_range(void* p, std::size_t bytes, bool poison) noexcept {
  // Advance every ownership record covering the range, one at a time (never
  // holding two orec locks, so this cannot deadlock against a committing
  // transaction that locks its write set in sorted order).
  const auto start = reinterpret_cast<uintptr_t>(p) & ~uintptr_t{7};
  const auto end = reinterpret_cast<uintptr_t>(p) + bytes;
  const OrecValue mine = make_locked(~0ULL >> 1);
  const ClockPolicy policy = config().clock_policy;
  const uint64_t stride = util::thread_id() + 1;
  for (uintptr_t word = start; word < end; word += 8) {
    Orec& o = orec_for(reinterpret_cast<const void*>(word));
    util::Backoff backoff(2, 64);
    OrecValue cur = o.value.load(std::memory_order_relaxed);
    for (;;) {
      if (!orec_is_locked(cur) &&
          o.value.compare_exchange_weak(cur, mine,
                                        std::memory_order_acq_rel)) {
        break;
      }
      backoff.pause();
      cur = o.value.load(std::memory_order_relaxed);
    }
    if (poison && word >= reinterpret_cast<uintptr_t>(p) && word + 8 <= end) {
      detail::atomic_word_store(reinterpret_cast<uint64_t*>(word),
                                kPoisonWord);
    }
    const ClockStamp stamp =
        writer_stamp(policy, orec_version(cur), orec_version(cur), stride);
    o.value.store(make_version(stamp.wv), std::memory_order_release);
  }
}

}  // namespace dc::htm
