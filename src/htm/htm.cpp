#include "htm/htm.hpp"

#include "htm/clock.hpp"
#include "htm/crash.hpp"
#include "util/backoff.hpp"
#include "util/padded.hpp"
#include "util/thread_id.hpp"

namespace dc::htm {

namespace detail {

uint64_t* tle_lock_word() noexcept {
  alignas(dc::util::kCacheLine) static uint64_t word = 0;
  return &word;
}

namespace {

// Owner-stamped lock encoding: free = 0, held = (epoch << 16) | (tid + 1).
// Every pre-existing "lock word != 0" check keeps working; the stamp names
// the holder so waiters can interrogate its liveness. tid + 1 keeps the
// word nonzero even for dense id 0 (kMaxThreads = 256 fits comfortably in
// 16 bits), and the incarnation epoch makes a stamp left by a dead thread
// recognizably orphaned even after the dense id is recycled.
uint64_t make_owner_word(crash::Token t) noexcept {
  return (t.epoch << 16) | (static_cast<uint64_t>(t.tid) + 1);
}

crash::Token owner_of(uint64_t word) noexcept {
  return crash::Token{static_cast<uint32_t>((word & 0xffffu) - 1),
                      word >> 16};
}

// Backoff rounds a waiter must observe an unchanged (stamp, heartbeat)
// pair before it treats the timeout as validated and consults the
// authoritative dead flag. Small: the flag check makes a premature timeout
// harmless, the rounds only exist so waiters do not hammer the registry.
constexpr uint32_t kRecoveryRounds = 4;

// Backoff rounds with a nonzero, unchanged lock word after which a waiter
// arms recovery even though every injection source reads quiet. An
// orphaned stamp can outlive the global dead count: the dead holder's
// dense id — and with it its liveness slot — may be recycled by a fresh
// thread before any waiter looks, and re-registration clears the slot's
// dead flag. The stamp on the word is then the only remaining evidence,
// so a validated stall must be allowed to arm the orphan check by itself.
// Large enough that ordinary handoff never trips it; tripping is harmless
// anyway (token_orphaned refuses to steal from the living).
constexpr uint32_t kSelfArmRounds = 64;

}  // namespace

void tle_acquire() noexcept {
  sched::checkpoint(sched::Kind::kLockAcquire);
  // Acquire the word with full conflict visibility (nontxn_cas bumps the
  // orec and global clock), then wait for in-flight commit write-backs to
  // drain. After the bump, no transaction can begin a new write-back:
  //  - transactions begun after the bump read the lock word as nonzero at
  //    begin and abort;
  //  - transactions begun before have the lock word's orec in their read
  //    set at a version now older than the bump, so commit validation (and
  //    load-time extension) fails.
  //
  // Recovery (htm/crash.hpp): when crash injection is (or recently was)
  // active, a waiter that watches the same owner stamp with an unmoving
  // heartbeat across kRecoveryRounds jittered-backoff rounds — a validated
  // timeout — checks the owner's authoritative dead flag and, if the owner
  // is gone, steals the lock by CASing the dead stamp back to 0. The dead
  // owner's buffered write set needs no undo: a crash always fires before
  // commit write-back, so nothing of it ever reached memory — discarding
  // it is exactly the hardware-checkpoint rollback the paper's substrate
  // provides. The steal CAS is ABA-safe: a dead incarnation can never
  // re-acquire (acquisition stamps a live token and death is permanent for
  // an epoch), so a word still equal to the orphaned stamp *is* the
  // abandoned lock.
  // Re-armed inside the loop, not latched at entry: a waiter that starts
  // spinning before the process's first crash (rate 0, no scripted deaths
  // yet) would otherwise never consult the dead flag, and a holder that
  // dies mid-hold would wedge it forever.
  bool recovery = crash::injection_enabled();
  const uint64_t mine = make_owner_word(crash::self_token());
  util::Backoff backoff(8, 1024);
  uint64_t watched = 0;       // owner stamp under observation
  uint64_t watched_hb = 0;    // its heartbeat when observation began
  uint32_t rounds_same = 0;   // backoff rounds with no movement
  for (;;) {
    if (nontxn_cas(tle_lock_word(), uint64_t{0}, mine)) break;
    if (!recovery) {
      recovery = crash::injection_enabled();
      if (!recovery) {
        // Quiet-world stall detection (see kSelfArmRounds).
        const uint64_t cur = nontxn_load(tle_lock_word());
        if (cur != 0 && cur == watched) {
          if (++rounds_same >= kSelfArmRounds) {
            recovery = true;
            watched = 0;
            rounds_same = 0;
          }
        } else {
          watched = cur;
          rounds_same = 0;
        }
      }
    }
    if (recovery) [[unlikely]] {
      crash::heartbeat();  // waiters stay visibly alive while spinning
      const uint64_t cur = nontxn_load(tle_lock_word());
      if (cur == 0) continue;  // freed under us: re-contend immediately
      const crash::Token owner = owner_of(cur);
      // An epoch-mismatched stamp can never become live again (epochs only
      // advance), and its slot's heartbeat now belongs to a *different*
      // incarnation — possibly this very waiter, if it inherited the dead
      // holder's recycled dense id. Treat such a stamp as frozen rather
      // than letting the new incarnation's pulse mask the orphan.
      const uint64_t hb =
          crash::token_orphaned(owner) ? 0 : crash::heartbeat_of(owner.tid);
      if (cur != watched || hb != watched_hb) {
        watched = cur;
        watched_hb = hb;
        rounds_same = 0;
      } else if (++rounds_same >= kRecoveryRounds) {
        rounds_same = 0;
        if (crash::token_orphaned(owner) &&
            nontxn_cas(tle_lock_word(), cur, uint64_t{0})) {
          // Decision point right after a successful steal: a replayed
          // schedule re-interleaves the thief's re-contention against
          // other waiters exactly.
          sched::checkpoint(sched::Kind::kLockSteal);
          local_stats().lock_recoveries++;
          obs::trace_lock_recovery(owner.tid, owner.epoch);
          continue;  // stolen back to free: re-contend immediately
        }
      }
    }
    backoff.pause();
  }
  backoff.reset();
  while (writeback_count().load(std::memory_order_acquire) != 0) {
    backoff.pause();
  }
}

void tle_release() noexcept {
  // Checkpoint *before* the CAS: the window where the holder has decided
  // to release but the word still carries its stamp is exactly where a
  // waiter's recovery logic must prove it cannot steal from the living.
  sched::checkpoint(sched::Kind::kLockRelease);
  // CAS of our own stamp rather than a blind store of 0: if a waiter stole
  // the lock (only possible when the holder is dead — and dead threads
  // skip release), a blind store would stomp the thief's ownership.
  const uint64_t mine = make_owner_word(crash::self_token());
  (void)nontxn_cas(tle_lock_word(), mine, uint64_t{0});
}

}  // namespace detail

namespace {

// kSig is a compile-time split so the exact backend's deallocate path stays
// byte-identical (no 512-byte SigSet to zero, no ring branches).
template <bool kSig>
void invalidate_range_impl(void* p, std::size_t bytes,
                           bool poison) noexcept {
  // Advance every ownership record covering the range, one at a time (never
  // holding two orec locks, so this cannot deadlock against a committing
  // transaction that locks its write set in sorted order).
  const auto start = reinterpret_cast<uintptr_t>(p) & ~uintptr_t{7};
  const auto end = reinterpret_cast<uintptr_t>(p) + bytes;
  const OrecValue mine = make_locked(~0ULL >> 1);
  const ClockPolicy policy = config().clock_policy;
  const uint64_t stride = util::thread_id() + 1;
  // Signature backend: one batched write signature over every covered orec,
  // in flight across the whole walk and published once at the maximum stamp
  // — the range bump is a single logical write (the free of one block), so
  // it costs one ring entry, not one per word.
  SigSet wsig;
  uint64_t max_wv = 0;
  if constexpr (kSig) {
    Orec* const table = orec_table();
    for (uintptr_t word = start; word < end; word += 8) {
      wsig.add(static_cast<uint64_t>(
          &orec_for(reinterpret_cast<const void*>(word)) - table));
    }
    sigring::begin_inflight(wsig);
  }
  for (uintptr_t word = start; word < end; word += 8) {
    Orec& o = orec_for(reinterpret_cast<const void*>(word));
    util::Backoff backoff(2, 64);
    OrecValue cur = o.value.load(std::memory_order_relaxed);
    for (;;) {
      if (!orec_is_locked(cur) &&
          o.value.compare_exchange_weak(cur, mine,
                                        std::memory_order_acq_rel)) {
        break;
      }
      backoff.pause();
      cur = o.value.load(std::memory_order_relaxed);
    }
    if (poison && word >= reinterpret_cast<uintptr_t>(p) && word + 8 <= end) {
      detail::atomic_word_store(reinterpret_cast<uint64_t*>(word),
                                kPoisonWord);
    }
    const ClockStamp stamp =
        writer_stamp(policy, orec_version(cur), orec_version(cur), stride);
    if constexpr (kSig) {
      if (stamp.wv > max_wv) max_wv = stamp.wv;
    }
    o.value.store(make_version(stamp.wv), std::memory_order_release);
  }
  if constexpr (kSig) {
    // Published after the per-orec releases; the still-open in-flight
    // window covers the gap (same argument as the lock-mode commit).
    if (max_wv != 0) sigring::publish(wsig, max_wv);
    sigring::end_inflight();
  }
}

}  // namespace

void invalidate_range(void* p, std::size_t bytes, bool poison) noexcept {
  if (config().validation == ValidationPolicy::kSignature) {
    invalidate_range_impl<true>(p, bytes, poison);
  } else {
    invalidate_range_impl<false>(p, bytes, poison);
  }
}

}  // namespace dc::htm
