// Txn: one attempt of a hardware transaction, simulated in software.
//
// The execution model follows TL2 (Dice, Shalev, Shavit, DISC'06) at word
// granularity, with two deviations chosen to mimic Rock-style best-effort
// HTM as the paper's algorithms experience it:
//
//  * Eager per-load validation plus timestamp extension gives *opacity*: a
//    transaction never acts on an inconsistent view. Combined with the
//    never-unmapping pool allocator (src/memory) whose deallocate bumps the
//    freed words' orecs, this reproduces Rock's "sandboxing": dereferencing
//    a pointer whose referent was freed aborts the transaction instead of
//    faulting (paper footnote 1).
//
//  * The write set is bounded by Config::store_buffer_capacity (default 32,
//    Rock's store-buffer size); exceeding it aborts with kOverflow. Stores
//    to transaction-private memory (e.g. recording a value into a Collect
//    result set) also occupied Rock's store buffer — the paper's reason
//    telescoping step sizes cap at 32 — so algorithms account for them via
//    charge_store().
//
// Hot-path structure (see DESIGN.md "HTM hot-path design"):
//  * config() fields and the orec table pointer are snapshotted once per
//    attempt, so load()/store() never call through to the out-of-line
//    config()/orec_table() accessors.
//  * The read set is deduplicated at load time through a direct-mapped
//    per-thread filter of (orec, attempt-epoch) pairs: N loads of one hot
//    word cost one read-set entry, so try_extend()/validate_read_set() stay
//    proportional to the *distinct* words read.
//  * store() resolves and caches the covering Orec* in the WriteEntry and
//    maintains the commit lock list sorted and deduplicated incrementally,
//    so acquire_write_locks() is a straight walk — no orec_for
//    recomputation, no sort, no unique at commit time. The write set itself
//    is kept sorted by address, so commit can coalesce runs of adjacent
//    sub-word stores that tile one aligned word into a single write-back
//    (Config::enable_write_coalescing), and read-own-writes is a binary
//    search.
//  * The global-clock interaction is behind Config::clock_policy
//    (htm/clock.hpp): GV1 pays one fetch_add per visible writing commit;
//    GV5 stamps sloppily and commits perform no shared-clock write at all,
//    with readers absorbing ahead-of-clock versions via the re-sample rule
//    in try_extend().
//  * All scratch buffers use inline small-buffer storage sized to the
//    32-entry store buffer (util/small_vector.hpp).
//
// Usage: via htm::atomic() / htm::try_once() in htm/htm.hpp; Txn is not
// created directly by algorithm code.
#pragma once

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "htm/abort.hpp"
#include "htm/config.hpp"
#include "sched/checkpoint.hpp"
#include "htm/crash.hpp"
#include "htm/orec.hpp"
#include "htm/sigset.hpp"
#include "util/asan.hpp"
#include "util/small_vector.hpp"

namespace dc::htm {

// Types that may be read/written transactionally: word-sized or smaller,
// trivially copyable, power-of-two size (so a value never straddles two
// 8-byte-aligned words when naturally aligned).
template <class T>
concept TxnWord =
    std::is_trivially_copyable_v<T> && (sizeof(T) == 1 || sizeof(T) == 2 ||
                                        sizeof(T) == 4 || sizeof(T) == 8);

namespace detail {

// The substrate's word-access primitives are exempt from ASan
// (DC_NO_SANITIZE_ADDRESS): with pool poisoning enabled, a transactional
// load can race a concurrent free and touch a just-poisoned word between
// its two orec samples — defined behaviour here (the v2 recheck or the
// version bump dooms the reader; that is the sandboxing guarantee), so it
// must not be reported. Raw accesses that bypass these primitives remain
// fully instrumented. The bodies use the __atomic builtins rather than
// std::atomic_ref: the attribute does not strip instrumentation from code
// *inlined into* the exempt function, and atomic_ref::load carries an
// instrumented read.
template <TxnWord T>
DC_NO_SANITIZE_ADDRESS T atomic_word_load(const T* addr) noexcept {
  T value;
  __atomic_load(addr, &value, __ATOMIC_ACQUIRE);
  return value;
}

template <TxnWord T>
DC_NO_SANITIZE_ADDRESS void atomic_word_store(T* addr, T value) noexcept {
  __atomic_store(addr, &value, __ATOMIC_RELEASE);
}

template <TxnWord T>
uint64_t to_bits(T value) noexcept {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  return bits;
}

template <TxnWord T>
T from_bits(uint64_t bits) noexcept {
  T value;
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

}  // namespace detail

class Txn {
 public:
  // Begun by htm::atomic()/try_once(). `lock_mode` is the TLE fallback path:
  // loads go straight to memory and stores become strong-atomicity stores.
  explicit Txn(bool lock_mode = false);
  ~Txn();

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  bool in_lock_mode() const noexcept { return lock_mode_; }

  // Transactional load. Validates against the read version; may extend the
  // read version; aborts (throws TxnAbort) on conflict.
  template <TxnWord T>
  T load(const T* addr) {
    // A real multicore can interleave another thread's commit anywhere
    // relative to this load; under the deterministic scheduler this is
    // where that interleaving gets decided.
    sched::checkpoint(sched::Kind::kTxnLoad);
    maybe_crash();  // fires in lock mode too (a TLE holder can die)
    if (lock_mode_) {
      // Lock-mode stores stay buffered until commit (so an explicit abort
      // or a user exception can still discard them), so read-own-writes
      // must consult the write set here too — a raw memory load would
      // return the pre-store value of a word this block already wrote.
      const auto a = reinterpret_cast<uintptr_t>(addr);
      const std::size_t i = write_lower_bound(a);
      if (i < s_.write_set.size() && s_.write_set[i].addr == a) {
        return detail::from_bits<T>(s_.write_set[i].value);
      }
      return detail::atomic_word_load(addr);
    }
    maybe_fault();
    maybe_yield();
    const auto a = reinterpret_cast<uintptr_t>(addr);
    // Read-own-writes: the write set is kept sorted by address (for commit
    // coalescing), so the buffered value is a binary search away.
    {
      const std::size_t i = write_lower_bound(a);
      if (i < s_.write_set.size() && s_.write_set[i].addr == a) {
        return detail::from_bits<T>(s_.write_set[i].value);
      }
    }
    Orec& o = orec_table_[orec_index(a, granularity_log2_)];
    for (int tries = 0; tries < kLoadRetries; ++tries) {
      OrecValue v1 = o.value.load(std::memory_order_acquire);
      if (orec_is_locked(v1)) {
        // A commit's write-back or a strong-atomicity store is in flight.
        abort_load(o, addr);
      }
      if (orec_version(v1) > rv_) {
        // The version is ahead of this transaction's snapshot. Under GV1
        // that means a commit since begin; under GV5 it may simply be a
        // sloppy stamp the shared clock has not caught up with. Either way:
        // re-sample the clock and revalidate instead of aborting.
        if (!try_extend(orec_version(v1))) abort_load(o, addr);
        continue;  // re-examine the orec under the extended read version
      }
      const T value = detail::atomic_word_load(addr);
      const OrecValue v2 = o.value.load(std::memory_order_acquire);
      if (v1 == v2) {
        note_read(&o);
        return value;
      }
      // The word changed between the two orec samples; retry the sandwich.
    }
    abort_load(o, addr);
  }

  // Non-mutating overload so `txn.load(&count)` works on non-const lvalues.
  template <TxnWord T>
  T load(T* addr) {
    return load(const_cast<const T*>(addr));
  }

  // Transactional store: buffered until commit. Aborts with kOverflow when
  // the store budget is exhausted (speculative mode only: the lock-mode
  // fallback runs non-speculatively, so the store buffer does not apply,
  // but stores stay buffered so an explicit abort still discards them).
  // Stores to *overlapping* byte ranges at distinct addresses (e.g. a
  // uint64 store over a uint8 store) have unspecified write-back order —
  // the write set is applied in address order, not program order.
  template <TxnWord T>
  void store(T* addr, T value) {
    sched::checkpoint(sched::Kind::kTxnStore);
    maybe_crash();  // fires in lock mode too (a TLE holder can die)
    maybe_fault();  // armed only on speculative attempts (fault.hpp)
    const auto a = reinterpret_cast<uintptr_t>(addr);
    const uint64_t bits = detail::to_bits(value);
    const std::size_t i = write_lower_bound(a);
    if (i < s_.write_set.size() && s_.write_set[i].addr == a) {
      assert(s_.write_set[i].size == sizeof(T) &&
             "mixed-size stores to one address");
      s_.write_set[i].value = bits;
      return;
    }
    if (!lock_mode_ && stores_used() >= store_capacity_) {
      abort(AbortCode::kOverflow);
    }
    Orec* o = &orec_table_[orec_index(a, granularity_log2_)];
    s_.write_set.insert_at(
        i, WriteEntry{a, bits, o, static_cast<uint32_t>(sizeof(T))});
    note_write_orec(o);
  }

  // Accounts for `n` stores to transaction-private memory (result-set
  // recording). They consume store-buffer budget but need no write-back.
  void charge_store(uint32_t n = 1) {
    if (lock_mode_) return;
    if (stores_used() + n > store_capacity_) {
      abort(AbortCode::kOverflow);
    }
    charged_stores_ += n;
  }

  // Remaining store budget; telescoped Collect uses it to clamp step size.
  uint32_t store_budget_left() const noexcept {
    const uint32_t used = stores_used();
    return store_capacity_ > used ? store_capacity_ - used : 0;
  }

  // Registers a cleanup to run iff this attempt aborts (after the
  // transaction context is torn down, so the callback may use the
  // allocator). This is what a TM-aware allocator needs (paper §6: the
  // algorithms were "complicated somewhat by our efforts to avoid memory
  // allocation within transactions" — a non-fundamental Rock limitation):
  // an allocation made inside the transaction registers its own release
  // here and is handed over cleanly on commit.
  void on_abort(void (*fn)(void*, std::size_t), void* p, std::size_t bytes);

  // Request an abort of this attempt (retried by htm::atomic()).
  [[noreturn]] void abort(AbortCode code);

  // Fault injection (htm/fault.hpp): dooms this speculative attempt to
  // raise a spurious abort of cause `code` after `after_ops` further
  // transactional loads/stores — or at commit() entry, if the body issues
  // fewer. Called by the atomic()/try_once() wrappers before the body runs;
  // never on lock-mode attempts.
  void arm_fault(AbortCode code, uint32_t after_ops) noexcept {
    fault_code_ = code;
    fault_ops_left_ = after_ops;
    fault_armed_ = true;
  }

  // Thread-death injection (htm/crash.hpp): dooms this attempt to kill its
  // thread from the (`after_ops`+1)-th further transactional load/store — or
  // at commit() entry, if the body issues fewer. Unlike arm_fault this also
  // arms lock-mode attempts: dying while holding the TLE lock is precisely
  // the failure the recoverable lock exists for. The crash always fires
  // before commit write-back, so the enclosing block never commits.
  void arm_crash(crash::Point point, uint32_t after_ops) noexcept {
    crash_point_ = point;
    crash_ops_left_ = after_ops;
    crash_armed_ = true;
  }

  // A non-TxnAbort exception escaped the body: release any held orec locks
  // and mark the attempt aborted (counted as kExplicit — the body, not the
  // substrate, terminated it) so the destructor runs the abort hooks and
  // the buffered stores are discarded. The wrappers call this before
  // rethrowing the user's exception.
  void doom() noexcept;

  // Attempts to commit; called by the htm::atomic()/try_once() wrappers.
  // Throws TxnAbort on validation failure.
  void commit();

  // --- Observability surface (src/obs, tests) ---
  // The snapshot this attempt currently validates reads against (TL2 read
  // version; advances on successful re-sample).
  uint64_t read_version() const noexcept { return rv_; }
  // Distinct orecs read / words written so far this attempt (post-dedup).
  uint32_t read_set_size() const noexcept {
    return static_cast<uint32_t>(s_.read_set.size());
  }
  uint32_t write_set_size() const noexcept {
    return static_cast<uint32_t>(s_.write_set.size());
  }
  // Retry index of this attempt within its atomic block, stamped into the
  // lifecycle trace events by the htm::atomic() wrapper (DC_TRACE builds).
  void set_trace_attempt(uint32_t attempt) noexcept {
    trace_attempt_ = attempt;
  }

 private:
  struct WriteEntry {
    uintptr_t addr;
    uint64_t value;
    Orec* orec;  // resolved at store() time; commit never recomputes it
    uint32_t size;
  };
  struct LockedOrec {
    Orec* orec;
    OrecValue previous;
  };
  struct AbortHook {
    void (*fn)(void*, std::size_t);
    void* p;
    std::size_t bytes;
  };

  // Per-thread scratch reused across attempts: the read/write/lock buffers
  // (inline small-buffer storage; no allocation in the steady state) and the
  // read-set dedup filter. The filter is direct-mapped by orec address and
  // stamped with a per-attempt epoch, so "clearing" it per attempt is one
  // counter increment; a collision merely costs a duplicate read-set entry.
  struct Scratch {
    static constexpr std::size_t kFilterSizeLog2 = 8;
    static constexpr std::size_t kFilterSize = std::size_t{1}
                                               << kFilterSizeLog2;
    struct FilterSlot {
      const Orec* orec;
      uint64_t epoch;
    };

    util::SmallVector<Orec*, 128> read_set;
    util::SmallVector<WriteEntry, 40> write_set;
    // Distinct orecs covering the write set, kept sorted by table address
    // (the deadlock-free global lock order) and deduplicated as stores are
    // inserted; `previous` is filled in by acquire_write_locks().
    util::SmallVector<LockedOrec, 40> locked;
    util::SmallVector<AbortHook, 8> abort_hooks;
    // Read-orec Bloom signature (ValidationPolicy::kSignature only). Unlike
    // the dedup filter it cannot be epoch-cleared — Bloom bits are
    // OR-accumulated with no per-slot stamp to invalidate — so attempts in
    // sig mode memset it on begin (512 bytes; exact mode never touches it).
    SigSet read_sig;
    FilterSlot filter[kFilterSize] = {};
    uint64_t epoch = 0;

    static Scratch& get() noexcept;  // thread-local (txn.cpp)
  };

  static constexpr int kLoadRetries = 64;

  Txn(bool lock_mode, const Config& cfg, Scratch& s);

  uint32_t stores_used() const noexcept {
    return static_cast<uint32_t>(s_.write_set.size()) + charged_stores_;
  }

  // Records `o` in the read set unless this attempt already did.
  void note_read(Orec* o) {
    Scratch::FilterSlot& slot =
        s_.filter[(reinterpret_cast<uintptr_t>(o) / sizeof(Orec)) &
                  (Scratch::kFilterSize - 1)];
    if (slot.orec == o && slot.epoch == epoch_) return;
    slot.orec = o;
    slot.epoch = epoch_;
    s_.read_set.push_back(o);
    if (sig_mode_) {
      s_.read_sig.add(static_cast<uint64_t>(o - orec_table_));
    }
  }

  // Index of the first write-set entry with address >= a (the write set is
  // kept sorted by address; see store()).
  std::size_t write_lower_bound(uintptr_t a) const noexcept {
    std::size_t lo = 0, hi = s_.write_set.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (s_.write_set[mid].addr < a) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Inserts `o` into the sorted, deduplicated commit lock list.
  void note_write_orec(Orec* o) {
    std::size_t lo = 0, hi = s_.locked.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (s_.locked[mid].orec < o) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < s_.locked.size() && s_.locked[lo].orec == o) return;
    s_.locked.insert_at(lo, LockedOrec{o, 0});
  }

  // Injected-fault countdown: one predictable not-taken branch per
  // transactional op when no fault is armed (the common case even during
  // injection runs — most attempts draw no fault).
  void maybe_fault() {
    if (fault_armed_) [[unlikely]] {
      if (fault_ops_left_ == 0) fire_fault();
      --fault_ops_left_;
      ++fault_ops_done_;
    }
  }
  [[noreturn]] void fire_fault();  // txn.cpp: stats + trace + abort

  // Injected-crash countdown, same shape as maybe_fault: one predictable
  // not-taken branch per transactional op when no crash is armed.
  void maybe_crash() {
    if (crash_armed_) [[unlikely]] {
      if (crash_ops_left_ == 0) fire_crash();
      --crash_ops_left_;
      ++crash_ops_done_;
    }
  }
  // txn.cpp: stats + trace + mark dead + throw crash::ThreadCrash. The
  // thrown crash is not a TxnAbort: wrappers rethrow it untouched.
  [[noreturn]] void fire_crash();

  // See Config::txn_yield_every_loads (txn.cpp; out of line so the hot path
  // stays a counter bump and a predictable branch).
  void maybe_yield() {
    if (yield_every_ != 0 && ++loads_since_yield_ >= yield_every_) {
      loads_since_yield_ = 0;
      yield_now();
    }
  }
  static void yield_now();

  // Re-sample: revalidates the read set at the current rv_ and, on success,
  // advances rv_ to cover both the shared clock and `observed` (a version
  // seen ahead of the snapshot; under GV5 the clock is CAS-maxed up to it
  // first — see clock.hpp rule 2).
  bool try_extend(uint64_t observed) noexcept;

  // Conflict abort that remembers the culprit orec, so the destructor can
  // attribute the abort (obs/conflict_map) in DC_TRACE builds.
  [[noreturn]] void abort_conflict(Orec& o) {
    conflict_orec_ = &o;
    abort(AbortCode::kConflict);
  }

  // Doomed-load abort: when the allocator's ASan poison identifies the
  // target as freed memory, the abort gets the paper's distinct
  // illegal-access tag (footnote 1's sandboxed dereference of a reclaimed
  // block) instead of a generic conflict. Abort-path only — the check
  // costs nothing on successful loads and is constant-false without ASan.
  [[noreturn]] void abort_load(Orec& o, const void* addr) {
    if (util::asan_is_poisoned(addr)) abort(AbortCode::kIllegalAccess);
    abort_conflict(o);
  }

  // Commit helpers (txn.cpp). acquire_write_locks also records the highest
  // pre-lock version into max_prev_ (the stamp's monotonicity floor).
  void acquire_write_locks();
  void release_locks_to(uint64_t version) noexcept;
  void rollback_locks() noexcept;
  void write_back() noexcept;
  bool writes_unchanged() const noexcept;
  // Length of the coalescable run starting at write-set index i (entries
  // exactly tiling one aligned 8-byte word), with the packed word value in
  // *packed; 1 when no coalescing applies.
  std::size_t coalesce_run(std::size_t i, uint64_t* packed) const noexcept;
  // nullptr when the read set validates; otherwise the first orec whose
  // version check failed (the conflict culprit).
  Orec* validate_read_set() const noexcept;
  OrecValue pre_lock_version(const Orec* o) const noexcept;

  // Validation dispatcher over Config::validation: exact mode runs the
  // read-set walk; sig mode scans the commit-signature ring (falling back
  // to the walk on ring wrap) and maintains the sig_* counters. Returns
  // true when the read set is valid at rv_; on false, *culprit carries the
  // failing orec when the exact walk identified one (nullptr for a pure
  // signature hit). Used by commit() and try_extend(); wrapped with the
  // kValidate latency probe in DC_TRACE builds.
  bool validate_reads(Orec** culprit) noexcept;
  bool validate_reads_impl(Orec** culprit) noexcept;

  // Returns the stamp the orec was released to (for the sig-mode ring
  // publish, which wants the maximum across the block's stores).
  uint64_t lock_mode_store(void* addr, uint64_t bits, uint32_t size) noexcept;

  uint64_t rv_;              // read version (TL2)
  const uint64_t my_token_;  // lock ownership token
  // Per-attempt snapshots: load()/store() must not call through to the
  // out-of-line config()/orec_table() accessors (config changes mid-
  // transaction are documented as unsupported, so snapshotting is sound).
  Orec* const orec_table_;
  const uint32_t store_capacity_;
  const uint32_t yield_every_;
  const uint32_t granularity_log2_;
  const ClockPolicy clock_policy_;
  const bool extension_enabled_;
  const bool coalesce_;
  // Validation-backend snapshot (Config::validation /
  // Config::validation_crosscheck at attempt begin).
  const bool sig_mode_;
  const bool sig_crosscheck_;
  const bool lock_mode_;
  bool committed_ = false;
  // Abort forensics, read by the destructor's obs hooks: the code of the
  // abort in flight, the orec it conflicted on (conflict aborts only), and
  // the retry index assigned by the atomic() wrapper.
  AbortCode last_abort_ = AbortCode::kNone;
  Orec* conflict_orec_ = nullptr;
  uint32_t trace_attempt_ = 0;
  uint32_t charged_stores_ = 0;
  uint32_t loads_since_yield_ = 0;
  // Injected-fault arming (arm_fault/maybe_fault/fire_fault).
  bool fault_armed_ = false;
  AbortCode fault_code_ = AbortCode::kNone;
  uint32_t fault_ops_left_ = 0;
  uint32_t fault_ops_done_ = 0;  // ops survived, for the trace event
  // Injected-crash arming (arm_crash/maybe_crash/fire_crash).
  bool crash_armed_ = false;
  crash::Point crash_point_ = crash::Point::kTxnOp;
  uint32_t crash_ops_left_ = 0;
  uint32_t crash_ops_done_ = 0;  // ops survived, for the trace event
  // Highest pre-lock version among the locked orecs (acquire_write_locks);
  // the commit stamp must exceed it so per-orec versions stay monotone.
  uint64_t max_prev_ = 0;
  // Number of entries of s_.locked actually holding their orec lock; only
  // the prefix [0, locks_held_) may be released on rollback.
  uint32_t locks_held_ = 0;
  Scratch& s_;
  const uint64_t epoch_;  // this attempt's read-set dedup epoch
};

// True while the calling thread is inside an atomic block (used to reject
// nesting and to assert the allocator is not called transactionally).
bool in_transaction() noexcept;

namespace detail {
void set_in_transaction(bool) noexcept;
}

}  // namespace dc::htm
