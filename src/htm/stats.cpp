#include "htm/stats.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/timeline.hpp"

namespace dc::htm {

namespace {

// Registry of all thread-local stats blocks. Exited threads' blocks are
// retained (heap-allocated) so their counts remain visible to
// aggregate_stats, matching how benchmarks join workers before reading.
struct Registry {
  std::mutex mu;
  std::vector<TxnStats*> blocks;
};

Registry& registry() noexcept {
  static Registry* r = new Registry;
  return *r;
}

TxnStats* make_local_block() {
  auto* block = new TxnStats;
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.blocks.push_back(block);
  return block;
}

}  // namespace

TxnStats& local_stats() noexcept {
  thread_local TxnStats* block = make_local_block();
  return *block;
}

TxnStats aggregate_stats() noexcept {
  TxnStats total;
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (const TxnStats* b : r.blocks) total += *b;
  return total;
}

void reset_stats() noexcept {
  // Same enforcement as obs::reset_histograms(): the timeline sampler
  // differences consecutive aggregate_stats() samples, and a cross-thread
  // zeroing under it would silently turn every subsequent window delta
  // into garbage (saturating subtraction hides the wrap). Quiescent-only
  // means the sampler too.
  if (obs::timeline::running()) {
    std::fprintf(stderr,
                 "htm: reset_stats() while the obs timeline sampler is "
                 "running violates the quiescent-only contract "
                 "(stats.hpp); stop() the sampler first\n");
    std::abort();
  }
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  // Zero in place — never free: exited threads' blocks stay registered for
  // the process lifetime (see the contract in stats.hpp).
  for (TxnStats* b : r.blocks) *b = TxnStats{};
}

std::size_t registered_thread_count() noexcept {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  return r.blocks.size();
}

const char* to_string(AbortCode code) noexcept {
  switch (code) {
    case AbortCode::kNone:
      return "none";
    case AbortCode::kConflict:
      return "conflict";
    case AbortCode::kOverflow:
      return "overflow";
    case AbortCode::kExplicit:
      return "explicit";
    case AbortCode::kIllegalAccess:
      return "illegal-access";
    case AbortCode::kInterrupt:
      return "interrupt";
    case AbortCode::kTlbMiss:
      return "tlb-miss";
    case AbortCode::kSaveRestore:
      return "save-restore";
    case AbortCode::kAllocFailed:
      return "alloc-failed";
    case AbortCode::kNumCodes:
      break;
  }
  return "?";
}

}  // namespace dc::htm
