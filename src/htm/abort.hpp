// Transaction abort causes and the (internal) abort exception.
//
// The set of causes mirrors what Rock's checkpoint-status register reported
// to software [Dice et al., ASPLOS'09]: conflicts, store-buffer overflow
// ("size"), explicit aborts, and illegal accesses. The adaptive telescoping
// controller (paper §3.4) keys off commit-vs-abort outcomes; tests and
// benchmark diagnostics key off the specific cause.
#pragma once

#include <cstdint>

namespace dc::htm {

enum class AbortCode : uint8_t {
  kNone = 0,
  // Another thread wrote (transactionally or via a strong-atomicity store)
  // a location this transaction read, or holds a commit-time lock on it.
  kConflict,
  // The transaction issued more stores than the simulated store buffer
  // accommodates (Rock: 32 entries; configurable here).
  kOverflow,
  // The transaction body requested an abort.
  kExplicit,
  // The transaction accessed memory freed through the HTM-aware allocator.
  // On Rock this manifests as a sandboxed abort instead of a fault
  // (paper footnote 1); in this substrate it surfaces as a conflict raised
  // by the allocator's ownership-record bump, tagged distinctly when the
  // allocator's debug poison detects it.
  kIllegalAccess,
  kNumCodes,
};

const char* to_string(AbortCode code) noexcept;

// Thrown by Txn to unwind out of the transaction body. User code must never
// catch this type (catching it would break the retry loop); catch clauses in
// algorithm code should use catch(...) only with rethrow.
struct TxnAbort {
  AbortCode code;
};

}  // namespace dc::htm
