// Transaction abort causes and the (internal) abort exception.
//
// The set of causes mirrors what Rock's checkpoint-status register reported
// to software [Dice et al., ASPLOS'09]: conflicts, store-buffer overflow
// ("size"), explicit aborts, illegal accesses, and the *spurious* causes
// (interrupts, TLB misses, register-window save/restore) that make Rock
// best-effort — a transaction can fail for reasons unrelated to the data it
// touched, and re-executing it unchanged usually succeeds. The simulator
// never hits those conditions on its own; the fault injector (htm/fault.hpp)
// raises them deliberately so the retry/TLE machinery is exercised the way
// real Rock software exercised it. The adaptive telescoping controller
// (paper §3.4) keys off commit-vs-abort outcomes; tests, the cause-aware
// retry policy (htm/retry.hpp), and benchmark diagnostics key off the
// specific cause.
#pragma once

#include <cstdint>
#include <new>

namespace dc::htm {

enum class AbortCode : uint8_t {
  kNone = 0,
  // Another thread wrote (transactionally or via a strong-atomicity store)
  // a location this transaction read, or holds a commit-time lock on it.
  kConflict,
  // The transaction issued more stores than the simulated store buffer
  // accommodates (Rock: 32 entries; configurable here).
  kOverflow,
  // The transaction body requested an abort.
  kExplicit,
  // The transaction accessed memory freed through the HTM-aware allocator.
  // On Rock this manifests as a sandboxed abort instead of a fault
  // (paper footnote 1); in this substrate it surfaces as a conflict raised
  // by the allocator's ownership-record bump, tagged distinctly when the
  // allocator's debug poison detects it.
  kIllegalAccess,
  // Spurious causes (fault injection only). Rock aborted a transaction on
  // any interrupt delivered to the strand, on an ITLB/DTLB miss taken inside
  // the transaction, and on register-window save/restore traps. All three
  // are transient: the same attempt re-executed unchanged is expected to
  // succeed, which is exactly what distinguishes them from kConflict
  // (contention — back off) and kOverflow (deterministic — escalate).
  kInterrupt,
  kTlbMiss,
  kSaveRestore,
  // A pool allocation inside the transaction failed (bounded-capacity mode
  // or injected allocation fault; memory/pool.hpp). Not spurious — retrying
  // the identical attempt immediately re-runs the identical allocation
  // against the same exhausted pool — and not curable by the TLE lock
  // either (the lock serializes conflicts; it cannot conjure memory). The
  // cause-aware retry policy backs off waiting for reclamation progress and
  // escalates to TxnOutOfMemory when none arrives (htm/retry.hpp).
  kAllocFailed,
  kNumCodes,
};

const char* to_string(AbortCode code) noexcept;

// True for the transient Rock-style causes a cause-aware retry policy may
// re-execute immediately: the condition that killed the attempt is not a
// property of the data the transaction touched.
constexpr bool is_spurious(AbortCode code) noexcept {
  return code == AbortCode::kInterrupt || code == AbortCode::kTlbMiss ||
         code == AbortCode::kSaveRestore;
}

// Thrown by Txn to unwind out of the transaction body. User code must never
// catch this type (catching it would break the retry loop); catch clauses in
// algorithm code should use catch(...) only with rethrow.
struct TxnAbort {
  AbortCode code;
};

// Caller-visible escalation of kAllocFailed: thrown by the retry loop when
// a block keeps failing allocation and the pool shows no reclamation
// progress across the bounded wait (Config::mem.alloc_retry_limit). Unlike
// TxnAbort this is *meant* to be caught — it derives from std::bad_alloc so
// existing out-of-memory handling (the service layer's per-session guard,
// plain `catch (const std::bad_alloc&)`) sees pool exhaustion inside an
// atomic block exactly like pool exhaustion outside one. It propagates out
// of htm::atomic() via the non-TxnAbort escape path (the transaction is
// already destroyed and rolled back when it leaves the retry loop).
struct TxnOutOfMemory : std::bad_alloc {
  const char* what() const noexcept override {
    return "dc::htm: transactional allocation failed with no reclamation "
           "progress";
  }
};

}  // namespace dc::htm
