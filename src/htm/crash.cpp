#include "htm/crash.hpp"

#include <atomic>
#include <utility>

#include "htm/config.hpp"
#include "sched/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace dc::htm::crash {

namespace {

// Same storage discipline as fault.cpp: the hot path reads one relaxed
// atomic; script installation is quiescent-only.
std::vector<ScriptedCrash>& script_storage() noexcept {
  static std::vector<ScriptedCrash>* s = new std::vector<ScriptedCrash>;
  return *s;
}

std::atomic<bool> g_script_on{false};

// Number of armed self-schedules across all threads. Nonzero turns
// injection_enabled() on so that *other* threads' lock-recovery paths are
// active before the scheduled death happens.
std::atomic<uint32_t> g_self_pending{0};

// Number of currently-dead incarnations. Keeps recovery enabled after the
// last kill fires (a waiter may reach the dead owner's lock long after the
// rate/script sources went quiet); reset_all()/reset_thread() drain it.
std::atomic<uint32_t> g_dead_count{0};

struct alignas(64) LivenessSlot {
  std::atomic<uint64_t> heartbeat{0};
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint32_t> dead{0};
};

LivenessSlot* slots() noexcept {
  static LivenessSlot* s = new LivenessSlot[util::kMaxThreads];
  return s;
}

struct ThreadCrashState {
  bool registered = false;  // slot epoch bumped for this incarnation
  bool opted_in = false;
  bool dead = false;
  uint32_t tid = 0;
  uint64_t epoch = 0;
  uint64_t blocks = 0;
  bool seeded = false;
  util::Xoshiro256 rng{0};
  // One-shot self-schedule (valid while self_armed).
  bool self_armed = false;
  uint64_t self_block = 0;
  Point self_point = Point::kTxnOp;
  uint32_t self_after_ops = 0;
};

ThreadCrashState& state() noexcept {
  thread_local ThreadCrashState s;
  return s;
}

// Binds the calling thread to its liveness slot: a fresh incarnation epoch
// is taken and the dead flag cleared, so tokens held by a previous owner of
// the same dense id stay orphaned.
void ensure_registered(ThreadCrashState& s) noexcept {
  if (s.registered) return;
  s.tid = util::thread_id();
  LivenessSlot& slot = slots()[s.tid];
  if (slot.dead.exchange(0, std::memory_order_relaxed) != 0) {
    g_dead_count.fetch_sub(1, std::memory_order_relaxed);
  }
  s.epoch = slot.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  s.dead = false;
  s.registered = true;
}

void seed_stream(ThreadCrashState& s) noexcept {
  // Under the deterministic scheduler the stream is a pure function of
  // (config seed, schedule seed, logical thread index), so injected chaos
  // is part of the schedule and replays with it. Outside a scheduled run
  // run_seed() is 0 and the identity is the dense thread id — bit-for-bit
  // the pre-scheduler stream.
  const uint64_t who = sched::active()
                           ? static_cast<uint64_t>(sched::self_index())
                           : static_cast<uint64_t>(util::thread_id());
  util::SplitMix64 mix(config().crash.seed ^ sched::run_seed() ^
                       (0x9e3779b97f4a7c15ULL * (who + 1)));
  s.rng = util::Xoshiro256(mix.next());
  s.seeded = true;
}

}  // namespace

const char* to_string(Point p) noexcept {
  switch (p) {
    case Point::kTxnOp:
      return "txn_op";
    case Point::kCommitEntry:
      return "commit_entry";
    case Point::kLockHeld:
      return "lock_held";
  }
  return "?";
}

bool injection_enabled() noexcept {
  return config().crash.rate > 0.0 ||
         g_script_on.load(std::memory_order_relaxed) ||
         g_self_pending.load(std::memory_order_relaxed) != 0 ||
         g_dead_count.load(std::memory_order_relaxed) != 0;
}

uint64_t begin_block() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  return s.blocks++;
}

Decision plan(uint64_t block) noexcept {
  Decision d;
  ThreadCrashState& s = state();
  if (s.dead) return d;  // a dead thread cannot die twice
  if (s.self_armed && block >= s.self_block) {
    d.fire = true;
    d.point = s.self_point;
    d.after_ops = s.self_after_ops;
    s.self_armed = false;
    g_self_pending.fetch_sub(1, std::memory_order_relaxed);
    return d;
  }
  if (!s.opted_in) return d;  // scripted + rate kills need opt-in
  if (g_script_on.load(std::memory_order_relaxed)) {
    const uint32_t tid = util::thread_id();
    for (const ScriptedCrash& e : script_storage()) {
      if ((e.tid == kAnyThread || e.tid == tid) &&
          (e.block == kAnyBlock || e.block == block)) {
        d.fire = true;
        d.point = e.point;
        d.after_ops = e.after_ops;
        return d;
      }
    }
  }
  const double rate = config().crash.rate;
  if (rate > 0.0) {
    if (!s.seeded) seed_stream(s);
    if (s.rng.next_double() < rate) {
      d.fire = true;
      // Spread deaths across the three points: mostly mid-transaction, with
      // a steady trickle of commit-entry and lock-held kills so every
      // recovery path is exercised by a plain rate run.
      const uint64_t r = s.rng.next_below(8);
      d.point = r < 5 ? Point::kTxnOp
                      : (r < 7 ? Point::kCommitEntry : Point::kLockHeld);
      d.after_ops = static_cast<uint32_t>(s.rng.next_below(24));
    }
  }
  return d;
}

void set_script(std::vector<ScriptedCrash> script) {
  script_storage() = std::move(script);
  g_script_on.store(!script_storage().empty(), std::memory_order_relaxed);
}

void clear_script() { set_script({}); }

void schedule_self(Point point, uint64_t blocks_from_now,
                   uint32_t after_ops) noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  if (!s.self_armed) g_self_pending.fetch_add(1, std::memory_order_relaxed);
  s.self_armed = true;
  s.self_block = s.blocks + blocks_from_now;
  s.self_point = point;
  s.self_after_ops = after_ops;
}

void enable_self() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  s.opted_in = true;
}

void heartbeat() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  slots()[s.tid].heartbeat.fetch_add(1, std::memory_order_relaxed);
}

uint64_t heartbeat_of(uint32_t tid) noexcept {
  return tid < util::kMaxThreads
             ? slots()[tid].heartbeat.load(std::memory_order_relaxed)
             : 0;
}

uint64_t epoch_of(uint32_t tid) noexcept {
  return tid < util::kMaxThreads
             ? slots()[tid].epoch.load(std::memory_order_relaxed)
             : 0;
}

Token self_token() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  return Token{s.tid, s.epoch};
}

bool token_orphaned(Token t) noexcept {
  if (t.tid >= util::kMaxThreads) return true;
  LivenessSlot& slot = slots()[t.tid];
  if (slot.epoch.load(std::memory_order_relaxed) != t.epoch) return true;
  return slot.dead.load(std::memory_order_relaxed) != 0;
}

bool is_dead(uint32_t tid) noexcept {
  return tid < util::kMaxThreads &&
         slots()[tid].dead.load(std::memory_order_relaxed) != 0;
}

void mark_dead() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  if (s.dead) return;
  s.dead = true;
  if (slots()[s.tid].dead.exchange(1, std::memory_order_relaxed) == 0) {
    g_dead_count.fetch_add(1, std::memory_order_relaxed);
  }
}

bool self_dead() noexcept { return state().dead; }

void reset_thread() noexcept {
  ThreadCrashState& s = state();
  if (s.self_armed) {
    s.self_armed = false;
    g_self_pending.fetch_sub(1, std::memory_order_relaxed);
  }
  s.blocks = 0;
  s.seeded = false;  // re-seed lazily from the current Config::crash.seed
  s.opted_in = false;
  s.dead = false;
  s.registered = false;  // re-register: fresh epoch, dead flag cleared
  ensure_registered(s);
}

void reset_all() noexcept {
  clear_script();
  for (uint32_t tid = 0; tid < util::kMaxThreads; ++tid) {
    LivenessSlot& slot = slots()[tid];
    if (slot.dead.exchange(0, std::memory_order_relaxed) != 0) {
      g_dead_count.fetch_sub(1, std::memory_order_relaxed);
    }
    slot.epoch.fetch_add(1, std::memory_order_relaxed);
  }
  // Pending self-schedules on other threads stay armed (they own their
  // counters); the calling thread clears its own via reset_thread().
  reset_thread();
}

}  // namespace dc::htm::crash
