#include "htm/crash.hpp"

#include <atomic>
#include <utility>

#include "htm/config.hpp"
#include "sched/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace dc::htm::crash {

namespace {

// Same storage discipline as fault.cpp: the hot path reads one relaxed
// atomic; script installation is quiescent-only.
std::vector<ScriptedCrash>& script_storage() noexcept {
  static std::vector<ScriptedCrash>* s = new std::vector<ScriptedCrash>;
  return *s;
}

std::atomic<bool> g_script_on{false};

// Number of armed self-schedules across all threads. Nonzero turns
// injection_enabled() on so that *other* threads' lock-recovery paths are
// active before the scheduled death happens.
std::atomic<uint32_t> g_self_pending{0};

// Number of currently-dead incarnations. Keeps recovery enabled after the
// last kill fires (a waiter may reach the dead owner's lock long after the
// rate/script sources went quiet); reset_all()/reset_thread() drain it.
std::atomic<uint32_t> g_dead_count{0};

// Runtime kill mailbox: one slot per logical worker index, armed by
// request_worker_kill() from any thread and consumed (exchange-to-zero) by
// the bound worker in plan(). Encoding: bit 0 = armed, bits 1..2 = Point,
// bits 8.. = after_ops. g_worker_kills_pending mirrors the number of armed
// slots so injection_enabled() stays one relaxed load.
std::atomic<uint64_t>* kill_mailbox() noexcept {
  static std::atomic<uint64_t>* m = new std::atomic<uint64_t>[kMaxWorkers];
  return m;
}

std::atomic<uint32_t> g_worker_kills_pending{0};

// Mailbox word layout: bit 0 armed, bits 1-2 point, bits 8-23 after_ops,
// bits 24-39 after_blocks (0 = fire at the consuming block; >0 = convert
// to a deferred self-arm so the kill lands that many atomic blocks into
// the victim's current work — past a session's admission block, say).
uint64_t encode_kill(Point point, uint32_t after_ops,
                     uint32_t after_blocks) noexcept {
  return 1ull | (static_cast<uint64_t>(point) << 1) |
         (static_cast<uint64_t>(after_ops & 0xffff) << 8) |
         (static_cast<uint64_t>(after_blocks & 0xffff) << 24);
}

struct alignas(64) LivenessSlot {
  std::atomic<uint64_t> heartbeat{0};
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint32_t> dead{0};
};

LivenessSlot* slots() noexcept {
  static LivenessSlot* s = new LivenessSlot[util::kMaxThreads];
  return s;
}

struct ThreadCrashState {
  bool registered = false;  // slot epoch bumped for this incarnation
  bool opted_in = false;
  bool dead = false;
  uint32_t worker = kAnyWorker;  // logical worker index (bind_worker)
  uint32_t tid = 0;
  uint64_t epoch = 0;
  uint64_t blocks = 0;
  bool seeded = false;
  util::Xoshiro256 rng{0};
  // One-shot self-schedule (valid while self_armed).
  bool self_armed = false;
  uint64_t self_block = 0;
  Point self_point = Point::kTxnOp;
  uint32_t self_after_ops = 0;
};

ThreadCrashState& state() noexcept {
  thread_local ThreadCrashState s;
  return s;
}

// Binds the calling thread to its liveness slot: a fresh incarnation epoch
// is taken and the dead flag cleared, so tokens held by a previous owner of
// the same dense id stay orphaned.
void ensure_registered(ThreadCrashState& s) noexcept {
  if (s.registered) return;
  s.tid = util::thread_id();
  LivenessSlot& slot = slots()[s.tid];
  if (slot.dead.exchange(0, std::memory_order_relaxed) != 0) {
    g_dead_count.fetch_sub(1, std::memory_order_relaxed);
  }
  s.epoch = slot.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  s.dead = false;
  s.registered = true;
}

void seed_stream(ThreadCrashState& s) noexcept {
  // Under the deterministic scheduler the stream is a pure function of
  // (config seed, schedule seed, logical thread index), so injected chaos
  // is part of the schedule and replays with it. Outside a scheduled run
  // run_seed() is 0 and the identity is the dense thread id — bit-for-bit
  // the pre-scheduler stream.
  const uint64_t who = sched::active()
                           ? static_cast<uint64_t>(sched::self_index())
                           : static_cast<uint64_t>(util::thread_id());
  util::SplitMix64 mix(config().crash.seed ^ sched::run_seed() ^
                       (0x9e3779b97f4a7c15ULL * (who + 1)));
  s.rng = util::Xoshiro256(mix.next());
  s.seeded = true;
}

}  // namespace

const char* to_string(Point p) noexcept {
  switch (p) {
    case Point::kTxnOp:
      return "txn_op";
    case Point::kCommitEntry:
      return "commit_entry";
    case Point::kLockHeld:
      return "lock_held";
  }
  return "?";
}

bool injection_enabled() noexcept {
  return config().crash.rate > 0.0 ||
         g_script_on.load(std::memory_order_relaxed) ||
         g_self_pending.load(std::memory_order_relaxed) != 0 ||
         g_dead_count.load(std::memory_order_relaxed) != 0 ||
         g_worker_kills_pending.load(std::memory_order_relaxed) != 0;
}

uint64_t begin_block() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  return s.blocks++;
}

Decision plan(uint64_t block) noexcept {
  Decision d;
  ThreadCrashState& s = state();
  if (s.dead) return d;  // a dead thread cannot die twice
  if (s.self_armed && block >= s.self_block) {
    d.fire = true;
    d.point = s.self_point;
    d.after_ops = s.self_after_ops;
    s.self_armed = false;
    g_self_pending.fetch_sub(1, std::memory_order_relaxed);
    return d;
  }
  if (!s.opted_in) return d;  // scripted + rate + mailbox kills need opt-in
  if (s.worker != kAnyWorker &&
      g_worker_kills_pending.load(std::memory_order_relaxed) != 0) {
    const uint64_t m =
        kill_mailbox()[s.worker].exchange(0, std::memory_order_relaxed);
    if (m != 0) {
      g_worker_kills_pending.fetch_sub(1, std::memory_order_relaxed);
      const uint32_t after_blocks = static_cast<uint32_t>((m >> 24) & 0xffff);
      if (after_blocks == 0) {
        d.fire = true;
        d.point = static_cast<Point>((m >> 1) & 0x3);
        d.after_ops = static_cast<uint32_t>((m >> 8) & 0xffff);
        return d;
      }
      // Deferred kill: re-arm as a self-schedule so it fires a few atomic
      // blocks from now — e.g. past a session's admission block, where the
      // victim actually holds a lease worth orphaning. Overwrites any
      // pending self-schedule (same rule as schedule_self re-arming).
      if (!s.self_armed) {
        g_self_pending.fetch_add(1, std::memory_order_relaxed);
      }
      s.self_armed = true;
      s.self_block = block + after_blocks;
      s.self_point = static_cast<Point>((m >> 1) & 0x3);
      s.self_after_ops = static_cast<uint32_t>((m >> 8) & 0xffff);
    }
  }
  if (g_script_on.load(std::memory_order_relaxed)) {
    const uint32_t tid = util::thread_id();
    for (const ScriptedCrash& e : script_storage()) {
      if ((e.tid == kAnyThread || e.tid == tid) &&
          (e.worker == kAnyWorker || e.worker == s.worker) &&
          (e.block == kAnyBlock || e.block == block)) {
        d.fire = true;
        d.point = e.point;
        d.after_ops = e.after_ops;
        return d;
      }
    }
  }
  const double rate = config().crash.rate;
  if (rate > 0.0) {
    if (!s.seeded) seed_stream(s);
    if (s.rng.next_double() < rate) {
      d.fire = true;
      // Spread deaths across the three points: mostly mid-transaction, with
      // a steady trickle of commit-entry and lock-held kills so every
      // recovery path is exercised by a plain rate run.
      const uint64_t r = s.rng.next_below(8);
      d.point = r < 5 ? Point::kTxnOp
                      : (r < 7 ? Point::kCommitEntry : Point::kLockHeld);
      d.after_ops = static_cast<uint32_t>(s.rng.next_below(24));
    }
  }
  return d;
}

void set_script(std::vector<ScriptedCrash> script) {
  script_storage() = std::move(script);
  g_script_on.store(!script_storage().empty(), std::memory_order_relaxed);
}

void clear_script() { set_script({}); }

void schedule_self(Point point, uint64_t blocks_from_now,
                   uint32_t after_ops) noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  if (!s.self_armed) g_self_pending.fetch_add(1, std::memory_order_relaxed);
  s.self_armed = true;
  s.self_block = s.blocks + blocks_from_now;
  s.self_point = point;
  s.self_after_ops = after_ops;
}

void enable_self() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  s.opted_in = true;
}

void bind_worker(uint32_t widx) noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  s.worker = widx < kMaxWorkers ? widx : kAnyWorker;
  s.opted_in = true;  // pool-construction-time opt-in
}

uint32_t bound_worker() noexcept { return state().worker; }

bool request_worker_kill(uint32_t widx, Point point, uint32_t after_ops,
                         uint32_t after_blocks) noexcept {
  if (widx >= kMaxWorkers) return false;
  const uint64_t prev = kill_mailbox()[widx].exchange(
      encode_kill(point, after_ops, after_blocks), std::memory_order_relaxed);
  if (prev == 0) {
    g_worker_kills_pending.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

uint32_t worker_kills_pending() noexcept {
  return g_worker_kills_pending.load(std::memory_order_relaxed);
}

void heartbeat() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  slots()[s.tid].heartbeat.fetch_add(1, std::memory_order_relaxed);
}

uint64_t heartbeat_of(uint32_t tid) noexcept {
  return tid < util::kMaxThreads
             ? slots()[tid].heartbeat.load(std::memory_order_relaxed)
             : 0;
}

uint64_t epoch_of(uint32_t tid) noexcept {
  return tid < util::kMaxThreads
             ? slots()[tid].epoch.load(std::memory_order_relaxed)
             : 0;
}

Token self_token() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  return Token{s.tid, s.epoch};
}

bool token_orphaned(Token t) noexcept {
  if (t.tid >= util::kMaxThreads) return true;
  LivenessSlot& slot = slots()[t.tid];
  if (slot.epoch.load(std::memory_order_relaxed) != t.epoch) return true;
  return slot.dead.load(std::memory_order_relaxed) != 0;
}

bool is_dead(uint32_t tid) noexcept {
  return tid < util::kMaxThreads &&
         slots()[tid].dead.load(std::memory_order_relaxed) != 0;
}

void mark_dead() noexcept {
  ThreadCrashState& s = state();
  ensure_registered(s);
  if (s.dead) return;
  s.dead = true;
  if (slots()[s.tid].dead.exchange(1, std::memory_order_relaxed) == 0) {
    g_dead_count.fetch_add(1, std::memory_order_relaxed);
  }
}

bool self_dead() noexcept { return state().dead; }

void reset_thread() noexcept {
  ThreadCrashState& s = state();
  if (s.self_armed) {
    s.self_armed = false;
    g_self_pending.fetch_sub(1, std::memory_order_relaxed);
  }
  s.blocks = 0;
  s.seeded = false;  // re-seed lazily from the current Config::crash.seed
  s.opted_in = false;
  s.worker = kAnyWorker;
  s.dead = false;
  s.registered = false;  // re-register: fresh epoch, dead flag cleared
  ensure_registered(s);
}

void reset_all() noexcept {
  clear_script();
  for (uint32_t w = 0; w < kMaxWorkers; ++w) {
    if (kill_mailbox()[w].exchange(0, std::memory_order_relaxed) != 0) {
      g_worker_kills_pending.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  for (uint32_t tid = 0; tid < util::kMaxThreads; ++tid) {
    LivenessSlot& slot = slots()[tid];
    if (slot.dead.exchange(0, std::memory_order_relaxed) != 0) {
      g_dead_count.fetch_sub(1, std::memory_order_relaxed);
    }
    slot.epoch.fetch_add(1, std::memory_order_relaxed);
  }
  // Pending self-schedules on other threads stay armed (they own their
  // counters); the calling thread clears its own via reset_thread().
  reset_thread();
}

}  // namespace dc::htm::crash
