#include "htm/retry.hpp"

#include <mutex>
#include <vector>

namespace dc::htm {

// The obs layer's cause dimension must track the AbortCode enum (obs does
// not include htm headers; see obs/retry_stats.hpp).
static_assert(obs::kNumRetryCauses ==
              static_cast<std::size_t>(AbortCode::kNumCodes));

namespace detail {

namespace {

// Storm states are function-local statics inside the atomic() template —
// immortal by construction — so raw pointers in a never-freed registry are
// safe, mirroring the stats-block retention contract.
struct SiteRegistry {
  std::mutex mu;
  std::vector<StormState*> sites;
};

SiteRegistry& site_registry() noexcept {
  static SiteRegistry* r = new SiteRegistry;
  return *r;
}

}  // namespace

void StormState::register_site(StormState* s) {
  SiteRegistry& r = site_registry();
  std::lock_guard lock(r.mu);
  r.sites.push_back(s);
}

}  // namespace detail

namespace {
std::atomic<ReclaimProbe> g_reclaim_probe{nullptr};
}  // namespace

void set_reclaim_probe(ReclaimProbe probe) noexcept {
  g_reclaim_probe.store(probe, std::memory_order_release);
}

uint64_t reclaim_progress() noexcept {
  const ReclaimProbe probe = g_reclaim_probe.load(std::memory_order_acquire);
  return probe != nullptr ? probe() : 0;
}

void reset_storm_sites() noexcept {
  detail::SiteRegistry& r = detail::site_registry();
  std::lock_guard lock(r.mu);
  for (detail::StormState* s : r.sites) s->reset();
}

std::size_t storm_serialized_sites() noexcept {
  detail::SiteRegistry& r = detail::site_registry();
  std::lock_guard lock(r.mu);
  std::size_t n = 0;
  for (const detail::StormState* s : r.sites) n += s->serialized() ? 1 : 0;
  return n;
}

}  // namespace dc::htm
