// A Treiber-style LIFO stack, the HTM way — a second instance of the
// paper's §1.1 recipe (sequential code in a transaction, free on pop) to
// show the pattern generalizes beyond the FIFO queue.
//
// The classic lock-free Treiber stack needs counted pointers or hazard
// pointers because pop reads top->next after top may have been popped,
// freed, and recycled (ABA). Inside a transaction neither hazard exists:
// the read of top and the swing to top->next are atomic together, and a
// popped node can be freed immediately — a racing transaction that still
// sees the old top aborts on access (sandboxing).
#pragma once

#include <cstdint>

#include "htm/htm.hpp"
#include "memory/pool.hpp"
#include "util/padded.hpp"

namespace dc::queue {

class HtmStack {
 public:
  using Value = uint64_t;

  HtmStack() = default;

  ~HtmStack() {
    Value ignored;
    while (pop(&ignored)) {
    }
  }

  HtmStack(const HtmStack&) = delete;
  HtmStack& operator=(const HtmStack&) = delete;

  void push(Value v) {
    Node* node = mem::create<Node>();
    node->value = v;
    htm::atomic([&](htm::Txn& txn) {
      node->next = txn.load(&top_);  // node is private until the commit
      txn.store(&top_, node);
    });
  }

  bool pop(Value* out) {
    Node* victim = htm::atomic([&](htm::Txn& txn) -> Node* {
      Node* top = txn.load(&top_);
      if (top == nullptr) return nullptr;
      txn.store(&top_, txn.load(&top->next));
      return top;
    });
    if (victim == nullptr) return false;
    *out = victim->value;
    mem::destroy(victim);  // freed immediately; sandboxing covers racers
    return true;
  }

  bool empty() const noexcept { return htm::nontxn_load(&top_) == nullptr; }

  static constexpr std::size_t node_bytes() noexcept { return sizeof(Node); }

 private:
  struct Node {
    Value value = 0;
    Node* next = nullptr;
  };

  alignas(util::kCacheLine) Node* top_ = nullptr;
};

}  // namespace dc::queue
