// The paper's HTM queue (§1.1): "simple sequential code enclosed in
// hardware transactions".
//
// A successful dequeue frees the dequeued entry immediately. No transaction
// serialized after the dequeue can see a reference to it; a concurrent
// transaction that still holds one is guaranteed to abort when it touches
// the entry (sandboxing — here provided by the orec bump in
// pool_deallocate). There is no ABA problem, no helping, no counted
// pointers, and no reclamation protocol: this is the "reasonable homework
// exercise" the paper contrasts with the PODC-publication-grade
// Michael–Scott algorithm.
#pragma once

#include <cstdint>

#include "htm/htm.hpp"
#include "memory/pool.hpp"
#include "util/padded.hpp"

namespace dc::queue {

using Value = uint64_t;

class HtmQueue {
 public:
  HtmQueue() = default;

  ~HtmQueue() {
    Value ignored;
    while (dequeue(&ignored)) {
    }
  }

  HtmQueue(const HtmQueue&) = delete;
  HtmQueue& operator=(const HtmQueue&) = delete;

  void enqueue(Value v) {
    // Allocation happens outside the transaction (Rock could not run
    // malloc's CAS inside transactions, paper §6); the node is private
    // until the transaction publishes it.
    Node* node = mem::create<Node>();
    node->value = v;
    node->next = nullptr;
    htm::atomic([&](htm::Txn& txn) {
      Node* tail = txn.load(&tail_);
      if (tail == nullptr) {
        txn.store(&head_, node);
      } else {
        txn.store(&tail->next, node);
      }
      txn.store(&tail_, node);
    });
  }

  bool dequeue(Value* out) {
    Node* victim = htm::atomic([&](htm::Txn& txn) -> Node* {
      Node* head = txn.load(&head_);
      if (head == nullptr) return nullptr;
      Node* next = txn.load(&head->next);
      txn.store(&head_, next);
      if (next == nullptr) txn.store(&tail_, static_cast<Node*>(nullptr));
      return head;
    });
    if (victim == nullptr) return false;
    // The commit made `victim` unreachable; this thread owns it outright.
    *out = victim->value;
    mem::destroy(victim);  // "freed to the operating system" immediately
    return true;
  }

  bool empty() const noexcept { return htm::nontxn_load(&head_) == nullptr; }

  static constexpr std::size_t node_bytes() noexcept { return sizeof(Node); }

 private:
  struct Node {
    Value value = 0;
    Node* next = nullptr;
  };

  alignas(util::kCacheLine) Node* head_ = nullptr;
  alignas(util::kCacheLine) Node* tail_ = nullptr;
};

}  // namespace dc::queue
