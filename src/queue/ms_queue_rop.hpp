// Michael–Scott queue with ROP (Repeat Offender Problem / Pass-The-Buck)
// reclamation — the "Michael-Scott ROP" series of the paper's Figure 1.
//
// Structure is identical to the hazard-pointer variant; the reclamation
// protocol differs: threads post *guards* on values before dereferencing,
// and dequeued nodes are batched through Liberate, which returns the subset
// safe to free and hands trapped values off to their trapping guards.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "memory/pool.hpp"
#include "reclaim/pass_the_buck.hpp"
#include "util/padded.hpp"
#include "util/thread_id.hpp"

namespace dc::queue {

using Value = uint64_t;

class MsQueueRop {
 public:
  MsQueueRop() {
    Node* dummy = mem::create<Node>();
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueueRop() {
    Value ignored;
    while (dequeue(&ignored)) {
    }
    mem::destroy(head_.load(std::memory_order_relaxed));
    // Quiesced: everything batched or handed off can be freed.
    for (auto& st : threads_) {
      for (void* p : st.value.to_liberate) mem::destroy(static_cast<Node*>(p));
      st.value.to_liberate.clear();
      ptb_.fire_guard(st.value.guard0);
      ptb_.fire_guard(st.value.guard1);
      st.value.guard0 = st.value.guard1 = reclaim::kNoGuard;
    }
    std::vector<void*> rest;
    ptb_.liberate(rest);  // drains handoff slots (no guards posted now)
    for (void* p : rest) mem::destroy(static_cast<Node*>(p));
  }

  MsQueueRop(const MsQueueRop&) = delete;
  MsQueueRop& operator=(const MsQueueRop&) = delete;

  void enqueue(Value v) {
    ThreadState& st = thread_state();
    Node* node = mem::create<Node>();
    node->value.store(v, std::memory_order_relaxed);
    node->next.store(nullptr, std::memory_order_relaxed);
    for (;;) {
      Node* tail = post_and_validate(st.guard0, tail_);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
        continue;
      }
      Node* expected = nullptr;
      if (tail->next.compare_exchange_weak(expected, node,
                                           std::memory_order_acq_rel)) {
        tail_.compare_exchange_strong(tail, node, std::memory_order_acq_rel);
        ptb_.post_guard(st.guard0, nullptr);
        return;
      }
    }
  }

  bool dequeue(Value* out) {
    ThreadState& st = thread_state();
    for (;;) {
      Node* head = post_and_validate(st.guard0, head_);
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = head->next.load(std::memory_order_acquire);
      ptb_.post_guard(st.guard1, next);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        clear_guards(st);
        return false;
      }
      if (head == tail) {
        tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
        continue;
      }
      const Value v = next->value.load(std::memory_order_acquire);
      if (head_.compare_exchange_weak(head, next,
                                      std::memory_order_acq_rel)) {
        *out = v;
        clear_guards(st);
        retire(st, head);
        return true;
      }
    }
  }

  uint64_t deferred_nodes() const noexcept {
    uint64_t n = ptb_.handoff_count();
    for (const auto& st : threads_) n += st.value.to_liberate.size();
    return n;
  }

  void quiesce() noexcept {
    ThreadState& st = thread_state();
    liberate_batch(st);
  }

  static constexpr std::size_t node_bytes() noexcept { return sizeof(Node); }

 private:
  struct Node {
    std::atomic<Value> value{0};
    std::atomic<Node*> next{nullptr};
  };
  struct ThreadState {
    reclaim::GuardId guard0 = reclaim::kNoGuard;
    reclaim::GuardId guard1 = reclaim::kNoGuard;
    std::vector<void*> to_liberate;
  };

  static constexpr std::size_t kLiberateBatch = 64;

  ThreadState& thread_state() noexcept {
    ThreadState& st = threads_[util::thread_id()].value;
    if (st.guard0 == reclaim::kNoGuard) {
      st.guard0 = ptb_.hire_guard();
      st.guard1 = ptb_.hire_guard();
    }
    return st;
  }

  // PostGuard + ROP client revalidation: post the loaded pointer, then
  // confirm the source still holds it.
  Node* post_and_validate(reclaim::GuardId g, std::atomic<Node*>& src) {
    Node* p = src.load(std::memory_order_acquire);
    for (;;) {
      ptb_.post_guard(g, p);
      Node* again = src.load(std::memory_order_acquire);
      if (again == p) return p;
      p = again;
    }
  }

  void clear_guards(ThreadState& st) {
    ptb_.post_guard(st.guard0, nullptr);
    ptb_.post_guard(st.guard1, nullptr);
  }

  void retire(ThreadState& st, Node* n) {
    st.to_liberate.push_back(n);
    if (st.to_liberate.size() >= kLiberateBatch) liberate_batch(st);
  }

  void liberate_batch(ThreadState& st) {
    ptb_.liberate(st.to_liberate);
    for (void* p : st.to_liberate) mem::destroy(static_cast<Node*>(p));
    st.to_liberate.clear();
  }

  alignas(util::kCacheLine) std::atomic<Node*> head_{nullptr};
  alignas(util::kCacheLine) std::atomic<Node*> tail_{nullptr};
  reclaim::PassTheBuck ptb_;
  util::Padded<ThreadState> threads_[util::kMaxThreads];
};

}  // namespace dc::queue
