// Michael–Scott queue with Hazard-Pointer reclamation (Michael, TPDS 2004).
//
// Unlike the pooled MsQueue, dequeued nodes are *retired* and eventually
// returned to the allocator, so quiescent memory is proportional to the
// current queue size — at the cost of the announce/validate protocol on
// every pointer access and periodic scans, the overhead class the paper's
// Figure 1 measures. With hazard pointers protecting nodes from reuse, ABA
// cannot occur and plain single-word pointers suffice.
#pragma once

#include <atomic>
#include <cstdint>

#include "memory/pool.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "util/padded.hpp"

namespace dc::queue {

using Value = uint64_t;

class MsQueueHp {
 public:
  MsQueueHp() {
    Node* dummy = mem::create<Node>();
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueueHp() {
    Value ignored;
    while (dequeue(&ignored)) {
    }
    mem::destroy(head_.load(std::memory_order_relaxed));
    // ~HazardDomain frees everything still retired.
  }

  MsQueueHp(const MsQueueHp&) = delete;
  MsQueueHp& operator=(const MsQueueHp&) = delete;

  void enqueue(Value v) {
    Node* node = mem::create<Node>();
    node->value.store(v, std::memory_order_relaxed);
    node->next.store(nullptr, std::memory_order_relaxed);
    for (;;) {
      Node* tail = hp_.protect(0, tail_);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
        continue;
      }
      Node* expected = nullptr;
      if (tail->next.compare_exchange_weak(expected, node,
                                           std::memory_order_acq_rel)) {
        tail_.compare_exchange_strong(tail, node, std::memory_order_acq_rel);
        hp_.clear(0);
        return;
      }
    }
  }

  bool dequeue(Value* out) {
    for (;;) {
      Node* head = hp_.protect(0, head_);
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = head->next.load(std::memory_order_acquire);
      // Protect `next` before use; re-validate head so next is still the
      // successor of a reachable node.
      hp_.announce(1, next);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        hp_.clear_all();
        return false;
      }
      if (head == tail) {
        tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
        continue;
      }
      const Value v = next->value.load(std::memory_order_acquire);
      if (head_.compare_exchange_weak(head, next,
                                      std::memory_order_acq_rel)) {
        *out = v;
        hp_.clear_all();
        hp_.retire(head, [](void* p) { mem::destroy(static_cast<Node*>(p)); });
        return true;
      }
    }
  }

  // Nodes whose reclamation is deferred (bounded by the scan threshold).
  uint64_t deferred_nodes() const noexcept { return hp_.retired_count(); }

  // Force a reclamation pass (benchmark quiescing).
  void quiesce() noexcept { hp_.flush(); }

  static constexpr std::size_t node_bytes() noexcept { return sizeof(Node); }

 private:
  struct Node {
    std::atomic<Value> value{0};
    std::atomic<Node*> next{nullptr};
  };

  alignas(util::kCacheLine) std::atomic<Node*> head_{nullptr};
  alignas(util::kCacheLine) std::atomic<Node*> tail_{nullptr};
  reclaim::HazardDomain hp_;
};

}  // namespace dc::queue
