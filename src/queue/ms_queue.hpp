// The Michael–Scott lock-free FIFO queue (PODC 1996), in its classic form:
// counted (tagged) pointers defeat ABA, and dequeued nodes go to the
// dequeuer's thread-local pool for reuse.
//
// This is the paper's first baseline (§1.1): it reclaims nothing to the
// system, so "even in a quiescent state, the memory used for the queue is
// at least proportional to the historical maximal queue size" — the space
// property the HTM queue is shown to beat. pooled_nodes()/live_node_bytes()
// expose that footprint to tests and benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "memory/pool.hpp"
#include "util/padded.hpp"
#include "util/tagged_ptr.hpp"
#include "util/thread_id.hpp"

namespace dc::queue {

using Value = uint64_t;

class MsQueue {
 public:
  MsQueue() {
    Node* dummy = mem::create<Node>();
    head_.store({dummy, 0}, std::memory_order_relaxed);
    tail_.store({dummy, 0}, std::memory_order_relaxed);
  }

  ~MsQueue() {
    Value ignored;
    while (dequeue(&ignored)) {
    }
    mem::destroy(head_.load(std::memory_order_relaxed).ptr);
    for (auto& pool : pools_) {
      for (Node* n : pool.value) mem::destroy(n);
      pool.value.clear();
    }
  }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  void enqueue(Value v) {
    Node* node = alloc_node();
    node->value.store(v, std::memory_order_relaxed);
    node->next.store({nullptr, node->next.load(std::memory_order_relaxed).tag},
                     std::memory_order_relaxed);
    for (;;) {
      const Ptr tail = tail_.load(std::memory_order_acquire);
      const Ptr next = tail.ptr->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next.ptr == nullptr) {
        Ptr expected = next;
        if (tail.ptr->next.compare_exchange_weak(
                expected, {node, next.tag + 1}, std::memory_order_acq_rel)) {
          Ptr t = tail;
          tail_.compare_exchange_strong(t, {node, tail.tag + 1},
                                        std::memory_order_acq_rel);
          return;
        }
      } else {
        // Help swing the lagging tail.
        Ptr t = tail;
        tail_.compare_exchange_strong(t, {next.ptr, tail.tag + 1},
                                      std::memory_order_acq_rel);
      }
    }
  }

  bool dequeue(Value* out) {
    for (;;) {
      const Ptr head = head_.load(std::memory_order_acquire);
      const Ptr tail = tail_.load(std::memory_order_acquire);
      const Ptr next = head.ptr->next.load(std::memory_order_acquire);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (head.ptr == tail.ptr) {
        if (next.ptr == nullptr) return false;
        Ptr t = tail;
        tail_.compare_exchange_strong(t, {next.ptr, tail.tag + 1},
                                      std::memory_order_acq_rel);
      } else {
        // Read the value before the CAS: after it, another dequeuer may
        // recycle `next` (this pre-CAS read is exactly why recycled nodes
        // need the counted-pointer tags).
        const Value v = next.ptr->value.load(std::memory_order_acquire);
        Ptr h = head;
        if (head_.compare_exchange_weak(h, {next.ptr, head.tag + 1},
                                        std::memory_order_acq_rel)) {
          *out = v;
          free_node(head.ptr);
          return true;
        }
      }
    }
  }

  // Nodes parked in thread-local pools (the "historical max" footprint).
  uint64_t pooled_nodes() const noexcept {
    uint64_t n = 0;
    for (const auto& pool : pools_) n += pool.value.size();
    return n;
  }

  static constexpr std::size_t node_bytes() noexcept { return sizeof(Node); }

 private:
  struct Node {
    std::atomic<Value> value{0};
    std::atomic<util::TaggedPtr<Node>> next{};
  };
  using Ptr = util::TaggedPtr<Node>;

  Node* alloc_node() {
    auto& pool = pools_[util::thread_id()].value;
    if (!pool.empty()) {
      Node* n = pool.back();
      pool.pop_back();
      return n;
    }
    return mem::create<Node>();
  }

  // Thread-local pooling (never back to the system): the next.tag survives
  // recycling, which is what keeps the counted-pointer ABA defence sound.
  void free_node(Node* n) { pools_[util::thread_id()].value.push_back(n); }

  alignas(util::kCacheLine) std::atomic<Ptr> head_{};
  alignas(util::kCacheLine) std::atomic<Ptr> tail_{};
  util::Padded<std::vector<Node*>> pools_[util::kMaxThreads];
};

}  // namespace dc::queue
