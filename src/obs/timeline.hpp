// Continuous telemetry: windowed time-series sampler + anomaly annotations.
//
// Everything else in the obs layer is post-mortem — counters and histograms
// merged once, quiescently, after the workers join. That collapses a run's
// *timeline*: a 10-second bench that spends 200 ms in a TLE storm and 9.8 s
// healthy reports the same aggregate as one that degrades uniformly. This
// module adds the always-on, low-overhead discipline SMR evaluations use to
// separate steady-state from reclamation-stall phases: a background sampler
// thread that, every interval_ms, takes race-free snapshots of the
// substrate counters (htm::TxnStats cells are single-writer
// util::RelaxedCounters — see stats.hpp) and of the per-operation latency
// histograms (LogHistogram::interval_since differences two monotonic
// snapshots), and turns the deltas into tumbling-window records:
//
//   Window = { t_start..t_end, per-window counter deltas,
//              per-op interval count + p50/p90/p99/p999 }
//
// stored in a bounded ring (oldest windows overwritten; drops counted). On
// top of the deltas a phase detector emits annotated timeline events —
// storm onset/exit, lock recovery, orphan-reap bursts, signature-filter
// saturation, injected thread deaths — whose per-kind value sums equal the
// run's cumulative counters (each annotation carries the window's delta),
// so the timeline is an exact decomposition of the post-mortem numbers,
// not a lossy sketch. SLO targets (obs/slo.hpp) are evaluated per window
// as they close.
//
// Layering: obs deliberately does not depend on htm, so the sampler pulls
// counters through a CounterProvider callback the embedder registers
// (bench_common.hpp adapts htm::aggregate_stats; tests feed synthetic
// providers). Histograms are read directly — they live in this library.
//
// Zero-cost when off: start() is the only thing that spawns the thread; a
// run that never calls it has no sampler thread, no ring allocation, and
// unchanged counters (the RelaxedCounter cells compile to the same plain
// adds either way).
//
// Threading: start/stop manage one background thread. The accessors copy
// state under the sampler mutex and are safe at any time; for exact
// end-of-run numbers call stop() first (it closes the final partial window
// so the last deltas are never lost).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/slo.hpp"

namespace dc::obs::timeline {

// The substrate counters the sampler tracks per window. A provider returns
// the *cumulative* values since process start / last reset; the sampler
// differences consecutive samples itself.
struct CounterSample {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t lock_fallbacks = 0;
  uint64_t tle_entries = 0;
  uint64_t faults_injected = 0;
  uint64_t crashes_injected = 0;
  uint64_t storm_entries = 0;
  uint64_t storm_exits = 0;
  uint64_t lock_recoveries = 0;
  uint64_t orphans_reaped = 0;
  uint64_t sig_validations = 0;
  uint64_t sig_false_aborts = 0;
  uint64_t sig_ring_overflows = 0;
  // Service-tier counters (src/service). Zero outside service runs: the
  // default htm-only provider never sets them, so closed-loop reports stay
  // byte-identical in shape and the validator can enforce all-zero when no
  // "service" section is present.
  uint64_t sessions_shed = 0;
  uint64_t chaos_phases = 0;
  // Memory-pressure counters (src/memory pool, PR 10). All monotone —
  // pool_os_bytes grows only (the pool never unmaps), so it differences
  // like any other cumulative counter and a window's delta is the bytes
  // newly mapped inside it. Zero on clean runs (no --mem-limit /
  // --alloc-fault-rate and no crashes): the validator enforces the
  // zero-overhead guard both directions.
  uint64_t pool_allocations = 0;
  uint64_t pool_deallocations = 0;
  uint64_t pool_os_bytes = 0;
  uint64_t alloc_failures = 0;
  uint64_t alloc_faults_injected = 0;
  uint64_t pool_caches_reaped = 0;
  uint64_t mem_pressure_onsets = 0;
  uint64_t mem_pressure_exits = 0;
  uint64_t sessions_shed_mem = 0;  // service tier, like sessions_shed
};

using CounterProvider = CounterSample (*)();

// One operation's interval latency digest inside a window.
struct OpWindow {
  uint64_t count = 0;
  float p50_ns = 0.0f;
  float p90_ns = 0.0f;
  float p99_ns = 0.0f;
  float p999_ns = 0.0f;
};

inline constexpr std::size_t kNumOps =
    static_cast<std::size_t>(OpKind::kNumOps);

struct Window {
  uint64_t index = 0;       // monotonic window number (survives ring wrap)
  double t_start_ms = 0.0;  // since sampler start
  double t_end_ms = 0.0;
  CounterSample delta;      // counter increments inside this window
  OpWindow ops[kNumOps];    // per-op interval latency digests
};

// Anomaly kinds the phase detector annotates windows with. Each event's
// `value` is the window's delta of the kind's counter, so the per-kind sum
// over all events equals the cumulative counter (storm_onset ->
// storm_entries, storm_exit -> storm_exits, lock_recovery ->
// lock_recoveries, orphan_reap -> orphans_reaped, sig_saturation ->
// sig_ring_overflows, thread_crash -> crashes_injected, shed_onset ->
// sessions_shed, chaos_phase -> chaos_phases) whenever no events were
// dropped.
enum class Annotation : uint8_t {
  kStormOnset = 0,
  kStormExit,
  kLockRecovery,
  kOrphanReap,
  kSigSaturation,
  kThreadCrash,
  kShedOnset,
  kChaosPhase,
  // Memory-pressure episode edges (mem_pressure_onset -> the pool's
  // mem_pressure_onsets counter, mem_pressure_exit -> mem_pressure_exits,
  // mem_shed_onset -> sessions_shed_mem, alloc_fault_burst ->
  // alloc_failures) — same exact-decomposition contract as above.
  kMemPressureOnset,
  kMemPressureExit,
  kMemShedOnset,
  kAllocFaultBurst,
  kNumKinds,
};

const char* to_string(Annotation kind) noexcept;

struct Event {
  double t_ms = 0.0;    // window end time
  uint64_t window = 0;  // Window::index the anomaly was detected in
  Annotation kind = Annotation::kStormOnset;
  uint64_t value = 0;   // the window's counter delta for this kind
};

struct SamplerConfig {
  double interval_ms = 10.0;        // tumbling-window width
  std::size_t window_capacity = 4096;   // ring: oldest overwritten
  std::size_t event_capacity = 65536;   // annotation buffer: excess dropped
  CounterProvider provider = nullptr;   // required
  std::vector<slo::Target> slo;         // evaluated as each window closes
};

// Spawns the sampler thread. Returns false (no thread) if one is already
// running, the provider is null, or interval_ms <= 0.
bool start(const SamplerConfig& cfg);

// Closes the final partial window, joins the thread. Idempotent; retained
// windows/annotations/SLO state stay readable until reset().
void stop() noexcept;

bool running() noexcept;

// Retained windows, oldest first. Safe at any time (copied under lock).
std::vector<Window> windows();
std::vector<Event> annotations();

uint64_t windows_total() noexcept;    // produced, including overwritten
uint64_t windows_dropped() noexcept;  // overwritten by ring wrap
uint64_t events_dropped() noexcept;

// Per-kind event-value sums (annotation conservation; cheap, no copy).
uint64_t annotation_sum(Annotation kind) noexcept;

// The interval the last (or current) sampler ran at; 0 if none ever ran.
double interval_ms() noexcept;

// TSC at sampler start — lets exporters place windows on the same time
// axis as trace events. 0 if the sampler never ran.
uint64_t start_cycles() noexcept;

// The counter sample taken at start(): windows decompose the counters
// accumulated AFTER this baseline (nonzero if the embedder ran work before
// starting the sampler).
CounterSample baseline();

// SLO evaluation state (one entry per configured target, config order).
std::vector<slo::TargetState> slo_results();
uint64_t slo_violations_total() noexcept;

// One contiguous run of SLO-violating windows. Episodes make *recovery*
// first-class: a chaos phase that pushes latency over target opens an
// episode at the first violating window, and the episode closes — the SLO
// is re-attained — at the first later window that was evaluated (had op
// samples for at least one target) and violated nothing. MTTR for a phase
// is then t_end_ms of its episode minus the phase onset. An episode still
// open at stop() has recovered == false and t_end_ms/end_window frozen at
// the last violating window seen.
struct SloEpisode {
  uint64_t start_window = 0;  // Window::index of the first violation
  double t_start_ms = 0.0;    // that window's t_end_ms (detection time)
  uint64_t end_window = 0;    // first clean evaluated window (if recovered)
  double t_end_ms = 0.0;      // re-attainment time; last-violation if not
  bool recovered = false;
  uint64_t violating_windows = 0;
};

// All episodes, oldest first (copied under lock; safe at any time).
std::vector<SloEpisode> slo_episodes();

// Number of closed (recovered) episodes.
uint64_t slo_reattainments() noexcept;

// True if `w` violates any of `targets` — the same per-window test the
// sampler applies, exposed so embedders (the chaos orchestrator's MTTR
// computation) can re-run it over retained windows without duplicating the
// quantile-picking logic. A window with no samples for a target does not
// violate it.
bool window_violates_slo(const Window& w,
                         const std::vector<slo::Target>& targets);

// Prometheus-style text exposition of the end-of-run state: cumulative
// substrate counters, per-op latency quantiles, annotation totals, window
// bookkeeping, and SLO verdicts. Call after stop(). Returns false (with a
// message on stderr) if the file cannot be written.
bool export_prometheus(const std::string& path);

// Drops all retained state (windows, annotations, SLO accumulators,
// baseline). Quiescent-only; refuses (returning false) while running.
bool reset() noexcept;

}  // namespace dc::obs::timeline
