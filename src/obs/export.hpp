// Exporters over the obs layer's raw data.
//
//  * export_chrome_trace: dumps the retained event trace as Chrome
//    trace-event JSON (the "traceEvents" array format), loadable directly
//    in Perfetto (ui.perfetto.dev) or chrome://tracing. Transaction
//    begin/commit/abort pairs become "X" (complete) spans with read/write-
//    set sizes and abort codes in args; TLE fallbacks, step changes, and
//    pool events become instant events.
//
//  * summarize_op: p50/p90/p99/max/mean of one operation's merged latency
//    histogram, converted to nanoseconds — the figures print_htm_diagnostics
//    and the --json reports surface.
//
// Both read cross-thread state and are quiescent-only (obs.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace dc::obs {

struct OpSummary {
  uint64_t count = 0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
  double mean_ns = 0.0;
};

OpSummary summarize_op(OpKind op) noexcept;

// Writes the retained trace to `path`. Returns false (with a message on
// stderr) if the file cannot be written. A build without DC_TRACE produces
// a valid-but-empty trace.
bool export_chrome_trace(const std::string& path);

}  // namespace dc::obs
