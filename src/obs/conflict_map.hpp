// Per-orec conflict attribution.
//
// When a transaction aborts with kConflict, the substrate knows *which*
// ownership record carried the conflicting version (the orec whose load
// failed validation, whose commit-lock was contended, or whose version
// advanced past the read version). This module counts those aborts per
// orec index in a fixed-size table, additionally split by an
// application-assigned *context* (benchmarks register one context per
// Collect algorithm), so a report can say "orec #12345 caused 80% of
// aborts, all from ListFastCollect" — the per-cause breakdown related HTM
// studies use to separate capacity from conflict pathologies.
//
// The table is approximate by design (it is written from the abort path):
//  * fixed kSlots entries, keyed by orec index with linear probing over
//    kProbe slots; conflicts that find no slot are counted in dropped();
//  * sampling: record_conflict keeps only every 2^sample_shift-th call
//    per thread (default 0 = every conflict) to bound abort-storm cost.
//
// Counters are atomics, so recording is thread-safe; readers see
// monotonically growing approximate counts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace dc::obs {

inline constexpr std::size_t kMaxConflictContexts = 16;

// Registers (or looks up) a context label, returning its dense id in
// [0, kMaxConflictContexts). Ids are process-lifetime; once the table is
// full, further names map to id 0 ("other").
uint8_t register_context(const std::string& name);

// Label for a context id ("other" for 0 / unknown).
std::string context_name(uint8_t id);

// Sets the calling thread's current context (attached to conflicts this
// thread records). Benchmark drivers set this to the running algorithm.
void set_thread_context(uint8_t id) noexcept;
uint8_t thread_context() noexcept;

// Counts one conflict abort attributed to `orec_index` under the calling
// thread's context. Callers gate on conflicts_enabled(); subject to
// sampling (see set_conflict_sample_shift).
void record_conflict(uint64_t orec_index) noexcept;

// Keep every 2^shift-th conflict per thread (0 = all). Reported counts are
// scaled back up by 2^shift so they stay comparable across settings.
void set_conflict_sample_shift(uint32_t shift) noexcept;

struct ConflictEntry {
  uint64_t orec_index = 0;
  uint64_t count = 0;  // sampled counts scaled to estimated totals
  std::array<uint64_t, kMaxConflictContexts> by_context{};
};

// The `k` hottest orecs by estimated conflict count, hottest first.
std::vector<ConflictEntry> top_conflicts(std::size_t k);

// Estimated conflicts recorded / dropped for lack of a free slot.
uint64_t conflicts_recorded() noexcept;
uint64_t conflicts_dropped() noexcept;

// Zeroes the table (quiescent-only: concurrent record_conflict calls may
// survive the reset).
void reset_conflicts() noexcept;

}  // namespace dc::obs
