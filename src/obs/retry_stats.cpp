#include "obs/retry_stats.hpp"

#include <mutex>
#include <vector>

namespace dc::obs {

namespace {

// Same retention scheme as the latency histograms and htm::stats: each
// thread's block is heap-allocated on first use and retained for the
// process lifetime, so aggregation after a join never reads freed memory.
struct RetryBlock {
  LogHistogram by_cause[kNumRetryCauses];
};

struct Registry {
  std::mutex mu;
  std::vector<RetryBlock*> blocks;
};

Registry& registry() noexcept {
  static Registry* r = new Registry;
  return *r;
}

RetryBlock* make_local_block() {
  auto* block = new RetryBlock;
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.blocks.push_back(block);
  return block;
}

RetryBlock& local_block() noexcept {
  thread_local RetryBlock* block = make_local_block();
  return *block;
}

}  // namespace

const char* retry_cause_name(uint8_t cause) noexcept {
  switch (cause) {
    case 0:
      return "none";
    case 1:
      return "conflict";
    case 2:
      return "overflow";
    case 3:
      return "explicit";
    case 4:
      return "illegal-access";
    case 5:
      return "interrupt";
    case 6:
      return "tlb-miss";
    case 7:
      return "save-restore";
    case 8:
      return "alloc-failed";
    default:
      return "?";
  }
}

void record_retry(uint8_t cause, uint32_t attempt) noexcept {
  if (cause >= kNumRetryCauses) return;
  local_block().by_cause[cause].record(attempt);
}

LogHistogram aggregate_retry_histogram(uint8_t cause) noexcept {
  LogHistogram total;
  if (cause >= kNumRetryCauses) return total;
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (const RetryBlock* b : r.blocks) total.merge(b->by_cause[cause]);
  return total;
}

RetrySummary summarize_retries(uint8_t cause) noexcept {
  const LogHistogram h = aggregate_retry_histogram(cause);
  RetrySummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.p50_attempt = static_cast<double>(h.percentile(0.50));
  s.p99_attempt = static_cast<double>(h.percentile(0.99));
  s.max_attempt = h.max();
  return s;
}

void reset_retry_stats() noexcept {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (RetryBlock* b : r.blocks) *b = RetryBlock{};
}

}  // namespace dc::obs
