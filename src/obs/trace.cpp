#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/cycles.hpp"
#include "util/thread_id.hpp"

namespace dc::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_timing{false};
std::atomic<bool> g_conflicts{false};

// One ring per recording thread. Rings are heap-allocated and retained
// after thread exit (same contract as htm::stats blocks): a joined worker's
// events stay visible to snapshot_events().
struct Ring {
  std::vector<TraceEvent> events;  // capacity kRingSize, sized lazily
  uint64_t next = 0;               // monotonic; index = next & (kRingSize-1)
  uint16_t tid = 0;

  Ring() : tid(static_cast<uint16_t>(util::thread_id())) {
    events.resize(kRingSize);
  }
};

struct RingRegistry {
  std::mutex mu;
  std::vector<Ring*> rings;
};

RingRegistry& registry() noexcept {
  static RingRegistry* r = new RingRegistry;
  return *r;
}

Ring& local_ring() noexcept {
  thread_local Ring* ring = [] {
    auto* r = new Ring;
    RingRegistry& reg = registry();
    std::lock_guard lock(reg.mu);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on) noexcept {
  g_tracing.store(on, std::memory_order_relaxed);
}

bool timing_enabled() noexcept {
  return g_timing.load(std::memory_order_relaxed);
}
void set_timing(bool on) noexcept {
  g_timing.store(on, std::memory_order_relaxed);
}

bool conflicts_enabled() noexcept {
  return g_conflicts.load(std::memory_order_relaxed);
}
void set_conflicts(bool on) noexcept {
  g_conflicts.store(on, std::memory_order_relaxed);
}

void set_all(bool on) noexcept {
  set_tracing(on);
  set_timing(on);
  set_conflicts(on);
}

namespace detail {

void emit(EventKind kind, uint8_t code, uint32_t a, uint32_t b,
          uint32_t c) noexcept {
  Ring& r = local_ring();
  TraceEvent& e = r.events[r.next & (kRingSize - 1)];
  e.tsc = util::rdcycles();
  e.a = a;
  e.b = b;
  e.c = c;
  e.kind = kind;
  e.code = code;
  e.tid = r.tid;
  ++r.next;
}

}  // namespace detail

std::vector<TraceEvent> snapshot_events() {
  std::vector<TraceEvent> out;
  RingRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (const Ring* r : reg.rings) {
    const uint64_t kept = r->next < kRingSize ? r->next : kRingSize;
    const uint64_t oldest = r->next - kept;
    for (uint64_t i = oldest; i < r->next; ++i) {
      out.push_back(r->events[i & (kRingSize - 1)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.tsc < y.tsc;
                   });
  return out;
}

uint64_t events_emitted() noexcept {
  uint64_t total = 0;
  RingRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (const Ring* r : reg.rings) total += r->next;
  return total;
}

void clear_trace() noexcept {
  RingRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (Ring* r : reg.rings) r->next = 0;
}

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kTxnBegin:
      return "txn_begin";
    case EventKind::kTxnCommit:
      return "txn_commit";
    case EventKind::kTxnAbort:
      return "txn_abort";
    case EventKind::kTleFallback:
      return "tle_fallback";
    case EventKind::kStepChange:
      return "step_change";
    case EventKind::kPoolAlloc:
      return "pool_alloc";
    case EventKind::kPoolRecycle:
      return "pool_recycle";
    case EventKind::kClockResample:
      return "clock_resample";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kStormEnter:
      return "storm_enter";
    case EventKind::kStormExit:
      return "storm_exit";
    case EventKind::kCrashInjected:
      return "crash_injected";
    case EventKind::kLockRecovery:
      return "lock_recovery";
    case EventKind::kOrphanReap:
      return "orphan_reap";
    case EventKind::kSigFallback:
      return "sig_fallback";
    case EventKind::kNumKinds:
      break;
  }
  return "?";
}

}  // namespace dc::obs
