// Per-cause retry histograms: how deep into its retry sequence an atomic
// block was when each abort cause struck.
//
// The retry loop (htm/retry.hpp) records one sample per abort — the cause
// byte and the 0-based attempt index the abort killed — into thread-local
// per-cause LogHistograms. Unlike the latency histograms this is always on
// (no timing_enabled() gate): the record happens on the abort path only, so
// its cost is invisible next to the re-execution it accompanies, and the
// resulting distribution ("conflicts die at attempt 0-2, overflows would
// have burned all 64" pre-escalation) is the evidence the cause-aware
// policy's decisions are judged by. Quantiles surface in the benchmark
// diagnostics and in the JSON report's `retry` section (schema v4).
//
// obs deliberately does not depend on htm (see export.cpp), so the cause is
// a raw byte; kNumRetryCauses mirrors htm::AbortCode::kNumCodes and a
// static_assert in htm/retry.cpp keeps them in sync.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"

namespace dc::obs {

// Mirror of htm::AbortCode::kNumCodes (keep in sync; asserted in
// htm/retry.cpp).
inline constexpr std::size_t kNumRetryCauses = 9;

// Human-readable name for a raw abort-cause byte ("conflict", "overflow",
// "interrupt", ...; "?" when out of range). Mirrors htm::to_string(AbortCode)
// without the dependency.
const char* retry_cause_name(uint8_t cause) noexcept;

// Records that an attempt at retry index `attempt` (0-based) aborted with
// `cause`. Out-of-range causes are dropped.
void record_retry(uint8_t cause, uint32_t attempt) noexcept;

// Merged histogram of attempt indices for `cause` across all threads
// (including exited ones) since the last reset. Quiescent-only.
LogHistogram aggregate_retry_histogram(uint8_t cause) noexcept;

// Quantiles of the attempt-index distribution for one cause.
struct RetrySummary {
  uint64_t count = 0;       // aborts recorded with this cause
  double p50_attempt = 0;   // attempt index quantiles (0-based)
  double p99_attempt = 0;
  uint64_t max_attempt = 0;
};
RetrySummary summarize_retries(uint8_t cause) noexcept;

// Zeroes all threads' retry histograms. Quiescent-only.
void reset_retry_stats() noexcept;

}  // namespace dc::obs
