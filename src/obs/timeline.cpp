#include "obs/timeline.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "util/cycles.hpp"

namespace dc::obs::timeline {

namespace {

CounterSample diff(const CounterSample& cur, const CounterSample& prev) {
  auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  CounterSample d;
  d.commits = sub(cur.commits, prev.commits);
  d.aborts = sub(cur.aborts, prev.aborts);
  d.lock_fallbacks = sub(cur.lock_fallbacks, prev.lock_fallbacks);
  d.tle_entries = sub(cur.tle_entries, prev.tle_entries);
  d.faults_injected = sub(cur.faults_injected, prev.faults_injected);
  d.crashes_injected = sub(cur.crashes_injected, prev.crashes_injected);
  d.storm_entries = sub(cur.storm_entries, prev.storm_entries);
  d.storm_exits = sub(cur.storm_exits, prev.storm_exits);
  d.lock_recoveries = sub(cur.lock_recoveries, prev.lock_recoveries);
  d.orphans_reaped = sub(cur.orphans_reaped, prev.orphans_reaped);
  d.sig_validations = sub(cur.sig_validations, prev.sig_validations);
  d.sig_false_aborts = sub(cur.sig_false_aborts, prev.sig_false_aborts);
  d.sig_ring_overflows =
      sub(cur.sig_ring_overflows, prev.sig_ring_overflows);
  d.sessions_shed = sub(cur.sessions_shed, prev.sessions_shed);
  d.chaos_phases = sub(cur.chaos_phases, prev.chaos_phases);
  d.pool_allocations = sub(cur.pool_allocations, prev.pool_allocations);
  d.pool_deallocations =
      sub(cur.pool_deallocations, prev.pool_deallocations);
  d.pool_os_bytes = sub(cur.pool_os_bytes, prev.pool_os_bytes);
  d.alloc_failures = sub(cur.alloc_failures, prev.alloc_failures);
  d.alloc_faults_injected =
      sub(cur.alloc_faults_injected, prev.alloc_faults_injected);
  d.pool_caches_reaped = sub(cur.pool_caches_reaped, prev.pool_caches_reaped);
  d.mem_pressure_onsets =
      sub(cur.mem_pressure_onsets, prev.mem_pressure_onsets);
  d.mem_pressure_exits = sub(cur.mem_pressure_exits, prev.mem_pressure_exits);
  d.sessions_shed_mem = sub(cur.sessions_shed_mem, prev.sessions_shed_mem);
  return d;
}

double quantile_ns(const LogHistogram& h, double p) {
  return util::cycles_to_ns(h.percentile(p));
}

struct State {
  std::mutex mu;  // guards everything below plus the retained data
  std::condition_variable cv;
  std::thread thread;
  bool thread_active = false;  // a sampler thread exists (running())
  bool stop_requested = false;
  SamplerConfig cfg;

  // Retained results. Written by the sampler thread (tick) under mu;
  // accessors copy under mu, so they are safe while the sampler runs.
  std::vector<Window> ring;  // capacity cfg.window_capacity, oldest first
  std::size_t head = 0;      // ring slot the NEXT window lands in
  uint64_t total_windows = 0;
  uint64_t dropped_windows = 0;
  std::vector<Event> events;
  uint64_t dropped_events = 0;
  uint64_t kind_sums[static_cast<std::size_t>(Annotation::kNumKinds)] = {};
  std::vector<slo::TargetState> slo;
  uint64_t slo_violations = 0;
  std::vector<SloEpisode> episodes;  // back() is open iff episode_open
  bool episode_open = false;
  uint64_t reattainments = 0;

  // Sampler-thread-only cursor state (no lock needed).
  CounterSample base;      // sample at start()
  CounterSample last;      // previous tick's sample
  LogHistogram last_hist[kNumOps];
  double last_t_ms = 0.0;
  uint64_t t0_cycles = 0;
  double effective_interval_ms = 0.0;  // sticky: survives stop()
};

State& state() noexcept {
  static State* s = new State;
  return *s;
}

void annotate(State& s, const Window& w) {
  struct Rule {
    Annotation kind;
    uint64_t value;
  };
  const Rule rules[] = {
      {Annotation::kStormOnset, w.delta.storm_entries},
      {Annotation::kStormExit, w.delta.storm_exits},
      {Annotation::kLockRecovery, w.delta.lock_recoveries},
      {Annotation::kOrphanReap, w.delta.orphans_reaped},
      {Annotation::kSigSaturation, w.delta.sig_ring_overflows},
      {Annotation::kThreadCrash, w.delta.crashes_injected},
      {Annotation::kShedOnset, w.delta.sessions_shed},
      {Annotation::kChaosPhase, w.delta.chaos_phases},
      {Annotation::kMemPressureOnset, w.delta.mem_pressure_onsets},
      {Annotation::kMemPressureExit, w.delta.mem_pressure_exits},
      {Annotation::kMemShedOnset, w.delta.sessions_shed_mem},
      {Annotation::kAllocFaultBurst, w.delta.alloc_failures},
  };
  for (const Rule& r : rules) {
    if (r.value == 0) continue;
    s.kind_sums[static_cast<std::size_t>(r.kind)] += r.value;
    if (s.events.size() >= s.cfg.event_capacity) {
      ++s.dropped_events;
      continue;
    }
    s.events.push_back(Event{w.t_end_ms, w.index, r.kind, r.value});
  }
}

// The window's quantile for one target; false when the target's op had no
// samples in the window (the vacuous case — it neither violates nor counts
// as evaluated).
bool target_quantile_ns(const Window& w, const slo::Target& t,
                        double* q_out) {
  const OpWindow& op = w.ops[static_cast<std::size_t>(t.op)];
  if (op.count == 0) return false;
  switch (t.quantile) {
    case slo::Quantile::kP50:
      *q_out = op.p50_ns;
      break;
    case slo::Quantile::kP90:
      *q_out = op.p90_ns;
      break;
    case slo::Quantile::kP99:
      *q_out = op.p99_ns;
      break;
    case slo::Quantile::kP999:
      *q_out = op.p999_ns;
      break;
  }
  return true;
}

void evaluate_slo(State& s, const Window& w) {
  bool evaluated = false;  // >= 1 target had samples this window
  bool violating = false;
  for (slo::TargetState& ts : s.slo) {
    double q = 0.0;
    if (!target_quantile_ns(w, ts.target, &q)) continue;
    evaluated = true;
    ++ts.windows_evaluated;
    if (q > ts.worst_ns) ts.worst_ns = q;
    if (slo::violated(ts.target, q)) {
      violating = true;
      ++ts.violations;
      ++s.slo_violations;
    }
  }
  // Episode tracking: a violating window opens (or extends) an episode; the
  // first *evaluated* clean window after it closes the episode — that close
  // is the re-attainment MTTR measures against. Windows with no samples at
  // all are skipped: an idle gap proves nothing about recovery.
  if (violating) {
    if (!s.episode_open) {
      SloEpisode e;
      e.start_window = w.index;
      e.t_start_ms = w.t_end_ms;
      s.episodes.push_back(e);
      s.episode_open = true;
    }
    SloEpisode& e = s.episodes.back();
    e.end_window = w.index;  // last violation so far (frozen if never clean)
    e.t_end_ms = w.t_end_ms;
    ++e.violating_windows;
  } else if (evaluated && s.episode_open) {
    SloEpisode& e = s.episodes.back();
    e.end_window = w.index;
    e.t_end_ms = w.t_end_ms;
    e.recovered = true;
    s.episode_open = false;
    ++s.reattainments;
  }
}

// Closes one tumbling window ending now. Called from the sampler thread
// with s.mu held (the cursor fields are thread-private, but the retained
// ring/events/slo state must be consistent for concurrent accessors).
void tick(State& s) {
  const double now_ms =
      util::cycles_to_ns(util::rdcycles() - s.t0_cycles) / 1e6;
  Window w;
  w.index = s.total_windows;
  w.t_start_ms = s.last_t_ms;
  w.t_end_ms = now_ms;
  const CounterSample cur = s.cfg.provider();
  w.delta = diff(cur, s.last);
  for (std::size_t op = 0; op < kNumOps; ++op) {
    const LogHistogram cum = aggregate_histogram(static_cast<OpKind>(op));
    const LogHistogram d = cum.interval_since(s.last_hist[op]);
    OpWindow& ow = w.ops[op];
    ow.count = d.count();
    if (ow.count > 0) {
      ow.p50_ns = static_cast<float>(quantile_ns(d, 0.50));
      ow.p90_ns = static_cast<float>(quantile_ns(d, 0.90));
      ow.p99_ns = static_cast<float>(quantile_ns(d, 0.99));
      ow.p999_ns = static_cast<float>(quantile_ns(d, 0.999));
    }
    s.last_hist[op] = cum;
  }
  s.last = cur;
  s.last_t_ms = now_ms;

  annotate(s, w);
  evaluate_slo(s, w);

  if (s.ring.size() < s.cfg.window_capacity) {
    s.ring.push_back(w);
  } else {
    s.ring[s.head] = w;
    s.head = (s.head + 1) % s.cfg.window_capacity;
    ++s.dropped_windows;
  }
  ++s.total_windows;
}

void sampler_main() {
  State& s = state();
  std::unique_lock lock(s.mu);
  const auto interval = std::chrono::duration<double, std::milli>(
      s.cfg.interval_ms);
  while (!s.stop_requested) {
    // Window width is wall-clock driven; a late wakeup just widens the
    // window (t_end is measured, not assumed).
    s.cv.wait_for(lock, interval, [&] { return s.stop_requested; });
    if (s.stop_requested) break;
    tick(s);
  }
  // Final partial window: the deltas since the last full window must not
  // be lost, or the annotation sums would undercount the run's tail.
  tick(s);
}

}  // namespace

const char* to_string(Annotation kind) noexcept {
  switch (kind) {
    case Annotation::kStormOnset:
      return "storm_onset";
    case Annotation::kStormExit:
      return "storm_exit";
    case Annotation::kLockRecovery:
      return "lock_recovery";
    case Annotation::kOrphanReap:
      return "orphan_reap";
    case Annotation::kSigSaturation:
      return "sig_saturation";
    case Annotation::kThreadCrash:
      return "thread_crash";
    case Annotation::kShedOnset:
      return "shed_onset";
    case Annotation::kChaosPhase:
      return "chaos_phase";
    case Annotation::kMemPressureOnset:
      return "mem_pressure_onset";
    case Annotation::kMemPressureExit:
      return "mem_pressure_exit";
    case Annotation::kMemShedOnset:
      return "mem_shed_onset";
    case Annotation::kAllocFaultBurst:
      return "alloc_fault_burst";
    case Annotation::kNumKinds:
      break;
  }
  return "?";
}

bool start(const SamplerConfig& cfg) {
  if (cfg.provider == nullptr || cfg.interval_ms <= 0.0 ||
      cfg.window_capacity == 0) {
    return false;
  }
  State& s = state();
  std::lock_guard lock(s.mu);
  if (s.thread_active) return false;
  s.cfg = cfg;
  s.effective_interval_ms = cfg.interval_ms;
  s.ring.clear();
  s.ring.reserve(cfg.window_capacity);
  s.head = 0;
  s.total_windows = 0;
  s.dropped_windows = 0;
  s.events.clear();
  s.dropped_events = 0;
  for (uint64_t& k : s.kind_sums) k = 0;
  s.slo.clear();
  for (const slo::Target& t : cfg.slo) s.slo.push_back(slo::TargetState{t});
  s.slo_violations = 0;
  s.episodes.clear();
  s.episode_open = false;
  s.reattainments = 0;
  s.base = cfg.provider();
  s.last = s.base;
  for (std::size_t op = 0; op < kNumOps; ++op) {
    s.last_hist[op] = aggregate_histogram(static_cast<OpKind>(op));
  }
  s.t0_cycles = util::rdcycles();
  s.last_t_ms = 0.0;
  s.stop_requested = false;
  s.thread_active = true;
  s.thread = std::thread(sampler_main);
  return true;
}

void stop() noexcept {
  // Callers are the session teardown path (bench report + ObsSession
  // destructor, same thread) — sequential re-stops are no-ops; concurrent
  // stops from distinct threads are not a supported use.
  State& s = state();
  {
    std::lock_guard lock(s.mu);
    if (!s.thread_active || s.stop_requested) return;
    s.stop_requested = true;
  }
  s.cv.notify_all();
  s.thread.join();
  std::lock_guard lock(s.mu);
  s.thread_active = false;
}

bool running() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.thread_active;
}

std::vector<Window> windows() {
  State& s = state();
  std::lock_guard lock(s.mu);
  std::vector<Window> out;
  out.reserve(s.ring.size());
  // Ring order: slots head..end are the oldest retained windows.
  for (std::size_t i = 0; i < s.ring.size(); ++i) {
    out.push_back(s.ring[(s.head + i) % s.ring.size()]);
  }
  return out;
}

std::vector<Event> annotations() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.events;
}

uint64_t windows_total() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.total_windows;
}

uint64_t windows_dropped() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.dropped_windows;
}

uint64_t events_dropped() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.dropped_events;
}

uint64_t annotation_sum(Annotation kind) noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.kind_sums[static_cast<std::size_t>(kind)];
}

double interval_ms() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.effective_interval_ms;
}

uint64_t start_cycles() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.effective_interval_ms > 0.0 ? s.t0_cycles : 0;
}

CounterSample baseline() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.base;
}

std::vector<slo::TargetState> slo_results() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.slo;
}

uint64_t slo_violations_total() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.slo_violations;
}

std::vector<SloEpisode> slo_episodes() {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.episodes;
}

uint64_t slo_reattainments() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  return s.reattainments;
}

bool window_violates_slo(const Window& w,
                         const std::vector<slo::Target>& targets) {
  for (const slo::Target& t : targets) {
    double q = 0.0;
    if (target_quantile_ns(w, t, &q) && slo::violated(t, q)) return true;
  }
  return false;
}

bool reset() noexcept {
  State& s = state();
  std::lock_guard lock(s.mu);
  if (s.thread_active) return false;
  s.ring.clear();
  s.head = 0;
  s.total_windows = 0;
  s.dropped_windows = 0;
  s.events.clear();
  s.dropped_events = 0;
  for (uint64_t& k : s.kind_sums) k = 0;
  s.slo.clear();
  s.slo_violations = 0;
  s.episodes.clear();
  s.episode_open = false;
  s.reattainments = 0;
  s.base = CounterSample{};
  s.last = CounterSample{};
  s.effective_interval_ms = 0.0;
  s.t0_cycles = 0;
  return true;
}

bool export_prometheus(const std::string& path) {
  State& s = state();
  std::lock_guard lock(s.mu);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  // Cumulative substrate counters (counter type). Prefer the sampler's
  // last sample; if it never ran but a provider is known, sample now.
  CounterSample c = s.last;
  if (s.effective_interval_ms == 0.0 && s.cfg.provider != nullptr) {
    c = s.cfg.provider();
  }
  struct Row {
    const char* name;
    const char* help;
    uint64_t value;
  };
  const Row counters[] = {
      {"dc_commits_total", "Committed atomic blocks", c.commits},
      {"dc_aborts_total", "Aborted transaction attempts", c.aborts},
      {"dc_lock_fallbacks_total", "Lock-mode attempts (TLE)",
       c.lock_fallbacks},
      {"dc_tle_entries_total", "Blocks escalated to the TLE lock",
       c.tle_entries},
      {"dc_faults_injected_total", "Injected spurious aborts",
       c.faults_injected},
      {"dc_crashes_injected_total", "Injected thread deaths",
       c.crashes_injected},
      {"dc_storm_entries_total", "Abort-storm mode entries",
       c.storm_entries},
      {"dc_storm_exits_total", "Abort-storm mode exits", c.storm_exits},
      {"dc_lock_recoveries_total", "TLE locks stolen from dead owners",
       c.lock_recoveries},
      {"dc_orphans_reaped_total", "Orphaned handles reaped",
       c.orphans_reaped},
      {"dc_sig_validations_total", "Signature-backend validations",
       c.sig_validations},
      {"dc_sig_false_aborts_total", "Bloom false-positive aborts",
       c.sig_false_aborts},
      {"dc_sig_ring_overflows_total", "Signature-ring exact fallbacks",
       c.sig_ring_overflows},
      {"dc_sessions_shed_total", "Service sessions shed at admission",
       c.sessions_shed},
      {"dc_chaos_phases_total", "Chaos phases applied", c.chaos_phases},
      {"dc_pool_allocations_total", "Pool blocks handed out",
       c.pool_allocations},
      {"dc_pool_deallocations_total", "Pool blocks returned",
       c.pool_deallocations},
      {"dc_pool_os_bytes", "Bytes mapped from the OS for slabs",
       c.pool_os_bytes},
      {"dc_alloc_failures_total", "Failed pool allocation attempts",
       c.alloc_failures},
      {"dc_alloc_faults_injected_total", "Injected allocation faults",
       c.alloc_faults_injected},
      {"dc_pool_caches_reaped_total",
       "Blocks recovered from dead threads' caches", c.pool_caches_reaped},
      {"dc_mem_pressure_onsets_total", "Memory-pressure episodes opened",
       c.mem_pressure_onsets},
      {"dc_mem_pressure_exits_total", "Memory-pressure episodes closed",
       c.mem_pressure_exits},
      {"dc_sessions_shed_mem_total",
       "Service sessions shed on the pool-utilization watermark",
       c.sessions_shed_mem},
  };
  for (const Row& r : counters) {
    std::fprintf(f, "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", r.name,
                 r.help, r.name, r.name,
                 static_cast<unsigned long long>(r.value));
  }
  std::fprintf(f,
               "# HELP dc_timeline_windows_total Tumbling windows produced\n"
               "# TYPE dc_timeline_windows_total counter\n"
               "dc_timeline_windows_total %llu\n",
               static_cast<unsigned long long>(s.total_windows));
  std::fprintf(f,
               "# HELP dc_timeline_windows_dropped_total Windows lost to "
               "ring wrap\n"
               "# TYPE dc_timeline_windows_dropped_total counter\n"
               "dc_timeline_windows_dropped_total %llu\n",
               static_cast<unsigned long long>(s.dropped_windows));
  std::fprintf(f,
               "# HELP dc_timeline_annotations_total Anomaly annotations "
               "by kind (sum of per-window delta values)\n"
               "# TYPE dc_timeline_annotations_total counter\n");
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(Annotation::kNumKinds); ++k) {
    std::fprintf(f, "dc_timeline_annotations_total{kind=\"%s\"} %llu\n",
                 to_string(static_cast<Annotation>(k)),
                 static_cast<unsigned long long>(s.kind_sums[k]));
  }
  std::fprintf(f,
               "# HELP dc_op_latency_ns Cumulative per-operation latency "
               "quantiles\n"
               "# TYPE dc_op_latency_ns gauge\n");
  for (std::size_t op = 0; op < kNumOps; ++op) {
    const auto kind = static_cast<OpKind>(op);
    const LogHistogram h = aggregate_histogram(kind);
    if (h.count() == 0) continue;
    const struct {
      const char* q;
      double p;
    } qs[] = {{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99},
              {"0.999", 0.999}};
    for (const auto& q : qs) {
      std::fprintf(f, "dc_op_latency_ns{op=\"%s\",quantile=\"%s\"} %.1f\n",
                   obs::to_string(kind), q.q,
                   util::cycles_to_ns(h.percentile(q.p)));
    }
    std::fprintf(f, "dc_op_latency_ns_count{op=\"%s\"} %llu\n",
                 obs::to_string(kind),
                 static_cast<unsigned long long>(h.count()));
  }
  std::fprintf(f,
               "# HELP dc_slo_violations_total SLO violations by target\n"
               "# TYPE dc_slo_violations_total counter\n");
  for (const slo::TargetState& ts : s.slo) {
    std::fprintf(f, "dc_slo_violations_total{target=\"%s\"} %llu\n",
                 ts.target.spec.c_str(),
                 static_cast<unsigned long long>(ts.violations));
  }
  std::fprintf(f,
               "# HELP dc_slo_reattainments_total Violation episodes that "
               "closed with a clean window\n"
               "# TYPE dc_slo_reattainments_total counter\n"
               "dc_slo_reattainments_total %llu\n",
               static_cast<unsigned long long>(s.reattainments));
  std::fclose(f);
  return true;
}

}  // namespace dc::obs::timeline
