#include "obs/conflict_map.hpp"

#include <algorithm>
#include <mutex>

namespace dc::obs {

namespace {

constexpr std::size_t kSlots = 4096;  // power of two
constexpr std::size_t kProbe = 8;     // linear-probe window

struct Slot {
  // orec_index + 1; 0 = empty. Claimed once with CAS, never reclaimed
  // until reset.
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> by_context[kMaxConflictContexts]{};
};

struct Table {
  Slot slots[kSlots];
  std::atomic<uint64_t> recorded{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint32_t> sample_shift{0};

  std::mutex names_mu;
  std::vector<std::string> names{"other"};
};

Table& table() noexcept {
  static Table* t = new Table;
  return *t;
}

thread_local uint8_t t_context = 0;
thread_local uint64_t t_sample_tick = 0;

uint64_t slot_hash(uint64_t orec_index) noexcept {
  // Fibonacci mix; orec indices are already well-spread but cheap to be
  // safe.
  return (orec_index * 0x9E3779B97F4A7C15ULL) >> 32;
}

}  // namespace

uint8_t register_context(const std::string& name) {
  Table& t = table();
  std::lock_guard lock(t.names_mu);
  for (std::size_t i = 0; i < t.names.size(); ++i) {
    if (t.names[i] == name) return static_cast<uint8_t>(i);
  }
  if (t.names.size() >= kMaxConflictContexts) return 0;
  t.names.push_back(name);
  return static_cast<uint8_t>(t.names.size() - 1);
}

std::string context_name(uint8_t id) {
  Table& t = table();
  std::lock_guard lock(t.names_mu);
  if (id >= t.names.size()) return "other";
  return t.names[id];
}

void set_thread_context(uint8_t id) noexcept {
  t_context = id < kMaxConflictContexts ? id : 0;
}

uint8_t thread_context() noexcept { return t_context; }

void set_conflict_sample_shift(uint32_t shift) noexcept {
  table().sample_shift.store(shift > 16 ? 16 : shift,
                             std::memory_order_relaxed);
}

void record_conflict(uint64_t orec_index) noexcept {
  Table& t = table();
  const uint32_t shift = t.sample_shift.load(std::memory_order_relaxed);
  if (shift != 0 && (t_sample_tick++ & ((uint64_t{1} << shift) - 1)) != 0) {
    return;
  }
  const uint64_t weight = uint64_t{1} << shift;
  const uint64_t key = orec_index + 1;
  const uint64_t base = slot_hash(orec_index);
  for (std::size_t p = 0; p < kProbe; ++p) {
    Slot& s = t.slots[(base + p) & (kSlots - 1)];
    uint64_t cur = s.key.load(std::memory_order_acquire);
    if (cur == 0) {
      if (!s.key.compare_exchange_strong(cur, key,
                                         std::memory_order_acq_rel)) {
        if (cur != key) continue;  // lost the claim to a different orec
      }
      cur = key;
    }
    if (cur != key) continue;
    s.count.fetch_add(weight, std::memory_order_relaxed);
    s.by_context[t_context].fetch_add(weight, std::memory_order_relaxed);
    t.recorded.fetch_add(weight, std::memory_order_relaxed);
    return;
  }
  t.dropped.fetch_add(weight, std::memory_order_relaxed);
}

std::vector<ConflictEntry> top_conflicts(std::size_t k) {
  Table& t = table();
  std::vector<ConflictEntry> all;
  for (const Slot& s : t.slots) {
    const uint64_t key = s.key.load(std::memory_order_acquire);
    if (key == 0) continue;
    ConflictEntry e;
    e.orec_index = key - 1;
    e.count = s.count.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < kMaxConflictContexts; ++c) {
      e.by_context[c] = s.by_context[c].load(std::memory_order_relaxed);
    }
    if (e.count != 0) all.push_back(e);
  }
  std::sort(all.begin(), all.end(),
            [](const ConflictEntry& a, const ConflictEntry& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.orec_index < b.orec_index);
            });
  if (all.size() > k) all.resize(k);
  return all;
}

uint64_t conflicts_recorded() noexcept {
  return table().recorded.load(std::memory_order_relaxed);
}

uint64_t conflicts_dropped() noexcept {
  return table().dropped.load(std::memory_order_relaxed);
}

void reset_conflicts() noexcept {
  Table& t = table();
  for (Slot& s : t.slots) {
    s.key.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    for (auto& c : s.by_context) c.store(0, std::memory_order_relaxed);
  }
  t.recorded.store(0, std::memory_order_relaxed);
  t.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace dc::obs
