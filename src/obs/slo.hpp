// Latency SLO targets evaluated per telemetry window.
//
// A target is a bound on one operation's windowed latency quantile, written
// the way an operator would state it:
//
//     --slo "commit_p99<50us,update_p999<1ms"
//
// Grammar (comma-separated, whitespace ignored):
//     target   := op '_' quantile cmp value unit
//     op       := register | update | deregister | collect | commit
//               | validate
//     quantile := p50 | p90 | p99 | p999
//     cmp      := '<' | '<='
//     value    := decimal number
//     unit     := ns | us | ms | s
//
// Targets are evaluated by the timeline sampler (obs/timeline.hpp) against
// each tumbling window's per-operation interval percentiles: a window with
// at least one sample of the target's operation either satisfies the bound
// or counts one violation. Windows with no samples are vacuous (an idle
// service is not in violation). The accumulated violation counts feed the
// --json report's timeline.slo section, the Prometheus exposition, and the
// benchmark exit code (nonzero on any violation — the CI chaos gate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace dc::obs::slo {

enum class Quantile : uint8_t { kP50 = 0, kP90, kP99, kP999 };

const char* to_string(Quantile q) noexcept;

struct Target {
  OpKind op = OpKind::kUpdate;
  Quantile quantile = Quantile::kP99;
  bool inclusive = false;  // true for '<=' (bound itself satisfies)
  double bound_ns = 0.0;
  std::string spec;  // normalized form, e.g. "commit_p99<50us"
};

// Evaluation state for one target, accumulated window by window.
struct TargetState {
  Target target;
  uint64_t windows_evaluated = 0;  // windows with >= 1 sample of target.op
  uint64_t violations = 0;
  double worst_ns = 0.0;  // highest quantile value observed in any window
};

// Parses a comma-separated spec into targets. On failure returns false and
// (if err != nullptr) describes the first offending target.
bool parse(const std::string& spec, std::vector<Target>* out,
           std::string* err);

// One window's verdict for `target` given the windowed quantile value (ns)
// of its operation. Call only when the window recorded samples of the op.
inline bool violated(const Target& target, double quantile_ns) noexcept {
  return target.inclusive ? quantile_ns > target.bound_ns
                          : quantile_ns >= target.bound_ns;
}

// The process exit code a benchmark with `violations` accumulated SLO
// violations should return: 0 when clean, 3 (distinct from the 2 used for
// usage errors) when any window broke a target.
inline int exit_code(uint64_t violations) noexcept {
  return violations == 0 ? 0 : 3;
}

}  // namespace dc::obs::slo
