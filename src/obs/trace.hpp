// Per-thread transaction-lifecycle event trace.
//
// Each thread records into its own fixed-capacity ring buffer (kRingSize
// events, overwriting the oldest), so a long run keeps the *most recent*
// window — the part that matters when diagnosing an abort storm after the
// fact. Events are 24-byte PODs stamped with the TSC; the exporter
// (export.hpp) pairs begin/end events into Chrome trace-event "complete"
// spans loadable in Perfetto / chrome://tracing.
//
// Emission is through the inline wrappers at the bottom of this header;
// they compile to nothing unless the build defines DC_TRACE (see obs.hpp
// for the gating story). The wrappers are what the instrumented layers
// (htm/, collect/telescope.hpp, memory/pool.cpp) call; detail::emit is the
// always-compiled core that tests drive directly.
//
// Threading contract: a ring is written only by its owning thread.
// snapshot_events()/clear_trace() read/write all rings and must run while
// recording threads are quiescent (benchmarks join workers first).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"

namespace dc::obs {

enum class EventKind : uint8_t {
  kTxnBegin = 0,   // a = 1 if lock-mode (TLE/serial) attempt
  kTxnCommit,      // a = read-set size, b = write-set size, c = attempt #
  kTxnAbort,       // code = AbortCode, a/b/c as for kTxnCommit
  kTleFallback,    // a = attempt # at which the block fell back to the lock
  kStepChange,     // code = StepChange reason, a = old step, b = new step
  kPoolAlloc,      // a = block bytes (size class)
  kPoolRecycle,    // a = block bytes (size class)
  kClockResample,  // a = old read version (low 32 bits), b = new read
                   // version (low 32 bits), c = read-set size revalidated
  kFaultInjected,  // code = injected AbortCode, a = attempt #, b = ops
                   // survived before the abort fired
  kStormEnter,     // a = contention score at entry (htm/retry.hpp)
  kStormExit,      // a = contention score at exit
  kCrashInjected,  // code = crash::Point, a = ops survived, b = 1 if the
                   // dying attempt held the TLE lock
  kLockRecovery,   // a = dead owner's dense tid, b = owner epoch (low 32)
  kOrphanReap,     // a = handles reaped, b = dead owner's dense tid
  kSigFallback,    // a = read-set size, b = read version (low 32 bits) at a
                   // signature-validation fallback to the exact walk
  kNumKinds,
};

const char* to_string(EventKind kind) noexcept;

// Reasons carried in TraceEvent::code for kStepChange events.
enum class StepChange : uint8_t {
  kSet = 0,  // explicit set_step (benchmark configuration)
  kGrow,     // adaptive doubling (§3.4: counter > grow_threshold)
  kShrink,   // adaptive halving (§3.4: counter < shrink_threshold)
};

struct TraceEvent {
  uint64_t tsc;    // util::rdcycles() at emission
  uint32_t a = 0;  // payload, per EventKind above
  uint32_t b = 0;
  uint32_t c = 0;
  EventKind kind = EventKind::kTxnBegin;
  uint8_t code = 0;  // AbortCode / StepChange reason
  uint16_t tid = 0;  // util::thread_id() of the recording thread
};
static_assert(sizeof(TraceEvent) == 24);

// Events retained per thread (ring capacity). 2^15 events = 768 KiB per
// recording thread; at benchmark op rates this is the last ~10-100 ms of
// activity, which comfortably covers an abort storm's onset.
inline constexpr std::size_t kRingSizeLog2 = 15;
inline constexpr std::size_t kRingSize = std::size_t{1} << kRingSizeLog2;

namespace detail {

// Records one event into the calling thread's ring (always compiled; the
// DC_TRACE gate lives in the inline wrappers below). Does not check
// tracing_enabled() — callers gate first so the closed-switch path stays
// a load and a branch.
void emit(EventKind kind, uint8_t code, uint32_t a, uint32_t b,
          uint32_t c) noexcept;

}  // namespace detail

// All retained events across all threads (including exited ones), in
// per-ring emission order, merged by timestamp. Quiescent-only.
std::vector<TraceEvent> snapshot_events();

// Total events ever emitted (monotonic; exceeds the snapshot size once any
// ring has wrapped). Quiescent-only.
uint64_t events_emitted() noexcept;

// Discards all retained events and zeroes the emission counter.
// Quiescent-only.
void clear_trace() noexcept;

// ---- DC_TRACE-gated emission wrappers (the substrate's call sites) ----
//
// Each compiles to nothing without DC_TRACE; with it, the closed-switch
// cost is tracing_enabled() + branch.

inline void trace_txn_begin([[maybe_unused]] bool lock_mode) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kTxnBegin, 0, lock_mode ? 1u : 0u, 0, 0);
  }
#endif
}

inline void trace_txn_commit([[maybe_unused]] uint32_t read_set,
                             [[maybe_unused]] uint32_t write_set,
                             [[maybe_unused]] uint32_t attempt) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kTxnCommit, 0, read_set, write_set, attempt);
  }
#endif
}

inline void trace_txn_abort([[maybe_unused]] uint8_t abort_code,
                            [[maybe_unused]] uint32_t read_set,
                            [[maybe_unused]] uint32_t write_set,
                            [[maybe_unused]] uint32_t attempt) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kTxnAbort, abort_code, read_set, write_set,
                 attempt);
  }
#endif
}

inline void trace_tle_fallback([[maybe_unused]] uint32_t attempt) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kTleFallback, 0, attempt, 0, 0);
  }
#endif
}

inline void trace_step_change([[maybe_unused]] StepChange reason,
                              [[maybe_unused]] uint32_t old_step,
                              [[maybe_unused]] uint32_t new_step) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kStepChange, static_cast<uint8_t>(reason),
                 old_step, new_step, 0);
  }
#endif
}

// A load observed a version ahead of the snapshot and the transaction
// re-sampled + revalidated instead of aborting (GV5's absorb path; TL2
// timestamp extension under GV1).
inline void trace_clock_resample([[maybe_unused]] uint32_t old_rv,
                                 [[maybe_unused]] uint32_t new_rv,
                                 [[maybe_unused]] uint32_t read_set) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kClockResample, 0, old_rv, new_rv, read_set);
  }
#endif
}

// The fault injector (htm/fault.hpp) hit this attempt with a spurious abort
// `code` after it had issued `ops_survived` transactional loads/stores.
inline void trace_fault_injected([[maybe_unused]] uint8_t code,
                                 [[maybe_unused]] uint32_t attempt,
                                 [[maybe_unused]] uint32_t ops_survived)
    noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kFaultInjected, code, attempt, ops_survived, 0);
  }
#endif
}

// An atomic call-site crossed the abort-storm detector's hysteresis band
// (htm/retry.hpp): entered the sticky serialized mode (enter=true) or left
// it after commits drained the contention score.
inline void trace_storm([[maybe_unused]] bool enter,
                        [[maybe_unused]] uint32_t score) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(enter ? EventKind::kStormEnter : EventKind::kStormExit, 0,
                 score, 0, 0);
  }
#endif
}

// The crash injector (htm/crash.hpp) killed this thread: `point` is the
// crash::Point, `ops_survived` how many transactional ops the dying attempt
// issued, `lock_held` whether it died holding the TLE fallback lock.
inline void trace_crash_injected([[maybe_unused]] uint8_t point,
                                 [[maybe_unused]] uint32_t ops_survived,
                                 [[maybe_unused]] bool lock_held) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kCrashInjected, point, ops_survived,
                 lock_held ? 1u : 0u, 0);
  }
#endif
}

// A waiter stole the TLE fallback lock from a dead owner after a validated
// timeout (htm/htm.cpp recoverable-lock protocol).
inline void trace_lock_recovery([[maybe_unused]] uint32_t owner_tid,
                                [[maybe_unused]] uint64_t owner_epoch)
    noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kLockRecovery, 0, owner_tid,
                 static_cast<uint32_t>(owner_epoch), 0);
  }
#endif
}

// A survivor-run reaper DeRegistered `count` orphaned handles left by the
// dead incarnation of dense thread `owner_tid` (collect/lease.hpp).
inline void trace_orphan_reap([[maybe_unused]] uint32_t count,
                              [[maybe_unused]] uint32_t owner_tid) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kOrphanReap, 0, count, owner_tid, 0);
  }
#endif
}

// A signature validation (ValidationPolicy::kSignature) could not be
// decided from the commit-signature ring — wrap past the snapshot, an
// unstable slot, or a thread without an in-flight slot — and fell back to
// the exact read-set walk (htm/valring.hpp).
inline void trace_sig_fallback([[maybe_unused]] uint32_t read_set,
                               [[maybe_unused]] uint32_t rv_low) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(EventKind::kSigFallback, 0, read_set, rv_low, 0);
  }
#endif
}

inline void trace_pool_event([[maybe_unused]] bool is_alloc,
                             [[maybe_unused]] uint32_t bytes) noexcept {
#if defined(DC_TRACE)
  if (tracing_enabled()) {
    detail::emit(is_alloc ? EventKind::kPoolAlloc : EventKind::kPoolRecycle,
                 0, bytes, 0, 0);
  }
#endif
}

}  // namespace dc::obs
