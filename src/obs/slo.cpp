#include "obs/slo.hpp"

#include <cctype>
#include <cstdlib>

namespace dc::obs::slo {

namespace {

// Strips whitespace in place while scanning; the grammar has no significant
// spaces.
std::string strip(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

bool parse_op(const std::string& name, OpKind* op) {
  for (int i = 0; i < static_cast<int>(OpKind::kNumOps); ++i) {
    const auto kind = static_cast<OpKind>(i);
    if (name == to_string(kind)) {
      *op = kind;
      return true;
    }
  }
  return false;
}

bool parse_quantile(const std::string& name, Quantile* q) {
  if (name == "p50") *q = Quantile::kP50;
  else if (name == "p90") *q = Quantile::kP90;
  else if (name == "p99") *q = Quantile::kP99;
  else if (name == "p999") *q = Quantile::kP999;
  else return false;
  return true;
}

bool parse_one(const std::string& item, Target* t, std::string* err) {
  const std::size_t us = item.rfind('_');
  if (us == std::string::npos) {
    if (err != nullptr) *err = "'" + item + "': expected OP_QUANTILE<BOUND";
    return false;
  }
  if (!parse_op(item.substr(0, us), &t->op)) {
    if (err != nullptr) {
      *err = "'" + item + "': unknown operation '" + item.substr(0, us) +
             "' (register|update|deregister|collect|commit|validate)";
    }
    return false;
  }
  std::size_t cmp = item.find_first_of('<', us);
  if (cmp == std::string::npos) {
    if (err != nullptr) *err = "'" + item + "': missing '<' bound";
    return false;
  }
  if (!parse_quantile(item.substr(us + 1, cmp - us - 1), &t->quantile)) {
    if (err != nullptr) {
      *err = "'" + item + "': unknown quantile '" +
             item.substr(us + 1, cmp - us - 1) + "' (p50|p90|p99|p999)";
    }
    return false;
  }
  t->inclusive = cmp + 1 < item.size() && item[cmp + 1] == '=';
  std::size_t val = cmp + (t->inclusive ? 2 : 1);
  char* end = nullptr;
  const double value = std::strtod(item.c_str() + val, &end);
  if (end == item.c_str() + val || value < 0.0) {
    if (err != nullptr) *err = "'" + item + "': bad bound value";
    return false;
  }
  const std::string unit(end);
  double scale = 0.0;
  if (unit == "ns") scale = 1.0;
  else if (unit == "us") scale = 1e3;
  else if (unit == "ms") scale = 1e6;
  else if (unit == "s") scale = 1e9;
  else {
    if (err != nullptr) {
      *err = "'" + item + "': bad unit '" + unit + "' (ns|us|ms|s)";
    }
    return false;
  }
  t->bound_ns = value * scale;
  t->spec = item;
  return true;
}

}  // namespace

const char* to_string(Quantile q) noexcept {
  switch (q) {
    case Quantile::kP50:
      return "p50";
    case Quantile::kP90:
      return "p90";
    case Quantile::kP99:
      return "p99";
    case Quantile::kP999:
      return "p999";
  }
  return "?";
}

bool parse(const std::string& spec, std::vector<Target>* out,
           std::string* err) {
  out->clear();
  const std::string clean = strip(spec);
  if (clean.empty()) {
    if (err != nullptr) *err = "empty SLO spec";
    return false;
  }
  std::size_t pos = 0;
  while (pos <= clean.size()) {
    const std::size_t comma = clean.find(',', pos);
    const std::string item =
        clean.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
    Target t;
    if (!parse_one(item, &t, err)) return false;
    out->push_back(t);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace dc::obs::slo
