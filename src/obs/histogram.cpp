#include "obs/histogram.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/timeline.hpp"

namespace dc::obs {

namespace {

constexpr std::size_t kNumOps = static_cast<std::size_t>(OpKind::kNumOps);

// Per-thread recorder block; retained after thread exit (htm::stats
// contract) so joined workers' samples stay aggregatable.
struct Recorder {
  LogHistogram per_op[kNumOps];
};

struct RecorderRegistry {
  std::mutex mu;
  std::vector<Recorder*> recorders;
};

RecorderRegistry& registry() noexcept {
  static RecorderRegistry* r = new RecorderRegistry;
  return *r;
}

Recorder& local_recorder() noexcept {
  thread_local Recorder* rec = [] {
    auto* r = new Recorder;
    RecorderRegistry& reg = registry();
    std::lock_guard lock(reg.mu);
    reg.recorders.push_back(r);
    return r;
  }();
  return *rec;
}

}  // namespace

void record_op(OpKind op, uint64_t cycles) noexcept {
  local_recorder().per_op[static_cast<std::size_t>(op)].record(cycles);
}

LogHistogram aggregate_histogram(OpKind op) noexcept {
  LogHistogram total;
  RecorderRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (const Recorder* r : reg.recorders) {
    total.merge(r->per_op[static_cast<std::size_t>(op)]);
  }
  return total;
}

void reset_histograms() noexcept {
  // Enforced contract (histogram.hpp): resetting zeroes other threads'
  // recorders, which is only sound while nothing records — and the one
  // background reader this library owns must not be differencing
  // snapshots across the wipe. A sampler that wants per-interval data
  // has interval_since(); racing a reset under it is always a bug, so
  // fail loudly instead of corrupting every window that follows.
  if (timeline::running()) {
    std::fprintf(stderr,
                 "obs: reset_histograms() while the timeline sampler is "
                 "running violates the quiescent-only contract "
                 "(histogram.hpp); stop() the sampler first\n");
    std::abort();
  }
  RecorderRegistry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (Recorder* r : reg.recorders) {
    for (auto& h : r->per_op) h.reset();
  }
}

const char* to_string(OpKind op) noexcept {
  switch (op) {
    case OpKind::kRegister:
      return "register";
    case OpKind::kUpdate:
      return "update";
    case OpKind::kDeRegister:
      return "deregister";
    case OpKind::kCollect:
      return "collect";
    case OpKind::kCommit:
      return "commit";
    case OpKind::kValidate:
      return "validate";
    case OpKind::kNumOps:
      break;
  }
  return "?";
}

}  // namespace dc::obs
