// Log-bucketed latency histograms (HDR-style).
//
// Values (CPU cycles; callers convert to ns at report time) are bucketed by
// order of magnitude with kSubBits linear sub-buckets per octave, so the
// relative quantile error is bounded by 2^-kSubBits ≈ 6% across the whole
// range — the shape needed to report p50/p90/p99/max of distributions whose
// tails span several orders of magnitude (the paper's §5.1 update-latency
// claims are exactly such distributional facts).
//
// Recording is a bucket-index computation and one increment; no allocation,
// no locking. Per-operation recorders are thread-local.
//
// Concurrency contract (tightened for the continuous-telemetry sampler,
// obs/timeline.hpp): every cell is a util::RelaxedCounter — written only by
// the recorder's owning thread, readable by any thread at any time with
// relaxed loads. That makes aggregate_histogram() and snapshots safe while
// recorders are HOT: a concurrent reader sees each bucket's value at some
// recent instant (bucket counts are monotonic between resets), though the
// cross-cell view may be skewed by in-flight samples (count_ can briefly
// disagree with the bucket sum by the samples being recorded). Quantile
// queries tolerate that skew — percentile() falls back to max_ when the
// rank overruns the buckets — and interval_since() recomputes its count
// from the delta buckets, so window percentiles are internally consistent.
//
// reset() is the one remaining cross-thread WRITE and keeps the
// quiescent-only contract: zeroing another thread's hot recorder would race
// its unordered stores (a sample could straddle the wipe and resurrect a
// stale count). The registry-level reset_histograms() enforces this at
// runtime by refusing to run while the timeline sampler is live; samplers
// never reset — they difference monotonic snapshots via interval_since().
#pragma once

#include <bit>
#include <cstdint>

#include "obs/obs.hpp"
#include "util/cycles.hpp"
#include "util/relaxed.hpp"

namespace dc::obs {

class LogHistogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSub = 1u << kSubBits;  // sub-buckets per octave
  // Highest representable exponent: values up to 2^44 cycles (~90 min at
  // 3 GHz) land in a real bucket; larger ones clamp into the last.
  static constexpr uint32_t kMaxExp = 44;
  static constexpr uint32_t kBuckets = (kMaxExp - kSubBits + 2) * kSub;

  void record(uint64_t v) noexcept {
    ++counts_[index_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (count_ == 1 || v < min_) min_ = v;
  }

  void merge(const LogHistogram& o) noexcept {
    for (uint32_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    if (o.count_ > 0) {
      if (count_ == 0 || o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
    count_ += o.count_;
    sum_ += o.sum_;
  }

  // Owner-or-quiescent only — see the concurrency contract above.
  void reset() noexcept { *this = LogHistogram{}; }

  // The samples recorded since `prev` was copied from this (or an equal)
  // histogram — the tumbling-window primitive. Both operands are plain
  // value snapshots (LogHistogram copies relaxed-load every cell, so
  // copying a hot recorder is safe). The interval's count/sum/min/max are
  // recomputed from the delta buckets: count is exactly the bucket-sum
  // (internally consistent for percentile()), min/max are the containing
  // buckets' bounds (≈6% error, same as every other quantile). Subtraction
  // saturates at 0 so a racing reset degrades to an empty window instead
  // of underflowing.
  LogHistogram interval_since(const LogHistogram& prev) const noexcept {
    LogHistogram d;
    uint64_t total = 0;
    uint32_t lo = kBuckets;
    uint32_t hi = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      const uint64_t cur = counts_[i];
      const uint64_t old = prev.counts_[i];
      const uint64_t delta = cur > old ? cur - old : 0;
      if (delta == 0) continue;
      d.counts_[i] = delta;
      total += delta;
      if (i < lo) lo = i;
      hi = i;
    }
    d.count_ = total;
    if (total > 0) {
      const uint64_t cs = sum_;
      const uint64_t ps = prev.sum_;
      d.sum_ = cs > ps ? cs - ps : 0;
      d.min_ = bucket_low(lo);
      d.max_ = bucket_mid(hi);
    }
    return d;
  }

  uint64_t count() const noexcept { return count_; }
  uint64_t max() const noexcept { return max_; }
  uint64_t min() const noexcept { return count_ == 0 ? 0 : min_.load(); }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  // Value at or below which `p` (in [0,1]) of recorded values fall,
  // estimated as the midpoint of the containing bucket (exact max for
  // p = 1). 0 when empty.
  uint64_t percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    if (p >= 1.0) return max_;
    if (p < 0.0) p = 0.0;
    // Rank of the target value, 1-based; ceil so p=0.5 of 2 values is the
    // first, matching the "at or below" reading.
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (rank < 1) rank = 1;
    uint64_t seen = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return bucket_mid(i);
    }
    return max_;
  }

  // Bucketing scheme, exposed for tests: values below kSub map to
  // themselves; above, the top kSubBits+1 significant bits select the
  // bucket.
  static uint32_t index_of(uint64_t v) noexcept {
    if (v < kSub) return static_cast<uint32_t>(v);
    uint32_t e = static_cast<uint32_t>(std::bit_width(v)) - 1;
    if (e > kMaxExp) {
      e = kMaxExp;
      v = uint64_t{1} << kMaxExp;  // clamp into the last octave
    }
    const uint32_t sub =
        static_cast<uint32_t>((v >> (e - kSubBits)) & (kSub - 1));
    return (e - kSubBits + 1) * kSub + sub;
  }

  static uint64_t bucket_low(uint32_t idx) noexcept {
    if (idx < kSub) return idx;
    const uint32_t e = idx / kSub + kSubBits - 1;
    const uint32_t sub = idx % kSub;
    return (uint64_t{1} << e) + (static_cast<uint64_t>(sub) << (e - kSubBits));
  }

  static uint64_t bucket_mid(uint32_t idx) noexcept {
    if (idx < kSub) return idx;
    const uint32_t e = idx / kSub + kSubBits - 1;
    return bucket_low(idx) + (uint64_t{1} << (e - kSubBits)) / 2;
  }

 private:
  util::RelaxedCounter counts_[kBuckets] = {};
  util::RelaxedCounter count_ = 0;
  util::RelaxedCounter sum_ = 0;
  util::RelaxedCounter min_ = 0;
  util::RelaxedCounter max_ = 0;
};

// The operations the obs layer keeps per-operation latency histograms for.
// The first four are timed at driver level (whole DynamicCollect calls,
// including retries); kCommit is the Txn::commit duration of committing
// speculative attempts, and kValidate one read-set validation (commit-time
// or extension, exact walk or signature scan — same buckets, so the
// backends' crossover is directly visible). Both DC_TRACE builds only.
enum class OpKind : uint8_t {
  kRegister = 0,
  kUpdate,
  kDeRegister,
  kCollect,
  kCommit,
  kValidate,
  kNumOps,
};

const char* to_string(OpKind op) noexcept;

// Records one latency sample (in cycles) into the calling thread's
// histogram for `op`. Callers gate on timing_enabled().
void record_op(OpKind op, uint64_t cycles) noexcept;

// Merged histogram for `op` across all threads (including exited ones)
// since the last reset. Safe while recorders are hot (see the concurrency
// contract at the top): the timeline sampler calls this every tick; the
// merged cross-cell view may be skewed by in-flight samples.
LogHistogram aggregate_histogram(OpKind op) noexcept;

// Zeroes all threads' histograms. Quiescent-only — a hot recorder's owner
// could resurrect pre-reset counts — and ENFORCED against the one
// background reader we own: aborts (with a message) if the timeline
// sampler is running. Samplers must difference snapshots via
// interval_since() instead of resetting.
void reset_histograms() noexcept;

// RAII sample: times its scope and records into `op` iff timing was enabled
// at construction. ~40 cycles of rdtsc overhead per timed scope.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(OpKind op) noexcept
      : op_(op), start_(timing_enabled() ? util::rdcycles() : 0) {}
  ~ScopedOpTimer() {
    if (start_ != 0) record_op(op_, util::rdcycles() - start_);
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  OpKind op_;
  uint64_t start_;
};

}  // namespace dc::obs
