// Observability subsystem — runtime switches.
//
// The obs layer has two gates, layered so the substrate's hot paths pay
// nothing unless both are open:
//
//  * Compile-time: the hot-path hooks (transaction lifecycle events,
//    conflict attribution, commit-duration timing) are emitted only when the
//    build defines DC_TRACE (CMake option -DDC_TRACE=ON). Without it, the
//    inline emit wrappers in trace.hpp compile to nothing — the substrate's
//    generated code is identical to an uninstrumented build.
//
//  * Runtime: even in a DC_TRACE build, recording is off until a switch
//    below is flipped (benchmarks flip them from --trace/--hist; tests flip
//    them directly). The closed-switch cost on an instrumented path is one
//    relaxed atomic load and a predictable branch.
//
// Driver-level operation timing (sim/drivers.cpp wrapping whole
// Register/Update/DeRegister/Collect calls) sits *outside* the transaction
// hot path, so it is always compiled and gated by set_timing() alone: a
// default build can still produce per-operation latency histograms.
//
// Aggregation (histogram merge, trace snapshot) reads other threads'
// unsynchronized thread-local buffers and must run while they are quiescent
// — the same contract as htm::aggregate_stats, which every benchmark
// already honours by joining workers before reporting.
#pragma once

namespace dc::obs {

#if defined(DC_TRACE)
inline constexpr bool kTraceCompiled = true;
#else
inline constexpr bool kTraceCompiled = false;
#endif

// Event-trace recording (trace.hpp): transaction lifecycle, TLE fallbacks,
// step-size changes, pool events. Effective only in DC_TRACE builds.
bool tracing_enabled() noexcept;
void set_tracing(bool on) noexcept;

// Latency-histogram recording (histogram.hpp). Driver-level operation
// timing works in any build; commit-path timing needs DC_TRACE.
bool timing_enabled() noexcept;
void set_timing(bool on) noexcept;

// Per-orec conflict attribution (conflict_map.hpp). The substrate-side
// recording hook is DC_TRACE-gated; direct record_conflict() calls work in
// any build.
bool conflicts_enabled() noexcept;
void set_conflicts(bool on) noexcept;

// Convenience: flip every switch at once (what --trace does).
void set_all(bool on) noexcept;

}  // namespace dc::obs
