#include "obs/export.hpp"

#include <cstdio>
#include <vector>

#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "util/cycles.hpp"

namespace dc::obs {

namespace {

// Mirror of htm::AbortCode (obs deliberately does not depend on htm; the
// trace stores the raw code byte). Keep in sync with htm/abort.hpp.
const char* abort_code_name(uint8_t code) noexcept {
  switch (code) {
    case 0:
      return "none";
    case 1:
      return "conflict";
    case 2:
      return "overflow";
    case 3:
      return "explicit";
    case 4:
      return "illegal-access";
    case 5:
      return "interrupt";
    case 6:
      return "tlb-miss";
    case 7:
      return "save-restore";
    default:
      return "?";
  }
}

const char* step_change_name(uint8_t code) noexcept {
  switch (static_cast<StepChange>(code)) {
    case StepChange::kSet:
      return "set";
    case StepChange::kGrow:
      return "grow";
    case StepChange::kShrink:
      return "shrink";
  }
  return "?";
}

// Mirror of htm::crash::Point (same raw-byte contract as abort_code_name).
// Keep in sync with htm/crash.hpp.
const char* crash_point_name(uint8_t point) noexcept {
  switch (point) {
    case 0:
      return "txn-op";
    case 1:
      return "commit-entry";
    case 2:
      return "lock-held";
    default:
      return "?";
  }
}

double to_us(uint64_t tsc, uint64_t t0) noexcept {
  return util::cycles_to_ns(tsc - t0) / 1000.0;
}

}  // namespace

OpSummary summarize_op(OpKind op) noexcept {
  const LogHistogram h = aggregate_histogram(op);
  OpSummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.p50_ns = util::cycles_to_ns(h.percentile(0.50));
  s.p90_ns = util::cycles_to_ns(h.percentile(0.90));
  s.p99_ns = util::cycles_to_ns(h.percentile(0.99));
  s.max_ns = util::cycles_to_ns(h.max());
  s.mean_ns = h.mean() / util::cycles_per_ns();
  return s;
}

bool export_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  const std::vector<TraceEvent> events = snapshot_events();
  uint64_t t0 = ~uint64_t{0};
  for (const TraceEvent& e : events) {
    if (e.tsc < t0) t0 = e.tsc;
  }
  // Timeline windows share the axis: their TSC origin is start_cycles(),
  // so fold it into t0 and everything lines up in Perfetto.
  const uint64_t tl_start = timeline::start_cycles();
  if (tl_start != 0 && tl_start < t0) t0 = tl_start;
  if (t0 == ~uint64_t{0}) t0 = 0;

  // Per-tid pending transaction begin, so a begin..commit/abort pair folds
  // into one "X" complete event (transactions never nest, txn.hpp).
  struct Pending {
    bool active = false;
    uint64_t tsc = 0;
    bool lock_mode = false;
  };
  std::vector<Pending> pending;

  std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
  bool first = true;
  auto sep = [&] {
    std::fprintf(f, "%s", first ? "  " : ",\n  ");
    first = false;
  };
  for (const TraceEvent& e : events) {
    if (e.tid >= pending.size()) pending.resize(e.tid + 1);
    Pending& p = pending[e.tid];
    switch (e.kind) {
      case EventKind::kTxnBegin:
        // An unpaired earlier begin (ring wrap ate its end) is dropped.
        p.active = true;
        p.tsc = e.tsc;
        p.lock_mode = e.a != 0;
        break;
      case EventKind::kTxnCommit:
      case EventKind::kTxnAbort: {
        const bool committed = e.kind == EventKind::kTxnCommit;
        if (p.active) {
          sep();
          std::fprintf(
              f,
              "{\"name\": \"%s\", \"cat\": \"htm\", \"ph\": \"X\", "
              "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u, "
              "\"args\": {\"outcome\": \"%s\", \"abort\": \"%s\", "
              "\"read_set\": %u, \"write_set\": %u, \"attempt\": %u, "
              "\"lock_mode\": %s}}",
              committed ? "txn" : "txn(abort)", to_us(p.tsc, t0),
              to_us(e.tsc, t0) - to_us(p.tsc, t0), e.tid,
              committed ? "commit" : "abort", abort_code_name(e.code), e.a,
              e.b, e.c, p.lock_mode ? "true" : "false");
          p.active = false;
        } else {
          // End without a retained begin (ring wrap): emit an instant so
          // the outcome is still visible.
          sep();
          std::fprintf(f,
                       "{\"name\": \"%s\", \"cat\": \"htm\", \"ph\": \"i\", "
                       "\"s\": \"t\", \"ts\": %.3f, \"pid\": 0, \"tid\": %u, "
                       "\"args\": {\"abort\": \"%s\", \"read_set\": %u, "
                       "\"write_set\": %u, \"attempt\": %u}}",
                       committed ? "txn_commit" : "txn_abort", to_us(e.tsc, t0),
                       e.tid, abort_code_name(e.code), e.a, e.b, e.c);
        }
        break;
      }
      case EventKind::kTleFallback:
        sep();
        std::fprintf(f,
                     "{\"name\": \"tle_fallback\", \"cat\": \"htm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"attempt\": %u}}",
                     to_us(e.tsc, t0), e.tid, e.a);
        break;
      case EventKind::kStepChange:
        sep();
        std::fprintf(f,
                     "{\"name\": \"step_change\", \"cat\": \"collect\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"reason\": \"%s\", "
                     "\"from\": %u, \"to\": %u}}",
                     to_us(e.tsc, t0), e.tid, step_change_name(e.code), e.a,
                     e.b);
        break;
      case EventKind::kClockResample:
        sep();
        std::fprintf(f,
                     "{\"name\": \"clock_resample\", \"cat\": \"htm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"from_rv\": %u, \"to_rv\": %u, "
                     "\"read_set\": %u}}",
                     to_us(e.tsc, t0), e.tid, e.a, e.b, e.c);
        break;
      case EventKind::kFaultInjected:
        sep();
        std::fprintf(f,
                     "{\"name\": \"fault_injected\", \"cat\": \"htm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"cause\": \"%s\", "
                     "\"attempt\": %u, \"ops_survived\": %u}}",
                     to_us(e.tsc, t0), e.tid, abort_code_name(e.code), e.a,
                     e.b);
        break;
      case EventKind::kStormEnter:
      case EventKind::kStormExit:
        sep();
        std::fprintf(f,
                     "{\"name\": \"%s\", \"cat\": \"htm\", \"ph\": \"i\", "
                     "\"s\": \"t\", \"ts\": %.3f, \"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"score\": %u}}",
                     e.kind == EventKind::kStormEnter ? "storm_enter"
                                                      : "storm_exit",
                     to_us(e.tsc, t0), e.tid, e.a);
        break;
      case EventKind::kCrashInjected:
        sep();
        std::fprintf(f,
                     "{\"name\": \"crash_injected\", \"cat\": \"htm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"point\": \"%s\", "
                     "\"ops_survived\": %u, \"lock_held\": %u}}",
                     to_us(e.tsc, t0), e.tid, crash_point_name(e.code), e.a,
                     e.b);
        break;
      case EventKind::kLockRecovery:
        sep();
        std::fprintf(f,
                     "{\"name\": \"lock_recovery\", \"cat\": \"htm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"owner_tid\": %u, "
                     "\"owner_epoch\": %u}}",
                     to_us(e.tsc, t0), e.tid, e.a, e.b);
        break;
      case EventKind::kOrphanReap:
        sep();
        std::fprintf(f,
                     "{\"name\": \"orphan_reap\", \"cat\": \"collect\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"count\": %u, "
                     "\"owner_tid\": %u}}",
                     to_us(e.tsc, t0), e.tid, e.a, e.b);
        break;
      case EventKind::kSigFallback:
        sep();
        std::fprintf(f,
                     "{\"name\": \"sig_fallback\", \"cat\": \"htm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"read_set\": %u, "
                     "\"rv\": %u}}",
                     to_us(e.tsc, t0), e.tid, e.a, e.b);
        break;
      case EventKind::kPoolAlloc:
      case EventKind::kPoolRecycle:
        sep();
        std::fprintf(f,
                     "{\"name\": \"%s\", \"cat\": \"pool\", \"ph\": \"i\", "
                     "\"s\": \"t\", \"ts\": %.3f, \"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"bytes\": %u}}",
                     e.kind == EventKind::kPoolAlloc ? "pool_alloc"
                                                     : "pool_recycle",
                     to_us(e.tsc, t0), e.tid, e.a);
        break;
      case EventKind::kNumKinds:
        break;
    }
  }
  // Telemetry overlay (only when the sampler ran): per-window counter
  // tracks ("C" phase — Perfetto renders them as stepped area charts above
  // the transaction slices) and the anomaly annotations as global instants.
  if (tl_start != 0) {
    const double base_us = to_us(tl_start, t0);
    for (const timeline::Window& w : timeline::windows()) {
      const double ts = base_us + w.t_end_ms * 1000.0;
      sep();
      std::fprintf(f,
                   "{\"name\": \"txn/window\", \"cat\": \"timeline\", "
                   "\"ph\": \"C\", \"ts\": %.3f, \"pid\": 0, "
                   "\"args\": {\"commits\": %llu, \"aborts\": %llu}}",
                   ts, static_cast<unsigned long long>(w.delta.commits),
                   static_cast<unsigned long long>(w.delta.aborts));
      sep();
      std::fprintf(
          f,
          "{\"name\": \"degradation/window\", \"cat\": \"timeline\", "
          "\"ph\": \"C\", \"ts\": %.3f, \"pid\": 0, "
          "\"args\": {\"lock_fallbacks\": %llu, \"faults\": %llu, "
          "\"crashes\": %llu}}",
          ts, static_cast<unsigned long long>(w.delta.lock_fallbacks),
          static_cast<unsigned long long>(w.delta.faults_injected),
          static_cast<unsigned long long>(w.delta.crashes_injected));
      bool any_op = false;
      for (std::size_t op = 0; op < timeline::kNumOps; ++op) {
        if (w.ops[op].count != 0) any_op = true;
      }
      if (any_op) {
        sep();
        std::fprintf(f,
                     "{\"name\": \"p99_ns\", \"cat\": \"timeline\", "
                     "\"ph\": \"C\", \"ts\": %.3f, \"pid\": 0, \"args\": {",
                     ts);
        bool first_op = true;
        for (std::size_t op = 0; op < timeline::kNumOps; ++op) {
          if (w.ops[op].count == 0) continue;
          std::fprintf(f, "%s\"%s\": %.1f", first_op ? "" : ", ",
                       to_string(static_cast<OpKind>(op)), w.ops[op].p99_ns);
          first_op = false;
        }
        std::fprintf(f, "}}");
      }
    }
    for (const timeline::Event& e : timeline::annotations()) {
      sep();
      std::fprintf(f,
                   "{\"name\": \"%s\", \"cat\": \"timeline\", \"ph\": \"i\", "
                   "\"s\": \"g\", \"ts\": %.3f, \"pid\": 0, \"tid\": 0, "
                   "\"args\": {\"window\": %llu, \"value\": %llu}}",
                   timeline::to_string(e.kind), base_us + e.t_ms * 1000.0,
                   static_cast<unsigned long long>(e.window),
                   static_cast<unsigned long long>(e.value));
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace dc::obs
