// Factory over the eight Dynamic Collect implementations, so tests,
// benchmarks, and examples can iterate "all algorithms" uniformly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collect/collect.hpp"

namespace dc::collect {

// Sizing knobs for construction. The static algorithms need a capacity
// bound; the dynamic arrays take a minimum size; the static baseline also
// needs the thread bound.
struct MakeParams {
  int32_t static_capacity = 128;
  int32_t min_size = 16;
  uint32_t max_threads = 16;
};

struct AlgoInfo {
  std::string name;
  bool is_dynamic;
  bool uses_htm;
  bool telescoped;  // Collect supports step sizes > 1
  std::function<std::unique_ptr<DynamicCollect>(const MakeParams&)> make;
};

// All eight algorithms, in the paper's presentation order.
const std::vector<AlgoInfo>& all_algorithms();

// nullptr if `name` is unknown. Names match DynamicCollect::name().
std::unique_ptr<DynamicCollect> make_algorithm(const std::string& name,
                                               const MakeParams& params = {});

}  // namespace dc::collect
