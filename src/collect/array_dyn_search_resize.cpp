#include "collect/array_dyn_search_resize.hpp"

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

using htm::Txn;

ArrayDynSearchResize::ArrayDynSearchResize(int32_t min_size)
    : array_(mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(
          min_size < 1 ? 1 : min_size))),
      capacity_(min_size < 1 ? 1 : min_size),
      min_size_(min_size < 1 ? 1 : min_size) {}

ArrayDynSearchResize::~ArrayDynSearchResize() {
  help_copy();
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

Handle ArrayDynSearchResize::register_handle(Value v) {
  auto* slot_ref = static_cast<Slot**>(mem::pool_allocate(sizeof(Slot*)));
  for (;;) {
    int32_t count_l = 0;
    int32_t capacity_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      if (txn.load(&array_new_) != nullptr) return Action::kHelp;
      // Search for a free slot (unbounded reads, bounded stores).
      Slot* arr = txn.load(&array_);
      for (int32_t i = 0; i < txn.load(&capacity_); ++i) {
        if (txn.load(&arr[i].used) == 0) {
          Slot* slot = &arr[i];
          txn.store(&slot->used, uint32_t{1});
          txn.store(&slot->val, v);
          txn.store(&slot->slot_ref, slot_ref);
          txn.store(slot_ref, slot);
          txn.store(&count_, txn.load(&count_) + 1);
          if (i + 1 > txn.load(&high_)) txn.store(&high_, i + 1);
          return Action::kDone;
        }
      }
      count_l = txn.load(&count_);
      capacity_l = txn.load(&capacity_);
      return Action::kGrow;  // array full
    });
    if (action == Action::kDone) return slot_ref;
    if (action == Action::kGrow) {
      attempt_resize(count_l, capacity_l);
    } else {
      help_copy();
    }
  }
}

void ArrayDynSearchResize::deregister(Handle h) {
  auto* slot_ref = static_cast<Slot**>(h);
  for (;;) {
    int32_t count_l = 0;
    int32_t capacity_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      count_l = txn.load(&count_);
      capacity_l = txn.load(&capacity_);
      if (count_l * 4 == capacity_l && count_l * 2 >= min_size_) {
        return Action::kShrink;
      }
      if (txn.load(&array_new_) != nullptr) return Action::kHelp;
      Slot* slot = txn.load(slot_ref);
      txn.store(&slot->used, uint32_t{0});
      txn.store(&count_, count_l - 1);
      // No compaction: the hole stays; high_ is untouched, so Collect keeps
      // traversing it until the next resize (§5.4's observed cost).
      return Action::kDone;
    });
    if (action == Action::kDone) break;
    if (action == Action::kShrink) {
      attempt_resize(count_l, capacity_l);
    } else {
      help_copy();
    }
  }
  mem::pool_deallocate(slot_ref, sizeof(Slot*));
}

void ArrayDynSearchResize::update(Handle h, Value v) {
  auto* slot_ref = static_cast<Slot**>(h);
  htm::atomic([&](Txn& txn) {
    Slot* slot = txn.load(slot_ref);
    txn.store(&slot->val, v);
  });
}

void ArrayDynSearchResize::collect(std::vector<Value>& out) {
  out.clear();
  help_copy();
  StepController& ctl = this->ctl();
  int32_t i = htm::nontxn_load(&high_) - 1;
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  uint32_t failures = 0;
  while (i >= 0) {
    const uint32_t step = ctl.step();
    int32_t i_next = i;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      i_next = i;
      scratch.clear();
      // A registered slot only moves to a lower index (resize compaction
      // preserves order), so a downward scan clamped to the current
      // high-water mark cannot miss one.
      for (uint32_t k = 0;
           k < step && i_next >= 0 && txn.store_budget_left() > 0;
           ++k) {
        const int32_t high = txn.load(&high_);
        if (i_next >= high) i_next = high - 1;
        if (i_next < 0) break;
        Slot* arr = txn.load(&array_);
        if (txn.load(&arr[i_next].used) != 0) {
          scratch.push_back(txn.load(&arr[i_next].val));
          txn.charge_store();
        }
        --i_next;
      }
    });
    if (r.committed) {
      out.insert(out.end(), scratch.begin(), scratch.end());
      i = i_next;
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    if (++failures >= 128 && (ctl.step() == 1 || failures >= 512)) {
      // A fixed step > 1 must not disable the liveness escape: under a
      // sustained spurious-abort storm the multi-slot read never commits,
      // so after a larger budget burns we drop to the one-slot path
      // (TLE-backstopped) regardless of step size.
      Value val = 0;
      bool got = false;
      htm::atomic([&](Txn& txn) {
        got = false;
        i_next = i;
        const int32_t high = txn.load(&high_);
        if (i_next >= high) i_next = high - 1;
        if (i_next >= 0) {
          Slot* arr = txn.load(&array_);
          if (txn.load(&arr[i_next].used) != 0) {
            val = txn.load(&arr[i_next].val);
            got = true;
          }
          --i_next;
        }
      });
      if (got) out.push_back(val);
      i = i_next;
      ctl.on_commit(got ? 1 : 0);
      failures = 0;
    } else {
      backoff.pause();
    }
  }
}

void ArrayDynSearchResize::attempt_resize(int32_t count_l,
                                          int32_t capacity_l) {
  const int32_t new_cap = count_l * 2;
  if (new_cap < 1) return;  // nothing registered; capacity floor holds
  Slot* tmp =
      mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(new_cap));
  const bool free_tmp = htm::atomic([&](Txn& txn) -> bool {
    if (txn.load(&array_new_) == nullptr && txn.load(&count_) == count_l &&
        txn.load(&capacity_) == capacity_l) {
      txn.store(&array_new_, tmp);
      txn.store(&capacity_new_, new_cap);
      txn.store(&copied_, 0);
      txn.store(&new_count_, 0);
      return false;
    }
    return true;
  });
  if (free_tmp) mem::destroy_array(tmp, static_cast<std::size_t>(new_cap));
  help_copy();
}

void ArrayDynSearchResize::help_copy() {
  while (htm::nontxn_load(&array_new_) != nullptr) help_copy_one();
}

void ArrayDynSearchResize::help_copy_one() {
  // Copy-with-compaction: used slots land at consecutive indices of the new
  // array (order-preserving, so indices only decrease). Register and
  // DeRegister are blocked (they help instead), so count_ is stable during
  // the copy.
  Slot* to_free = nullptr;
  int32_t to_free_cap = 0;
  htm::atomic([&](Txn& txn) {
    to_free = nullptr;
    if (txn.load(&array_new_) == nullptr) return;
    const int32_t scan = txn.load(&copied_);
    if (scan < txn.load(&capacity_)) {
      Slot* arr = txn.load(&array_);
      if (txn.load(&arr[scan].used) != 0) {
        Slot* arr_new = txn.load(&array_new_);
        const int32_t dst = txn.load(&new_count_);
        txn.store(&arr_new[dst].val, txn.load(&arr[scan].val));
        Slot** const sr = txn.load(&arr[scan].slot_ref);
        txn.store(&arr_new[dst].slot_ref, sr);
        txn.store(&arr_new[dst].used, uint32_t{1});
        txn.store(sr, &arr_new[dst]);
        txn.store(&new_count_, dst + 1);
      }
      txn.store(&copied_, scan + 1);
    } else {
      to_free = txn.load(&array_);
      to_free_cap = txn.load(&capacity_);
      txn.store(&array_, txn.load(&array_new_));
      txn.store(&capacity_, txn.load(&capacity_new_));
      txn.store(&high_, txn.load(&new_count_));
      txn.store(&array_new_, static_cast<Slot*>(nullptr));
    }
  });
  if (to_free != nullptr) {
    mem::destroy_array(to_free, static_cast<std::size_t>(to_free_cap));
  }
}

std::size_t ArrayDynSearchResize::footprint_bytes() const {
  const auto cap = static_cast<std::size_t>(htm::nontxn_load(&capacity_));
  const auto cnt = static_cast<std::size_t>(htm::nontxn_load(&count_));
  std::size_t bytes = cap * sizeof(Slot) + cnt * sizeof(Slot*);
  if (htm::nontxn_load(&array_new_) != nullptr) {
    bytes += static_cast<std::size_t>(htm::nontxn_load(&capacity_new_)) *
             sizeof(Slot);
  }
  return bytes;
}

int32_t ArrayDynSearchResize::capacity_now() const noexcept {
  return htm::nontxn_load(&capacity_);
}
int32_t ArrayDynSearchResize::count_now() const noexcept {
  return htm::nontxn_load(&count_);
}
int32_t ArrayDynSearchResize::high_water() const noexcept {
  return htm::nontxn_load(&high_);
}

}  // namespace dc::collect
