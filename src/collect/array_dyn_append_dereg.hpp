// ArrayDynAppendDereg — the paper's flagship algorithm (§4, Figure 2).
//
// A dynamic array of slots; Register appends after the last used slot;
// DeRegister compacts by moving the last used slot into the hole; the array
// doubles when full and halves when 25% full (invariant:
// max(count, MIN_SIZE) <= capacity <= 4*count, modulo the MIN_SIZE floor),
// with resizing performed cooperatively, one slot-copy transaction at a
// time. Each handle is a heap cell ("slot reference") pointing at its
// current slot; the slot points back so moves can redirect the handle.
//
// The implementation below is a line-by-line transcription of the paper's
// Figure 2 pseudocode onto the htm substrate, with the Collect loop
// generalized to copy `step` slots per transaction (telescoping, §3.4 /
// §5.3) instead of Figure 2's fixed one-slot transactions.
#pragma once

#include <cstdint>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class ArrayDynAppendDereg final : public TelescopedBase {
 public:
  explicit ArrayDynAppendDereg(int32_t min_size = 16);
  ~ArrayDynAppendDereg() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "ArrayDynAppendDereg"; }
  bool is_dynamic() const override { return true; }
  bool uses_htm() const override { return true; }
  std::size_t footprint_bytes() const override;

  // Test hooks (quiescent reads).
  int32_t capacity_now() const noexcept;
  int32_t count_now() const noexcept;
  int32_t min_size() const noexcept { return min_size_; }

 private:
  struct Slot {
    Value val;
    Slot** slot_ref;  // back-pointer to the handle cell pointing here
  };

  enum class Action : uint8_t { kDone, kGrow, kShrink, kHelp };

  // Figure 2, append(): claim array[count] for (val, slot_ref).
  void append_in_txn(htm::Txn& txn, Slot* arr, int32_t index, Slot** slot_ref,
                     Value v);
  // Figure 2, attempt_resize().
  void attempt_resize(int32_t count_l, int32_t capacity_l);
  // Figure 2, help_copy()/help_copy_one().
  void help_copy();
  void help_copy_one();

  // Shared state (Figure 2 lines 6-12); accessed transactionally.
  Slot* array_;
  int32_t capacity_;
  int32_t count_ = 0;
  Slot* array_new_ = nullptr;
  int32_t capacity_new_ = 0;
  int32_t copied_ = 0;

  const int32_t min_size_;
};

}  // namespace dc::collect
