// Telescoping step-size control (paper §3.4).
//
// Telescoping folds several traversal steps into one transaction,
// amortizing begin/commit costs; larger steps are more abort-prone, so the
// paper adapts the step size from the outcomes of the most recent 8
// transaction attempts:
//
//   * an 8-bit vector records commit(1)/abort(0) of recent attempts, so the
//     oldest outcome can be "aged out";
//   * counter = #commits - #aborts among the recorded attempts;
//   * after a commit, if counter > 6, double the step;
//   * after an abort, if counter < -2, halve the step;
//   * only attempts since the last step resize are relevant (history resets
//     on resize);
//   * steps are capped at the store-buffer capacity (32 on Rock), because
//     each step performs at least one store (recording into the result set).
//
// The thresholds (+6, -2) are the paper's experimentally determined values,
// exposed here as fields for the ablation benchmark.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"

namespace dc::collect {

enum class StepMode : uint8_t {
  kFixed,           // fixed step, no bookkeeping
  kFixedRecording,  // fixed step, outcome bookkeeping ("Best (adapt cost)")
  kAdaptive,        // full §3.4 mechanism
};

class StepController {
 public:
  static constexpr uint32_t kMaxStepLog2 = 5;  // 32 == Rock store buffer
  static constexpr uint32_t kMaxStep = 1u << kMaxStepLog2;

  StepMode mode = StepMode::kAdaptive;
  int32_t grow_threshold = 6;    // "higher than 6 after a commit"
  int32_t shrink_threshold = -2; // "below -2 after an abort"

  uint32_t step() const noexcept { return step_; }

  void set_step(uint32_t s) noexcept {
    const uint32_t old = step_;
    step_ = s < 1 ? 1 : (s > kMaxStep ? kMaxStep : s);
    if (step_ != old) {
      obs::trace_step_change(obs::StepChange::kSet, old, step_);
    }
    reset_history();
  }

  // Outcome of one Collect transaction attempt that copied `slots` elements
  // (slots == step in the common case; fewer near the end of a traversal).
  void on_commit(uint32_t slots) noexcept {
    slots_by_step_[std::bit_width(step_) - 1] += slots;
    if (mode == StepMode::kFixed) return;
    record(true);
    if (mode == StepMode::kAdaptive && counter() > grow_threshold &&
        step_ < kMaxStep) {
      obs::trace_step_change(obs::StepChange::kGrow, step_, step_ * 2);
      step_ *= 2;
      reset_history();
    }
  }

  void on_abort() noexcept {
    if (mode == StepMode::kFixed) return;
    record(false);
    if (mode == StepMode::kAdaptive && counter() < shrink_threshold &&
        step_ > 1) {
      obs::trace_step_change(obs::StepChange::kShrink, step_, step_ / 2);
      step_ /= 2;
      reset_history();
    }
  }

  // #commits - #aborts among the recorded recent attempts.
  int32_t counter() const noexcept {
    const int32_t commits = std::popcount(bits_);
    return 2 * commits - static_cast<int32_t>(filled_);
  }

  void reset_history() noexcept {
    bits_ = 0;
    filled_ = 0;
  }

  // Figure 6 data: slots collected while the controller sat at each step
  // size; index = log2(step).
  const std::array<uint64_t, kMaxStepLog2 + 1>& slots_by_step() const noexcept {
    return slots_by_step_;
  }
  void reset_stats() noexcept { slots_by_step_ = {}; }

 private:
  void record(bool commit) noexcept {
    bits_ = static_cast<uint8_t>((bits_ << 1) | (commit ? 1 : 0));
    if (filled_ < 8) ++filled_;
  }

  uint32_t step_ = 1;
  uint8_t bits_ = 0;     // shift register of recent outcomes (1 = commit)
  uint32_t filled_ = 0;  // how many of the 8 bits are populated
  std::array<uint64_t, kMaxStepLog2 + 1> slots_by_step_{};
};

}  // namespace dc::collect
