#include "collect/array_dyn_append_dereg.hpp"

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

using htm::Txn;

ArrayDynAppendDereg::ArrayDynAppendDereg(int32_t min_size)
    : array_(mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(
          min_size < 1 ? 1 : min_size))),
      capacity_(min_size < 1 ? 1 : min_size),
      min_size_(min_size < 1 ? 1 : min_size) {}

ArrayDynAppendDereg::~ArrayDynAppendDereg() {
  help_copy();  // finish any in-flight resize so array_ is the only array
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

void ArrayDynAppendDereg::append_in_txn(Txn& txn, Slot* arr, int32_t index,
                                        Slot** slot_ref, Value v) {
  // Figure 2 lines 68-72.
  Slot* slot = &arr[index];
  txn.store(&slot->val, v);
  txn.store(&slot->slot_ref, slot_ref);
  txn.store(slot_ref, slot);
  txn.store(&count_, index + 1);
}

Handle ArrayDynAppendDereg::register_handle(Value v) {
  // Figure 2 lines 18-43. The handle cell is allocated outside the
  // transaction (no allocation inside transactions, §6).
  auto* slot_ref = static_cast<Slot**>(mem::pool_allocate(sizeof(Slot*)));
  for (;;) {
    int32_t count_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      if (txn.load(&array_new_) == nullptr) {
        const int32_t c = txn.load(&count_);
        if (c < txn.load(&capacity_)) {
          append_in_txn(txn, txn.load(&array_), c, slot_ref, v);
          return Action::kDone;
        }
        count_l = c;
        return Action::kGrow;
      }
      // Resize in progress: registration can still complete if the new
      // element fits in both arrays — the transaction that copies the last
      // element is the one that installs the new array, so a slot claimed
      // here is guaranteed to be copied (§4.2).
      const int32_t c = txn.load(&count_);
      if (c < txn.load(&capacity_) && c < txn.load(&capacity_new_)) {
        append_in_txn(txn, txn.load(&array_), c, slot_ref, v);
        return Action::kDone;
      }
      return Action::kHelp;
    });
    if (action == Action::kDone) return slot_ref;
    if (action == Action::kGrow) {
      attempt_resize(count_l, count_l);  // full: capacity == count
    } else {
      help_copy();
    }
  }
}

void ArrayDynAppendDereg::deregister(Handle h) {
  // Figure 2 lines 45-66.
  auto* slot_ref = static_cast<Slot**>(h);
  for (;;) {
    int32_t count_l = 0;
    int32_t capacity_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      count_l = txn.load(&count_);
      capacity_l = txn.load(&capacity_);
      if (count_l * 4 == capacity_l && count_l * 2 >= min_size_) {
        return Action::kShrink;
      }
      if (txn.load(&array_new_) == nullptr) {
        const int32_t last = count_l - 1;
        txn.store(&count_, last);
        Slot* arr = txn.load(&array_);
        // **slot_ref = array[count]: move the last slot into the hole.
        Slot* mine = txn.load(slot_ref);
        const Value last_val = txn.load(&arr[last].val);
        Slot** const last_ref = txn.load(&arr[last].slot_ref);
        txn.store(&mine->val, last_val);
        txn.store(&mine->slot_ref, last_ref);
        // *(array[count].slot_ref) = *slot_ref: redirect the moved handle.
        txn.store(last_ref, mine);
        return Action::kDone;
      }
      return Action::kHelp;
    });
    if (action == Action::kDone) break;
    if (action == Action::kShrink) {
      attempt_resize(count_l, capacity_l);
    } else {
      help_copy();
    }
  }
  mem::pool_deallocate(slot_ref, sizeof(Slot*));
}

void ArrayDynAppendDereg::update(Handle h, Value v) {
  // Figure 2 lines 74-78: one indirection through the handle cell, inside a
  // transaction because the slot may move concurrently (compaction/resize).
  auto* slot_ref = static_cast<Slot**>(h);
  htm::atomic([&](Txn& txn) {
    Slot* slot = txn.load(slot_ref);
    txn.store(&slot->val, v);
  });
}

void ArrayDynAppendDereg::collect(std::vector<Value>& out) {
  // Figure 2 lines 80-93, with `step` slots per transaction (§3.4).
  out.clear();
  help_copy();  // no copy may be in progress when the scan starts (§4.2)
  StepController& ctl = this->ctl();
  int32_t i = htm::nontxn_load(&count_) - 1;
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  uint32_t failures = 0;
  while (i >= 0) {
    const uint32_t step = ctl.step();
    int32_t i_next = i;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      i_next = i;
      scratch.clear();
      for (uint32_t k = 0;
           k < step && i_next >= 0 && txn.store_budget_left() > 0;
           ++k) {
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;  // skip deregistered suffix
        if (i_next < 0) break;
        Slot* arr = txn.load(&array_);
        scratch.push_back(txn.load(&arr[i_next].val));
        txn.charge_store();  // result-set store occupies the store buffer
        --i_next;
      }
    });
    if (r.committed) {
      out.insert(out.end(), scratch.begin(), scratch.end());
      i = i_next;
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    if (++failures >= 128 && (ctl.step() == 1 || failures >= 512)) {
      // Liveness escape hatch: one slot via the full retry/TLE wrapper.
      // A fixed step > 1 must not disable it — under a sustained
      // spurious-abort storm the multi-slot read never commits, so after
      // a larger budget burns the escape opens regardless of step size.
      Value val = 0;
      bool got = false;
      htm::atomic([&](Txn& txn) {
        got = false;
        i_next = i;
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;
        if (i_next >= 0) {
          Slot* arr = txn.load(&array_);
          val = txn.load(&arr[i_next].val);
          got = true;
          --i_next;
        }
      });
      if (got) out.push_back(val);
      i = i_next;
      ctl.on_commit(got ? 1 : 0);
      failures = 0;
    } else {
      backoff.pause();
    }
  }
}

void ArrayDynAppendDereg::attempt_resize(int32_t count_l, int32_t capacity_l) {
  // Figure 2 lines 95-108. The candidate array is allocated outside the
  // transaction and discarded if the premise changed.
  const int32_t new_cap = count_l * 2;
  Slot* tmp =
      mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(new_cap));
  const bool free_tmp = htm::atomic([&](Txn& txn) -> bool {
    if (txn.load(&array_new_) == nullptr && txn.load(&count_) == count_l &&
        txn.load(&capacity_) == capacity_l) {
      txn.store(&array_new_, tmp);
      txn.store(&capacity_new_, new_cap);
      txn.store(&copied_, 0);
      return false;
    }
    return true;  // premise changed or another resize is in progress
  });
  if (free_tmp) mem::destroy_array(tmp, static_cast<std::size_t>(new_cap));
  help_copy();
}

void ArrayDynAppendDereg::help_copy() {
  // Figure 2 lines 110-112.
  while (htm::nontxn_load(&array_new_) != nullptr) help_copy_one();
}

void ArrayDynAppendDereg::help_copy_one() {
  // Figure 2 lines 114-131: copy one slot, or install the new array and
  // free the old (outside the transaction; sandboxing covers stale readers).
  Slot* to_free = nullptr;
  int32_t to_free_cap = 0;
  htm::atomic([&](Txn& txn) {
    to_free = nullptr;
    if (txn.load(&array_new_) == nullptr) return;
    const int32_t copied = txn.load(&copied_);
    if (copied < txn.load(&count_)) {
      Slot* arr = txn.load(&array_);
      Slot* arr_new = txn.load(&array_new_);
      const Value v = txn.load(&arr[copied].val);
      Slot** const sr = txn.load(&arr[copied].slot_ref);
      txn.store(&arr_new[copied].val, v);
      txn.store(&arr_new[copied].slot_ref, sr);
      txn.store(sr, &arr_new[copied]);
      txn.store(&copied_, copied + 1);
    } else {
      to_free = txn.load(&array_);
      to_free_cap = txn.load(&capacity_);
      txn.store(&array_, txn.load(&array_new_));
      txn.store(&capacity_, txn.load(&capacity_new_));
      txn.store(&array_new_, static_cast<Slot*>(nullptr));
    }
  });
  if (to_free != nullptr) {
    mem::destroy_array(to_free, static_cast<std::size_t>(to_free_cap));
  }
}

std::size_t ArrayDynAppendDereg::footprint_bytes() const {
  const auto cap = static_cast<std::size_t>(htm::nontxn_load(&capacity_));
  const auto cnt = static_cast<std::size_t>(htm::nontxn_load(&count_));
  std::size_t bytes = cap * sizeof(Slot) + cnt * sizeof(Slot*);
  if (htm::nontxn_load(&array_new_) != nullptr) {
    bytes += static_cast<std::size_t>(htm::nontxn_load(&capacity_new_)) *
             sizeof(Slot);
  }
  return bytes;
}

int32_t ArrayDynAppendDereg::capacity_now() const noexcept {
  return htm::nontxn_load(&capacity_);
}

int32_t ArrayDynAppendDereg::count_now() const noexcept {
  return htm::nontxn_load(&count_);
}

}  // namespace dc::collect
