#include "collect/lease.hpp"

#include <atomic>
#include <utility>

#include "htm/stats.hpp"
#include "memory/pool.hpp"
#include "obs/trace.hpp"
#include "sched/checkpoint.hpp"

namespace dc::collect {

namespace {

// Monotonic lease clock. Orphan detection rests on the liveness token, not
// on stamp age (a validated timeout over wall time would be racy under a
// scheduler); the stamp exists for diagnostics and ordering.
std::atomic<uint64_t> g_lease_clock{0};

}  // namespace

CrashTolerantCollect::CrashTolerantCollect(
    std::unique_ptr<DynamicCollect> inner)
    : inner_(std::move(inner)),
      name_(std::string("CrashTolerant(") + inner_->name() + ")") {}

void CrashTolerantCollect::stamp_lease(Handle h) {
  // The stamp/bind race window: the inner operation has committed but the
  // lease does not exist (or carries the stale stamp) yet. Checkpoint
  // before taking the table mutex — never inside it, or a preempted
  // holder would wedge every other logical thread on an OS mutex.
  sched::checkpoint(sched::Kind::kLeaseStamp);
  const htm::crash::Token me = htm::crash::self_token();
  const uint64_t stamp =
      g_lease_clock.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard lock(mu_);
  Lease& l = leases_[h];
  l.owner = me;
  l.stamp = stamp;
  l.claimed = false;
}

Handle CrashTolerantCollect::register_handle(Value v) {
  // Inner first, lease second: if the thread dies inside the inner
  // Register, no handle was claimed (the claiming transaction did not
  // commit) and no lease exists — nothing to reap, at most a leaked
  // private allocation, which is what death costs.
  Handle h = inner_->register_handle(v);
  stamp_lease(h);
  return h;
}

void CrashTolerantCollect::update(Handle h, Value v) {
  // Inner first, refresh second: a death inside the inner Update leaves
  // the old lease in place, and the dead owner's lease is reaped either
  // way.
  inner_->update(h, v);
  stamp_lease(h);
}

void CrashTolerantCollect::deregister(Handle h) {
  // Inner first, erase second. A death inside the inner DeRegister leaves
  // the lease in place with a now-dead owner: the reaper re-runs the inner
  // deregister from scratch, which is sound because the claiming
  // transaction did not commit (see lease.hpp). Once the inner call
  // returns, no crash point separates it from the erase.
  inner_->deregister(h);
  std::lock_guard lock(mu_);
  leases_.erase(h);
}

void CrashTolerantCollect::collect(std::vector<Value>& out) {
  inner_->collect(out);
}

std::size_t CrashTolerantCollect::footprint_bytes() const {
  std::size_t lease_bytes;
  {
    std::lock_guard lock(mu_);
    lease_bytes = leases_.size() * (sizeof(Handle) + sizeof(Lease));
  }
  return inner_->footprint_bytes() + lease_bytes;
}

std::size_t CrashTolerantCollect::reap_orphans() {
  sched::checkpoint(sched::Kind::kLeaseReap);
  const htm::crash::Token me = htm::crash::self_token();
  // Claim phase: under the mutex, mark every unclaimed orphan as ours.
  // Claims held by a claimant that later died are re-claimable, so a
  // reaper crashing mid-batch never strands the remainder.
  std::vector<Handle> victims;
  std::vector<uint32_t> victim_tids;
  {
    std::lock_guard lock(mu_);
    for (auto& [h, l] : leases_) {
      if (!htm::crash::token_orphaned(l.owner)) continue;
      if (l.claimed && !htm::crash::token_orphaned(l.claimant)) continue;
      l.claimed = true;
      l.claimant = me;
      victims.push_back(h);
      victim_tids.push_back(l.owner.tid);
    }
  }
  // Reap phase: per handle, run the inner DeRegister (the dead thread's
  // half-done one restarts from scratch; see lease.hpp) and erase the
  // lease immediately after, so our own death between handles leaves every
  // remaining claim re-claimable and no handle double-deregistered.
  // Claim/reap phase boundary: a second reaper racing in here must skip
  // every claimed lease (its claimant is alive) or the handle would be
  // deregistered twice.
  sched::checkpoint(sched::Kind::kLeaseReap);
  std::size_t reaped = 0;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    inner_->deregister(victims[i]);
    {
      std::lock_guard lock(mu_);
      leases_.erase(victims[i]);
    }
    ++reaped;
    htm::local_stats().orphans_reaped++;
    obs::trace_orphan_reap(1, victim_tids[i]);
  }
  // Capacity phase: dead threads strand more than their handles — their
  // thread-local pool caches hold freed-but-unreachable blocks (up to a
  // cache depth per size class per death, a real leak under --crash-rate).
  // The same survivor-run sweep that recovers handles recovers that
  // capacity; it also feeds the reclaim probe, so atomic blocks parked in
  // the kAllocFailed wait see the reap as progress.
  mem::pool_reap_stranded_caches();
  return reaped;
}

std::size_t CrashTolerantCollect::lease_count() const {
  std::lock_guard lock(mu_);
  return leases_.size();
}

std::size_t CrashTolerantCollect::orphan_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [h, l] : leases_) {
    if (htm::crash::token_orphaned(l.owner)) ++n;
  }
  return n;
}

}  // namespace dc::collect
