// HOHRC — hand-over-hand reference counting over a doubly-linked list
// (§3.1.1), with telescoping (§3.4).
//
// Each node carries a reference count that "pins" it (prevents
// deallocation) while a Collect holds it. Collect moves down the list in
// transactions that pin the next node and unpin the previous one (with
// telescoping, the pin advances k nodes per transaction, leaving the
// intermediate nodes untouched — the key cache-behaviour win). DeRegister
// marks the node; whoever drops the pin count to zero on a marked node
// unlinks and frees it. Handles never move, so Update is a naked
// (strong-atomicity) store.
#pragma once

#include <atomic>
#include <cstdint>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class HohrcList final : public TelescopedBase {
 public:
  HohrcList();
  ~HohrcList() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "ListHoHRC"; }
  bool is_dynamic() const override { return true; }
  bool uses_htm() const override { return true; }
  std::size_t footprint_bytes() const override;

  // Number of linked nodes, sentinel excluded (test hook; quiescent).
  std::size_t node_count() const;

 private:
  // No field initializers: nodes are recycled pool blocks that doomed
  // transactions may still be reading, so every initializing write (including
  // construction) must go through mem::init_store — see make_node().
  struct Node {
    Value val;
    int32_t refcount;
    uint32_t del;  // delete marker (§3.1.1)
    Node* prev;
    Node* next;
  };

  static Node* make_node(Value v, Node* prev, Node* next);

  // Unlinks n (inside txn); caller frees after commit.
  static void unlink_in_txn(htm::Txn& txn, Node* n);

  Node* const head_;  // sentinel; never deleted, never pinned
  std::atomic<int64_t> nodes_{0};
};

}  // namespace dc::collect
