#include "collect/dynamic_baseline.hpp"

#include <vector>

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

DynamicBaseline::DynamicBaseline() : head_(mem::create<Node>()) {}

DynamicBaseline::~DynamicBaseline() {
  Node* cur = head_;
  while (cur != nullptr) {
    Node* next = cur->next.load(std::memory_order_relaxed).ptr;
    mem::destroy(cur);
    cur = next;
  }
}

DynamicBaseline::Node* DynamicBaseline::pin_next(Node* p) noexcept {
  util::Backoff backoff(2, 128);
  for (;;) {
    Fwd cur = p->next.load(std::memory_order_acquire);
    if (cur.ptr == nullptr) return nullptr;
    const Fwd want{cur.ptr, bump(cur.tag, +1)};
    if (p->next.compare_exchange_weak(cur, want,
                                      std::memory_order_acq_rel)) {
      return cur.ptr;
    }
    backoff.pause();
  }
}

void DynamicBaseline::unpin_next(Node* p) noexcept {
  util::Backoff backoff(2, 128);
  for (;;) {
    Fwd cur = p->next.load(std::memory_order_acquire);
    const Fwd want{cur.ptr, bump(cur.tag, -1)};
    if (p->next.compare_exchange_weak(cur, want,
                                      std::memory_order_acq_rel)) {
      if (count_of(want) == 0) try_unlink(p);
      return;
    }
    backoff.pause();
  }
}

void DynamicBaseline::try_unlink(Node* p) noexcept {
  // Remove unregistered, unpinned successors of p. Pins are prefix-closed
  // (every operation pins the whole path from the head), so a zero count on
  // p->next means no thread is at or beyond the successor; the versioned
  // CAS rules out a claim that slipped in between our checks.
  for (;;) {
    Fwd cur = p->next.load(std::memory_order_acquire);
    if (cur.ptr == nullptr || count_of(cur) != 0) return;
    Node* q = cur.ptr;
    if (q->used.load(std::memory_order_acquire) != 0) return;
    // Reading q->next is safe even if q was concurrently freed: pool memory
    // stays mapped, and a stale read only makes the CAS below fail on the
    // version bump.
    const Fwd qnext = q->next.load(std::memory_order_acquire);
    const Fwd want{qnext.ptr, bump(cur.tag, 0) | (qnext.tag & kCountMask)};
    if (p->next.compare_exchange_strong(cur, want,
                                        std::memory_order_acq_rel)) {
      mem::destroy(q);
      nodes_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // cascade: the new successor may also be removable
    }
    return;
  }
}

Handle DynamicBaseline::register_handle(Value v) {
  // Walk from the head, pinning each forward pointer, looking for a free
  // node to claim; append a fresh node at the end if none is found. The
  // pinned prefix stays pinned for the handle's lifetime (deregister walks
  // it back down).
  Node* p = head_;
  for (;;) {
    Node* q = pin_next(p);
    if (q == nullptr) {
      Node* n = mem::create<Node>();
      n->used.store(1, std::memory_order_relaxed);
      n->val.store(v, std::memory_order_relaxed);
      Fwd cur = p->next.load(std::memory_order_acquire);
      if (cur.ptr == nullptr) {
        // Append with our pin folded into the same CAS.
        const Fwd want{n, bump(cur.tag, +1)};
        if (p->next.compare_exchange_strong(cur, want,
                                            std::memory_order_acq_rel)) {
          nodes_.fetch_add(1, std::memory_order_relaxed);
          return n;
        }
      }
      mem::destroy(n);  // lost the race; someone appended first
      continue;
    }
    uint32_t expected = 0;
    if (q->used.compare_exchange_strong(expected, 1,
                                        std::memory_order_acq_rel)) {
      q->val.store(v, std::memory_order_release);
      return q;  // prefix head..q stays pinned while registered
    }
    p = q;
  }
}

void DynamicBaseline::update(Handle h, Value v) {
  // Direct store into the registered node ([11]: the handle addresses its
  // node; storage never moves).
  static_cast<Node*>(h)->val.store(v, std::memory_order_release);
}

void DynamicBaseline::deregister(Handle h) {
  Node* n = static_cast<Node*>(h);
  n->used.store(0, std::memory_order_release);
  // Re-walk the pinned prefix (stable: our pins block unlinking) to find
  // the pointers to unpin, then drop them from the far end back, unlinking
  // zero-count unregistered nodes on the way.
  std::vector<Node*> path;
  path.push_back(head_);
  Node* cur = head_;
  while (cur != n) {
    cur = cur->next.load(std::memory_order_acquire).ptr;
    path.push_back(cur);
  }
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    unpin_next(path[i]);
  }
}

void DynamicBaseline::collect(std::vector<Value>& out) {
  out.clear();
  // Forward pass: pin every forward pointer, reading registered values.
  std::vector<Node*> path;
  path.push_back(head_);
  Node* p = head_;
  for (;;) {
    Node* q = pin_next(p);
    if (q == nullptr) break;
    if (q->used.load(std::memory_order_acquire) != 0) {
      out.push_back(q->val.load(std::memory_order_acquire));
    }
    path.push_back(q);
    p = q;
  }
  // Backward pass: drop the pins, reclaiming unregistered zero-count nodes.
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    unpin_next(path[i]);
  }
}

std::size_t DynamicBaseline::footprint_bytes() const {
  return static_cast<std::size_t>(nodes_.load(std::memory_order_relaxed) + 1) *
         sizeof(Node);
}

std::size_t DynamicBaseline::node_count() const {
  std::size_t n = 0;
  for (Node* cur = head_->next.load(std::memory_order_relaxed).ptr;
       cur != nullptr;
       cur = cur->next.load(std::memory_order_relaxed).ptr) {
    ++n;
  }
  return n;
}

}  // namespace dc::collect
