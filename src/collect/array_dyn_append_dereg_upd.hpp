// ArrayDynAppendDeregUpdateOpt — the Update-optimized variant sketched (but
// not implemented) in the paper's §4.1:
//
//   "The idea is to store the value associated with a handle together with
//    the slot reference for that handle, rather than in the array slot to
//    which it points. This way, slot references do not move, even if their
//    associated array slots are compacted. Therefore, a Update operation
//    can store its value directly and without using a transaction [...]
//    The downside of this choice is that Collect operations must now use a
//    transaction to dereference the pointer in each array slot."
//
// Handle cells hold {value, slot pointer}; array slots hold only the
// back-pointer to the cell. Update becomes a naked strong-atomicity store
// (the ~135 ns class of §5.1); Collect pays one extra transactional
// dereference per slot. Resize/compaction machinery is identical to
// Figure 2 — only what moves changes (cells never move, slots still do).
#pragma once

#include <cstdint>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class ArrayDynAppendDeregUpdateOpt final : public TelescopedBase {
 public:
  explicit ArrayDynAppendDeregUpdateOpt(int32_t min_size = 16);
  ~ArrayDynAppendDeregUpdateOpt() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "ArrayDynAppendDeregUpdOpt"; }
  bool is_dynamic() const override { return true; }
  bool uses_htm() const override { return true; }
  std::size_t footprint_bytes() const override;

  int32_t capacity_now() const noexcept;
  int32_t count_now() const noexcept;

 private:
  struct Slot;
  // The handle: value lives here (never moves); `slot` tracks the cell's
  // current array position.
  struct Cell {
    Value val;
    Slot* slot;
  };
  // The array slot: only a back-pointer to the owning cell.
  struct Slot {
    Cell* cell;
  };

  enum class Action : uint8_t { kDone, kGrow, kShrink, kHelp };

  void attempt_resize(int32_t count_l, int32_t capacity_l);
  void help_copy();
  void help_copy_one();

  Slot* array_;
  int32_t capacity_;
  int32_t count_ = 0;
  Slot* array_new_ = nullptr;
  int32_t capacity_new_ = 0;
  int32_t copied_ = 0;

  const int32_t min_size_;
};

}  // namespace dc::collect
