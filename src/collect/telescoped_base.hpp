// Shared plumbing for the HTM-based algorithms: per-thread telescoping step
// controllers (§3.4) and the DynamicCollect step-control surface.
//
// Controllers are per-thread: the step size adapts to the abort rate each
// thread observes, and keeping them thread-local avoids the controllers
// themselves becoming a contention point.
#pragma once

#include <cstdint>
#include <vector>

#include "collect/collect.hpp"
#include "collect/telescope.hpp"
#include "util/padded.hpp"
#include "util/thread_id.hpp"

namespace dc::collect {

class TelescopedBase : public DynamicCollect {
 public:
  void set_step_size(uint32_t step) override {
    apply([&](StepController& c) {
      c.mode = StepMode::kFixed;
      c.set_step(step);
    });
  }

  void set_adaptive(bool on) override {
    apply([&](StepController& c) {
      c.mode = on ? StepMode::kAdaptive : StepMode::kFixed;
    });
  }

  void set_record_only(bool on) override {
    apply([&](StepController& c) {
      c.mode = on ? StepMode::kFixedRecording : c.mode;
    });
  }

  std::vector<uint64_t> slots_by_step() const override {
    std::vector<uint64_t> total(StepController::kMaxStepLog2 + 1, 0);
    for (const auto& c : controllers_) {
      const auto& per = c.value.slots_by_step();
      for (std::size_t i = 0; i < per.size(); ++i) total[i] += per[i];
    }
    return total;
  }

  void reset_step_stats() override {
    apply([](StepController& c) { c.reset_stats(); });
  }

 protected:
  StepController& ctl() noexcept {
    return controllers_[util::thread_id()].value;
  }

  template <class F>
  void apply(F&& f) {
    // Configuration is done while the object is quiescent (benchmark
    // setup), so a plain sweep over all per-thread controllers is safe.
    for (auto& c : controllers_) f(c.value);
  }

  util::Padded<StepController> controllers_[util::kMaxThreads];
};

}  // namespace dc::collect
