#include "collect/array_stat_search_no.hpp"

#include <cstdio>
#include <cstdlib>

#include "memory/pool.hpp"

namespace dc::collect {

using htm::Txn;

ArrayStatSearchNo::ArrayStatSearchNo(int32_t capacity)
    : array_(mem::create_array<Slot>(
          static_cast<std::size_t>(capacity < 1 ? 1 : capacity))),
      capacity_(capacity < 1 ? 1 : capacity) {}

ArrayStatSearchNo::~ArrayStatSearchNo() {
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

Handle ArrayStatSearchNo::register_handle(Value v) {
  // One transaction scans for a free slot and claims it (reads are
  // unbounded; the claim is 3-4 stores).
  Slot* claimed = htm::atomic([&](Txn& txn) -> Slot* {
    for (int32_t i = 0; i < capacity_; ++i) {
      if (txn.load(&array_[i].used) == 0) {
        txn.store(&array_[i].used, uint32_t{1});
        txn.store(&array_[i].val, v);
        if (i + 1 > txn.load(&high_)) txn.store(&high_, i + 1);
        return &array_[i];
      }
    }
    return nullptr;
  });
  if (claimed == nullptr) {
    std::fprintf(stderr,
                 "ArrayStatSearchNo: capacity %d exceeded (the static "
                 "algorithm assumes a known bound)\n",
                 capacity_);
    std::abort();
  }
  return claimed;
}

void ArrayStatSearchNo::deregister(Handle h) {
  // The slot never moves and never holds anyone else's value; releasing the
  // claim is a single strong-atomicity store.
  auto* slot = static_cast<Slot*>(h);
  htm::nontxn_store(&slot->used, uint32_t{0});
}

void ArrayStatSearchNo::update(Handle h, Value v) {
  // Storage is stable for the handle's lifetime: a naked store suffices
  // (§3.1.1's "significant advantage when Update operations are frequent").
  auto* slot = static_cast<Slot*>(h);
  htm::nontxn_store(&slot->val, v);
}

void ArrayStatSearchNo::collect(std::vector<Value>& out) {
  // No transactions: slots never move, so a plain scan up to the historical
  // high-water mark satisfies the spec (concurrent updates may flicker,
  // which the spec allows).
  out.clear();
  const int32_t high = htm::nontxn_load(&high_);
  for (int32_t i = high - 1; i >= 0; --i) {
    if (htm::nontxn_load(&array_[i].used) != 0) {
      out.push_back(htm::nontxn_load(&array_[i].val));
    }
  }
}

std::size_t ArrayStatSearchNo::footprint_bytes() const {
  return static_cast<std::size_t>(capacity_) * sizeof(Slot);
}

int32_t ArrayStatSearchNo::high_water() const noexcept {
  return htm::nontxn_load(&high_);
}

}  // namespace dc::collect
