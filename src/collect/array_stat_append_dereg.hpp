// ArrayStatAppendDereg (§3.2): the static (bounded) sibling of
// ArrayDynAppendDereg — same append-register and compact-on-deregister
// machinery, but a fixed-size array and no resizing/copying. It does not
// solve Dynamic Collect (the bound is assumed, memory is never released);
// the paper uses it to isolate register/compact behaviour from resizing.
#pragma once

#include <cstdint>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class ArrayStatAppendDereg final : public TelescopedBase {
 public:
  explicit ArrayStatAppendDereg(int32_t capacity = 1024);
  ~ArrayStatAppendDereg() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "ArrayStatAppendDereg"; }
  bool is_dynamic() const override { return false; }
  bool uses_htm() const override { return true; }
  std::size_t footprint_bytes() const override;

  int32_t count_now() const noexcept;

 private:
  struct Slot {
    Value val;
    Slot** slot_ref;
  };

  Slot* const array_;
  const int32_t capacity_;
  int32_t count_ = 0;
};

}  // namespace dc::collect
