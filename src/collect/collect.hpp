// The Dynamic Collect problem (paper §2) — interface and specification.
//
// A Collect object binds values to dynamically allocated handles:
//
//   h = Register(v)   binds v to a previously unused handle h
//   Update(h, v)      re-binds h to v
//   DeRegister(h)     removes the binding (h may be recycled)
//   Collect()         returns bound values
//
// Well-formedness (caller obligations): a thread may Update/DeRegister only
// a handle registered to it and not since deregistered; a thread runs one
// operation at a time.
//
// Correctness (§2.3), informally:
//   * every value returned by Collect was bound by the last preceding
//     Register/Update for its handle, or by an operation concurrent with
//     the Collect ("flicker" is allowed for concurrent bindings);
//   * every handle whose binding precedes the Collect and is not
//     deregistered (nor being deregistered concurrently) MUST contribute a
//     value;
//   * duplicates per handle are allowed (clients filter).
//
// This specification is what Hazard-Pointer-/ROP-style memory reclamation
// reduces to (§1.2): announcing a pointer is Register/Update, and the
// scan-before-free is a Collect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dc::collect {

using Value = uint64_t;

// Opaque handle. The concrete type varies per algorithm (array slot
// reference, list node, ...); clients must treat it as a token.
using Handle = void*;

class DynamicCollect {
 public:
  virtual ~DynamicCollect() = default;

  // Paper: Register(v). Never returns a handle registered to another thread.
  virtual Handle register_handle(Value v) = 0;

  // Paper: Update(h, v).
  virtual void update(Handle h, Value v) = 0;

  // Paper: DeRegister(h).
  virtual void deregister(Handle h) = 0;

  // Paper: Collect(). Appends the returned values to `out` (which is
  // cleared first). Values only — the paper notes the handle-free variant
  // is an inessential specification change, and its own pseudocode
  // (Figure 2, line 88) collects values.
  virtual void collect(std::vector<Value>& out) = 0;

  virtual const char* name() const = 0;

  // True for algorithms that actually solve *Dynamic* Collect (unbounded
  // handles, space proportional to registered handles). The Stat*/Static
  // algorithms are bounded stepping stones (paper §3.2.1, §3.3).
  virtual bool is_dynamic() const = 0;

  // False for the two non-HTM baseline algorithms (§3.3).
  virtual bool uses_htm() const = 0;

  // --- Telescoping control (no-ops for algorithms without transactions) ---

  // Fixed step size: how many elements each Collect transaction copies.
  virtual void set_step_size(uint32_t /*step*/) {}
  // Enable the adaptive step-size mechanism of §3.4.
  virtual void set_adaptive(bool /*on*/) {}
  // Record adaptation data without acting on it ("Best (adapt cost)",
  // Figure 5).
  virtual void set_record_only(bool /*on*/) {}
  // Slots collected per step size since the last reset (Figure 6); indexed
  // by log2(step), i.e. [0]=step 1 ... [5]=step 32. Aggregated over threads.
  virtual std::vector<uint64_t> slots_by_step() const { return {}; }
  virtual void reset_step_stats() {}

  // Approximate bytes of shared memory currently used by the object
  // (arrays + nodes + handle cells), for space comparisons.
  virtual std::size_t footprint_bytes() const = 0;
};

}  // namespace dc::collect
