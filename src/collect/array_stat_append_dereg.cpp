#include "collect/array_stat_append_dereg.hpp"

#include <cstdio>
#include <cstdlib>

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

using htm::Txn;

ArrayStatAppendDereg::ArrayStatAppendDereg(int32_t capacity)
    : array_(mem::create_array<Slot>(
          static_cast<std::size_t>(capacity < 1 ? 1 : capacity))),
      capacity_(capacity < 1 ? 1 : capacity) {}

ArrayStatAppendDereg::~ArrayStatAppendDereg() {
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

Handle ArrayStatAppendDereg::register_handle(Value v) {
  auto* slot_ref = static_cast<Slot**>(mem::pool_allocate(sizeof(Slot*)));
  const bool ok = htm::atomic([&](Txn& txn) -> bool {
    const int32_t c = txn.load(&count_);
    if (c >= capacity_) return false;
    Slot* slot = &array_[c];
    txn.store(&slot->val, v);
    txn.store(&slot->slot_ref, slot_ref);
    txn.store(slot_ref, slot);
    txn.store(&count_, c + 1);
    return true;
  });
  if (!ok) {
    // Static algorithms assume a known bound on registered handles (§3.2.1).
    std::fprintf(stderr,
                 "ArrayStatAppendDereg: capacity %d exceeded (the static "
                 "algorithm assumes a known bound)\n",
                 capacity_);
    std::abort();
  }
  return slot_ref;
}

void ArrayStatAppendDereg::deregister(Handle h) {
  auto* slot_ref = static_cast<Slot**>(h);
  htm::atomic([&](Txn& txn) {
    const int32_t last = txn.load(&count_) - 1;
    txn.store(&count_, last);
    Slot* mine = txn.load(slot_ref);
    const Value last_val = txn.load(&array_[last].val);
    Slot** const last_ref = txn.load(&array_[last].slot_ref);
    txn.store(&mine->val, last_val);
    txn.store(&mine->slot_ref, last_ref);
    txn.store(last_ref, mine);
  });
  mem::pool_deallocate(slot_ref, sizeof(Slot*));
}

void ArrayStatAppendDereg::update(Handle h, Value v) {
  // Indirection through the handle cell: the slot may be moved by a
  // concurrent deregister's compaction, so the lookup must be transactional.
  auto* slot_ref = static_cast<Slot**>(h);
  htm::atomic([&](Txn& txn) {
    Slot* slot = txn.load(slot_ref);
    txn.store(&slot->val, v);
  });
}

void ArrayStatAppendDereg::collect(std::vector<Value>& out) {
  // Reverse-order scan (a concurrently deregistered slot moves the last
  // element *down*, so scanning downwards cannot miss a continuously
  // registered handle; duplicates are allowed by the spec).
  out.clear();
  StepController& ctl = this->ctl();
  int32_t i = htm::nontxn_load(&count_) - 1;
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  uint32_t failures = 0;
  while (i >= 0) {
    const uint32_t step = ctl.step();
    int32_t i_next = i;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      i_next = i;
      scratch.clear();
      for (uint32_t k = 0;
           k < step && i_next >= 0 && txn.store_budget_left() > 0;
           ++k) {
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;
        if (i_next < 0) break;
        scratch.push_back(txn.load(&array_[i_next].val));
        txn.charge_store();
        --i_next;
      }
    });
    if (r.committed) {
      out.insert(out.end(), scratch.begin(), scratch.end());
      i = i_next;
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    if (++failures >= 128 && (ctl.step() == 1 || failures >= 512)) {
      // A fixed step > 1 must not disable the liveness escape: under a
      // sustained spurious-abort storm the multi-element telescoped read
      // never commits, so after a larger budget burns we drop to the
      // one-element path (TLE-backstopped) regardless of step size.
      Value val = 0;
      bool got = false;
      htm::atomic([&](Txn& txn) {
        got = false;
        i_next = i;
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;
        if (i_next >= 0) {
          val = txn.load(&array_[i_next].val);
          got = true;
          --i_next;
        }
      });
      if (got) out.push_back(val);
      i = i_next;
      ctl.on_commit(got ? 1 : 0);
      failures = 0;
    } else {
      backoff.pause();
    }
  }
}

std::size_t ArrayStatAppendDereg::footprint_bytes() const {
  return static_cast<std::size_t>(capacity_) * sizeof(Slot) +
         static_cast<std::size_t>(htm::nontxn_load(&count_)) * sizeof(Slot*);
}

int32_t ArrayStatAppendDereg::count_now() const noexcept {
  return htm::nontxn_load(&count_);
}

}  // namespace dc::collect
