// Multi-word values — the §5.1 prediction, implemented.
//
//   "the ability of some of the algorithms to perform Update operations
//    using naked store instructions depends on the values being stored
//    fitting within a single machine word [...]. For larger values,
//    synchronization (HTM-based or not) would be needed to prevent Collect
//    from returning partial values, which would largely close the gap in
//    Update performance."
//
// WideValue is a 4-word value with a derived checksum so tests and
// benchmarks can detect torn (partially updated) reads. Two wide-value
// collect objects are provided:
//
//  * WideArrayStatSearchNo — the algorithm whose narrow Update is a naked
//    store; with wide values both Update and Collect must use transactions,
//    which is exactly the "gap closes" claim (bench_wide_values).
//  * WideArrayDynAppendDereg — the Figure 2 algorithm, whose Update was
//    already transactional; widening adds three stores.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "htm/htm.hpp"

namespace dc::collect {

struct WideValue {
  // Three payload words and a checksum; consistent() detects torn reads.
  std::array<uint64_t, 3> payload{};
  uint64_t checksum = 0;

  static WideValue make(uint64_t a, uint64_t b, uint64_t c) noexcept {
    WideValue v;
    v.payload = {a, b, c};
    v.checksum = a ^ b ^ c ^ kSeal;
    return v;
  }

  bool consistent() const noexcept {
    return checksum == (payload[0] ^ payload[1] ^ payload[2] ^ kSeal);
  }

  friend bool operator==(const WideValue&, const WideValue&) = default;

 private:
  static constexpr uint64_t kSeal = 0x5EA1'5EA1'5EA1'5EA1ULL;
};

using WideHandle = void*;

// Shared shape of the two wide-value objects (kept separate from
// DynamicCollect: the paper's interface is single-word by construction).
class WideCollect {
 public:
  virtual ~WideCollect() = default;
  virtual WideHandle register_handle(const WideValue& v) = 0;
  virtual void update(WideHandle h, const WideValue& v) = 0;
  virtual void deregister(WideHandle h) = 0;
  virtual void collect(std::vector<WideValue>& out) = 0;
  virtual const char* name() const = 0;
};

// --- Static, search-register, no compaction — wide variant --------------
class WideArrayStatSearchNo final : public WideCollect {
 public:
  explicit WideArrayStatSearchNo(int32_t capacity = 256);
  ~WideArrayStatSearchNo() override;

  WideHandle register_handle(const WideValue& v) override;
  void update(WideHandle h, const WideValue& v) override;
  void deregister(WideHandle h) override;
  void collect(std::vector<WideValue>& out) override;
  const char* name() const override { return "WideArrayStatSearchNo"; }

 private:
  struct Slot {
    WideValue val;
    uint32_t used;
  };
  Slot* const array_;
  const int32_t capacity_;
  int32_t high_ = 0;
};

// --- Figure 2 (append/dereg, dynamic) — wide variant ---------------------
class WideArrayDynAppendDereg final : public WideCollect {
 public:
  explicit WideArrayDynAppendDereg(int32_t min_size = 16);
  ~WideArrayDynAppendDereg() override;

  WideHandle register_handle(const WideValue& v) override;
  void update(WideHandle h, const WideValue& v) override;
  void deregister(WideHandle h) override;
  void collect(std::vector<WideValue>& out) override;
  const char* name() const override { return "WideArrayDynAppendDereg"; }

  int32_t capacity_now() const noexcept;
  int32_t count_now() const noexcept;

 private:
  struct Slot {
    WideValue val;
    Slot** slot_ref;
  };

  enum class Action : uint8_t { kDone, kGrow, kShrink, kHelp };

  static WideValue load_wide(htm::Txn& txn, const WideValue* v);
  static void store_wide(htm::Txn& txn, WideValue* dst, const WideValue& v);

  void attempt_resize(int32_t count_l, int32_t capacity_l);
  void help_copy();
  void help_copy_one();

  Slot* array_;
  int32_t capacity_;
  int32_t count_ = 0;
  Slot* array_new_ = nullptr;
  int32_t capacity_new_ = 0;
  int32_t copied_ = 0;
  const int32_t min_size_;
};

}  // namespace dc::collect
