// Static baseline (§3.3): no HTM, no dynamism.
//
// A fixed-size array with threads statically mapped to slot ranges.
// Register/DeRegister reduce to setting/clearing a flag in the thread's own
// range (no synchronization — the range is thread-private for writes);
// Update stores directly; Collect scans the *entire* array and returns the
// bound values. The paper uses it to put the dynamic algorithms'
// performance in context: its Collect cost is proportional to the full
// capacity, not to the number of registered handles.
#pragma once

#include <cstdint>

#include "collect/collect.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class StaticBaseline final : public DynamicCollect {
 public:
  // `capacity` total slots statically partitioned among `max_threads`
  // (both bounds are assumed known — this does not solve Dynamic Collect).
  explicit StaticBaseline(int32_t capacity = 64, uint32_t max_threads = 16);
  ~StaticBaseline() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "StaticBaseline"; }
  bool is_dynamic() const override { return false; }
  bool uses_htm() const override { return false; }
  std::size_t footprint_bytes() const override;

 private:
  struct Slot {
    Value val;
    uint32_t used;
  };

  Slot* const array_;
  const int32_t capacity_;
  const uint32_t max_threads_;
  void* regions_ = nullptr;  // RegionMap (opaque here to keep the header lean)
};

}  // namespace dc::collect
