// FastCollect (§3.1.2): list-based Collect optimized for infrequent
// DeRegister operations.
//
// Same Register/Update as HOHRC, but no reference counts: DeRegister
// atomically unlinks the node and increments a shared deregister counter,
// then frees the node immediately. Collect validates the counter in every
// transaction; if it changed since the Collect began, the whole Collect
// restarts. Sandboxing covers the window where a Collect still holds a
// pointer to a just-freed node: touching it aborts the transaction, and the
// re-executed transaction sees the counter change and restarts.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class FastCollectList final : public TelescopedBase {
 public:
  // `defer_frees` enables the variant proposed in §3.1.2 to address
  // FastCollect's progress problem ("a mode in which DeRegister operations
  // add nodes to a to-be-freed list that is freed by a Collect operation
  // after it completes"): DeRegister unlinks but parks the node in a limbo
  // list; the last active Collect to finish frees the parked nodes. With
  // nothing freed mid-Collect, the deregister counter — and the restarts it
  // forces — disappear, at the cost of Collects writing a shared
  // active-collect count and of limbo growth while Collects overlap.
  explicit FastCollectList(bool defer_frees = false);
  ~FastCollectList() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override {
    return defer_frees_ ? "ListFastCollectDefer" : "ListFastCollect";
  }
  bool is_dynamic() const override { return true; }
  bool uses_htm() const override { return true; }
  std::size_t footprint_bytes() const override;

  // Collect restarts caused by concurrent deregisters (test/bench hook).
  uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }

  // Collects that fell back to the serialized (§6 lock) path after being
  // starved by churn.
  uint64_t serialized_collects() const noexcept {
    return serialized_collects_.load(std::memory_order_relaxed);
  }

  std::size_t node_count() const;

 private:
  // No field initializers: nodes are recycled pool blocks that doomed
  // transactions may still be reading, so every initializing write (including
  // construction) must go through mem::init_store — see make_node().
  struct Node {
    Value val;
    Node* prev;
    Node* next;
  };

  static Node* make_node(Value v, Node* prev, Node* next);

  void collect_deferred(std::vector<Value>& out);
  void collect_serialized(std::vector<Value>& out);

  Node* const head_;  // sentinel
  uint64_t dereg_count_ = 0;  // `dc` in the paper; read/written in txns
  const bool defer_frees_;
  int32_t active_collects_ = 0;  // deferred mode; read/written in txns
  std::mutex limbo_mu_;
  std::vector<Node*> limbo_;  // unlinked, awaiting a quiescent collect end
  std::atomic<int64_t> nodes_{0};
  std::atomic<uint64_t> restarts_{0};
  std::atomic<uint64_t> serialized_collects_{0};
};

}  // namespace dc::collect
