// Dynamic baseline (§3.3): Algorithm 2 of Herlihy, Luchangco, Moir — "Space
// and time adaptive non-blocking algorithms" [11] — the non-HTM dynamic
// collect the paper compares against.
//
// A linked list of value nodes whose forward pointers are augmented with
// reference counts, updated by (double-width) CAS. A thread pins the whole
// prefix of the list it has traversed by incrementing each forward
// pointer's count on the way; Register claims a free node on its path (or
// appends one at the end) and keeps the prefix pinned for the handle's
// lifetime; DeRegister and the tail of Collect walk the pins back down,
// unlinking and deallocating any node whose incoming count reaches zero
// while it is unregistered. The per-node CAS traffic in *every* operation
// — including read-only Collects — is what makes this baseline's cache
// behaviour so poor in Figure 3.
//
// Deviation from [11]: instead of maintained prev pointers, each operation
// records its pinned path in a thread-local vector and walks it backwards;
// the shared-memory access pattern (one CAS per node in each direction) is
// identical, which is what the performance comparison depends on.
#pragma once

#include <atomic>
#include <cstdint>

#include "collect/collect.hpp"
#include "util/tagged_ptr.hpp"

namespace dc::collect {

class DynamicBaseline final : public DynamicCollect {
 public:
  DynamicBaseline();
  ~DynamicBaseline() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "DynamicBaseline"; }
  bool is_dynamic() const override { return true; }
  bool uses_htm() const override { return false; }
  std::size_t footprint_bytes() const override;

  std::size_t node_count() const;

 private:
  struct Node;
  // Forward pointer: target + (version<<16 | pin-count) packed in the tag.
  using Fwd = util::TaggedPtr<Node>;

  struct Node {
    std::atomic<Value> val{0};
    std::atomic<uint32_t> used{0};
    std::atomic<Fwd> next{};
  };

  static constexpr uint64_t kCountMask = 0xFFFF;
  static uint32_t count_of(const Fwd& f) noexcept {
    return static_cast<uint32_t>(f.tag & kCountMask);
  }
  static uint64_t bump(uint64_t tag, int32_t count_delta) noexcept {
    // Increment the version (upper bits) on every modification: ABA defence
    // for the claim-while-count-momentarily-zero race.
    return ((tag | kCountMask) + 1) |
           ((tag & kCountMask) + static_cast<uint64_t>(count_delta));
  }

  // Pins p->next's target: returns it, or nullptr if p is the last node.
  Node* pin_next(Node* p) noexcept;
  // Drops one pin from p->next; if the count reaches zero, opportunistically
  // unlinks and frees unregistered successors.
  void unpin_next(Node* p) noexcept;
  void try_unlink(Node* p) noexcept;

  Node* const head_;  // sentinel; never freed
  std::atomic<int64_t> nodes_{0};
};

}  // namespace dc::collect
