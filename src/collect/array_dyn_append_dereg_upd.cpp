#include "collect/array_dyn_append_dereg_upd.hpp"

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

using htm::Txn;

ArrayDynAppendDeregUpdateOpt::ArrayDynAppendDeregUpdateOpt(int32_t min_size)
    : array_(mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(
          min_size < 1 ? 1 : min_size))),
      capacity_(min_size < 1 ? 1 : min_size),
      min_size_(min_size < 1 ? 1 : min_size) {}

ArrayDynAppendDeregUpdateOpt::~ArrayDynAppendDeregUpdateOpt() {
  help_copy();
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

Handle ArrayDynAppendDeregUpdateOpt::register_handle(Value v) {
  auto* cell = static_cast<Cell*>(mem::pool_allocate(sizeof(Cell)));
  // Private until published, but the block may be recycled memory that a
  // doomed transaction still reads — atomic init (see mem::init_store).
  mem::init_store(&cell->val, v);
  mem::init_store(&cell->slot, static_cast<Slot*>(nullptr));
  for (;;) {
    int32_t count_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      auto append = [&](int32_t c) {
        Slot* arr = txn.load(&array_);
        txn.store(&arr[c].cell, cell);
        txn.store(&cell->slot, &arr[c]);
        txn.store(&count_, c + 1);
      };
      if (txn.load(&array_new_) == nullptr) {
        const int32_t c = txn.load(&count_);
        if (c < txn.load(&capacity_)) {
          append(c);
          return Action::kDone;
        }
        count_l = c;
        return Action::kGrow;
      }
      const int32_t c = txn.load(&count_);
      if (c < txn.load(&capacity_) && c < txn.load(&capacity_new_)) {
        append(c);
        return Action::kDone;
      }
      return Action::kHelp;
    });
    if (action == Action::kDone) return cell;
    if (action == Action::kGrow) {
      attempt_resize(count_l, count_l);
    } else {
      help_copy();
    }
  }
}

void ArrayDynAppendDeregUpdateOpt::update(Handle h, Value v) {
  // The whole point of the variant: the cell never moves, so Update is one
  // naked strong-atomicity store, no transaction, no indirection.
  htm::nontxn_store(&static_cast<Cell*>(h)->val, v);
}

void ArrayDynAppendDeregUpdateOpt::deregister(Handle h) {
  auto* cell = static_cast<Cell*>(h);
  for (;;) {
    int32_t count_l = 0;
    int32_t capacity_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      count_l = txn.load(&count_);
      capacity_l = txn.load(&capacity_);
      if (count_l * 4 == capacity_l && count_l * 2 >= min_size_) {
        return Action::kShrink;
      }
      if (txn.load(&array_new_) == nullptr) {
        const int32_t last = count_l - 1;
        txn.store(&count_, last);
        Slot* arr = txn.load(&array_);
        // Move the last slot's cell pointer into the hole and redirect that
        // cell's slot pointer; values do not move (they live in cells).
        Slot* mine = txn.load(&cell->slot);
        Cell* const moved = txn.load(&arr[last].cell);
        txn.store(&mine->cell, moved);
        txn.store(&moved->slot, mine);
        return Action::kDone;
      }
      return Action::kHelp;
    });
    if (action == Action::kDone) break;
    if (action == Action::kShrink) {
      attempt_resize(count_l, capacity_l);
    } else {
      help_copy();
    }
  }
  mem::pool_deallocate(cell, sizeof(Cell));
}

void ArrayDynAppendDeregUpdateOpt::collect(std::vector<Value>& out) {
  out.clear();
  help_copy();
  StepController& ctl = this->ctl();
  int32_t i = htm::nontxn_load(&count_) - 1;
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  uint32_t failures = 0;
  while (i >= 0) {
    const uint32_t step = ctl.step();
    int32_t i_next = i;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      i_next = i;
      scratch.clear();
      for (uint32_t k = 0;
           k < step && i_next >= 0 && txn.store_budget_left() > 0; ++k) {
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;
        if (i_next < 0) break;
        Slot* arr = txn.load(&array_);
        // The §4.1 downside: one extra transactional dereference per slot.
        Cell* cell = txn.load(&arr[i_next].cell);
        scratch.push_back(txn.load(&cell->val));
        txn.charge_store();
        --i_next;
      }
    });
    if (r.committed) {
      out.insert(out.end(), scratch.begin(), scratch.end());
      i = i_next;
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    if (++failures >= 128 && (ctl.step() == 1 || failures >= 512)) {
      // A fixed step > 1 must not disable the liveness escape: under a
      // sustained spurious-abort storm the multi-slot read never commits,
      // so after a larger budget burns we drop to the one-slot path
      // (TLE-backstopped) regardless of step size.
      Value val = 0;
      bool got = false;
      htm::atomic([&](Txn& txn) {
        got = false;
        i_next = i;
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;
        if (i_next >= 0) {
          Slot* arr = txn.load(&array_);
          Cell* cell = txn.load(&arr[i_next].cell);
          val = txn.load(&cell->val);
          got = true;
          --i_next;
        }
      });
      if (got) out.push_back(val);
      i = i_next;
      ctl.on_commit(got ? 1 : 0);
      failures = 0;
    } else {
      backoff.pause();
    }
  }
}

void ArrayDynAppendDeregUpdateOpt::attempt_resize(int32_t count_l,
                                                  int32_t capacity_l) {
  const int32_t new_cap = count_l * 2;
  Slot* tmp =
      mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(new_cap));
  const bool free_tmp = htm::atomic([&](Txn& txn) -> bool {
    if (txn.load(&array_new_) == nullptr && txn.load(&count_) == count_l &&
        txn.load(&capacity_) == capacity_l) {
      txn.store(&array_new_, tmp);
      txn.store(&capacity_new_, new_cap);
      txn.store(&copied_, 0);
      return false;
    }
    return true;
  });
  if (free_tmp) mem::destroy_array(tmp, static_cast<std::size_t>(new_cap));
  help_copy();
}

void ArrayDynAppendDeregUpdateOpt::help_copy() {
  while (htm::nontxn_load(&array_new_) != nullptr) help_copy_one();
}

void ArrayDynAppendDeregUpdateOpt::help_copy_one() {
  Slot* to_free = nullptr;
  int32_t to_free_cap = 0;
  htm::atomic([&](Txn& txn) {
    to_free = nullptr;
    if (txn.load(&array_new_) == nullptr) return;
    const int32_t copied = txn.load(&copied_);
    if (copied < txn.load(&count_)) {
      Slot* arr = txn.load(&array_);
      Slot* arr_new = txn.load(&array_new_);
      Cell* const cell = txn.load(&arr[copied].cell);
      txn.store(&arr_new[copied].cell, cell);
      txn.store(&cell->slot, &arr_new[copied]);
      txn.store(&copied_, copied + 1);
    } else {
      to_free = txn.load(&array_);
      to_free_cap = txn.load(&capacity_);
      txn.store(&array_, txn.load(&array_new_));
      txn.store(&capacity_, txn.load(&capacity_new_));
      txn.store(&array_new_, static_cast<Slot*>(nullptr));
    }
  });
  if (to_free != nullptr) {
    mem::destroy_array(to_free, static_cast<std::size_t>(to_free_cap));
  }
}

std::size_t ArrayDynAppendDeregUpdateOpt::footprint_bytes() const {
  const auto cap = static_cast<std::size_t>(htm::nontxn_load(&capacity_));
  const auto cnt = static_cast<std::size_t>(htm::nontxn_load(&count_));
  std::size_t bytes = cap * sizeof(Slot) + cnt * sizeof(Cell);
  if (htm::nontxn_load(&array_new_) != nullptr) {
    bytes += static_cast<std::size_t>(htm::nontxn_load(&capacity_new_)) *
             sizeof(Slot);
  }
  return bytes;
}

int32_t ArrayDynAppendDeregUpdateOpt::capacity_now() const noexcept {
  return htm::nontxn_load(&capacity_);
}
int32_t ArrayDynAppendDeregUpdateOpt::count_now() const noexcept {
  return htm::nontxn_load(&count_);
}

}  // namespace dc::collect
