#include "collect/fast_collect_list.hpp"

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

using htm::Txn;

// Nodes are freed while concurrent (doomed) Collects may still read them, so
// a recycled block handed back by the pool can be under concurrent atomic
// loads the moment we get it. Initialize through mem::init_store rather than
// constructor writes to keep that overlap a defined-behaviour race (the
// readers are aborted by validation either way).
FastCollectList::Node* FastCollectList::make_node(Value v, Node* prev,
                                                  Node* next) {
  auto* n = static_cast<Node*>(mem::pool_allocate(sizeof(Node)));
  mem::init_store(&n->val, v);
  mem::init_store(&n->prev, prev);
  mem::init_store(&n->next, next);
  return n;
}

FastCollectList::FastCollectList(bool defer_frees)
    : head_(make_node(0, nullptr, nullptr)), defer_frees_(defer_frees) {}

FastCollectList::~FastCollectList() {
  Node* cur = head_->next;
  while (cur != nullptr) {
    Node* next = cur->next;
    mem::destroy(cur);
    cur = next;
  }
  mem::destroy(head_);
  for (Node* n : limbo_) {
    mem::destroy(n);
    nodes_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Handle FastCollectList::register_handle(Value v) {
  Node* n = make_node(v, head_, nullptr);
  nodes_.fetch_add(1, std::memory_order_relaxed);
  htm::atomic([&](Txn& txn) {
    Node* first = txn.load(&head_->next);
    mem::init_store(&n->next, first);  // private until published
    if (first != nullptr) txn.store(&first->prev, n);
    txn.store(&head_->next, n);
  });
  return n;
}

void FastCollectList::update(Handle h, Value v) {
  htm::nontxn_store(&static_cast<Node*>(h)->val, v);
}

void FastCollectList::deregister(Handle h) {
  Node* n = static_cast<Node*>(h);
  if (defer_frees_) {
    // §3.1.2 variant: unlink only (the node's own pointers stay intact, so
    // an in-flight Collect can traverse through it); park in limbo for the
    // last active Collect to free. No counter bump -> no Collect restarts.
    htm::atomic([&](Txn& txn) {
      Node* prev = txn.load(&n->prev);
      Node* next = txn.load(&n->next);
      txn.store(&prev->next, next);
      if (next != nullptr) txn.store(&next->prev, prev);
    });
    std::lock_guard lock(limbo_mu_);
    limbo_.push_back(n);
    return;
  }
  htm::atomic([&](Txn& txn) {
    Node* prev = txn.load(&n->prev);
    Node* next = txn.load(&n->next);
    txn.store(&prev->next, next);
    if (next != nullptr) txn.store(&next->prev, prev);
    txn.store(&dereg_count_, txn.load(&dereg_count_) + 1);
  });
  // Freed immediately — the deregister counter (plus sandboxing) is what
  // keeps concurrent Collects correct.
  mem::destroy(n);
  nodes_.fetch_sub(1, std::memory_order_relaxed);
}

void FastCollectList::collect(std::vector<Value>& out) {
  if (defer_frees_) {
    collect_deferred(out);
    return;
  }
  StepController& ctl = this->ctl();
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  uint32_t total_restarts = 0;
  static constexpr uint32_t kSerializeAfterRestarts = 64;
restart:
  out.clear();
  uint64_t dc0 = 0;
  // First transaction: capture the deregister count and the first chunk.
  // Subsequent transactions validate the count before touching nodes, so a
  // re-executed transaction after a sandbox abort (freed node) restarts
  // rather than touching the stale pointer again.
  Node* resume = head_;
  bool have_dc0 = false;
  uint32_t failures = 0;
  for (;;) {
    const uint32_t step = ctl.step();
    Node* next_resume = nullptr;
    bool done = false;
    bool stale = false;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      scratch.clear();
      next_resume = nullptr;
      done = false;
      stale = false;
      const uint64_t dc = txn.load(&dereg_count_);
      if (!have_dc0) {
        dc0 = dc;
      } else if (dc != dc0) {
        stale = true;  // a deregister slipped in: restart the whole Collect
        return;
      }
      Node* cur = txn.load(&resume->next);
      for (uint32_t k = 0;
           k < step && cur != nullptr && txn.store_budget_left() > 0;
           ++k) {
        scratch.push_back(txn.load(&cur->val));
        txn.charge_store();
        next_resume = cur;
        cur = txn.load(&cur->next);
      }
      if (cur == nullptr) done = true;
    });
    if (r.committed) {
      if (stale) {
        restarts_.fetch_add(1, std::memory_order_relaxed);
        ctl.on_commit(0);
        if (++total_restarts >= kSerializeAfterRestarts) {
          collect_serialized(out);
          return;
        }
        goto restart;
      }
      have_dc0 = true;
      out.insert(out.end(), scratch.begin(), scratch.end());
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      if (done) return;
      resume = next_resume;
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    if (++failures >= 256) {
      // The resume pointer may be permanently stale (its node freed while
      // the counter churns); restart from the head for liveness.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      failures = 0;
      if (++total_restarts >= kSerializeAfterRestarts) {
        collect_serialized(out);
        return;
      }
      goto restart;
    }
    backoff.pause();
  }
}

void FastCollectList::collect_serialized(std::vector<Value>& out) {
  // The §6 escape hatch: under sustained deregister churn the speculative
  // Collect can be starved indefinitely (the progress problem §3.1.2
  // acknowledges). Serialize: with the global lock held, deregister
  // transactions cannot commit, so a plain traversal is exact and safe.
  serialized_collects_.fetch_add(1, std::memory_order_relaxed);
  htm::SerialSection section;
  out.clear();
  for (Node* cur = htm::nontxn_load(&head_->next); cur != nullptr;
       cur = htm::nontxn_load(&cur->next)) {
    out.push_back(htm::nontxn_load(&cur->val));
  }
}

void FastCollectList::collect_deferred(std::vector<Value>& out) {
  out.clear();
  StepController& ctl = this->ctl();
  // Announce this Collect: while any Collect is active nothing is freed, so
  // traversal never touches freed memory and needs no validation counter.
  htm::atomic([&](Txn& txn) {
    txn.store(&active_collects_, txn.load(&active_collects_) + 1);
  });
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  // Graceful degradation: a Collect that keeps restarting (sustained
  // conflicts, or a spurious-abort storm killing every try_once attempt)
  // must eventually serialize rather than spin — try_once has no TLE
  // backstop of its own. Traversal is safe under the serial section here
  // for the same reason it needs no validation counter: this Collect is
  // announced, so nothing is freed until it retires below.
  static constexpr uint32_t kSerializeAfterRestarts = 64;
  uint32_t total_restarts = 0;
  Node* resume = head_;
  uint32_t failures = 0;
  for (bool done = false; !done;) {
    const uint32_t step = ctl.step();
    Node* next_resume = nullptr;
    // reached_end is only trusted from a *committed* attempt: an attempt
    // can abort at commit (validation failure, or an injected fault firing
    // there) after the body already saw the end of the list, and honoring
    // its flag would truncate the Collect.
    bool reached_end = false;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      scratch.clear();
      next_resume = nullptr;
      reached_end = false;
      Node* cur = txn.load(&resume->next);
      for (uint32_t k = 0;
           k < step && cur != nullptr && txn.store_budget_left() > 0; ++k) {
        scratch.push_back(txn.load(&cur->val));
        txn.charge_store();
        next_resume = cur;
        cur = txn.load(&cur->next);
      }
      if (cur == nullptr) reached_end = true;
    });
    if (r.committed) {
      out.insert(out.end(), scratch.begin(), scratch.end());
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      if (next_resume != nullptr) resume = next_resume;
      done = reached_end;
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    if (++failures >= 256) {
      // Unlike the eager mode, resume cannot dangle (nothing is freed while
      // we are active); heavy conflicts alone get us here. Start over.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      resume = head_;
      out.clear();
      failures = 0;
      if (++total_restarts >= kSerializeAfterRestarts) {
        collect_serialized(out);
        done = true;
        continue;
      }
    }
    backoff.pause();
  }
  // Retire: the last active Collect frees the limbo nodes. Anything parked
  // there was unlinked before this point, so no later Collect can reach it.
  bool last = false;
  htm::atomic([&](Txn& txn) {
    const int32_t active = txn.load(&active_collects_);
    last = active == 1;
    txn.store(&active_collects_, active - 1);
  });
  if (last) {
    std::vector<Node*> drain;
    {
      std::lock_guard lock(limbo_mu_);
      drain.swap(limbo_);
    }
    for (Node* n : drain) {
      mem::destroy(n);
      nodes_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::size_t FastCollectList::footprint_bytes() const {
  return static_cast<std::size_t>(nodes_.load(std::memory_order_relaxed) + 1) *
         sizeof(Node);
}

std::size_t FastCollectList::node_count() const {
  std::size_t n = 0;
  for (Node* cur = head_->next; cur != nullptr; cur = cur->next) ++n;
  return n;
}

}  // namespace dc::collect
