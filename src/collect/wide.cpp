#include "collect/wide.hpp"

#include <cstdio>
#include <cstdlib>

#include "memory/pool.hpp"

namespace dc::collect {

using htm::Txn;

namespace {

WideValue txn_load_wide(Txn& txn, const WideValue* v) {
  WideValue out;
  out.payload[0] = txn.load(&v->payload[0]);
  out.payload[1] = txn.load(&v->payload[1]);
  out.payload[2] = txn.load(&v->payload[2]);
  out.checksum = txn.load(&v->checksum);
  return out;
}

void txn_store_wide(Txn& txn, WideValue* dst, const WideValue& v) {
  txn.store(&dst->payload[0], v.payload[0]);
  txn.store(&dst->payload[1], v.payload[1]);
  txn.store(&dst->payload[2], v.payload[2]);
  txn.store(&dst->checksum, v.checksum);
}

}  // namespace

// ---------------------------------------------------------------- SearchNo

WideArrayStatSearchNo::WideArrayStatSearchNo(int32_t capacity)
    : array_(mem::create_array<Slot>(
          static_cast<std::size_t>(capacity < 1 ? 1 : capacity))),
      capacity_(capacity < 1 ? 1 : capacity) {}

WideArrayStatSearchNo::~WideArrayStatSearchNo() {
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

WideHandle WideArrayStatSearchNo::register_handle(const WideValue& v) {
  Slot* claimed = htm::atomic([&](Txn& txn) -> Slot* {
    for (int32_t i = 0; i < capacity_; ++i) {
      if (txn.load(&array_[i].used) == 0) {
        txn.store(&array_[i].used, uint32_t{1});
        txn_store_wide(txn, &array_[i].val, v);
        if (i + 1 > txn.load(&high_)) txn.store(&high_, i + 1);
        return &array_[i];
      }
    }
    return nullptr;
  });
  if (claimed == nullptr) {
    std::fprintf(stderr, "WideArrayStatSearchNo: capacity exceeded\n");
    std::abort();
  }
  return claimed;
}

void WideArrayStatSearchNo::update(WideHandle h, const WideValue& v) {
  // The §5.1 difference: the narrow variant's naked store is no longer an
  // option — a concurrent Collect could return a torn value. Four stores
  // inside a transaction instead.
  auto* slot = static_cast<Slot*>(h);
  htm::atomic([&](Txn& txn) { txn_store_wide(txn, &slot->val, v); });
}

void WideArrayStatSearchNo::deregister(WideHandle h) {
  auto* slot = static_cast<Slot*>(h);
  htm::nontxn_store(&slot->used, uint32_t{0});
}

void WideArrayStatSearchNo::collect(std::vector<WideValue>& out) {
  // Also transactional now (per slot), for the same reason.
  out.clear();
  const int32_t high = htm::nontxn_load(&high_);
  for (int32_t i = high - 1; i >= 0; --i) {
    bool used = false;
    WideValue v;
    htm::atomic([&](Txn& txn) {
      used = txn.load(&array_[i].used) != 0;
      if (used) v = txn_load_wide(txn, &array_[i].val);
    });
    if (used) out.push_back(v);
  }
}

// ------------------------------------------------------------ AppendDereg

WideArrayDynAppendDereg::WideArrayDynAppendDereg(int32_t min_size)
    : array_(mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(
          min_size < 1 ? 1 : min_size))),
      capacity_(min_size < 1 ? 1 : min_size),
      min_size_(min_size < 1 ? 1 : min_size) {}

WideArrayDynAppendDereg::~WideArrayDynAppendDereg() {
  help_copy();
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
}

WideValue WideArrayDynAppendDereg::load_wide(Txn& txn, const WideValue* v) {
  return txn_load_wide(txn, v);
}

void WideArrayDynAppendDereg::store_wide(Txn& txn, WideValue* dst,
                                         const WideValue& v) {
  txn_store_wide(txn, dst, v);
}

WideHandle WideArrayDynAppendDereg::register_handle(const WideValue& v) {
  auto* slot_ref = static_cast<Slot**>(mem::pool_allocate(sizeof(Slot*)));
  for (;;) {
    int32_t count_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      auto append = [&](int32_t c) {
        Slot* arr = txn.load(&array_);
        store_wide(txn, &arr[c].val, v);
        txn.store(&arr[c].slot_ref, slot_ref);
        txn.store(slot_ref, &arr[c]);
        txn.store(&count_, c + 1);
      };
      if (txn.load(&array_new_) == nullptr) {
        const int32_t c = txn.load(&count_);
        if (c < txn.load(&capacity_)) {
          append(c);
          return Action::kDone;
        }
        count_l = c;
        return Action::kGrow;
      }
      const int32_t c = txn.load(&count_);
      if (c < txn.load(&capacity_) && c < txn.load(&capacity_new_)) {
        append(c);
        return Action::kDone;
      }
      return Action::kHelp;
    });
    if (action == Action::kDone) return slot_ref;
    if (action == Action::kGrow) {
      attempt_resize(count_l, count_l);
    } else {
      help_copy();
    }
  }
}

void WideArrayDynAppendDereg::update(WideHandle h, const WideValue& v) {
  // Was already transactional with narrow values; widening costs three more
  // stores, not a new synchronization regime — hence "the gap closes".
  auto* slot_ref = static_cast<Slot**>(h);
  htm::atomic([&](Txn& txn) {
    Slot* slot = txn.load(slot_ref);
    store_wide(txn, &slot->val, v);
  });
}

void WideArrayDynAppendDereg::deregister(WideHandle h) {
  auto* slot_ref = static_cast<Slot**>(h);
  for (;;) {
    int32_t count_l = 0;
    int32_t capacity_l = 0;
    const Action action = htm::atomic([&](Txn& txn) -> Action {
      count_l = txn.load(&count_);
      capacity_l = txn.load(&capacity_);
      if (count_l * 4 == capacity_l && count_l * 2 >= min_size_) {
        return Action::kShrink;
      }
      if (txn.load(&array_new_) == nullptr) {
        const int32_t last = count_l - 1;
        txn.store(&count_, last);
        Slot* arr = txn.load(&array_);
        Slot* mine = txn.load(slot_ref);
        store_wide(txn, &mine->val, load_wide(txn, &arr[last].val));
        Slot** const last_ref = txn.load(&arr[last].slot_ref);
        txn.store(&mine->slot_ref, last_ref);
        txn.store(last_ref, mine);
        return Action::kDone;
      }
      return Action::kHelp;
    });
    if (action == Action::kDone) break;
    if (action == Action::kShrink) {
      attempt_resize(count_l, capacity_l);
    } else {
      help_copy();
    }
  }
  mem::pool_deallocate(slot_ref, sizeof(Slot*));
}

void WideArrayDynAppendDereg::collect(std::vector<WideValue>& out) {
  out.clear();
  help_copy();
  int32_t i = htm::nontxn_load(&count_) - 1;
  while (i >= 0) {
    // Wide values consume the store budget 4x as fast: up to 8 slots per
    // transaction within the 32-entry buffer.
    int32_t i_next = i;
    std::vector<WideValue> scratch;
    scratch.reserve(8);
    htm::atomic([&](Txn& txn) {
      i_next = i;
      scratch.clear();
      while (i_next >= 0 && txn.store_budget_left() >= 4) {
        const int32_t cnt = txn.load(&count_);
        if (i_next >= cnt) i_next = cnt - 1;
        if (i_next < 0) break;
        Slot* arr = txn.load(&array_);
        scratch.push_back(load_wide(txn, &arr[i_next].val));
        txn.charge_store(4);  // 4-word result record
        --i_next;
      }
    });
    out.insert(out.end(), scratch.begin(), scratch.end());
    i = i_next;
  }
}

void WideArrayDynAppendDereg::attempt_resize(int32_t count_l,
                                             int32_t capacity_l) {
  const int32_t new_cap = count_l * 2;
  Slot* tmp =
      mem::create_array_atomic_init<Slot>(static_cast<std::size_t>(new_cap));
  const bool free_tmp = htm::atomic([&](Txn& txn) -> bool {
    if (txn.load(&array_new_) == nullptr && txn.load(&count_) == count_l &&
        txn.load(&capacity_) == capacity_l) {
      txn.store(&array_new_, tmp);
      txn.store(&capacity_new_, new_cap);
      txn.store(&copied_, 0);
      return false;
    }
    return true;
  });
  if (free_tmp) mem::destroy_array(tmp, static_cast<std::size_t>(new_cap));
  help_copy();
}

void WideArrayDynAppendDereg::help_copy() {
  while (htm::nontxn_load(&array_new_) != nullptr) help_copy_one();
}

void WideArrayDynAppendDereg::help_copy_one() {
  Slot* to_free = nullptr;
  int32_t to_free_cap = 0;
  htm::atomic([&](Txn& txn) {
    to_free = nullptr;
    if (txn.load(&array_new_) == nullptr) return;
    const int32_t copied = txn.load(&copied_);
    if (copied < txn.load(&count_)) {
      Slot* arr = txn.load(&array_);
      Slot* arr_new = txn.load(&array_new_);
      store_wide(txn, &arr_new[copied].val,
                 load_wide(txn, &arr[copied].val));
      Slot** const sr = txn.load(&arr[copied].slot_ref);
      txn.store(&arr_new[copied].slot_ref, sr);
      txn.store(sr, &arr_new[copied]);
      txn.store(&copied_, copied + 1);
    } else {
      to_free = txn.load(&array_);
      to_free_cap = txn.load(&capacity_);
      txn.store(&array_, txn.load(&array_new_));
      txn.store(&capacity_, txn.load(&capacity_new_));
      txn.store(&array_new_, static_cast<Slot*>(nullptr));
    }
  });
  if (to_free != nullptr) {
    mem::destroy_array(to_free, static_cast<std::size_t>(to_free_cap));
  }
}

int32_t WideArrayDynAppendDereg::capacity_now() const noexcept {
  return htm::nontxn_load(&capacity_);
}
int32_t WideArrayDynAppendDereg::count_now() const noexcept {
  return htm::nontxn_load(&count_);
}

}  // namespace dc::collect
