#include "collect/static_baseline.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "memory/pool.hpp"
#include "util/thread_id.hpp"

namespace dc::collect {

namespace {

// Per-object, per-thread region assignment: the first `max_threads` threads
// to touch the object get disjoint slot ranges (the "static mapping").
struct RegionMap {
  std::atomic<int32_t> of[util::kMaxThreads];
  std::atomic<int32_t> next{0};

  RegionMap() {
    for (auto& r : of) r.store(-1, std::memory_order_relaxed);
  }
};

}  // namespace

StaticBaseline::StaticBaseline(int32_t capacity, uint32_t max_threads)
    : array_(mem::create_array<Slot>(
          static_cast<std::size_t>(capacity < 1 ? 1 : capacity))),
      capacity_(capacity < 1 ? 1 : capacity),
      max_threads_(max_threads < 1 ? 1 : max_threads) {
  regions_ = new RegionMap;
}

StaticBaseline::~StaticBaseline() {
  mem::destroy_array(array_, static_cast<std::size_t>(capacity_));
  delete static_cast<RegionMap*>(regions_);
}

Handle StaticBaseline::register_handle(Value v) {
  auto* map = static_cast<RegionMap*>(regions_);
  const uint32_t tid = util::thread_id();
  int32_t region = map->of[tid].load(std::memory_order_acquire);
  if (region < 0) {
    region = map->next.fetch_add(1, std::memory_order_acq_rel);
    if (region >= static_cast<int32_t>(max_threads_)) {
      std::fprintf(stderr,
                   "StaticBaseline: more than %u threads (static mapping "
                   "assumes a known thread bound)\n",
                   max_threads_);
      std::abort();
    }
    map->of[tid].store(region, std::memory_order_release);
  }
  const int32_t per = capacity_ / static_cast<int32_t>(max_threads_);
  const int32_t begin = region * per;
  const int32_t end = begin + per;
  for (int32_t i = begin; i < end; ++i) {
    // Only this thread writes flags in its region; plain read suffices.
    if (htm::nontxn_load(&array_[i].used) == 0) {
      htm::nontxn_store(&array_[i].val, v);
      htm::nontxn_store(&array_[i].used, uint32_t{1});
      return &array_[i];
    }
  }
  std::fprintf(stderr,
               "StaticBaseline: thread region full (%d slots; the static "
               "algorithm assumes a known bound)\n",
               per);
  std::abort();
}

void StaticBaseline::update(Handle h, Value v) {
  htm::nontxn_store(&static_cast<Slot*>(h)->val, v);
}

void StaticBaseline::deregister(Handle h) {
  htm::nontxn_store(&static_cast<Slot*>(h)->used, uint32_t{0});
}

void StaticBaseline::collect(std::vector<Value>& out) {
  // The whole array, registered or not — the cost signature that separates
  // this baseline from the Append algorithms in Figures 3 and 8.
  out.clear();
  for (int32_t i = 0; i < capacity_; ++i) {
    if (htm::nontxn_load(&array_[i].used) != 0) {
      out.push_back(htm::nontxn_load(&array_[i].val));
    }
  }
}

std::size_t StaticBaseline::footprint_bytes() const {
  return static_cast<std::size_t>(capacity_) * sizeof(Slot);
}

}  // namespace dc::collect
