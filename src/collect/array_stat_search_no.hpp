// ArrayStatSearchNo (§3.2): static array, search-based Register, no
// compaction.
//
// Because slots never move, a handle's storage address is stable for its
// whole lifetime: Update is a naked (strong-atomicity) store and Collect
// needs no transactions at all — it scans up to the historical high-water
// mark reading slots directly. That makes its Collect immune to update
// contention (Figure 4) but blind to shrinkage: after many deregisters it
// still traverses the historical maximum (Figure 8). Does not solve Dynamic
// Collect (fixed bound, nothing deallocated).
#pragma once

#include <cstdint>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class ArrayStatSearchNo final : public TelescopedBase {
 public:
  explicit ArrayStatSearchNo(int32_t capacity = 1024);
  ~ArrayStatSearchNo() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "ArrayStatSearchNo"; }
  bool is_dynamic() const override { return false; }
  bool uses_htm() const override { return true; }  // Register uses txns
  std::size_t footprint_bytes() const override;

  int32_t high_water() const noexcept;

 private:
  struct Slot {
    Value val;
    uint32_t used;  // claimed flag; word-sized for strong-atomicity access
  };

  Slot* const array_;
  const int32_t capacity_;
  int32_t high_ = 0;  // 1 + highest index ever used (never decreases)
};

}  // namespace dc::collect
