#include "collect/registry.hpp"

#include "collect/array_dyn_append_dereg.hpp"
#include "collect/array_dyn_append_dereg_upd.hpp"
#include "collect/array_dyn_search_resize.hpp"
#include "collect/array_stat_append_dereg.hpp"
#include "collect/array_stat_search_no.hpp"
#include "collect/dynamic_baseline.hpp"
#include "collect/fast_collect_list.hpp"
#include "collect/hohrc_list.hpp"
#include "collect/static_baseline.hpp"

namespace dc::collect {

const std::vector<AlgoInfo>& all_algorithms() {
  static const std::vector<AlgoInfo> algos = {
      {"ListHoHRC", true, true, true,
       [](const MakeParams&) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<HohrcList>();
       }},
      {"ListFastCollect", true, true, true,
       [](const MakeParams&) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<FastCollectList>();
       }},
      // §3.1.2's proposed deferred-free variant (this repo implements it).
      {"ListFastCollectDefer", true, true, true,
       [](const MakeParams&) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<FastCollectList>(/*defer_frees=*/true);
       }},
      {"ArrayStatSearchNo", false, true, false,
       [](const MakeParams& p) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<ArrayStatSearchNo>(p.static_capacity);
       }},
      {"ArrayStatAppendDereg", false, true, true,
       [](const MakeParams& p) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<ArrayStatAppendDereg>(p.static_capacity);
       }},
      {"ArrayDynSearchResize", true, true, true,
       [](const MakeParams& p) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<ArrayDynSearchResize>(p.min_size);
       }},
      {"ArrayDynAppendDereg", true, true, true,
       [](const MakeParams& p) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<ArrayDynAppendDereg>(p.min_size);
       }},
      // §4.1's sketched Update-optimized variant (this repo implements it).
      {"ArrayDynAppendDeregUpdOpt", true, true, true,
       [](const MakeParams& p) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<ArrayDynAppendDeregUpdateOpt>(p.min_size);
       }},
      {"StaticBaseline", false, false, false,
       [](const MakeParams& p) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<StaticBaseline>(p.static_capacity,
                                                 p.max_threads);
       }},
      {"DynamicBaseline", true, false, false,
       [](const MakeParams&) -> std::unique_ptr<DynamicCollect> {
         return std::make_unique<DynamicBaseline>();
       }},
  };
  return algos;
}

std::unique_ptr<DynamicCollect> make_algorithm(const std::string& name,
                                               const MakeParams& params) {
  for (const AlgoInfo& info : all_algorithms()) {
    if (info.name == name) return info.make(params);
  }
  return nullptr;
}

}  // namespace dc::collect
