// ArrayDynSearchResize (§3.2): dynamic array, search-based Register,
// compaction only on resize.
//
// Register scans for a free slot (growing the array when none exists);
// DeRegister just clears the claim, leaving a hole — so Collect must
// traverse up to a high-water mark that only resizing resets, which is why
// this algorithm "frequently traverses more slots than are registered due
// to infrequent compaction" (§5.4). Resizing copies the *used* slots to
// consecutive positions in the new array (compaction), redirecting each
// moved handle through its slot reference.
#pragma once

#include <cstdint>

#include "collect/telescoped_base.hpp"
#include "htm/htm.hpp"

namespace dc::collect {

class ArrayDynSearchResize final : public TelescopedBase {
 public:
  explicit ArrayDynSearchResize(int32_t min_size = 16);
  ~ArrayDynSearchResize() override;

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return "ArrayDynSearchResize"; }
  bool is_dynamic() const override { return true; }
  bool uses_htm() const override { return true; }
  std::size_t footprint_bytes() const override;

  int32_t capacity_now() const noexcept;
  int32_t count_now() const noexcept;
  int32_t high_water() const noexcept;

 private:
  struct Slot {
    Value val;
    Slot** slot_ref;
    uint32_t used;
  };

  enum class Action : uint8_t { kDone, kGrow, kShrink, kHelp };

  void attempt_resize(int32_t count_l, int32_t capacity_l);
  void help_copy();
  void help_copy_one();

  // Shared state; accessed transactionally.
  Slot* array_;
  int32_t capacity_;
  int32_t count_ = 0;  // number of registered (used) slots
  int32_t high_ = 0;   // 1 + highest used index; reset by resize compaction
  Slot* array_new_ = nullptr;
  int32_t capacity_new_ = 0;
  int32_t copied_ = 0;      // scan index into the old array
  int32_t new_count_ = 0;   // used slots placed into the new array so far

  const int32_t min_size_;
};

}  // namespace dc::collect
