// Lease-based orphan-handle reclamation: the crash-tolerant Collect
// decorator.
//
// A Dynamic Collect object assumes well-formed callers: every Register is
// eventually matched by a DeRegister from the same thread. A thread killed
// by the crash injector (htm/crash.hpp) breaks that contract — its handles
// stay registered forever and Collect grows without bound. Robust SMR
// schemes (Hyaline; the broader safe-memory-reclamation literature) treat
// exactly this as the bar: garbage stays bounded despite stalled or dead
// threads.
//
// CrashTolerantCollect wraps any DynamicCollect and restores the bound:
//
//  * Register/Update refresh a *lease* on the handle — the owner's
//    (tid, epoch) liveness token plus a monotonically increasing stamp.
//  * A survivor calls reap_orphans(): every lease whose owner token is
//    orphaned (dead flag set, or the dense id was recycled by a new
//    incarnation) is claimed and its handle DeRegistered *on the inner
//    object* — batching the dead thread's DeRegisters through the normal
//    transactional deregister path. Collect size returns to the live-thread
//    count.
//
// Crash-safety argument (why a reaper completing a dead thread's half-done
// DeRegister is sound): every inner algorithm's deregister consists of
// retryable helper transactions followed by ONE claiming transaction, after
// which the call runs no further atomic blocks (audited across all eight
// algorithms). A crash therefore either fired before the claiming commit —
// the handle is still fully registered and deregister(h) can simply be run
// again from scratch — or after it, in which case the owner also finished
// erasing its lease (no crash points exist outside atomic blocks), so the
// reaper never sees the handle at all. The same argument covers a crashing
// *reaper*: it claims leases under the table mutex, then per handle runs
// the inner deregister and immediately erases the lease, so a reaper that
// dies mid-batch leaves the remaining claims re-claimable (claims by dead
// claimants are ignored) and never a half-deregistered handle.
//
// The lease table itself is a mutex-protected map on the non-transactional
// side: crash points only fire inside atomic blocks, so table updates are
// atomic with respect to thread death by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "collect/collect.hpp"
#include "htm/crash.hpp"

namespace dc::collect {

class CrashTolerantCollect final : public DynamicCollect {
 public:
  explicit CrashTolerantCollect(std::unique_ptr<DynamicCollect> inner);

  Handle register_handle(Value v) override;
  void update(Handle h, Value v) override;
  void deregister(Handle h) override;
  void collect(std::vector<Value>& out) override;

  const char* name() const override { return name_.c_str(); }
  bool is_dynamic() const override { return inner_->is_dynamic(); }
  bool uses_htm() const override { return inner_->uses_htm(); }
  void set_step_size(uint32_t step) override { inner_->set_step_size(step); }
  void set_adaptive(bool on) override { inner_->set_adaptive(on); }
  void set_record_only(bool on) override { inner_->set_record_only(on); }
  std::vector<uint64_t> slots_by_step() const override {
    return inner_->slots_by_step();
  }
  void reset_step_stats() override { inner_->reset_step_stats(); }
  std::size_t footprint_bytes() const override;

  // DeRegisters (on the inner object) every handle whose lease owner is
  // orphaned. Returns the number of handles reaped; bumps the
  // orphans_reaped stat and emits one kOrphanReap trace event per dead
  // owner. Any live thread may call this; concurrent reapers partition the
  // orphans via claims.
  std::size_t reap_orphans();

  // Current number of leases (== handles registered through this wrapper
  // and not yet deregistered or reaped).
  std::size_t lease_count() const;

  // Leases whose owner is orphaned right now (not yet reaped).
  std::size_t orphan_count() const;

  DynamicCollect& inner() noexcept { return *inner_; }

 private:
  struct Lease {
    htm::crash::Token owner;
    uint64_t stamp = 0;      // lease clock at the last Register/Update
    bool claimed = false;    // a reaper owns this orphan
    htm::crash::Token claimant;
  };

  // Refreshes (or installs) the calling thread's lease on `h`.
  void stamp_lease(Handle h);

  std::unique_ptr<DynamicCollect> inner_;
  std::string name_;
  mutable std::mutex mu_;
  std::unordered_map<Handle, Lease> leases_;
};

}  // namespace dc::collect
