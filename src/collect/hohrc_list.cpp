#include "collect/hohrc_list.hpp"

#include "memory/pool.hpp"
#include "util/backoff.hpp"

namespace dc::collect {

using htm::Txn;

// Nodes are freed while doomed transactions (whose pins never committed) may
// still read them, so a recycled block can be under concurrent atomic loads
// the moment the pool hands it back. Initialize through mem::init_store
// rather than constructor writes to keep that overlap defined behaviour.
HohrcList::Node* HohrcList::make_node(Value v, Node* prev, Node* next) {
  auto* n = static_cast<Node*>(mem::pool_allocate(sizeof(Node)));
  mem::init_store(&n->val, v);
  mem::init_store(&n->refcount, int32_t{0});
  mem::init_store(&n->del, uint32_t{0});
  mem::init_store(&n->prev, prev);
  mem::init_store(&n->next, next);
  return n;
}

HohrcList::HohrcList() : head_(make_node(0, nullptr, nullptr)) {}

HohrcList::~HohrcList() {
  // Quiesced: free whatever is still linked, then the sentinel.
  Node* cur = head_->next;
  while (cur != nullptr) {
    Node* next = cur->next;
    mem::destroy(cur);
    cur = next;
  }
  mem::destroy(head_);
}

void HohrcList::unlink_in_txn(Txn& txn, Node* n) {
  Node* prev = txn.load(&n->prev);
  Node* next = txn.load(&n->next);
  txn.store(&prev->next, next);
  if (next != nullptr) txn.store(&next->prev, prev);
}

Handle HohrcList::register_handle(Value v) {
  Node* n = make_node(v, head_, nullptr);
  nodes_.fetch_add(1, std::memory_order_relaxed);
  htm::atomic([&](Txn& txn) {
    Node* first = txn.load(&head_->next);
    // n is private until the commit publishes it, but the block may be a
    // recycled one with doomed readers attached — atomic init (see make_node).
    mem::init_store(&n->next, first);
    if (first != nullptr) txn.store(&first->prev, n);
    txn.store(&head_->next, n);
  });
  return n;
}

void HohrcList::update(Handle h, Value v) {
  // Handle storage never moves: a naked strong-atomicity store (§3.1.1's
  // stated advantage for update-heavy workloads).
  htm::nontxn_store(&static_cast<Node*>(h)->val, v);
}

void HohrcList::deregister(Handle h) {
  Node* n = static_cast<Node*>(h);
  bool do_free = false;
  htm::atomic([&](Txn& txn) {
    do_free = false;
    txn.store(&n->del, uint32_t{1});
    if (txn.load(&n->refcount) == 0) {
      unlink_in_txn(txn, n);
      do_free = true;
    }
    // Otherwise some Collect pins the node; the last unpin reclaims it.
  });
  if (do_free) {
    mem::destroy(n);
    nodes_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void HohrcList::collect(std::vector<Value>& out) {
  out.clear();
  StepController& ctl = this->ctl();
  Node* pinned = head_;  // the sentinel needs no pin: it is never deleted
  std::vector<Value> scratch;
  scratch.reserve(StepController::kMaxStep);
  util::Backoff backoff(4, 1024);
  uint32_t failures = 0;
  for (;;) {
    const uint32_t step = ctl.step();
    Node* new_pin = nullptr;
    Node* to_free = nullptr;
    bool done = false;
    const htm::TryResult r = htm::try_once([&](Txn& txn) {
      scratch.clear();
      new_pin = nullptr;
      to_free = nullptr;
      done = false;
      // Walk up to `step` nodes past the pinned node. The transaction
      // validates the whole chain, so the intermediate nodes need no
      // reference-count updates — that is the telescoping optimization.
      // Reserve budget for the pin transfer (2 stores) and a possible
      // unlink (3 stores); the rest is available for result recording.
      // HOHRC therefore needs a store buffer of at least 6 entries.
      constexpr uint32_t kPinReserve = 5;
      Node* last = nullptr;
      Node* cur = txn.load(&pinned->next);
      for (uint32_t k = 0;
           k < step && cur != nullptr && txn.store_budget_left() > kPinReserve;
           ++k) {
        if (txn.load(&cur->del) == 0) {
          scratch.push_back(txn.load(&cur->val));
          txn.charge_store();
        }
        last = cur;
        cur = txn.load(&cur->next);
      }
      if (cur == nullptr) {
        done = true;  // reached the end; no new pin needed
      } else {
        // Pin the last node visited; the next transaction resumes there.
        txn.store(&last->refcount, txn.load(&last->refcount) + 1);
        new_pin = last;
      }
      // Unpin the node we started from (hand-over-hand).
      if (pinned != head_) {
        const int32_t rc = txn.load(&pinned->refcount) - 1;
        txn.store(&pinned->refcount, rc);
        if (rc == 0 && txn.load(&pinned->del) != 0) {
          unlink_in_txn(txn, pinned);
          to_free = pinned;
        }
      }
    });
    if (r.committed) {
      out.insert(out.end(), scratch.begin(), scratch.end());
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      if (to_free != nullptr) {
        mem::destroy(to_free);
        nodes_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (done) return;
      pinned = new_pin;
      failures = 0;
      backoff.reset();
      continue;
    }
    ctl.on_abort();
    ++failures;
    if (failures >= 128 && (ctl.step() == 1 || failures >= 512)) {
      // Liveness escape hatch: single step via the retrying wrapper.
      // A fixed step > 1 must not disable it — after a larger failure
      // budget burns the escape opens regardless of step size, or a
      // sustained spurious-abort storm would livelock the walk.
      htm::atomic([&](Txn& txn) {
        scratch.clear();
        new_pin = nullptr;
        to_free = nullptr;
        done = false;
        Node* cur = txn.load(&pinned->next);
        if (cur == nullptr) {
          done = true;
        } else {
          if (txn.load(&cur->del) == 0) {
            scratch.push_back(txn.load(&cur->val));
          }
          txn.store(&cur->refcount, txn.load(&cur->refcount) + 1);
          new_pin = cur;
        }
        if (pinned != head_) {
          const int32_t rc = txn.load(&pinned->refcount) - 1;
          txn.store(&pinned->refcount, rc);
          if (rc == 0 && txn.load(&pinned->del) != 0) {
            unlink_in_txn(txn, pinned);
            to_free = pinned;
          }
        }
      });
      out.insert(out.end(), scratch.begin(), scratch.end());
      ctl.on_commit(static_cast<uint32_t>(scratch.size()));
      if (to_free != nullptr) {
        mem::destroy(to_free);
        nodes_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (done) return;
      pinned = new_pin;
      failures = 0;
    } else {
      backoff.pause();
    }
  }
}

std::size_t HohrcList::footprint_bytes() const {
  return static_cast<std::size_t>(nodes_.load(std::memory_order_relaxed) + 1) *
         sizeof(Node);
}

std::size_t HohrcList::node_count() const {
  std::size_t n = 0;
  for (Node* cur = head_->next; cur != nullptr; cur = cur->next) ++n;
  return n;
}

}  // namespace dc::collect
