// The open-loop session service: millions of short-lived Dynamic Collect
// participants, a worker pool, load shedding, and crash-recovery duty.
//
// The paper's Collect algorithms are exercised everywhere else by
// fixed-population closed-loop drivers. This harness drives them the way a
// real registration substrate is driven: an arrival process (arrival.hpp)
// generates *sessions* — Register on connect, `requests` Updates separated
// by think time, DeRegister on disconnect — mostly short-lived, plus a
// configurable long tail of persistent sessions holding their handles for
// many requests. Sessions flow through a bounded accept queue (queue.hpp)
// to a pool of workers.
//
// Why sessions pin to one worker: Dynamic Collect's well-formedness
// contract (collect/collect.hpp) says Update/DeRegister must come from the
// registering thread. A session therefore executes start-to-finish on the
// worker that popped it — the queue hands off whole sessions, never
// individual operations.
//
// Open-loop discipline (the point of the harness):
//  * Arrival instants are fixed by the process, not by service progress.
//  * Every operation's latency is charged from its INTENDED issue instant
//    (arrival time for Register, arrival + k*think for request k), so time
//    spent waiting in the accept queue or behind a stalled substrate is
//    *included* — no coordinated omission.
//  * Overload sheds new connects at admission (counted, annotated on the
//    telemetry timeline, never silent); admitted sessions always run to
//    completion — or die with their killed worker, in which case the
//    lease reaper recovers their handles.
//
// Crash duty: each worker binds its logical index at pool construction
// (htm::crash::bind_worker — the pool-level opt-in) and runs sessions under
// run_victim. A chaos kill (chaos.hpp) makes the worker die mid-session;
// the supervisor thread respawns a fresh OS thread onto the same worker
// index and reaps the orphaned handles, so "kill worker 3" is survivable
// and measurable (MTTR, reap latency) rather than fatal.
//
// Memory backpressure (PR 10): when the pool runs bounded
// (--mem-limit / a chaos mem-squeeze override), admission control sheds new
// connects once pool utilization crosses mem_shed_watermark — counted
// separately (shed_mem) from queue-full shedding, because the remedies
// differ (more workers vs. more memory). Admitted sessions that still hit
// exhaustion (PoolExhausted outside a transaction, TxnOutOfMemory after the
// retry policy's bounded reclamation wait) end early with a best-effort
// DeRegister and are counted `oom` — a shed *session*, never a dead
// process.
//
// Accounting is conservation-checked end to end (validator-enforced in the
// v9 report schema):
//     generated == accepted + shed + shed_mem
//     accepted  == completed + killed + oom
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collect/lease.hpp"
#include "service/arrival.hpp"
#include "service/queue.hpp"

namespace dc::service {

struct ServiceConfig {
  double arrival_rate = 2000.0;  // sessions per second (open-loop)
  double burstiness = 0.0;       // [0,1); 0 = pure Poisson
  uint64_t seed = 1;
  uint32_t workers = 2;
  uint32_t queue_capacity = 64;
  double duration_ms = 500.0;         // generator window
  double persistent_fraction = 0.01;  // long-tail share of sessions
  uint32_t short_requests = 4;        // Updates per short-lived session
  uint32_t persistent_requests = 64;  // Updates per persistent session
  uint64_t think_ns = 20000;          // intended gap between a session's ops
  std::string algorithm = "ListFastCollect";  // inner Collect (registry name)
  // Admission high watermark on pool utilization (os_bytes / effective
  // limit): at or above it new connects are shed (shed_mem). Only active
  // while a capacity bound is in force — unbounded pools have utilization
  // 0.0 by definition.
  double mem_shed_watermark = 0.9;
};

// Cumulative harness counters since reset_counters(). Monotonic,
// sampler-readable at any time (every cell is written with relaxed
// atomics); the timeline CounterProvider in bench_service merges
// sessions_shed / chaos_phases into the substrate sample.
struct Counters {
  uint64_t generated = 0;  // arrivals the process produced
  uint64_t shed = 0;       // refused at admission (queue full)
  uint64_t shed_mem = 0;   // refused at admission (pool watermark)
  uint64_t accepted = 0;   // admitted to the queue
  uint64_t completed = 0;  // ran to DeRegister
  uint64_t killed = 0;     // died with their worker mid-session
  uint64_t oom = 0;        // ended early on pool exhaustion
  uint64_t requests = 0;   // Updates issued
  uint64_t worker_deaths = 0;
  uint64_t respawns = 0;     // fresh threads onto a dead worker's index
  uint64_t reap_batches = 0; // supervisor reap rounds that found orphans
  uint64_t chaos_phases = 0; // bumped by the chaos orchestrator at onsets
};

Counters counters() noexcept;       // snapshot (relaxed loads)
void reset_counters() noexcept;     // quiescent-only
void note_chaos_phase() noexcept;   // chaos orchestrator, at each onset

class Service {
 public:
  explicit Service(const ServiceConfig& cfg);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Spawns the worker pool and the supervisor. Call once.
  void start();

  // Runs the arrival loop on the calling thread for cfg.duration_ms,
  // pacing to intended instants and shedding on a full queue. Returns the
  // number of sessions generated.
  uint64_t run_generator();

  // Closes the queue, waits for every admitted session to complete (or die
  // with a killed worker), joins workers and supervisor, runs the final
  // orphan reap. Call once, after run_generator and after any chaos
  // orchestrator has been stopped.
  void stop();

  // Rate-spike hook for the chaos orchestrator: multiplies the arrival
  // rate (gaps divide by m) from the next arrival on. Safe while the
  // generator runs.
  void set_rate_multiplier(double m) noexcept;

  const ServiceConfig& config() const noexcept { return cfg_; }
  collect::CrashTolerantCollect& collect() noexcept { return *col_; }

 private:
  void worker_main(uint32_t widx);
  void supervisor_main();
  // False when the session ended early on pool exhaustion (counted oom).
  bool run_session(const Session& s);

  ServiceConfig cfg_;
  std::unique_ptr<collect::CrashTolerantCollect> col_;
  BoundedSessionQueue queue_;
  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<uint32_t>[]> dead_;   // worker died, join+respawn
  std::unique_ptr<std::atomic<uint32_t>[]> clean_;  // worker drained + exited
  std::thread supervisor_;
  std::atomic<bool> shutdown_{false};
  std::atomic<double> rate_multiplier_{1.0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace dc::service
