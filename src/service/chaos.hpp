// Chaos orchestration: a timed phase script driven against a live Service,
// and the per-phase recovery metrics (MTTR, shed volume, reap latency)
// computed from the telemetry timeline afterwards.
//
// Script grammar — one phase per line, `#` starts a comment, blank lines
// ignored; times are milliseconds from orchestrator start:
//
//   @<ms> fault-storm rate=<p> for=<ms>
//       Raise the spurious-abort injection rate to p (htm/fault.hpp
//       runtime override) for the window, then restore the configured
//       rate. Models a Rock-style interference burst.
//
//   @<ms> kill worker=<idx>|any [point=txn_op|commit_entry|lock_held]
//                                [after=<blocks>]   (default 1: defer the
//                                death past the block that consumes the
//                                kill — an idle worker consumes it at its
//                                next session's admission txn, where dying
//                                orphans nothing; one block later is that
//                                session's disconnect txn, which dies with
//                                the lease held. after=0 = die at the very
//                                next block.)
//       Arm a one-shot kill for the worker bound to logical index idx
//       (htm::crash::request_worker_kill) — `any` rotates over the pool.
//       The victim dies at its next atomic block; lock_held forces it onto
//       the TLE fallback lock first, so survivors must steal the lock.
//       Recovery (supervisor respawn + lease reap) is the service's job;
//       this phase only injects.
//
//   @<ms> rate-spike x=<mult> for=<ms>
//       Multiply the open-loop arrival rate by mult for the window — the
//       overload phase that exercises admission shedding.
//
//   @<ms> mem-squeeze limit=<bytes[k|m|g]> for=<ms>
//       Shrink the pool's effective capacity bound to `limit` for the
//       window (mem::pool_set_limit_override), then restore the configured
//       limit. Models a co-tenant eating the memory budget: allocations
//       start failing, the kAllocFailed retry path waits for reclamation,
//       admission control sheds on the utilization watermark (shed_mem),
//       and after release MTTR measures how fast the SLO is re-attained.
//
// Phases execute on a dedicated orchestrator thread; each onset bumps the
// service chaos_phases counter, which the timeline sampler turns into a
// `chaos_phase` annotation — so every phase is visible, timestamped, on
// the same axis as the latency windows and SLO verdicts.
//
// Recovery metrics (reports()): for each phase, MTTR is measured on the
// retained windows as (first SLO-clean *evaluated* window after the first
// violating window at/after onset) minus onset — i.e. time to SLO
// re-attainment, the same episode semantics obs/timeline.hpp tracks
// globally. A phase the SLO rode out unviolated has MTTR 0; one that never
// re-attained before the run ended has MTTR -1 (the bench treats that as
// failure). Kill phases additionally report orphan-reap latency: the first
// window after onset with orphans_reaped > 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "htm/crash.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"

namespace dc::service {

class Service;

struct ChaosPhase {
  enum class Kind : uint8_t { kFaultStorm = 0, kKill, kRateSpike,
                              kMemSqueeze };
  Kind kind = Kind::kFaultStorm;
  double at_ms = 0.0;
  double for_ms = 0.0;  // 0 for kill (a point event)
  double rate = 0.0;    // fault-storm injection rate
  uint32_t worker = htm::crash::kAnyWorker;  // kill target; kAny = rotate
  htm::crash::Point point = htm::crash::Point::kTxnOp;
  uint32_t after_blocks = 1;  // kill deferral (see grammar note above)
  double spike = 1.0;   // rate-spike multiplier
  uint64_t limit_bytes = 0;  // mem-squeeze cap for the window
  std::string spec;     // the source line, for reports
};

const char* to_string(ChaosPhase::Kind k) noexcept;

// Parses the script grammar above. On failure returns false and sets *err
// to a message naming the offending line.
bool parse_script(const std::string& text, std::vector<ChaosPhase>* out,
                  std::string* err);

// Reads `path` and parses it.
bool load_script(const std::string& path, std::vector<ChaosPhase>* out,
                 std::string* err);

// Post-run recovery report for one phase. Times are on the telemetry
// timeline's axis (ms since sampler start).
struct PhaseReport {
  ChaosPhase phase;
  double onset_ms = -1.0;       // when the orchestrator applied it
  double mttr_ms = -1.0;        // 0 = SLO never violated; -1 = no re-attain
  uint64_t shed_during = 0;     // sessions shed from onset to recovery
  uint64_t orphans_reaped = 0;  // kill phases: orphans reaped from onset on
  double reap_latency_ms = -1.0;  // kill phases: onset -> first reap window
};

class ChaosOrchestrator {
 public:
  // `svc` must outlive the orchestrator and be started before start().
  ChaosOrchestrator(std::vector<ChaosPhase> phases, Service* svc);
  ~ChaosOrchestrator();

  ChaosOrchestrator(const ChaosOrchestrator&) = delete;
  ChaosOrchestrator& operator=(const ChaosOrchestrator&) = delete;

  // Spawns the orchestrator thread; phase times are measured from this
  // call. Call after Service::start() (and after the telemetry sampler
  // started, so onsets land on the timeline axis).
  void start();

  // Joins the thread (waiting for remaining phases' reverts to run — call
  // while the generator still has time left, or after it returned) and
  // restores every override it set. Idempotent.
  void stop();

  // Computes per-phase recovery metrics from the retained timeline windows
  // against `targets`. Call after Service::stop() / timeline stop.
  std::vector<PhaseReport> reports(
      const std::vector<obs::slo::Target>& targets) const;

 private:
  void thread_main();

  std::vector<ChaosPhase> phases_;
  Service* svc_;
  std::vector<double> onset_ms_;  // per phase, timeline axis; -1 = not run
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool stopped_ = false;
  uint32_t rr_next_ = 0;  // rotation cursor for kill worker=any
};

}  // namespace dc::service
