#include "service/arrival.hpp"

#include <cmath>

namespace dc::service {

namespace {

// Mean dwell per modulation state, expressed in base-rate arrivals: long
// enough that the arrival-boundary switching approximation is immaterial,
// short enough that a 500 ms run still sees several hot/cold alternations
// at the rates the benches use.
constexpr double kDwellArrivals = 64.0;

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.rate_per_sec <= 0.0) cfg_.rate_per_sec = 1.0;
  if (cfg_.burstiness < 0.0) cfg_.burstiness = 0.0;
  if (cfg_.burstiness >= 1.0) cfg_.burstiness = 0.95;
  if (cfg_.burstiness > 0.0) {
    dwell_left_ns_ =
        draw_exponential(kDwellArrivals * 1e9 / cfg_.rate_per_sec);
  }
}

double ArrivalProcess::current_rate_per_ns() const noexcept {
  const double base = cfg_.rate_per_sec / 1e9;
  if (cfg_.burstiness == 0.0) return base;
  return hot_ ? base * (1.0 + cfg_.burstiness)
              : base * (1.0 - cfg_.burstiness);
}

double ArrivalProcess::draw_exponential(double mean) {
  // next_double() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
  return -std::log(1.0 - rng_.next_double()) * mean;
}

uint64_t ArrivalProcess::next_gap_ns() {
  const double gap = draw_exponential(1.0 / current_rate_per_ns());
  if (cfg_.burstiness > 0.0) {
    dwell_left_ns_ -= gap;
    if (dwell_left_ns_ <= 0.0) {
      hot_ = !hot_;
      dwell_left_ns_ =
          draw_exponential(kDwellArrivals * 1e9 / cfg_.rate_per_sec);
    }
  }
  return static_cast<uint64_t>(gap);
}

}  // namespace dc::service
