#include "service/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "htm/fault.hpp"
#include "memory/pool.hpp"
#include "service/service.hpp"
#include "util/cycles.hpp"

namespace dc::service {

namespace tl = obs::timeline;

const char* to_string(ChaosPhase::Kind k) noexcept {
  switch (k) {
    // Matches the script grammar's verbs so a phase's JSON "kind" is the
    // word the operator wrote.
    case ChaosPhase::Kind::kFaultStorm:
      return "fault-storm";
    case ChaosPhase::Kind::kKill:
      return "kill";
    case ChaosPhase::Kind::kRateSpike:
      return "rate-spike";
    case ChaosPhase::Kind::kMemSqueeze:
      return "mem-squeeze";
  }
  return "?";
}

namespace {

bool fail(std::string* err, int line_no, const std::string& why) {
  if (err != nullptr) {
    *err = "chaos script line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

// "<bytes>", optionally suffixed k/m/g (binary units). Returns false on
// anything unparsable or zero.
bool parse_bytes(const std::string& v, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 0);
  if (end == v.c_str() || n == 0) return false;
  uint64_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = 1ull << 10;
  } else if (*end == 'm' || *end == 'M') {
    mult = 1ull << 20;
  } else if (*end == 'g' || *end == 'G') {
    mult = 1ull << 30;
  } else if (*end != '\0') {
    return false;
  }
  *out = n * mult;
  return true;
}

bool parse_point(const std::string& v, htm::crash::Point* out) {
  if (v == "txn_op") {
    *out = htm::crash::Point::kTxnOp;
  } else if (v == "commit_entry") {
    *out = htm::crash::Point::kCommitEntry;
  } else if (v == "lock_held") {
    *out = htm::crash::Point::kLockHeld;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool parse_script(const std::string& text, std::vector<ChaosPhase>* out,
                  std::string* err) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank / comment-only
    if (tok.size() < 2 || tok[0] != '@') {
      return fail(err, line_no, "expected '@<ms>', got '" + tok + "'");
    }
    ChaosPhase p;
    p.at_ms = std::atof(tok.c_str() + 1);
    if (p.at_ms < 0.0) return fail(err, line_no, "negative onset time");
    std::string verb;
    if (!(ls >> verb)) return fail(err, line_no, "missing phase verb");
    if (verb == "fault-storm") {
      p.kind = ChaosPhase::Kind::kFaultStorm;
    } else if (verb == "kill") {
      p.kind = ChaosPhase::Kind::kKill;
    } else if (verb == "rate-spike") {
      p.kind = ChaosPhase::Kind::kRateSpike;
    } else if (verb == "mem-squeeze") {
      p.kind = ChaosPhase::Kind::kMemSqueeze;
    } else {
      return fail(err, line_no, "unknown verb '" + verb + "'");
    }
    bool have_rate = false, have_for = false, have_worker = false,
         have_spike = false, have_limit = false;
    while (ls >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        return fail(err, line_no, "expected key=value, got '" + tok + "'");
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "rate") {
        p.rate = std::atof(val.c_str());
        if (p.rate < 0.0 || p.rate > 1.0) {
          return fail(err, line_no, "rate must be in [0,1]");
        }
        have_rate = true;
      } else if (key == "for") {
        p.for_ms = std::atof(val.c_str());
        if (p.for_ms <= 0.0) return fail(err, line_no, "for= must be > 0");
        have_for = true;
      } else if (key == "worker") {
        if (val == "any") {
          p.worker = htm::crash::kAnyWorker;
        } else {
          p.worker = static_cast<uint32_t>(std::atoi(val.c_str()));
        }
        have_worker = true;
      } else if (key == "point") {
        if (!parse_point(val, &p.point)) {
          return fail(err, line_no,
                      "point must be txn_op|commit_entry|lock_held");
        }
      } else if (key == "after") {
        const int blocks = std::atoi(val.c_str());
        if (blocks < 0 || blocks > 0xffff) {
          return fail(err, line_no, "after= must be in [0,65535]");
        }
        p.after_blocks = static_cast<uint32_t>(blocks);
      } else if (key == "x") {
        p.spike = std::atof(val.c_str());
        if (p.spike <= 0.0) return fail(err, line_no, "x= must be > 0");
        have_spike = true;
      } else if (key == "limit") {
        if (!parse_bytes(val, &p.limit_bytes)) {
          return fail(err, line_no, "limit= must be bytes[k|m|g], nonzero");
        }
        have_limit = true;
      } else {
        return fail(err, line_no, "unknown key '" + key + "'");
      }
    }
    switch (p.kind) {
      case ChaosPhase::Kind::kFaultStorm:
        if (!have_rate || !have_for) {
          return fail(err, line_no, "fault-storm needs rate= and for=");
        }
        break;
      case ChaosPhase::Kind::kKill:
        if (!have_worker) return fail(err, line_no, "kill needs worker=");
        break;
      case ChaosPhase::Kind::kRateSpike:
        if (!have_spike || !have_for) {
          return fail(err, line_no, "rate-spike needs x= and for=");
        }
        break;
      case ChaosPhase::Kind::kMemSqueeze:
        if (!have_limit || !have_for) {
          return fail(err, line_no, "mem-squeeze needs limit= and for=");
        }
        break;
    }
    // Reconstruct a canonical spec for reports (whitespace-normalized).
    char head[64];
    std::snprintf(head, sizeof head, "@%g ", p.at_ms);
    std::string spec = std::string(head) + verb;
    {
      char buf[96];
      switch (p.kind) {
        case ChaosPhase::Kind::kFaultStorm:
          std::snprintf(buf, sizeof buf, " rate=%g for=%g", p.rate, p.for_ms);
          break;
        case ChaosPhase::Kind::kKill:
          if (p.worker == htm::crash::kAnyWorker) {
            std::snprintf(buf, sizeof buf, " worker=any point=%s after=%u",
                          htm::crash::to_string(p.point), p.after_blocks);
          } else {
            std::snprintf(buf, sizeof buf, " worker=%u point=%s after=%u",
                          p.worker, htm::crash::to_string(p.point),
                          p.after_blocks);
          }
          break;
        case ChaosPhase::Kind::kRateSpike:
          std::snprintf(buf, sizeof buf, " x=%g for=%g", p.spike, p.for_ms);
          break;
        case ChaosPhase::Kind::kMemSqueeze:
          std::snprintf(buf, sizeof buf, " limit=%llu for=%g",
                        static_cast<unsigned long long>(p.limit_bytes),
                        p.for_ms);
          break;
      }
      spec += buf;
    }
    p.spec = spec;
    out->push_back(std::move(p));
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const ChaosPhase& a, const ChaosPhase& b) {
                     return a.at_ms < b.at_ms;
                   });
  return true;
}

bool load_script(const std::string& path, std::vector<ChaosPhase>* out,
                 std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open chaos script " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_script(text, out, err);
}

ChaosOrchestrator::ChaosOrchestrator(std::vector<ChaosPhase> phases,
                                     Service* svc)
    : phases_(std::move(phases)),
      svc_(svc),
      onset_ms_(phases_.size(), -1.0) {}

ChaosOrchestrator::~ChaosOrchestrator() {
  if (started_ && !stopped_) stop();
}

void ChaosOrchestrator::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { thread_main(); });
}

void ChaosOrchestrator::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_relaxed);
  thread_.join();
  // Safety net: whatever the thread was in the middle of, leave the
  // process with no chaos overrides active.
  htm::fault::set_rate_override(-1.0);
  mem::pool_set_limit_override(0);
  if (svc_ != nullptr) svc_->set_rate_multiplier(1.0);
}

void ChaosOrchestrator::thread_main() {
  // Flatten phases into a time-ordered action list: an onset per phase,
  // plus a revert at the end of each windowed phase. Overlapping windows
  // of the SAME kind are not composed — the later revert wins — which the
  // scripts we ship avoid; kills are point events and never revert.
  struct Action {
    double t_ms;
    std::size_t phase;
    bool onset;
  };
  std::vector<Action> actions;
  actions.reserve(phases_.size() * 2);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    actions.push_back({phases_[i].at_ms, i, true});
    if (phases_[i].kind != ChaosPhase::Kind::kKill) {
      actions.push_back({phases_[i].at_ms + phases_[i].for_ms, i, false});
    }
  }
  std::stable_sort(actions.begin(), actions.end(),
                   [](const Action& a, const Action& b) {
                     return a.t_ms < b.t_ms;
                   });

  const uint64_t t0 = util::rdcycles();
  const uint64_t tl0 = tl::start_cycles();  // 0 when no sampler ran
  for (const Action& a : actions) {
    for (;;) {
      if (stop_requested_.load(std::memory_order_relaxed)) return;
      const double now_ms = util::cycles_to_ns(util::rdcycles() - t0) / 1e6;
      if (now_ms >= a.t_ms) break;
      const double left = a.t_ms - now_ms;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          left > 1.0 ? 1.0 : left));
    }
    ChaosPhase& p = phases_[a.phase];
    if (a.onset) {
      switch (p.kind) {
        case ChaosPhase::Kind::kFaultStorm:
          htm::fault::set_rate_override(p.rate);
          break;
        case ChaosPhase::Kind::kKill: {
          uint32_t target = p.worker;
          if (target == htm::crash::kAnyWorker) {
            const uint32_t pool =
                svc_ != nullptr ? svc_->config().workers : 1;
            target = rr_next_++ % (pool == 0 ? 1 : pool);
          }
          htm::crash::request_worker_kill(target, p.point, /*after_ops=*/0,
                                          p.after_blocks);
          break;
        }
        case ChaosPhase::Kind::kRateSpike:
          if (svc_ != nullptr) svc_->set_rate_multiplier(p.spike);
          break;
        case ChaosPhase::Kind::kMemSqueeze:
          mem::pool_set_limit_override(p.limit_bytes);
          break;
      }
      note_chaos_phase();
      const uint64_t base = tl0 != 0 ? tl0 : t0;
      onset_ms_[a.phase] =
          util::cycles_to_ns(util::rdcycles() - base) / 1e6;
    } else {
      switch (p.kind) {
        case ChaosPhase::Kind::kFaultStorm:
          htm::fault::set_rate_override(-1.0);
          break;
        case ChaosPhase::Kind::kRateSpike:
          if (svc_ != nullptr) svc_->set_rate_multiplier(1.0);
          break;
        case ChaosPhase::Kind::kMemSqueeze:
          // Release restores the configured limit; the override setter
          // also closes any open pressure episode, so MTTR is measured
          // from the release itself.
          mem::pool_set_limit_override(0);
          break;
        case ChaosPhase::Kind::kKill:
          break;
      }
    }
  }
}

namespace {

// A window "evaluated" a target set when at least one target's op had
// samples — the same vacuity rule the sampler's episode tracker applies.
bool window_evaluated(const tl::Window& w,
                      const std::vector<obs::slo::Target>& targets) {
  for (const obs::slo::Target& t : targets) {
    if (w.ops[static_cast<std::size_t>(t.op)].count > 0) return true;
  }
  return false;
}

}  // namespace

std::vector<PhaseReport> ChaosOrchestrator::reports(
    const std::vector<obs::slo::Target>& targets) const {
  const std::vector<tl::Window> wins = tl::windows();
  std::vector<PhaseReport> out;
  out.reserve(phases_.size());
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    PhaseReport r;
    r.phase = phases_[i];
    r.onset_ms = onset_ms_[i];
    if (r.onset_ms < 0.0) {  // never applied (run ended first)
      out.push_back(std::move(r));
      continue;
    }
    // MTTR: first violating window at/after onset, then the first clean
    // evaluated window after that. No violation at all -> 0 (the SLO rode
    // the phase out); violation with no clean window before the run ended
    // -> -1 (never re-attained). Violations are attributed to the most
    // recent chaos onset: the search for the *first* violation stops at
    // the next phase's onset (recovery may still land after it).
    double attrib_end_ms = 1e18;
    for (std::size_t j = 0; j < phases_.size(); ++j) {
      if (onset_ms_[j] > r.onset_ms && onset_ms_[j] < attrib_end_ms) {
        attrib_end_ms = onset_ms_[j];
      }
    }
    double recovery_end_ms = -1.0;
    bool saw_violation = false;
    for (const tl::Window& w : wins) {
      if (w.t_end_ms < r.onset_ms) continue;
      if (!saw_violation) {
        if (w.t_start_ms >= attrib_end_ms) break;
        if (!targets.empty() && tl::window_violates_slo(w, targets)) {
          saw_violation = true;
        }
        continue;
      }
      if (window_evaluated(w, targets) &&
          !tl::window_violates_slo(w, targets)) {
        recovery_end_ms = w.t_end_ms;
        break;
      }
    }
    if (!saw_violation) {
      r.mttr_ms = 0.0;
    } else if (recovery_end_ms >= 0.0) {
      r.mttr_ms = recovery_end_ms - r.onset_ms;
    }  // else stays -1: never re-attained
    // Shed volume and (for kills) orphan-reap latency, accumulated from
    // onset until recovery. When the SLO never broke, the horizon is the
    // phase's own window (onset + for_ms) for windowed phases and the
    // next phase's onset for kills (reap latency trails the point event);
    // either way it is capped at the next onset so one phase's fallout is
    // never double-booked to an earlier one.
    double until_ms = recovery_end_ms;
    if (until_ms < 0.0) {
      until_ms = r.phase.kind == ChaosPhase::Kind::kKill
                     ? attrib_end_ms
                     : r.onset_ms + r.phase.for_ms;
    }
    if (until_ms > attrib_end_ms) until_ms = attrib_end_ms;
    for (const tl::Window& w : wins) {
      // A window counts if it overlaps [onset, until): straddling windows
      // are included rather than dropped (10 ms granularity).
      if (w.t_end_ms < r.onset_ms || w.t_start_ms >= until_ms) continue;
      r.shed_during += w.delta.sessions_shed + w.delta.sessions_shed_mem;
      if (r.phase.kind == ChaosPhase::Kind::kKill) {
        r.orphans_reaped += w.delta.orphans_reaped;
        if (r.reap_latency_ms < 0.0 && w.delta.orphans_reaped > 0) {
          r.reap_latency_ms = w.t_end_ms - r.onset_ms;
        }
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace dc::service
