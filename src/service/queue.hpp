// The bounded accept queue between the open-loop generator and the worker
// pool — where load shedding happens.
//
// An open-loop generator cannot block: blocking would re-couple arrivals to
// service capacity and resurrect coordinated omission. So admission is
// try_push — a full queue means the *connect* is refused and the session is
// shed, counted by the caller (service.cpp: sessions_shed; never a silent
// drop). Sessions that were admitted are never abandoned: pop() drains the
// queue even after close(), so in-flight work always completes and the
// conservation law accepted == completed + killed holds at shutdown.
//
// Plain mutex + condvar on purpose: admission happens thousands of times a
// second, not millions — this queue is control plane, and the substrate
// under test (the Collect operations the workers run) is where the cycles
// should go.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace dc::service {

// One client session: Register on connect, `requests` Updates separated by
// the session's think time, DeRegister on disconnect. Latency is charged
// from intended (not actual) issue instants — see service.cpp.
struct Session {
  uint64_t id = 0;
  uint64_t intended_arrival_cycles = 0;
  uint32_t requests = 1;
  uint64_t think_cycles = 0;
  bool persistent = false;  // long-tail session (many requests)
};

class BoundedSessionQueue {
 public:
  explicit BoundedSessionQueue(std::size_t capacity)
      : cap_(capacity == 0 ? 1 : capacity) {}

  BoundedSessionQueue(const BoundedSessionQueue&) = delete;
  BoundedSessionQueue& operator=(const BoundedSessionQueue&) = delete;

  // Admits the session unless the queue is full or closed. Never blocks
  // (the open-loop generator must not be back-pressured). Returns false on
  // refusal — the caller counts the shed.
  bool try_push(const Session& s) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || q_.size() >= cap_) return false;
      q_.push_back(s);
    }
    cv_.notify_one();
    return true;
  }

  // Blocks for the next session. Returns false only when the queue is
  // closed AND drained — admitted sessions are always handed to a worker.
  bool pop(Session* out) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;
    *out = q_.front();
    q_.pop_front();
    return true;
  }

  // Stops admission; blocked poppers drain the remainder and then get
  // false. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return q_.size();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Session> q_;
  std::size_t cap_;
  bool closed_ = false;
};

}  // namespace dc::service
