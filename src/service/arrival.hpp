// Open-loop arrival processes for the session service harness.
//
// Closed-loop drivers (every bench so far) issue the next operation only
// after the previous one returns, so a stall in the substrate slows the
// *load generator* down and the measured latencies silently omit the
// requests that would have arrived during the stall — the coordinated-
// omission trap. An open-loop process fixes the arrival times in advance:
// sessions arrive when the process says they arrive, whether or not the
// service kept up, and latency is charged from the intended arrival
// instant (service.cpp).
//
// Two processes, selected by the burstiness knob:
//
//  * burstiness == 0: homogeneous Poisson — i.i.d. exponential gaps with
//    rate `rate_per_sec`.
//  * burstiness b in (0, 1): a two-state Markov-modulated Poisson process
//    (MMPP-2). The process alternates between a hot state at rate
//    lambda*(1+b) and a cold state at rate lambda*(1-b), dwelling in each
//    for an exponential time long enough to cover ~64 base-rate arrivals.
//    Equal expected dwell in both states keeps the time-average rate at
//    lambda exactly, while the mixture makes gap variance super-
//    exponential (CV > 1) — the bursty traffic that stresses the bounded
//    accept queue and the shedding policy.
//
// Approximation (documented, deliberate): the state dwell clock is
// decremented by the drawn gaps, so state switches take effect at arrival
// boundaries rather than mid-gap. At >= 64 arrivals per dwell the bias on
// both the mean and the burst structure is negligible, and the process
// stays a pure function of the seed — a given (rate, burstiness, seed)
// replays the same arrival schedule on every run, which the determinism
// tests rely on.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace dc::service {

struct ArrivalConfig {
  double rate_per_sec = 1000.0;
  double burstiness = 0.0;  // [0, 1); 0 = pure Poisson
  uint64_t seed = 1;
};

// Session-mix draw: which arrivals are long-tail persistent sessions and
// how many requests each population issues. Split out of the service so
// the mix is a reusable, seeded, deterministic process like the arrival
// gaps themselves — a given (fraction, seed) marks the same arrivals
// persistent on every run. The long tail is what makes mem-squeeze phases
// interesting: persistent sessions hold Collect handles (and therefore
// pool blocks) across many think-time gaps, so pool footprint and sweep
// cost grow with dwell, not just with arrival rate. Configured from the
// CLI as --longtail FRAC:DWELL (fraction of arrivals; requests each such
// session issues before deregistering).
struct SessionMixConfig {
  double longtail_fraction = 0.01;  // share of arrivals that are persistent
  uint32_t short_requests = 4;      // Updates per short-lived session
  uint32_t longtail_requests = 64;  // Updates per persistent session
  uint64_t seed = 1;
};

class SessionMix {
 public:
  explicit SessionMix(const SessionMixConfig& cfg) noexcept
      : cfg_(cfg), rng_(cfg.seed ^ 0x5e55104e5e55104eULL) {}

  struct Draw {
    bool persistent = false;
    uint32_t requests = 1;
  };

  // The mix decision for the next arrival. Deterministic given the seed.
  Draw next() noexcept {
    Draw d;
    d.persistent = rng_.next_double() < cfg_.longtail_fraction;
    d.requests =
        d.persistent ? cfg_.longtail_requests : cfg_.short_requests;
    return d;
  }

 private:
  SessionMixConfig cfg_;
  util::Xoshiro256 rng_;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  // Nanoseconds from the previous arrival to the next one. Deterministic
  // given the config seed.
  uint64_t next_gap_ns();

  // True while the modulating chain is in its hot state (always false for
  // pure Poisson). Exposed for the burst-structure tests.
  bool hot() const noexcept { return hot_; }

 private:
  double current_rate_per_ns() const noexcept;
  double draw_exponential(double mean);

  ArrivalConfig cfg_;
  util::Xoshiro256 rng_;
  bool hot_ = false;
  double dwell_left_ns_ = 0.0;
};

}  // namespace dc::service
