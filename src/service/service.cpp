#include "service/service.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "memory/pool.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "util/cycles.hpp"
#include "util/rng.hpp"

namespace dc::service {

namespace {

// Harness counters: multi-writer (workers bump completed/killed/requests
// concurrently), so plain relaxed fetch_adds — these are control-plane
// events at session granularity, not per-transaction hot path.
struct AtomicCounters {
  std::atomic<uint64_t> generated{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> shed_mem{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> killed{0};
  std::atomic<uint64_t> oom{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> worker_deaths{0};
  std::atomic<uint64_t> respawns{0};
  std::atomic<uint64_t> reap_batches{0};
  std::atomic<uint64_t> chaos_phases{0};
};

AtomicCounters& ctrs() noexcept {
  static AtomicCounters* c = new AtomicCounters;
  return *c;
}

inline void bump(std::atomic<uint64_t>& c, uint64_t d = 1) noexcept {
  c.fetch_add(d, std::memory_order_relaxed);
}

// Waits until the TSC reaches `target`: sleeps while comfortably early
// (leaving ~100 us of slack for wakeup jitter), spins the rest. Returns
// immediately when the target is already past — the open-loop backlog case.
void wait_until_cycle(uint64_t target) {
  for (;;) {
    const uint64_t now = util::rdcycles();
    if (now >= target) return;
    const double ahead_ns = util::cycles_to_ns(target - now);
    if (ahead_ns > 200000.0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(static_cast<int64_t>(ahead_ns - 100000.0)));
    } else {
      util::spin_until(now, target - now);
      return;
    }
  }
}

}  // namespace

Counters counters() noexcept {
  const AtomicCounters& c = ctrs();
  Counters out;
  out.generated = c.generated.load(std::memory_order_relaxed);
  out.shed = c.shed.load(std::memory_order_relaxed);
  out.shed_mem = c.shed_mem.load(std::memory_order_relaxed);
  out.accepted = c.accepted.load(std::memory_order_relaxed);
  out.completed = c.completed.load(std::memory_order_relaxed);
  out.killed = c.killed.load(std::memory_order_relaxed);
  out.oom = c.oom.load(std::memory_order_relaxed);
  out.requests = c.requests.load(std::memory_order_relaxed);
  out.worker_deaths = c.worker_deaths.load(std::memory_order_relaxed);
  out.respawns = c.respawns.load(std::memory_order_relaxed);
  out.reap_batches = c.reap_batches.load(std::memory_order_relaxed);
  out.chaos_phases = c.chaos_phases.load(std::memory_order_relaxed);
  return out;
}

void reset_counters() noexcept {
  AtomicCounters& c = ctrs();
  c.generated.store(0, std::memory_order_relaxed);
  c.shed.store(0, std::memory_order_relaxed);
  c.shed_mem.store(0, std::memory_order_relaxed);
  c.accepted.store(0, std::memory_order_relaxed);
  c.completed.store(0, std::memory_order_relaxed);
  c.killed.store(0, std::memory_order_relaxed);
  c.oom.store(0, std::memory_order_relaxed);
  c.requests.store(0, std::memory_order_relaxed);
  c.worker_deaths.store(0, std::memory_order_relaxed);
  c.respawns.store(0, std::memory_order_relaxed);
  c.reap_batches.store(0, std::memory_order_relaxed);
  c.chaos_phases.store(0, std::memory_order_relaxed);
}

void note_chaos_phase() noexcept { bump(ctrs().chaos_phases); }

Service::Service(const ServiceConfig& cfg)
    : cfg_(cfg),
      queue_(cfg.queue_capacity == 0 ? 64 : cfg.queue_capacity) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.workers > htm::crash::kMaxWorkers) {
    cfg_.workers = htm::crash::kMaxWorkers;
  }
  if (cfg_.short_requests == 0) cfg_.short_requests = 1;
  if (cfg_.persistent_requests == 0) cfg_.persistent_requests = 1;
  // Size the inner Collect for the live-handle high-water mark: at most one
  // session per worker plus the queued backlog holds a handle at a time.
  auto inner = collect::make_algorithm(
      cfg_.algorithm,
      [&] {
        collect::MakeParams p;
        p.static_capacity =
            static_cast<int32_t>((cfg_.workers + 1) * 4 + 64);
        p.min_size = 16;
        p.max_threads = cfg_.workers + 2;  // + supervisor + generator
        return p;
      }());
  if (inner == nullptr) {
    std::fprintf(stderr, "service: unknown algorithm '%s'\n",
                 cfg_.algorithm.c_str());
    std::abort();
  }
  col_ = std::make_unique<collect::CrashTolerantCollect>(std::move(inner));
  dead_ = std::make_unique<std::atomic<uint32_t>[]>(cfg_.workers);
  clean_ = std::make_unique<std::atomic<uint32_t>[]>(cfg_.workers);
  for (uint32_t w = 0; w < cfg_.workers; ++w) {
    dead_[w].store(0, std::memory_order_relaxed);
    clean_[w].store(0, std::memory_order_relaxed);
  }
}

Service::~Service() {
  if (started_ && !stopped_) stop();
}

void Service::start() {
  if (started_) return;
  started_ = true;
  workers_.reserve(cfg_.workers);
  for (uint32_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
  supervisor_ = std::thread([this] { supervisor_main(); });
}

void Service::worker_main(uint32_t widx) {
  // Fresh incarnation (epoch bump — tokens of a previous occupant of this
  // dense id stay orphaned), then the pool-level opt-in: bind the logical
  // worker index once, instead of threading per-call opt-ins through every
  // session operation.
  htm::crash::reset_thread();
  htm::crash::bind_worker(widx);
  Session s;
  while (queue_.pop(&s)) {
    bool ok = true;
    const bool survived =
        htm::crash::run_victim([&] { ok = run_session(s); });
    if (!survived) {
      // The in-flight session dies with its worker; its handle (if
      // registered) is now an orphan the supervisor's reaper recovers.
      bump(ctrs().killed);
      bump(ctrs().worker_deaths);
      dead_[widx].store(1, std::memory_order_release);
      return;
    }
    bump(ok ? ctrs().completed : ctrs().oom);
  }
  clean_[widx].store(1, std::memory_order_release);
}

bool Service::run_session(const Session& s) {
  const bool timing = obs::timing_enabled();
  uint64_t intended = s.intended_arrival_cycles;
  collect::Handle h = nullptr;
  bool registered = false;
  // Pool exhaustion surfaces here as std::bad_alloc: PoolExhausted from
  // Register's out-of-transaction node allocation, or TxnOutOfMemory when
  // an atomic block gave up after the bounded reclamation wait. Either way
  // the *session* ends (best-effort DeRegister so its handle is not leaked
  // capacity), the worker lives on, and the caller counts it oom — memory
  // pressure degrades throughput, never kills the process.
  try {
    // Latency is charged from the intended instant: queue wait, a stalled
    // substrate, backlog — all included (coordinated-omission-safe).
    h = col_->register_handle(s.id);
    registered = true;
    if (timing) {
      const uint64_t now = util::rdcycles();
      obs::record_op(obs::OpKind::kRegister,
                     now > intended ? now - intended : 0);
    }
    for (uint32_t r = 0; r < s.requests; ++r) {
      intended += s.think_cycles;
      wait_until_cycle(intended);
      col_->update(h, (s.id << 8) | r);
      bump(ctrs().requests);
      if (timing) {
        const uint64_t now = util::rdcycles();
        obs::record_op(obs::OpKind::kUpdate,
                       now > intended ? now - intended : 0);
      }
    }
    intended += s.think_cycles;
    wait_until_cycle(intended);
    col_->deregister(h);
    registered = false;
    if (timing) {
      const uint64_t now = util::rdcycles();
      obs::record_op(obs::OpKind::kDeRegister,
                     now > intended ? now - intended : 0);
    }
  } catch (const std::bad_alloc&) {
    if (registered) {
      // DeRegister frees memory on every algorithm (that is its job), but
      // its atomic block can still die on an *injected* allocation fault;
      // leaving the handle to the lease reaper is the correct fallback.
      try {
        col_->deregister(h);
      } catch (const std::bad_alloc&) {
      }
    }
    return false;
  }
  return true;
}

void Service::supervisor_main() {
  htm::crash::reset_thread();  // immortal: never opts in
  const bool timing = obs::timing_enabled();
  uint32_t poll = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Respawn duty: a dead worker's OS thread is joined and a fresh thread
    // re-binds the same logical index (reset_thread inside worker_main
    // takes a new incarnation epoch). Respawning is unconditional — after
    // close() a respawned worker just drains/exits clean — which keeps the
    // "admitted sessions always finish" guarantee independent of when in
    // shutdown a kill lands.
    for (uint32_t w = 0; w < cfg_.workers; ++w) {
      if (dead_[w].load(std::memory_order_acquire) != 0) {
        workers_[w].join();
        dead_[w].store(0, std::memory_order_relaxed);
        bump(ctrs().respawns);
        workers_[w] = std::thread([this, w] { worker_main(w); });
      }
    }
    // Reap duty: recover handles orphaned by killed workers. The loop is
    // the honest protocol (a reaper could itself observe a racing death).
    if (col_->orphan_count() != 0) {
      bump(ctrs().reap_batches);
      while (col_->orphan_count() != 0) col_->reap_orphans();
    }
    // A periodic Collect keeps the read side of the substrate exercised —
    // the service is a registration service, someone must scan it.
    if (++poll % 8 == 0) {
      std::vector<collect::Value> out;
      const uint64_t t0 = util::rdcycles();
      col_->collect(out);
      if (timing) {
        obs::record_op(obs::OpKind::kCollect, util::rdcycles() - t0);
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      bool all_clean = true;
      for (uint32_t w = 0; w < cfg_.workers; ++w) {
        if (clean_[w].load(std::memory_order_acquire) == 0) {
          all_clean = false;
          break;
        }
      }
      if (all_clean) break;
    }
  }
  for (uint32_t w = 0; w < cfg_.workers; ++w) {
    if (workers_[w].joinable()) workers_[w].join();
  }
}

uint64_t Service::run_generator() {
  ArrivalConfig acfg;
  acfg.rate_per_sec = cfg_.arrival_rate;
  acfg.burstiness = cfg_.burstiness;
  acfg.seed = cfg_.seed;
  ArrivalProcess arrivals(acfg);
  SessionMixConfig mcfg;
  mcfg.longtail_fraction = cfg_.persistent_fraction;
  mcfg.short_requests = cfg_.short_requests;
  mcfg.longtail_requests = cfg_.persistent_requests;
  mcfg.seed = cfg_.seed;
  SessionMix mix(mcfg);

  const uint64_t think_cycles = util::ns_to_cycles(cfg_.think_ns);
  const uint64_t start = util::rdcycles();
  const uint64_t end =
      start + util::ns_to_cycles(static_cast<uint64_t>(cfg_.duration_ms * 1e6));
  uint64_t intended = start;
  uint64_t generated = 0;
  for (;;) {
    double gap_ns = static_cast<double>(arrivals.next_gap_ns());
    const double mult = rate_multiplier_.load(std::memory_order_relaxed);
    if (mult > 0.0 && mult != 1.0) gap_ns /= mult;  // spike = denser arrivals
    intended += util::ns_to_cycles(static_cast<uint64_t>(gap_ns));
    if (intended >= end) break;
    // Pace to the intended instant. If generation itself falls behind the
    // process, intended stays in the past and sessions are injected
    // immediately — their latency (charged from `intended`) then includes
    // the generator backlog, which is exactly what open-loop demands.
    wait_until_cycle(intended);
    Session s;
    s.id = ++generated;
    s.intended_arrival_cycles = intended;
    const SessionMix::Draw draw = mix.next();
    s.persistent = draw.persistent;
    s.requests = draw.requests;
    s.think_cycles = think_cycles;
    bump(ctrs().generated);
    // Memory backpressure precedes the queue: a connect refused on the
    // pool watermark never occupies a queue slot, and the two shed causes
    // stay separable in the report (more workers vs. more memory).
    if (mem::pool_effective_limit() != 0 &&
        mem::pool_utilization() >= cfg_.mem_shed_watermark) {
      bump(ctrs().shed_mem);
    } else if (queue_.try_push(s)) {
      bump(ctrs().accepted);
    } else {
      bump(ctrs().shed);  // refused connect: counted, never silent
    }
  }
  return generated;
}

void Service::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  queue_.close();
  shutdown_.store(true, std::memory_order_release);
  supervisor_.join();
  // Final reap: a worker killed on the very last session leaves orphans
  // after the supervisor's last pass.
  if (col_->orphan_count() != 0) {
    bump(ctrs().reap_batches);
    while (col_->orphan_count() != 0) col_->reap_orphans();
  }
}

void Service::set_rate_multiplier(double m) noexcept {
  rate_multiplier_.store(m <= 0.0 ? 1.0 : m, std::memory_order_relaxed);
}

}  // namespace dc::service
