#include "reclaim/hazard_pointers.hpp"

#include <algorithm>

namespace dc::reclaim {

HazardDomain::~HazardDomain() {
  // Caller contract: the data structure is quiesced (no concurrent ops), so
  // every deferred node can be freed regardless of stale announcements.
  for (auto& slot : states_) {
    ThreadState* st = slot.load(std::memory_order_acquire);
    if (st == nullptr) continue;
    for (const Retired& r : st->retired) r.deleter(r.ptr);
    delete st;
  }
}

HazardDomain::ThreadState& HazardDomain::thread_state() noexcept {
  const uint32_t tid = util::thread_id();
  ThreadState* st = states_[tid].load(std::memory_order_acquire);
  if (st == nullptr) {
    // Thread ids are unique among live threads, so only this thread can be
    // installing at this index; the CAS guards against a recycled id racing
    // with a very late store from a dead thread's cache (paranoia, cheap).
    auto* fresh = new ThreadState;
    ThreadState* expected = nullptr;
    if (states_[tid].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel)) {
      st = fresh;
    } else {
      delete fresh;
      st = expected;
    }
  }
  return *st;
}

uint32_t HazardDomain::scan_threshold() const noexcept {
  const uint32_t announced = util::thread_id_high_water() * kSlots;
  return 2 * (announced < 16 ? 16 : announced);
}

void HazardDomain::retire(void* p, Deleter deleter) noexcept {
  ThreadState& st = thread_state();
  st.retired.push_back(Retired{p, deleter});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (st.retired.size() >= scan_threshold()) scan();
}

void HazardDomain::scan() noexcept {
  // Stage 1: snapshot all announcements.
  std::vector<void*> announced;
  const uint32_t threads = util::thread_id_high_water();
  announced.reserve(threads * kSlots);
  for (uint32_t i = 0; i < threads * kSlots; ++i) {
    void* p = slots_[i].value.load(std::memory_order_seq_cst);
    if (p != nullptr) announced.push_back(p);
  }
  std::sort(announced.begin(), announced.end());
  // Stage 2: free every retired node not announced.
  ThreadState& st = thread_state();
  std::vector<Retired> keep;
  keep.reserve(st.retired.size());
  uint64_t freed = 0;
  for (const Retired& r : st.retired) {
    if (std::binary_search(announced.begin(), announced.end(), r.ptr)) {
      keep.push_back(r);
    } else {
      r.deleter(r.ptr);
      ++freed;
    }
  }
  st.retired.swap(keep);
  retired_total_.fetch_sub(freed, std::memory_order_relaxed);
}

void HazardDomain::flush() noexcept {
  ThreadState& st = thread_state();
  std::size_t prev = st.retired.size() + 1;
  while (!st.retired.empty() && st.retired.size() < prev) {
    prev = st.retired.size();
    scan();
  }
}

}  // namespace dc::reclaim
