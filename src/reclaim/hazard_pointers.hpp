// Hazard pointers (Michael, IEEE TPDS 2004) — safe memory reclamation for
// lock-free objects without HTM.
//
// This is one of the two non-HTM reclamation schemes the paper positions
// its HTM queue against (§1.1–1.2): a thread announces each pointer it is
// about to dereference in a per-thread hazard slot; a reclaimer may free a
// retired node only after verifying no slot announces it. The announce /
// validate / scan machinery is exactly the per-operation overhead the
// paper's Figure 1 quantifies at 35–75%.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/padded.hpp"
#include "util/thread_id.hpp"

namespace dc::reclaim {

// A reclamation domain: one per data structure (or shared). `kSlots` hazard
// pointers per thread (the Michael–Scott queue needs 2).
class HazardDomain {
 public:
  static constexpr uint32_t kSlots = 4;

  using Deleter = void (*)(void*);

  HazardDomain() = default;
  ~HazardDomain();

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Announces `src`'s current value in the calling thread's hazard slot
  // `slot` and returns it once the announcement is stable (re-validating
  // that src still holds it, per Michael's protocol).
  template <class T>
  T* protect(uint32_t slot, const std::atomic<T*>& src) noexcept {
    std::atomic<void*>& hp = slot_ref(slot);
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      hp.store(p, std::memory_order_seq_cst);
      T* again = src.load(std::memory_order_acquire);
      if (again == p) return p;
      p = again;
    }
  }

  // Announces an already-loaded pointer (caller must re-validate reachability
  // itself afterwards).
  void announce(uint32_t slot, void* p) noexcept {
    slot_ref(slot).store(p, std::memory_order_seq_cst);
  }

  void clear(uint32_t slot) noexcept {
    slot_ref(slot).store(nullptr, std::memory_order_release);
  }

  void clear_all() noexcept {
    for (uint32_t s = 0; s < kSlots; ++s) clear(s);
  }

  // Defers freeing `p` until no thread announces it. The deleter runs at an
  // unspecified later point (during some thread's scan) or at domain
  // destruction.
  void retire(void* p, Deleter deleter) noexcept;

  // Scans hazard slots and frees every retired node not announced. Called
  // automatically when a thread's retire list exceeds the threshold;
  // exposed for tests and for quiescing in benchmarks.
  void scan() noexcept;

  // Drains the calling thread's retire list as far as possible (retries
  // scans; nodes still announced by *other* threads remain deferred).
  void flush() noexcept;

  // Number of nodes whose reclamation is currently deferred (approximate;
  // for tests/benchmarks).
  uint64_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    Deleter deleter;
  };
  struct ThreadState {
    std::vector<Retired> retired;
  };

  std::atomic<void*>& slot_ref(uint32_t slot) noexcept {
    return slots_[util::thread_id() * kSlots + slot].value;
  }

  ThreadState& thread_state() noexcept;

  // Retire-list scan threshold: 2x the maximum number of simultaneously
  // announced pointers, Michael's recommended constant (amortizes scan cost
  // to O(1) per retire while bounding deferred memory).
  uint32_t scan_threshold() const noexcept;

  util::Padded<std::atomic<void*>> slots_[util::kMaxThreads * kSlots]{};
  std::atomic<uint64_t> retired_total_{0};

  // Thread states are registered so the destructor and cross-thread flush
  // can find leftover retired nodes.
  std::atomic<ThreadState*> states_[util::kMaxThreads]{};
};

}  // namespace dc::reclaim
