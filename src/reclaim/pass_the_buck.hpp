// The "Repeat Offender Problem" (ROP) solved by Pass The Buck
// (Herlihy, Luchangco, Martin, Moir — ACM TOCS 2005).
//
// This is the second non-HTM reclamation scheme the paper compares against
// ("Michael-Scott ROP" in Figure 1). Clients *hire* guards, *post* a guard
// on a value before dereferencing it (and re-validate reachability after
// posting, as with hazard pointers), and pass candidate values through
// *Liberate*; Liberate returns the subset that is safe to free and "hands
// off" values still guarded to the trapping guard's handoff slot, to be
// picked up by a later Liberate.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/padded.hpp"
#include "util/tagged_ptr.hpp"

namespace dc::reclaim {

using GuardId = uint32_t;
inline constexpr GuardId kNoGuard = ~0u;

class PassTheBuck {
 public:
  static constexpr uint32_t kMaxGuards = 1024;

  PassTheBuck() = default;
  PassTheBuck(const PassTheBuck&) = delete;
  PassTheBuck& operator=(const PassTheBuck&) = delete;

  // Hires a guard for the calling thread (ROP: HireGuard). Guards are a
  // reusable resource; firing returns them to the pool.
  GuardId hire_guard() noexcept;
  void fire_guard(GuardId g) noexcept;

  // Posts `v` on guard g (ROP: PostGuard; nullptr stands for "no value").
  // The caller must re-validate that v is still reachable *after* posting
  // before dereferencing it — identical to the hazard-pointer protocol.
  void post_guard(GuardId g, void* v) noexcept;

  // Passes candidate values to the domain. On return, `values` contains
  // exactly those now safe to free (possibly including previously trapped
  // values picked up from handoff slots); trapped values have been handed
  // off and will emerge from a later liberate.
  void liberate(std::vector<void*>& values) noexcept;

  // Approximate number of values currently parked in handoff slots.
  uint64_t handoff_count() const noexcept;

  // Highest hired guard index + 1 (bounds liberate's scan).
  uint32_t guards_in_use() const noexcept {
    return guard_high_water_.load(std::memory_order_acquire);
  }

 private:
  struct Guard {
    std::atomic<bool> hired{false};
    std::atomic<void*> post{nullptr};
    std::atomic<util::TaggedPtr<void>> handoff{};
  };

  util::Padded<Guard> guards_[kMaxGuards]{};
  std::atomic<uint32_t> guard_high_water_{0};

  // Values whose handoff CAS was contended away or that were still posted
  // at pass-2 time; re-injected by the next liberate. Rarely touched.
  mutable std::mutex pending_mu_;
  std::vector<void*> pending_;
};

}  // namespace dc::reclaim
