#include "reclaim/pass_the_buck.hpp"

#include <algorithm>

namespace dc::reclaim {

// Safety argument (mirrors the ROP/PTB invariant): a value v may be freed
// only if no guard g "traps" it, i.e. no g has post(g) == v continuously
// since before v was passed to liberate. A post that started *after* v's
// injection is harmless: the ROP client protocol re-validates reachability
// after posting (v is already unlinked, so validation fails and the client
// never dereferences). Therefore observing post(g) != v at any single
// instant after injection breaks continuity for g and makes g irrelevant to
// v's safety.
//
// Pass 1 samples every guard's post once; a value that no guard posted at
// its sample instant is safe. A trapped value is parked in the trapping
// guard's handoff slot (to be picked up by a later liberate once the guard
// moves on) or, if the versioned CAS is contended away, moved to the
// domain's pending list. A value evicted from a handoff slot has broken
// continuity for *that* guard only, so pass 2 re-checks it against a fresh
// snapshot of all posts before declaring it safe.

GuardId PassTheBuck::hire_guard() noexcept {
  for (uint32_t g = 0; g < kMaxGuards; ++g) {
    bool expected = false;
    if (guards_[g]->hired.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      uint32_t hw = guard_high_water_.load(std::memory_order_relaxed);
      while (hw < g + 1 && !guard_high_water_.compare_exchange_weak(
                               hw, g + 1, std::memory_order_acq_rel)) {
      }
      return g;
    }
  }
  return kNoGuard;  // pool exhausted (configuration error in practice)
}

void PassTheBuck::fire_guard(GuardId g) noexcept {
  if (g == kNoGuard) return;
  guards_[g]->post.store(nullptr, std::memory_order_release);
  guards_[g]->hired.store(false, std::memory_order_release);
}

void PassTheBuck::post_guard(GuardId g, void* v) noexcept {
  // seq_cst so the post is globally ordered against liberate's samples —
  // the same store-load fence hazard pointers need.
  guards_[g]->post.store(v, std::memory_order_seq_cst);
}

void PassTheBuck::liberate(std::vector<void*>& values) noexcept {
  // Re-inject values parked on the pending list by contended earlier calls.
  {
    std::lock_guard lock(pending_mu_);
    values.insert(values.end(), pending_.begin(), pending_.end());
    pending_.clear();
  }

  const uint32_t n = guards_in_use();
  std::vector<void*> recheck;

  for (uint32_t gi = 0; gi < n; ++gi) {
    Guard& g = *guards_[gi];
    void* v = g.post.load(std::memory_order_seq_cst);
    auto vit = v == nullptr ? values.end()
                            : std::find(values.begin(), values.end(), v);
    if (vit != values.end()) {
      // g traps v (conservatively): park it in g's handoff slot.
      bool parked = false;
      for (int attempts = 0; attempts < 3 && !parked; ++attempts) {
        auto h = g.handoff.load(std::memory_order_acquire);
        if (h.ptr == v) {
          parked = true;  // another liberate already parked v here
          break;
        }
        if (g.handoff.compare_exchange_strong(
                h, util::TaggedPtr<void>{v, h.tag + 1},
                std::memory_order_acq_rel)) {
          parked = true;
          if (h.ptr != nullptr) {
            // Evicted value: continuity broken for this guard at this
            // instant (post == v != h.ptr); pass 2 checks the other guards.
            recheck.push_back(h.ptr);
          }
        }
      }
      values.erase(std::find(values.begin(), values.end(), v));
      if (!parked) {
        // Contended away; keep v un-freed on the pending list.
        std::lock_guard lock(pending_mu_);
        pending_.push_back(v);
      }
      continue;
    }
    // g traps nothing of ours; opportunistically pick up a parked value the
    // guard has moved off (post != parked value observed => continuity for
    // g broken; pass 2 checks the rest).
    auto h = g.handoff.load(std::memory_order_acquire);
    if (h.ptr != nullptr && h.ptr != v) {
      if (g.handoff.compare_exchange_strong(h,
                                            util::TaggedPtr<void>{nullptr,
                                                                  h.tag + 1},
                                            std::memory_order_acq_rel)) {
        recheck.push_back(h.ptr);
      }
    }
  }

  // Pass 2: a recheck value is safe only if no guard posts it right now
  // (any continuous trap would still be visible in this snapshot).
  for (void* w : recheck) {
    bool posted = false;
    for (uint32_t gi = 0; gi < n && !posted; ++gi) {
      posted = guards_[gi]->post.load(std::memory_order_seq_cst) == w;
    }
    if (posted) {
      std::lock_guard lock(pending_mu_);
      pending_.push_back(w);
    } else {
      values.push_back(w);
    }
  }
}

uint64_t PassTheBuck::handoff_count() const noexcept {
  uint64_t count = 0;
  const uint32_t n = guards_in_use();
  for (uint32_t gi = 0; gi < n; ++gi) {
    if (guards_[gi]->handoff.load(std::memory_order_acquire).ptr != nullptr) {
      ++count;
    }
  }
  std::lock_guard lock(pending_mu_);
  return count + pending_.size();
}

}  // namespace dc::reclaim
