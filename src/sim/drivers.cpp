#include "sim/drivers.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>

#include "obs/conflict_map.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "sim/pacing.hpp"
#include "util/barrier.hpp"
#include "util/cycles.hpp"
#include "util/padded.hpp"
#include "util/rng.hpp"

namespace dc::sim {

using collect::DynamicCollect;
using collect::Handle;
using collect::Value;

namespace {

void sleep_ms(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
}

uint32_t share_of(uint32_t total, uint32_t parties, uint32_t index) {
  return total / parties + (index < total % parties ? 1 : 0);
}

// Observation plumbing. Every worker (including the collector threads) tags
// itself with the algorithm's name so conflict attribution can report which
// algorithm owned an aborting transaction. Per-operation latency timing is
// runtime-gated: the switch is read once per thread before the measurement
// barrier, so an untimed run pays nothing inside the loop.
void tag_thread(const DynamicCollect& obj) {
  obs::set_thread_context(obs::register_context(obj.name()));
}

template <typename F>
decltype(auto) timed(bool on, obs::OpKind op, F&& f) {
  if (!on) return f();
  const uint64_t c0 = util::rdcycles();
  if constexpr (std::is_void_v<std::invoke_result_t<F&>>) {
    f();
    obs::record_op(op, util::rdcycles() - c0);
  } else {
    auto r = f();
    obs::record_op(op, util::rdcycles() - c0);
    return r;
  }
}

}  // namespace

double run_mixed(DynamicCollect& obj, uint32_t threads, uint32_t total_slots,
                 uint32_t preregistered, const MixedMix& mix,
                 double duration_ms) {
  std::atomic<bool> stop{false};
  util::SpinBarrier barrier(threads + 1);
  std::vector<util::Padded<uint64_t>> ops(threads);
  std::vector<std::thread> team;
  for (uint32_t t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      const uint32_t max_mine = share_of(total_slots, threads, t);
      const uint32_t pre_mine = share_of(preregistered, threads, t);
      util::Xoshiro256 rng(0x9E3779B9u + t);
      std::vector<Handle> queue;  // FIFO of this thread's handles
      std::size_t lru = 0;
      Value next_value = (static_cast<Value>(t) << 48) | 1;
      for (uint32_t i = 0; i < pre_mine && i < max_mine; ++i) {
        queue.push_back(obj.register_handle(next_value++));
      }
      std::vector<Value> buf;
      buf.reserve(total_slots * 2);
      tag_thread(obj);
      const bool timing = obs::timing_enabled();
      barrier.arrive_and_wait();
      uint64_t local_ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t dice = rng.next_below(100);
        if (dice < mix.collect_pct) {
          timed(timing, obs::OpKind::kCollect, [&] { obj.collect(buf); });
        } else if (dice < mix.collect_pct + mix.update_pct) {
          if (!queue.empty()) {
            timed(timing, obs::OpKind::kUpdate, [&] {
              obj.update(queue[lru % queue.size()], next_value);
            });
            ++next_value;
            ++lru;
          }
        } else if (dice < mix.collect_pct + mix.update_pct +
                              mix.register_pct) {
          if (queue.size() < max_mine) {
            queue.push_back(timed(timing, obs::OpKind::kRegister, [&] {
              return obj.register_handle(next_value++);
            }));
          }
        } else {
          if (!queue.empty()) {
            timed(timing, obs::OpKind::kDeRegister,
                  [&] { obj.deregister(queue.front()); });
            queue.erase(queue.begin());
          }
        }
        ++local_ops;
      }
      ops[t].value = local_ops;
      for (Handle h : queue) obj.deregister(h);
    });
  }
  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sleep_ms(duration_ms);
  stop.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  const double us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
      1000.0;
  uint64_t total_ops = 0;
  for (const auto& o : ops) total_ops += o.value;
  return static_cast<double>(total_ops) / us;
}

CollectorResult run_collect_update(DynamicCollect& obj, uint32_t updaters,
                                   uint32_t handles_total,
                                   uint64_t update_period_cycles,
                                   double duration_ms) {
  std::atomic<bool> stop{false};
  util::SpinBarrier barrier(updaters + 2);
  std::vector<std::thread> team;
  for (uint32_t t = 0; t < updaters; ++t) {
    team.emplace_back([&, t] {
      // Each updater registers its share; it updates only its first handle,
      // the rest exist to keep the registered total constant (§5.3).
      const uint32_t mine = share_of(handles_total, updaters, t);
      std::vector<Handle> handles;
      Value v = (static_cast<Value>(t) << 48) | 1;
      for (uint32_t i = 0; i < mine; ++i) {
        handles.push_back(obj.register_handle(v++));
      }
      tag_thread(obj);
      const bool timing = obs::timing_enabled();
      barrier.arrive_and_wait();
      if (!handles.empty()) {
        uint64_t mark = util::rdcycles();
        while (!stop.load(std::memory_order_relaxed)) {
          mark = pace_until(mark, update_period_cycles);
          timed(timing, obs::OpKind::kUpdate,
                [&] { obj.update(handles[0], v); });
          ++v;
        }
      } else {
        while (!stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
      }
      for (Handle h : handles) obj.deregister(h);
    });
  }
  CollectorResult result;
  std::thread collector([&] {
    std::vector<Value> buf;
    buf.reserve(handles_total * 2);
    tag_thread(obj);
    const bool timing = obs::timing_enabled();
    barrier.arrive_and_wait();
    const uint64_t t0 = util::rdcycles();
    const uint64_t budget = util::ns_to_cycles(
        static_cast<uint64_t>(duration_ms * 1'000'000.0));
    uint64_t collects = 0;
    uint64_t slots = 0;
    while (util::rdcycles() - t0 < budget) {
      timed(timing, obs::OpKind::kCollect, [&] { obj.collect(buf); });
      ++collects;
      slots += buf.size();
    }
    const double us = util::cycles_to_ns(util::rdcycles() - t0) / 1000.0;
    stop.store(true, std::memory_order_release);
    result.collects = collects;
    result.collects_per_us = static_cast<double>(collects) / us;
    result.slots_per_us = static_cast<double>(slots) / us;
  });
  barrier.arrive_and_wait();  // release everyone
  collector.join();
  for (auto& t : team) t.join();
  return result;
}

CollectorResult run_collect_dereg(DynamicCollect& obj, uint32_t churners,
                                  uint32_t total_slots,
                                  uint64_t register_period_cycles,
                                  uint64_t dereg_period_cycles,
                                  double duration_ms) {
  std::atomic<bool> stop{false};
  util::SpinBarrier barrier(churners + 2);
  std::vector<std::thread> team;
  for (uint32_t t = 0; t < churners; ++t) {
    team.emplace_back([&, t] {
      const uint32_t mine = share_of(total_slots, churners, t);
      std::vector<Handle> handles;
      Value v = (static_cast<Value>(t) << 48) | 1;
      for (uint32_t i = 0; i < mine; ++i) {
        handles.push_back(obj.register_handle(v++));
      }
      tag_thread(obj);
      const bool timing = obs::timing_enabled();
      barrier.arrive_and_wait();
      std::size_t rr = 0;
      while (!handles.empty() && !stop.load(std::memory_order_relaxed)) {
        // Deregister -> (register period) -> re-register -> (deregister
        // period) -> next handle (§5.4).
        const std::size_t i = rr % handles.size();
        uint64_t mark = util::rdcycles();
        timed(timing, obs::OpKind::kDeRegister,
              [&] { obj.deregister(handles[i]); });
        mark = pace_until(mark, register_period_cycles);
        handles[i] = timed(timing, obs::OpKind::kRegister,
                           [&] { return obj.register_handle(v++); });
        pace_until(mark, dereg_period_cycles);
        ++rr;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
      for (Handle h : handles) obj.deregister(h);
    });
  }
  CollectorResult result;
  std::thread collector([&] {
    std::vector<Value> buf;
    buf.reserve(total_slots * 2);
    tag_thread(obj);
    const bool timing = obs::timing_enabled();
    barrier.arrive_and_wait();
    const uint64_t t0 = util::rdcycles();
    const uint64_t budget = util::ns_to_cycles(
        static_cast<uint64_t>(duration_ms * 1'000'000.0));
    uint64_t collects = 0;
    uint64_t slots = 0;
    while (util::rdcycles() - t0 < budget) {
      timed(timing, obs::OpKind::kCollect, [&] { obj.collect(buf); });
      ++collects;
      slots += buf.size();
    }
    const double us = util::cycles_to_ns(util::rdcycles() - t0) / 1000.0;
    stop.store(true, std::memory_order_release);
    result.collects = collects;
    result.collects_per_us = static_cast<double>(collects) / us;
    result.slots_per_us = static_cast<double>(slots) / us;
  });
  barrier.arrive_and_wait();
  collector.join();
  for (auto& t : team) t.join();
  return result;
}

std::vector<TimePoint> run_varying_slots(DynamicCollect& obj,
                                         uint32_t updaters,
                                         uint64_t update_period_cycles,
                                         uint32_t low_slots,
                                         uint32_t high_slots, double phase_ms,
                                         double total_ms, double bucket_ms) {
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> phase{0};  // even: low target, odd: high target
  util::SpinBarrier barrier(updaters + 2);
  std::vector<std::thread> team;
  for (uint32_t t = 0; t < updaters; ++t) {
    team.emplace_back([&, t] {
      const uint32_t low_mine = share_of(low_slots, updaters, t);
      const uint32_t high_mine = share_of(high_slots, updaters, t);
      std::vector<Handle> handles;
      Value v = (static_cast<Value>(t) << 48) | 1;
      for (uint32_t i = 0; i < low_mine; ++i) {
        handles.push_back(obj.register_handle(v++));
      }
      tag_thread(obj);
      const bool timing = obs::timing_enabled();
      barrier.arrive_and_wait();
      uint64_t mark = util::rdcycles();
      while (!stop.load(std::memory_order_relaxed)) {
        mark = pace_until(mark, update_period_cycles);
        // Walk the handle count toward the current phase's target, one
        // operation per pacing interval.
        const uint32_t target =
            (phase.load(std::memory_order_acquire) % 2 == 0) ? low_mine
                                                             : high_mine;
        if (handles.size() < target) {
          handles.push_back(timed(timing, obs::OpKind::kRegister, [&] {
            return obj.register_handle(v++);
          }));
        } else if (handles.size() > target) {
          timed(timing, obs::OpKind::kDeRegister,
                [&] { obj.deregister(handles.back()); });
          handles.pop_back();
        } else if (!handles.empty()) {
          timed(timing, obs::OpKind::kUpdate,
                [&] { obj.update(handles[0], v); });
          ++v;
        }
      }
      for (Handle h : handles) obj.deregister(h);
    });
  }
  std::vector<TimePoint> series;
  std::thread collector([&] {
    std::vector<Value> buf;
    buf.reserve(high_slots * 2);
    tag_thread(obj);
    const bool timing = obs::timing_enabled();
    barrier.arrive_and_wait();
    const uint64_t t0 = util::rdcycles();
    const uint64_t total_budget = util::ns_to_cycles(
        static_cast<uint64_t>(total_ms * 1'000'000.0));
    const uint64_t bucket_budget = util::ns_to_cycles(
        static_cast<uint64_t>(bucket_ms * 1'000'000.0));
    const uint64_t phase_budget = util::ns_to_cycles(
        static_cast<uint64_t>(phase_ms * 1'000'000.0));
    uint64_t bucket_start = t0;
    uint64_t collects_in_bucket = 0;
    for (;;) {
      const uint64_t now = util::rdcycles();
      if (now - t0 >= total_budget) break;
      phase.store(static_cast<uint32_t>((now - t0) / phase_budget),
                  std::memory_order_release);
      if (now - bucket_start >= bucket_budget) {
        series.push_back(
            {util::cycles_to_ns(bucket_start - t0) / 1e6,
             static_cast<double>(collects_in_bucket) /
                 (util::cycles_to_ns(now - bucket_start) / 1000.0)});
        bucket_start = now;
        collects_in_bucket = 0;
      }
      timed(timing, obs::OpKind::kCollect, [&] { obj.collect(buf); });
      ++collects_in_bucket;
    }
    stop.store(true, std::memory_order_release);
  });
  barrier.arrive_and_wait();
  collector.join();
  for (auto& t : team) t.join();
  return series;
}

}  // namespace dc::sim
