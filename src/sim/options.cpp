#include "sim/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace dc::sim {

Options Options::parse(int argc, char** argv) {
  Options opts;
  // Default thread budget: the paper's 16 when the hardware plausibly
  // supports it, scaled down on small hosts (oversubscribing a single core
  // 16:1 starves the measured thread; see src/sim/pacing.hpp).
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned suggested = hw == 0 ? 16 : hw * 4;
  opts.max_threads = suggested > 16 ? 16 : (suggested < 4 ? 4 : suggested);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      opts.json_path = next_value();
    } else if (std::strcmp(arg, "--trace") == 0) {
      opts.trace_path = next_value();
    } else if (std::strcmp(arg, "--clock") == 0) {
      opts.clock = next_value();
    } else if (std::strcmp(arg, "--retry") == 0) {
      opts.retry = next_value();
    } else if (std::strcmp(arg, "--validate") == 0) {
      opts.validate = next_value();
    } else if (std::strcmp(arg, "--fault-rate") == 0) {
      opts.fault_rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--crash-rate") == 0) {
      opts.crash_rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--mem-limit") == 0) {
      const char* v = next_value();
      char* end = nullptr;
      unsigned long long bytes = std::strtoull(v, &end, 0);
      if (*end == 'k' || *end == 'K') {
        bytes <<= 10;
      } else if (*end == 'm' || *end == 'M') {
        bytes <<= 20;
      } else if (*end == 'g' || *end == 'G') {
        bytes <<= 30;
      } else if (*end != '\0' || end == v) {
        std::fprintf(stderr, "--mem-limit wants BYTES[k|m|g], got %s\n", v);
        std::exit(2);
      }
      opts.mem_limit = bytes;
    } else if (std::strcmp(arg, "--alloc-fault-rate") == 0) {
      opts.alloc_fault_rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--sample-interval") == 0) {
      opts.sample_interval_ms = std::atof(next_value());
    } else if (std::strcmp(arg, "--slo") == 0) {
      opts.slo = next_value();
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      opts.metrics_path = next_value();
    } else if (std::strcmp(arg, "--slo-observe") == 0) {
      opts.slo_observe = true;
    } else if (std::strcmp(arg, "--arrival-rate") == 0) {
      opts.arrival_rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--burstiness") == 0) {
      opts.burstiness = std::atof(next_value());
    } else if (std::strcmp(arg, "--chaos") == 0) {
      opts.chaos_path = next_value();
    } else if (std::strcmp(arg, "--workers") == 0) {
      opts.workers = static_cast<uint32_t>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--queue-capacity") == 0) {
      opts.queue_capacity = static_cast<uint32_t>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--longtail") == 0) {
      const char* v = next_value();
      char* end = nullptr;
      const double frac = std::strtod(v, &end);
      if (end == v || *end != ':' || frac < 0.0 || frac > 1.0) {
        std::fprintf(stderr, "--longtail wants FRAC:DWELL, got %s\n", v);
        std::exit(2);
      }
      const int dwell = std::atoi(end + 1);
      if (dwell <= 0) {
        std::fprintf(stderr, "--longtail DWELL must be positive\n");
        std::exit(2);
      }
      opts.longtail_fraction = frac;
      opts.longtail_requests = static_cast<uint32_t>(dwell);
    } else if (std::strcmp(arg, "--hist") == 0) {
      opts.hist = true;
    } else if (std::strcmp(arg, "--duration-ms") == 0) {
      opts.duration_ms = std::atof(next_value());
    } else if (std::strcmp(arg, "--repeats") == 0) {
      opts.repeats = std::atoi(next_value());
    } else if (std::strcmp(arg, "--max-threads") == 0) {
      opts.max_threads = static_cast<uint32_t>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.duration_ms = 200.0;
      opts.repeats = 10;  // the paper averages 10 runs per point
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_help(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (see --help)\n", arg);
      std::exit(2);
    }
  }
  if (opts.repeats < 1) opts.repeats = 1;
  if (opts.duration_ms < 1.0) opts.duration_ms = 1.0;
  if (opts.max_threads < 1) opts.max_threads = 1;
  if (opts.fault_rate > 1.0) opts.fault_rate = 1.0;
  if (opts.crash_rate > 1.0) opts.crash_rate = 1.0;
  if (opts.alloc_fault_rate > 1.0) opts.alloc_fault_rate = 1.0;
  if (opts.arrival_rate < 0.0) opts.arrival_rate = 0.0;
  if (opts.burstiness < 0.0) opts.burstiness = 0.0;
  if (opts.burstiness > 0.95) opts.burstiness = 0.95;
  if (opts.sample_interval_ms < 0.0) opts.sample_interval_ms = 0.0;
  // SLO targets and the Prometheus exposition are computed by the sampler;
  // asking for either without a sampling interval implies the 10 ms
  // default rather than silently producing nothing.
  if (opts.sample_interval_ms == 0.0 &&
      (!opts.slo.empty() || !opts.metrics_path.empty())) {
    opts.sample_interval_ms = 10.0;
  }
  return opts;
}

void Options::print_help(const char* prog) {
  std::printf(
      "usage: %s [--csv] [--json PATH] [--trace PATH] [--clock gv1|gv5] "
      "[--retry cause|fixed] [--validate exact|sig] [--fault-rate P] "
      "[--crash-rate P] [--mem-limit BYTES[k|m|g]] [--alloc-fault-rate P] "
      "[--sample-interval MS] [--slo SPEC] "
      "[--metrics-out PATH] [--slo-observe] [--arrival-rate R] "
      "[--burstiness B] [--chaos PATH] [--workers N] [--queue-capacity N] "
      "[--longtail FRAC:DWELL] [--hist] [--duration-ms N] [--repeats N] "
      "[--max-threads N] [--full]\n",
      prog);
}

std::vector<uint32_t> thread_sweep(const Options& opts) {
  std::vector<uint32_t> sweep;
  for (uint32_t t : {1u, 2u, 4u, 8u, 12u, 16u}) {
    if (t <= opts.max_threads) sweep.push_back(t);
  }
  if (sweep.empty()) sweep.push_back(1);
  return sweep;
}

}  // namespace dc::sim
