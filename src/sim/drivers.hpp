// Workload drivers reproducing the paper's microbenchmarks (§5.2-§5.5).
// Each returns throughput in ops/us, matching the figures' y-axes.
#pragma once

#include <cstdint>
#include <vector>

#include "collect/collect.hpp"

namespace dc::sim {

// §5.2 / Figure 3 — Collect-dominated mixed workload.
// Threads draw operations with the given distribution; each thread keeps a
// queue of at most total_slots/threads handles (Register appends one,
// DeRegister removes one, Update writes the least recently used). A total
// of `preregistered` handles is registered (evenly) before measurement.
struct MixedMix {
  uint32_t collect_pct = 90;
  uint32_t update_pct = 8;
  uint32_t register_pct = 1;  // remainder: deregister
};

double run_mixed(collect::DynamicCollect& obj, uint32_t threads,
                 uint32_t total_slots, uint32_t preregistered,
                 const MixedMix& mix, double duration_ms);

// §5.3 / Figures 4-6 — Collect throughput under paced concurrent Updates.
// One collector thread; `updaters` threads each update one of their handles
// every `update_period_cycles`; `handles_total` handles are registered
// before measurement (spread over the updaters; extras stay idle, §5.3).
struct CollectorResult {
  double collects_per_us = 0.0;
  double slots_per_us = 0.0;
  uint64_t collects = 0;
};

CollectorResult run_collect_update(collect::DynamicCollect& obj,
                                   uint32_t updaters, uint32_t handles_total,
                                   uint64_t update_period_cycles,
                                   double duration_ms);

// §5.4 / Figure 7 — Collect throughput under paced Register/DeRegister
// churn. Each churner owns total_slots/churners handles and cycles through
// them: deregister, wait register_period, re-register, wait dereg_period.
CollectorResult run_collect_dereg(collect::DynamicCollect& obj,
                                  uint32_t churners, uint32_t total_slots,
                                  uint64_t register_period_cycles,
                                  uint64_t dereg_period_cycles,
                                  double duration_ms);

// §5.5 / Figure 8 — Collect throughput over time while the number of
// registered handles alternates between low_slots and high_slots every
// phase_ms. Returns collects/us per bucket_ms window.
struct TimePoint {
  double t_ms;
  double collects_per_us;
};

std::vector<TimePoint> run_varying_slots(collect::DynamicCollect& obj,
                                         uint32_t updaters,
                                         uint64_t update_period_cycles,
                                         uint32_t low_slots,
                                         uint32_t high_slots, double phase_ms,
                                         double total_ms, double bucket_ms);

}  // namespace dc::sim
