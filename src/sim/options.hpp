// Command-line options shared by the benchmark binaries.
//
// Every bench runs with sane quick defaults (so `for b in build/bench/*; do
// $b; done` completes in minutes on a small host) and accepts:
//   --csv             machine-readable output
//   --json PATH       additionally write a JSON report to PATH (bench_common)
//   --duration-ms N   measurement window per point (default 50)
//   --repeats N       repetitions averaged per point (default 3)
//   --max-threads N   cap on swept thread counts (default: min(16, 4x cores))
//   --full            paper-scale durations (10 runs, 200 ms windows)
//   --hist            record per-operation latency histograms (obs layer);
//                     p50/p90/p99 appear in the diagnostics and --json
//   --trace PATH      enable the full obs layer (event trace + conflict
//                     attribution + histograms) and write a Chrome/Perfetto
//                     trace to PATH on exit; the event trace itself needs a
//                     -DDC_TRACE=ON build
//   --clock POLICY    global-clock policy: gv5 (sloppy, default) or gv1
//                     (shared fetch_add reference)
//   --retry POLICY    retry policy: cause (cause-aware triage, default) or
//                     fixed (legacy fixed-threshold backoff)
//   --validate MODE   conflict-validation backend: exact (read-set walk,
//                     default) or sig (Bloom signatures + commit ring)
//   --fault-rate P    inject Rock-style spurious aborts into a fraction P of
//                     transaction attempts (0..1, default 0 = off); benches
//                     use this to demonstrate graceful degradation, never
//                     for the published figures
//   --crash-rate P    kill a fraction P of atomic blocks mid-flight by
//                     abandoning the simulated thread without cleanup (0..1,
//                     default 0 = off); exercises the recoverable TLE lock
//                     and the lease reaper, never the published figures
//   --mem-limit BYTES bound the pool's OS footprint: past the limit,
//                     allocations fail recoverably (PoolExhausted /
//                     kAllocFailed) instead of growing; 0 (default) =
//                     unbounded. Suffixes k/m/g accepted
//   --alloc-fault-rate P  deny a fraction P of pool allocation attempts
//                     from a seeded per-thread stream (0..1, default 0 =
//                     off); the memory tier of the fault/crash injection
//                     family, never the published figures
//   --sample-interval MS  run the continuous-telemetry sampler
//                     (obs/timeline.hpp) with tumbling windows of MS
//                     milliseconds; 0 (the default) spawns no sampler
//                     thread at all. Implied at 10 ms by --slo or
//                     --metrics-out when not given explicitly
//   --slo SPEC        latency SLO targets evaluated per window, e.g.
//                     "commit_p99<50us,update_p999<1ms" (obs/slo.hpp);
//                     any violated window makes the bench exit 3
//   --metrics-out PATH  write a Prometheus-style text exposition of the
//                     end-of-run counters/quantiles/annotations to PATH
//   --slo-observe     report SLO violations without failing: the run exits 0
//                     even when windows violated a --slo target (the JSON /
//                     table still carry violations, episodes and MTTR).
//                     Chaos runs use this to measure recovery time under
//                     deliberately-unmeetable targets
//
// Service-harness options (bench_service only; other benches reject them):
//   --arrival-rate R  open-loop session arrivals per second (default 0 =
//                     the bench's own default)
//   --burstiness B    MMPP burst factor in [0,1): 0 = pure Poisson, larger
//                     values alternate hot/cold phases around the same mean
//   --chaos PATH      timed chaos script (see src/service/chaos.hpp for the
//                     grammar) driving fault storms, worker kills and rate
//                     spikes
//   --workers N       service worker-pool size (default 0 = bench default)
//   --queue-capacity N  bounded accept-queue depth; arrivals that find it
//                     full are shed (counted, never silently dropped)
//   --longtail FRAC:DWELL  session mix: a fraction FRAC of arrivals are
//                     persistent sessions issuing DWELL requests before
//                     deregistering (the rest are short-lived churn)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dc::sim {

struct Options {
  bool csv = false;
  std::string json_path;   // empty = no JSON report
  std::string trace_path;  // empty = no Chrome trace dump
  std::string clock;       // empty = keep the process default (gv5/DC_CLOCK)
  std::string retry;       // empty = keep the process default (cause/DC_RETRY)
  std::string validate;    // empty = keep the process default
                           // (exact/DC_VALIDATE)
  double fault_rate = -1.0;  // negative = keep the process default (DC_FAULT)
  double crash_rate = -1.0;  // negative = keep the process default (DC_CRASH)
  // ~0 = keep the process default (DC_MEM); 0 = explicitly unbounded.
  uint64_t mem_limit = ~0ull;
  double alloc_fault_rate = -1.0;  // negative = default (DC_ALLOC_FAULT)
  double sample_interval_ms = 0.0;  // 0 = sampler off (no thread spawned)
  std::string slo;          // empty = no SLO targets
  std::string metrics_path; // empty = no Prometheus exposition
  bool slo_observe = false; // report SLO verdicts but always exit 0
  double arrival_rate = 0.0;   // sessions/s; 0 = bench default
  double burstiness = 0.0;     // [0,1); 0 = pure Poisson
  std::string chaos_path;      // empty = no chaos script
  uint32_t workers = 0;        // service pool size; 0 = bench default
  uint32_t queue_capacity = 0; // accept-queue depth; 0 = bench default
  double longtail_fraction = -1.0;  // negative = bench default
  uint32_t longtail_requests = 0;   // 0 = bench default
  bool hist = false;       // per-operation latency histograms
  double duration_ms = 50.0;
  int repeats = 3;
  uint32_t max_threads = 16;  // parse() lowers this on small hosts

  static Options parse(int argc, char** argv);
  static void print_help(const char* prog);
};

// Thread counts swept in the paper's figures (1..16), capped by the option.
std::vector<uint32_t> thread_sweep(const Options& opts);

}  // namespace dc::sim
