// Cycle-denominated pacing for the Collect-Update / Collect-(De)Register
// drivers ("update period [cycles]" in Figures 4-8).
//
// On the paper's 16-core Rock every paced thread had its own core, so a
// PAUSE-spin wait was free. On an oversubscribed host a spin-wait burns the
// measured thread's CPU share and starves the collector; this pacer sleeps
// for long waits and *yields* for short ones. Yield-pacing also preserves
// the period's meaning under oversubscription: a paced thread gets brief
// scheduler turns, and performs its operation on a turn only if the period
// has elapsed — so shorter periods still mean proportionally more
// operations interleaved into the measured thread's transactions.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "util/cycles.hpp"

namespace dc::sim {

// Waits until `period` cycles have elapsed since `start`; returns the cycle
// count at exit (the natural `start` for the next interval).
inline uint64_t pace_until(uint64_t start, uint64_t period) noexcept {
  const uint64_t sleep_threshold = util::ns_to_cycles(200'000);  // 200us
  for (;;) {
    const uint64_t now = util::rdcycles();
    const uint64_t elapsed = now - start;
    if (elapsed >= period) return now;
    const uint64_t left = period - elapsed;
    if (left > sleep_threshold) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<int64_t>(util::cycles_to_ns(left - sleep_threshold))));
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace dc::sim
