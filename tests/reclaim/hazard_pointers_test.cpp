#include "reclaim/hazard_pointers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dc::reclaim {
namespace {

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

void delete_tracked(void* p) { delete static_cast<Tracked*>(p); }

TEST(HazardPointers, RetiredUnannouncedNodeIsFreedByScan) {
  HazardDomain hp;
  auto* t = new Tracked;
  EXPECT_EQ(Tracked::live.load(), 1);
  hp.retire(t, delete_tracked);
  hp.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardPointers, AnnouncedNodeSurvivesScan) {
  HazardDomain hp;
  auto* t = new Tracked;
  hp.announce(0, t);
  hp.retire(t, delete_tracked);
  hp.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // still protected
  hp.clear(0);
  hp.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardPointers, ProtectReturnsCurrentValue) {
  HazardDomain hp;
  auto* t = new Tracked;
  std::atomic<Tracked*> src{t};
  Tracked* got = hp.protect(0, src);
  EXPECT_EQ(got, t);
  hp.clear_all();
  delete t;
}

TEST(HazardPointers, ProtectChasesMovingSource) {
  HazardDomain hp;
  auto* a = new Tracked;
  auto* b = new Tracked;
  std::atomic<Tracked*> src{a};
  // protect() must re-validate; after it returns, its result matches some
  // value src held while announced.
  Tracked* got = hp.protect(0, src);
  EXPECT_EQ(got, a);
  src.store(b);
  got = hp.protect(0, src);
  EXPECT_EQ(got, b);
  hp.clear_all();
  delete a;
  delete b;
}

TEST(HazardPointers, AnnouncementsFromOtherThreadsBlockReclaim) {
  HazardDomain hp;
  auto* t = new Tracked;
  std::atomic<bool> announced{false};
  std::atomic<bool> release{false};
  std::thread other([&] {
    hp.announce(0, t);
    announced.store(true);
    while (!release.load()) std::this_thread::yield();
    hp.clear(0);
  });
  while (!announced.load()) std::this_thread::yield();
  hp.retire(t, delete_tracked);
  hp.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // other thread protects it
  release.store(true);
  other.join();
  hp.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardPointers, RetireCountTracksDeferred) {
  HazardDomain hp;
  auto* a = new Tracked;
  auto* b = new Tracked;
  hp.announce(0, a);
  hp.retire(a, delete_tracked);
  hp.retire(b, delete_tracked);
  EXPECT_EQ(hp.retired_count(), 2u);
  hp.scan();
  EXPECT_EQ(hp.retired_count(), 1u);  // b freed, a protected
  hp.clear_all();
  hp.scan();
  EXPECT_EQ(hp.retired_count(), 0u);
}

TEST(HazardPointers, DomainDestructorFreesLeftovers) {
  {
    HazardDomain hp;
    hp.retire(new Tracked, delete_tracked);
    hp.retire(new Tracked, delete_tracked);
    // No scan: destructor must clean up.
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardPointers, StressRetireWhileProtecting) {
  // Readers repeatedly protect the current node while a writer swaps and
  // retires old ones. The deleter poisons; a reader that dereferences a
  // freed node would see the poison flag.
  struct Node {
    std::atomic<uint64_t> alive{1};
  };
  HazardDomain hp;
  std::atomic<Node*> shared{new Node};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Node* p = hp.protect(0, shared);
        if (p->alive.load(std::memory_order_acquire) != 1) {
          bad.fetch_add(1);
        }
        hp.clear(0);
      }
    });
  }
  for (int i = 0; i < 5000; ++i) {
    Node* fresh = new Node;
    Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
    hp.retire(old, [](void* p) {
      auto* n = static_cast<Node*>(p);
      n->alive.store(0, std::memory_order_release);
      delete n;
    });
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  hp.flush();
  delete shared.load();
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace dc::reclaim
