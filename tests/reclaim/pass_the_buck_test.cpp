#include "reclaim/pass_the_buck.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace dc::reclaim {
namespace {

bool contains(const std::vector<void*>& vs, void* p) {
  return std::find(vs.begin(), vs.end(), p) != vs.end();
}

TEST(PassTheBuck, HireFireRecyclesGuards) {
  PassTheBuck ptb;
  const GuardId a = ptb.hire_guard();
  const GuardId b = ptb.hire_guard();
  EXPECT_NE(a, kNoGuard);
  EXPECT_NE(b, kNoGuard);
  EXPECT_NE(a, b);
  ptb.fire_guard(a);
  const GuardId c = ptb.hire_guard();
  EXPECT_EQ(c, a);  // lowest free guard reused
  ptb.fire_guard(b);
  ptb.fire_guard(c);
}

TEST(PassTheBuck, UnguardedValueIsLiberated) {
  PassTheBuck ptb;
  int x;
  std::vector<void*> vs{&x};
  ptb.liberate(vs);
  EXPECT_TRUE(contains(vs, &x));
}

TEST(PassTheBuck, GuardedValueIsTrappedAndLaterReleased) {
  PassTheBuck ptb;
  const GuardId g = ptb.hire_guard();
  int x;
  ptb.post_guard(g, &x);
  std::vector<void*> vs{&x};
  ptb.liberate(vs);
  EXPECT_FALSE(contains(vs, &x));  // trapped, handed off
  EXPECT_EQ(ptb.handoff_count(), 1u);
  // Guard moves on; the next liberate picks the value up.
  ptb.post_guard(g, nullptr);
  std::vector<void*> vs2;
  ptb.liberate(vs2);
  EXPECT_TRUE(contains(vs2, &x));
  EXPECT_EQ(ptb.handoff_count(), 0u);
  ptb.fire_guard(g);
}

TEST(PassTheBuck, OnlyGuardedValuesAreHeld) {
  PassTheBuck ptb;
  const GuardId g = ptb.hire_guard();
  int x, y, z;
  ptb.post_guard(g, &y);
  std::vector<void*> vs{&x, &y, &z};
  ptb.liberate(vs);
  EXPECT_TRUE(contains(vs, &x));
  EXPECT_FALSE(contains(vs, &y));
  EXPECT_TRUE(contains(vs, &z));
  ptb.post_guard(g, nullptr);
  ptb.fire_guard(g);
  std::vector<void*> drain;
  ptb.liberate(drain);
  EXPECT_TRUE(contains(drain, &y));
}

TEST(PassTheBuck, TwoGuardsSameValue) {
  PassTheBuck ptb;
  const GuardId g1 = ptb.hire_guard();
  const GuardId g2 = ptb.hire_guard();
  int x;
  ptb.post_guard(g1, &x);
  ptb.post_guard(g2, &x);
  std::vector<void*> vs{&x};
  ptb.liberate(vs);
  EXPECT_FALSE(contains(vs, &x));
  // Release one guard: value must stay held (other still posts it).
  ptb.post_guard(g1, nullptr);
  std::vector<void*> vs2;
  ptb.liberate(vs2);
  EXPECT_FALSE(contains(vs2, &x));
  // Release the second: now it emerges.
  ptb.post_guard(g2, nullptr);
  std::vector<void*> vs3;
  ptb.liberate(vs3);
  // May take one more round if it was re-parked.
  if (!contains(vs3, &x)) ptb.liberate(vs3);
  EXPECT_TRUE(contains(vs3, &x));
  ptb.fire_guard(g1);
  ptb.fire_guard(g2);
}

TEST(PassTheBuck, ValueNeverLiberatedWhileContinuouslyGuarded) {
  // Concurrency stress: guard a value continuously while batches of other
  // values churn through liberate; the guarded value must never come out.
  PassTheBuck ptb;
  const GuardId g = ptb.hire_guard();
  int protected_value;
  ptb.post_guard(g, &protected_value);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> escapes{0};
  std::vector<std::thread> liberators;
  for (int t = 0; t < 3; ++t) {
    liberators.emplace_back([&] {
      std::vector<int> locals(64);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<void*> vs;
        vs.push_back(&protected_value);
        for (auto& l : locals) vs.push_back(&l);
        ptb.liberate(vs);
        if (contains(vs, &protected_value)) escapes.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& t : liberators) t.join();
  EXPECT_EQ(escapes.load(), 0u);
  ptb.post_guard(g, nullptr);
  ptb.fire_guard(g);
}

TEST(PassTheBuck, NoValueIsLostUnderChurn) {
  // Every injected value must eventually be liberated exactly once after
  // guards stop posting it.
  PassTheBuck ptb;
  const GuardId g = ptb.hire_guard();
  std::vector<int> values(200);
  std::vector<void*> out;
  // Each value is injected exactly once, while the guard posts it (so it is
  // trapped at injection time and must emerge from a later liberate).
  for (int i = 0; i < 200; ++i) {
    ptb.post_guard(g, &values[static_cast<std::size_t>(i)]);
    std::vector<void*> vs{&values[static_cast<std::size_t>(i)]};
    ptb.liberate(vs);
    out.insert(out.end(), vs.begin(), vs.end());
  }
  ptb.post_guard(g, nullptr);
  std::vector<void*> drain;
  for (int round = 0; round < 4; ++round) ptb.liberate(drain);
  out.insert(out.end(), drain.begin(), drain.end());
  std::sort(out.begin(), out.end());
  // Exactly once each: no duplicates, nothing lost.
  EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
  for (auto& v : values) {
    EXPECT_TRUE(std::binary_search(out.begin(), out.end(),
                                   static_cast<void*>(&v)))
        << "value lost";
  }
  ptb.fire_guard(g);
}

}  // namespace
}  // namespace dc::reclaim
