#include "memory/pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/asan.hpp"

namespace dc::mem {
namespace {

// Raw read of possibly-poisoned memory: legal for the test because the pool
// keeps freed blocks mapped (sandboxing), but it must bypass ASan's checks
// the same way the substrate's word primitives do.
DC_NO_SANITIZE_ADDRESS uint64_t raw_word(const uint64_t* p) { return *p; }

TEST(Pool, AllocateGivesWritableAlignedMemory) {
  void* p = pool_allocate(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  std::memset(p, 0xAB, 64);
  pool_deallocate(p, 64);
}

TEST(Pool, BlocksAreRecycled) {
  pool_flush_thread_cache();
  void* first = pool_allocate(48);
  pool_deallocate(first, 48);
  // Thread cache is LIFO: the very next same-class allocation reuses it.
  void* second = pool_allocate(48);
  EXPECT_EQ(first, second);
  pool_deallocate(second, 48);
}

TEST(Pool, DeallocatePoisons) {
  auto* words = static_cast<uint64_t*>(pool_allocate(32));
  for (int i = 0; i < 4; ++i) words[i] = 0x1111111111111111ULL;
  pool_deallocate(words, 32);
  // The memory stays mapped (sandboxing) — reading it is safe — and it is
  // value-poisoned so stale non-transactional readers are detectable. The
  // read must go through the exempt primitive: in ASan builds the block is
  // also shadow-poisoned and a plain dereference would (correctly) trap.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(raw_word(words + i), 0xDDDDDDDDDDDDDDDDULL);
  }
  // Note: the block is back in the thread cache; do not use it further.
}

TEST(Pool, AsanShadowPoisonTracksBlockLifetime) {
  // The ASan contract: live blocks are never poisoned, freed blocks are
  // poisoned exactly when the build sanitizes, and recycling a block lifts
  // the poison before the caller sees it. In non-ASan builds
  // asan_is_poisoned is constant false, so the same assertions document
  // both configurations.
  pool_flush_thread_cache();
  auto* block = static_cast<uint64_t*>(pool_allocate(64));
  EXPECT_FALSE(util::asan_is_poisoned(block));
  block[0] = 1;
  pool_deallocate(block, 64);
#if defined(DC_ASAN)
  EXPECT_TRUE(util::asan_is_poisoned(block));
  EXPECT_TRUE(util::asan_is_poisoned(block + 7)) << "whole block, not just "
                                                    "the first byte";
#else
  EXPECT_FALSE(util::asan_is_poisoned(block));
#endif
  // LIFO thread cache: the next same-class allocation returns this block,
  // and it must come back unpoisoned and writable.
  auto* again = static_cast<uint64_t*>(pool_allocate(64));
  EXPECT_EQ(again, block);
  EXPECT_FALSE(util::asan_is_poisoned(again));
  again[0] = 2;
  EXPECT_EQ(again[0], 2u);
  pool_deallocate(again, 64);
}

TEST(Pool, LiveAccountingTracksAllocations) {
  const PoolStats before = pool_stats();
  void* a = pool_allocate(100);  // class 128
  void* b = pool_allocate(100);
  const PoolStats during = pool_stats();
  EXPECT_EQ(during.live_blocks, before.live_blocks + 2);
  EXPECT_EQ(during.live_bytes, before.live_bytes + 256);
  pool_deallocate(a, 100);
  pool_deallocate(b, 100);
  const PoolStats after = pool_stats();
  EXPECT_EQ(after.live_blocks, before.live_blocks);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(Pool, QuiescentFootprintProportionalToLiveData) {
  // The property the paper's HTM queue relies on: after frees, live bytes
  // drop back — memory is not held hostage by thread-local pools.
  const PoolStats before = pool_stats();
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) blocks.push_back(pool_allocate(64));
  for (void* p : blocks) pool_deallocate(p, 64);
  const PoolStats after = pool_stats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.deallocations, before.deallocations + 1000);
}

TEST(Pool, DistinctLiveBlocksDoNotOverlap) {
  std::vector<void*> blocks;
  for (int i = 0; i < 200; ++i) blocks.push_back(pool_allocate(32));
  std::set<uintptr_t> starts;
  for (void* p : blocks) starts.insert(reinterpret_cast<uintptr_t>(p));
  EXPECT_EQ(starts.size(), blocks.size());
  // No two blocks within 32 bytes of each other.
  uintptr_t prev = 0;
  for (const uintptr_t s : starts) {
    if (prev != 0) {
      EXPECT_GE(s - prev, 32u);
    }
    prev = s;
  }
  for (void* p : blocks) pool_deallocate(p, 32);
}

TEST(Pool, CrossThreadFreeIsSafe) {
  constexpr int kBlocks = 500;
  std::vector<void*> blocks(kBlocks);
  std::thread alloc_thread([&] {
    for (auto& p : blocks) p = pool_allocate(64);
  });
  alloc_thread.join();
  std::thread free_thread([&] {
    for (void* p : blocks) pool_deallocate(p, 64);
    pool_flush_thread_cache();
  });
  free_thread.join();
  SUCCEED();
}

TEST(Pool, ConcurrentAllocFreeStress) {
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::pair<void*, std::size_t>> mine;
      uint64_t seed = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kOps; ++i) {
        seed = seed * 6364136223846793005ULL + 1;
        const std::size_t sz = 16 + (seed >> 40) % 200;
        if (mine.size() < 32 && (seed & 1)) {
          void* p = pool_allocate(sz);
          std::memset(p, static_cast<int>(t), sz);
          mine.emplace_back(p, sz);
        } else if (!mine.empty()) {
          auto [p, psz] = mine.back();
          mine.pop_back();
          pool_deallocate(p, psz);
        }
      }
      for (auto [p, psz] : mine) pool_deallocate(p, psz);
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

TEST(Pool, TypedCreateDestroy) {
  struct Node {
    uint64_t value;
    Node* next;
    explicit Node(uint64_t v) : value(v), next(nullptr) {}
  };
  Node* n = create<Node>(uint64_t{7});
  EXPECT_EQ(n->value, 7u);
  destroy(n);
}

TEST(Pool, CreateArrayValueInitializes) {
  auto* a = create_array<uint64_t>(16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 0u);
  destroy_array(a, 16);
}

TEST(Pool, DestroyNullIsNoop) {
  destroy(static_cast<int*>(nullptr));
  destroy_array(static_cast<int*>(nullptr), 10);
  SUCCEED();
}

TEST(Pool, LargeBlocks) {
  void* p = pool_allocate(1 << 20);
  std::memset(p, 0, 1 << 20);
  pool_deallocate(p, 1 << 20);
  SUCCEED();
}

}  // namespace
}  // namespace dc::mem
