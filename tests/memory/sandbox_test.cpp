// Sandboxing: a transaction that dereferences a pointer to memory freed by
// a concurrent thread must abort (and never commit having observed freed or
// recycled data). This is the property (paper footnote 1) that lets the
// HTM queue free dequeued entries immediately.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/htm.hpp"
#include "memory/pool.hpp"
#include "util/asan.hpp"

namespace dc::mem {
namespace {

using dc::htm::Txn;

class Sandbox : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = dc::htm::config();
    dc::htm::config().tle_after_aborts = 0;
  }
  void TearDown() override { dc::htm::config() = saved_; }
  dc::htm::Config saved_;
};

struct Node {
  uint64_t value = 0;
  uint64_t check = 0;  // kept equal to value by every writer
};

TEST_F(Sandbox, FreeDoomsInFlightReader) {
  // Sequential re-creation of the race: a transaction reads the pointer,
  // then the referent is freed before the transaction touches it; its next
  // transactional access must abort.
  Node* node = create<Node>();
  node->value = 5;
  node->check = 5;
  Node* shared = node;

  const dc::htm::TryResult r = dc::htm::try_once([&](Txn& txn) {
    Node* p = txn.load(&shared);
    // Simulate "concurrent" free between obtaining and using the pointer.
    // (Single-threaded here, so we temporarily leave the transaction's
    // perspective: the free happens via another thread to respect the
    // no-alloc-in-txn rule.)
    std::thread([&] {
      dc::htm::nontxn_store(&shared, static_cast<Node*>(nullptr));
      destroy(p);
    }).join();
    // Sandboxed access: must abort, not fault, and not return a committed
    // view of freed memory.
    const uint64_t v = txn.load(&p->value);
    (void)v;
  });
  EXPECT_FALSE(r.committed);
}

TEST_F(Sandbox, ConcurrentFreeStressNeverShowsTornNode) {
  // One thread repeatedly replaces a shared node (freeing the old one);
  // readers traverse the pointer transactionally. A committed reader must
  // have seen value == check (consistent node), never poison or a torn mix
  // of old and recycled content.
  Node* initial = create<Node>();
  initial->value = initial->check = 1;
  Node* shared = initial;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> committed_reads{0};

  std::thread replacer([&] {
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      Node* fresh = create<Node>();
      ++v;
      fresh->value = v;
      fresh->check = v;
      Node* old = nullptr;
      dc::htm::atomic([&](Txn& txn) {
        old = txn.load(&shared);
        txn.store(&shared, fresh);
      });
      destroy(old);  // freed while readers may still hold the pointer
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        uint64_t v = 0, c = 0;
        dc::htm::atomic([&](Txn& txn) {
          Node* p = txn.load(&shared);
          v = txn.load(&p->value);
          c = txn.load(&p->check);
        });
        committed_reads.fetch_add(1, std::memory_order_relaxed);
        if (v != c || v == 0 || v == 0xDDDDDDDDDDDDDDDDULL) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  replacer.join();
  destroy(dc::htm::nontxn_load(&shared));

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(committed_reads.load(), 0u);
}

TEST_F(Sandbox, RecycledBlockCannotLeakIntoOldSnapshot) {
  // Reader txn obtains pointer A; A is freed and immediately recycled as a
  // new node B with different content, published elsewhere. The reader's
  // subsequent access through the stale pointer must abort (its snapshot
  // predates the free).
  Node* a = create<Node>();
  a->value = a->check = 42;
  Node* shared = a;

  const dc::htm::TryResult r = dc::htm::try_once([&](Txn& txn) {
    Node* p = txn.load(&shared);
    std::thread([&] {
      dc::htm::nontxn_store(&shared, static_cast<Node*>(nullptr));
      destroy(p);
      // Recycle: same block, new content.
      Node* b = create<Node>();
      b->value = 7;
      b->check = 7;
      dc::htm::nontxn_store(&shared, b);
    }).join();
    // p now points at recycled memory; the access must abort.
    (void)txn.load(&p->value);
  });
  EXPECT_FALSE(r.committed);
  destroy(dc::htm::nontxn_load(&shared));
}

TEST_F(Sandbox, FreedMemoryStaysMapped) {
  // The substitution's load-bearing property: stale *substrate-mediated*
  // reads of freed memory do not fault (they see poison). In ASan builds
  // the block is additionally shadow-poisoned, so the read must go through
  // the exempt channel — a plain dereference here would (correctly) trip
  // the sanitizer, which is the raw-access half of the same contract.
  auto* words = static_cast<uint64_t*>(pool_allocate(64));
  words[0] = 1;
  pool_deallocate(words, 64);
  EXPECT_EQ(dc::htm::nontxn_load(words), dc::htm::kPoisonWord);  // no SIGSEGV
#if defined(DC_ASAN)
  EXPECT_TRUE(util::asan_is_poisoned(words));
#endif
}

}  // namespace
}  // namespace dc::mem
