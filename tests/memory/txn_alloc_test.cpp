// TM-aware allocation (paper §6): allocating inside a transaction, with the
// block automatically reclaimed if the attempt aborts.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/htm.hpp"
#include "memory/pool.hpp"

namespace dc::mem {
namespace {

struct Node {
  uint64_t value = 0;
  Node* next = nullptr;
};

class TxnAlloc : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::config().tle_after_aborts = 0;
    pool_flush_thread_cache();
  }
  void TearDown() override { htm::config() = saved_; }
  htm::Config saved_;
};

TEST_F(TxnAlloc, CommittedAllocationSurvives) {
  const auto before = pool_stats();
  Node* shared = nullptr;
  htm::atomic([&](htm::Txn& txn) {
    Node* n = create_in_txn<Node>(txn);
    n->value = 42;
    txn.store(&shared, n);
  });
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->value, 42u);
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks + 1);
  destroy(shared);
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks);
}

TEST_F(TxnAlloc, AbortedAllocationIsReclaimed) {
  const auto before = pool_stats();
  int attempts = 0;
  Node* shared = nullptr;
  htm::atomic([&](htm::Txn& txn) {
    Node* n = create_in_txn<Node>(txn);
    n->value = 7;
    txn.store(&shared, n);
    if (++attempts < 5) txn.abort(htm::AbortCode::kExplicit);
  });
  EXPECT_EQ(attempts, 5);
  // Four aborted allocations reclaimed, one committed.
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks + 1);
  destroy(shared);
}

TEST_F(TxnAlloc, OverflowAbortAlsoReclaims) {
  htm::config().store_buffer_capacity = 2;
  const auto before = pool_stats();
  uint64_t words[3] = {};
  const htm::TryResult r = htm::try_once([&](htm::Txn& txn) {
    (void)create_in_txn<Node>(txn);
    for (auto& w : words) txn.store(&w, uint64_t{1});  // overflows at 3rd
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, htm::AbortCode::kOverflow);
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks);
}

TEST_F(TxnAlloc, UserExceptionAlsoReclaims) {
  const auto before = pool_stats();
  struct Boom {};
  EXPECT_THROW(htm::atomic([&](htm::Txn& txn) {
                 (void)create_in_txn<Node>(txn);
                 throw Boom{};
               }),
               Boom);
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks);
}

TEST_F(TxnAlloc, TransactionalRegisterPattern) {
  // The simplification §6 promises: a Register-like operation whose
  // allocation lives inside the same atomic block as the publication —
  // no pre-allocation, no free-if-lost-race dance.
  Node* head = nullptr;
  const auto before = pool_stats();
  constexpr int kThreads = 3;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        htm::atomic([&](htm::Txn& txn) {
          Node* n = create_in_txn<Node>(txn);
          n->value = (static_cast<uint64_t>(t) << 32) | i;
          n->next = txn.load(&head);
          txn.store(&head, n);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exactly one allocation per committed push, regardless of aborts/retries.
  EXPECT_EQ(pool_stats().live_blocks,
            before.live_blocks + kThreads * kPerThread);
  std::size_t count = 0;
  Node* cur = head;
  while (cur != nullptr) {
    Node* next = cur->next;
    destroy(cur);
    cur = next;
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(TxnAlloc, LockModeAllocation) {
  // TLE path: allocation inside a lock-mode body also commits cleanly.
  htm::config().store_buffer_capacity = 2;
  htm::config().tle_after_aborts = 2;
  const auto before = pool_stats();
  Node* shared = nullptr;
  uint64_t words[4] = {};
  htm::atomic([&](htm::Txn& txn) {
    Node* n = create_in_txn<Node>(txn);
    txn.store(&shared, n);
    for (auto& w : words) txn.store(&w, uint64_t{1});  // forces TLE
  });
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks + 1);
  destroy(shared);
}

}  // namespace
}  // namespace dc::mem
