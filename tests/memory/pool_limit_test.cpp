// Bounded-capacity mode and allocation-fault injection (DESIGN.md §15): the
// pool under a capacity bound denies growth but never reuse, pressure
// episodes open and close symmetrically (refill denial or squeeze onset;
// refill success or headroom restoration), injected denials are seeded and
// replayable, and an in-transaction allocation-failure streak escalates to
// htm::TxnOutOfMemory — never to the TLE lock.
//
// All measurements are relative to a pool_stats() snapshot: the pool is
// process-global and earlier suites in this binary have already mapped
// slabs and churned counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "htm/htm.hpp"
#include "memory/pool.hpp"
#include "util/thread_id.hpp"

namespace dc::mem {
namespace {

// Mirrors pool.cpp's kSlabBytes (internal): the granularity of pool growth,
// and therefore of the headroom test the pressure logic applies.
constexpr uint64_t kSlab = 64 * 1024;

// A block size >= the slab size carves exactly one block per slab, so once
// the free list is drained every allocation forces a refill — the only way
// to hit the capacity bound deterministically from a test.
constexpr std::size_t kBig = 256 * 1024;

class PoolLimit : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::config().tle_after_aborts = 0;
    pool_set_limit_override(0);
    pool_clear_alloc_fault_script();
    pool_reset_alloc_fault_thread();
    pool_flush_thread_cache();
    ASSERT_FALSE(pool_under_pressure());
  }
  void TearDown() override {
    pool_set_limit_override(0);
    pool_clear_alloc_fault_script();
    htm::config() = saved_;
    pool_reset_alloc_fault_thread();
    pool_flush_thread_cache();
  }

  // Allocates kBig blocks until one forces a fresh slab, leaving the class's
  // free list empty (recycled stock from earlier tests drained, and the new
  // slab's single block is the one just handed out).
  std::vector<void*> occupy_big_class() {
    std::vector<void*> held;
    const uint64_t start = pool_stats().os_bytes;
    while (pool_stats().os_bytes == start) held.push_back(pool_allocate(kBig));
    return held;
  }

  static void release(std::vector<void*>& held) {
    for (void* p : held) pool_deallocate(p, kBig);
    held.clear();
    pool_flush_thread_cache();
  }

  htm::Config saved_;
};

TEST_F(PoolLimit, CapDeniesGrowthButAllowsRecycle) {
  std::vector<void*> held = occupy_big_class();
  const auto before = pool_stats();

  pool_set_limit_override(before.os_bytes);  // zero headroom for any class
  EXPECT_TRUE(pool_under_pressure());
  EXPECT_DOUBLE_EQ(pool_utilization(), 1.0);
  EXPECT_EQ(pool_stats().mem_pressure_onsets, before.mem_pressure_onsets + 1);

  EXPECT_EQ(pool_try_allocate(kBig), nullptr);
  auto after = pool_stats();
  EXPECT_EQ(after.os_bytes, before.os_bytes);  // growth denied, not deferred
  EXPECT_EQ(after.alloc_failures, before.alloc_failures + 1);
  // A limit denial is not an injected fault.
  EXPECT_EQ(after.alloc_faults_injected, before.alloc_faults_injected);

  // Recycling keeps the pool serviceable at the cap: free one block and the
  // next allocation succeeds without growth or another failure.
  pool_deallocate(held.back(), kBig);
  held.pop_back();
  void* again = pool_try_allocate(kBig);
  ASSERT_NE(again, nullptr);
  held.push_back(again);
  after = pool_stats();
  EXPECT_EQ(after.os_bytes, before.os_bytes);
  EXPECT_EQ(after.alloc_failures, before.alloc_failures + 1);

  // Clearing the bound restores headroom and closes the episode.
  pool_set_limit_override(0);
  EXPECT_FALSE(pool_under_pressure());
  EXPECT_EQ(pool_stats().mem_pressure_exits, before.mem_pressure_exits + 1);
  release(held);
}

TEST_F(PoolLimit, AllocateThrowsPoolExhaustedAtCap) {
  std::vector<void*> held = occupy_big_class();
  pool_set_limit_override(pool_stats().os_bytes);
  EXPECT_THROW(pool_allocate(kBig), PoolExhausted);
  pool_set_limit_override(0);
  release(held);
}

TEST_F(PoolLimit, OverrideSqueezeOpensAndClosesEpisodeWithoutRefills) {
  // A squeeze below the mapped footprint must open the episode at its own
  // onset: a fully-recycled workload may never attempt a refill while
  // capped, yet the squeeze is still memory pressure.
  //
  // In a fresh process the pool has no mapped slabs and os_bytes == 0 —
  // where an override of 0 would mean "cleared", not "squeezed". Map a
  // footprint first so the squeeze below is a real bound.
  pool_deallocate(pool_allocate(64), 64);
  const auto before = pool_stats();
  ASSERT_GT(before.os_bytes, 0u);
  pool_set_limit_override(before.os_bytes);
  EXPECT_TRUE(pool_under_pressure());
  EXPECT_EQ(pool_stats().mem_pressure_onsets, before.mem_pressure_onsets + 1);

  // Raising the bound back above footprint + one slab closes it.
  pool_set_limit_override(before.os_bytes + 2 * kSlab);
  EXPECT_FALSE(pool_under_pressure());
  EXPECT_EQ(pool_stats().mem_pressure_exits, before.mem_pressure_exits + 1);

  // Re-evaluation is edge-triggered: moving between two satisfied bounds
  // opens nothing, clearing an already-closed episode closes nothing.
  pool_set_limit_override(before.os_bytes + 3 * kSlab);
  pool_set_limit_override(0);
  const auto after = pool_stats();
  EXPECT_EQ(after.mem_pressure_onsets, before.mem_pressure_onsets + 1);
  EXPECT_EQ(after.mem_pressure_exits, before.mem_pressure_exits + 1);
}

TEST_F(PoolLimit, OverrideTakesPrecedenceOverConfiguredLimit) {
  htm::config().mem.limit_bytes = 123u << 20;  // far above any test footprint
  EXPECT_EQ(pool_effective_limit(), 123u << 20);
  pool_set_limit_override(999u << 20);
  EXPECT_EQ(pool_limit_override(), 999u << 20);
  EXPECT_EQ(pool_effective_limit(), 999u << 20);
  pool_set_limit_override(0);
  EXPECT_EQ(pool_limit_override(), 0u);
  EXPECT_EQ(pool_effective_limit(), 123u << 20);
}

TEST_F(PoolLimit, RateInjectionIsSeededAndDeterministic) {
  // Warm the class before injection starts so the runs below never refill
  // (a fresh process would otherwise map its first slab mid-measurement).
  pool_deallocate(pool_allocate(64), 64);
  htm::config().mem.alloc_fault_rate = 0.25;
  auto run = [] {
    pool_reset_alloc_fault_thread();
    std::vector<int> failed;
    for (int i = 0; i < 256; ++i) {
      void* p = pool_try_allocate(64);
      if (p == nullptr) {
        failed.push_back(i);
      } else {
        pool_deallocate(p, 64);
      }
    }
    return failed;
  };
  const auto before = pool_stats();
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);  // same seed, same thread: same denial pattern
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 256u);

  htm::config().mem.alloc_fault_seed = 0xfeedu;
  const auto reseeded = run();
  EXPECT_NE(first, reseeded);

  const auto after = pool_stats();
  const uint64_t total = first.size() + second.size() + reseeded.size();
  EXPECT_EQ(after.alloc_faults_injected - before.alloc_faults_injected, total);
  EXPECT_EQ(after.alloc_failures - before.alloc_failures, total);
  // Denied attempts hand out nothing and leak nothing.
  EXPECT_EQ(after.live_blocks, before.live_blocks);
  EXPECT_EQ(after.os_bytes, before.os_bytes);
}

TEST_F(PoolLimit, ScriptedFaultFiresAtExactIndex) {
  pool_set_alloc_fault_script({{kAnyThread, 3}});
  pool_reset_alloc_fault_thread();
  const auto before = pool_stats();
  for (int i = 0; i < 6; ++i) {
    void* p = pool_try_allocate(64);
    if (i == 3) {
      EXPECT_EQ(p, nullptr) << "attempt " << i;
    } else {
      ASSERT_NE(p, nullptr) << "attempt " << i;
      pool_deallocate(p, 64);
    }
  }
  const auto after = pool_stats();
  EXPECT_EQ(after.alloc_faults_injected, before.alloc_faults_injected + 1);
  EXPECT_EQ(after.alloc_failures, before.alloc_failures + 1);
}

TEST_F(PoolLimit, ScriptedFaultTargetsOneThread) {
  // A script addressed to this thread's dense id must not fire on another.
  pool_set_alloc_fault_script({{util::thread_id(), 0}});
  pool_reset_alloc_fault_thread();

  bool other_failed = false;
  std::thread other([&] {
    pool_reset_alloc_fault_thread();
    void* p = pool_try_allocate(64);
    other_failed = (p == nullptr);
    if (p != nullptr) pool_deallocate(p, 64);
    pool_flush_thread_cache();
  });
  other.join();
  EXPECT_FALSE(other_failed);

  EXPECT_EQ(pool_try_allocate(64), nullptr);  // ours fires here
}

TEST_F(PoolLimit, RetryAfterTransientDenialCommits) {
  // Two denials, then stock: the cause-aware retry re-runs the block and the
  // third attempt's allocation commits — no escalation below the budget.
  pool_set_alloc_fault_script({{kAnyThread, 0}, {kAnyThread, 1}});
  pool_reset_alloc_fault_thread();
  const auto before = pool_stats();
  uint64_t* out = nullptr;
  htm::atomic([&](htm::Txn& txn) {
    out = static_cast<uint64_t*>(pool_allocate_in_txn(txn, sizeof(uint64_t)));
  });
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(pool_stats().live_blocks, before.live_blocks + 1);
  EXPECT_EQ(pool_stats().alloc_faults_injected,
            before.alloc_faults_injected + 2);
  pool_deallocate(out, sizeof(uint64_t));
}

TEST_F(PoolLimit, AllocFailureStreakEscalatesToTxnOutOfMemory) {
  // Enough consecutive denials (with no reclamation progress anywhere) to
  // exhaust the streak budget. TLE is armed on purpose: kAllocFailed must
  // never escalate to the lock — the lock cannot conjure memory.
  htm::config().mem.alloc_retry_limit = 3;
  htm::config().tle_after_aborts = 2;
  std::vector<ScriptedAllocFault> script;
  for (uint64_t i = 0; i < 16; ++i) script.push_back({kAnyThread, i});
  pool_set_alloc_fault_script(std::move(script));
  pool_reset_alloc_fault_thread();

  const auto before = pool_stats();
  const uint64_t tle_before = htm::aggregate_stats().tle_entries;
  bool body_finished = false;
  EXPECT_THROW(htm::atomic([&](htm::Txn& txn) {
                 (void)pool_allocate_in_txn(txn, sizeof(uint64_t));
                 body_finished = true;
               }),
               htm::TxnOutOfMemory);
  EXPECT_FALSE(body_finished);
  EXPECT_EQ(htm::aggregate_stats().tle_entries, tle_before);

  const auto after = pool_stats();
  // streak: 1 (re-arms the snapshot), 2, 3, 4 > limit -> throw: 4 denials.
  EXPECT_EQ(after.alloc_faults_injected, before.alloc_faults_injected + 4);
  EXPECT_EQ(after.live_blocks, before.live_blocks);  // nothing leaked
}

TEST_F(PoolLimit, ThreadLedgersSumToGlobalCounters) {
  // Churn from short-lived threads, then prove the independently maintained
  // ledgers agree — the conservation law the report validator re-proves
  // offline from the JSON mem section.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 64; ++i) {
        void* p = pool_allocate(128);
        pool_deallocate(p, 128);
      }
      pool_flush_thread_cache();
    });
  }
  for (auto& w : workers) w.join();

  const auto g = pool_stats();
  uint64_t alloc = 0, dealloc = 0, failures = 0, injected = 0;
  for (const auto& t : pool_thread_stats()) {
    alloc += t.allocations;
    dealloc += t.deallocations;
    failures += t.alloc_failures;
    injected += t.alloc_faults_injected;
  }
  EXPECT_EQ(alloc, g.allocations);
  EXPECT_EQ(dealloc, g.deallocations);
  EXPECT_EQ(failures, g.alloc_failures);
  EXPECT_EQ(injected, g.alloc_faults_injected);
  EXPECT_EQ(g.allocations - g.deallocations, g.live_blocks);
}

TEST_F(PoolLimit, CleanModeCountersStayZero) {
  // The zero-overhead invariant, delta form: with no bound and no injection
  // configured, churn moves none of the bounded-mode counters.
  const auto before = pool_stats();
  for (int i = 0; i < 128; ++i) {
    void* p = pool_allocate(64);
    pool_deallocate(p, 64);
  }
  const auto after = pool_stats();
  EXPECT_EQ(after.alloc_failures, before.alloc_failures);
  EXPECT_EQ(after.alloc_faults_injected, before.alloc_faults_injected);
  EXPECT_EQ(after.mem_pressure_onsets, before.mem_pressure_onsets);
  EXPECT_EQ(after.mem_pressure_exits, before.mem_pressure_exits);
  EXPECT_EQ(pool_effective_limit(), 0u);
  EXPECT_EQ(pool_utilization(), 0.0);
  EXPECT_FALSE(pool_under_pressure());
}

}  // namespace
}  // namespace dc::mem
