// Core properties of the deterministic scheduler (src/sched): inactive
// hooks cost nothing and change nothing, same seed gives a byte-identical
// schedule trace, recorded schedules replay exactly, livelocked schedules
// are contained by the step budget, the callback policy drives exact
// interleavings, and exhaustive exploration covers the full bounded tree
// of a tiny racy program (and finds its bug).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "htm/htm.hpp"
#include "sched/explore.hpp"
#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"

namespace dc::sched {
namespace {

class SchedCore : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = htm::config(); }
  void TearDown() override { htm::config() = saved_; }
  htm::Config saved_;
};

TEST_F(SchedCore, InactiveHookIsANoOp) {
  // Outside a run the checkpoint is a thread-local load and a not-taken
  // branch; a million of them must be observable no-ops.
  EXPECT_FALSE(active());
  EXPECT_EQ(run_seed(), 0u);
  EXPECT_EQ(self_index(), kNoThread);
  for (int i = 0; i < 1000000; ++i) checkpoint(Kind::kTxnLoad);
  EXPECT_FALSE(active());
}

TEST_F(SchedCore, ActiveOnlyInsideLogicalThreads) {
  std::atomic<bool> saw_active{false};
  std::atomic<uint64_t> saw_seed{0};
  std::atomic<uint32_t> saw_index{1234};
  Options o;
  o.seed = 77;
  o.name = "active_flags";
  schedtest::run_scheduled(
      o, {[&] {
        saw_active = active();
        saw_seed = run_seed();
        saw_index = self_index();
      }});
  EXPECT_TRUE(saw_active.load());
  EXPECT_EQ(saw_seed.load(), 77u);
  EXPECT_EQ(saw_index.load(), 0u);
  EXPECT_FALSE(active());  // back on the main thread
}

// A transactional counter workload over fixed (stack) addresses: the
// determinism contract requires address-stable state, since orec
// indices hash the address.
RunResult counter_run(uint64_t seed, Policy policy, uint64_t* counter,
                      const std::string& name, uint32_t threads = 3,
                      int ops = 40) {
  *counter = 0;
  Options o;
  o.seed = seed;
  o.policy = policy;
  o.name = name;
  std::vector<std::function<void()>> bodies;
  for (uint32_t t = 0; t < threads; ++t) {
    bodies.push_back([counter, ops] {
      for (int i = 0; i < ops; ++i) {
        htm::atomic(
            [&](htm::Txn& txn) { txn.store(counter, txn.load(counter) + 1); });
      }
    });
  }
  return schedtest::run_scheduled(o, std::move(bodies));
}

TEST_F(SchedCore, SameSeedGivesByteIdenticalTrace) {
  uint64_t counter = 0;
  for (const Policy p : {Policy::kRandomWalk, Policy::kPct}) {
    RunResult a = counter_run(42, p, &counter, "determinism");
    EXPECT_EQ(counter, 3u * 40u);
    RunResult b = counter_run(42, p, &counter, "determinism");
    EXPECT_EQ(counter, 3u * 40u);
    EXPECT_EQ(a.trace.serialize(), b.trace.serialize())
        << "policy=" << to_string(p);
    EXPECT_GT(a.trace.steps.size(), 100u);
  }
}

TEST_F(SchedCore, DifferentSeedsGiveDifferentSchedules) {
  uint64_t counter = 0;
  RunResult a = counter_run(1, Policy::kRandomWalk, &counter, "seeds");
  RunResult b = counter_run(2, Policy::kRandomWalk, &counter, "seeds");
  // With hundreds of decisions per run, two seeds agreeing step-for-step
  // would mean the seed is not reaching the policy at all.
  EXPECT_NE(a.trace.serialize(), b.trace.serialize());
}

TEST_F(SchedCore, EveryThreadGetsScheduled) {
  uint64_t counter = 0;
  RunResult r = counter_run(7, Policy::kRandomWalk, &counter, "coverage", 4);
  bool seen[4] = {};
  for (const TraceStep& s : r.trace.steps) {
    ASSERT_LT(s.thread, 4u);
    seen[s.thread] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST_F(SchedCore, RecordedScheduleReplaysByteIdentically) {
  uint64_t counter = 0;
  RunResult rec = counter_run(99, Policy::kPct, &counter, "replay");
  const uint64_t final_rec = counter;

  counter = 0;
  Options o;
  o.policy = Policy::kReplay;
  o.replay = &rec.trace;
  o.seed = rec.trace.seed;
  o.name = "replay";
  std::vector<std::function<void()>> bodies;
  for (uint32_t t = 0; t < 3; ++t) {
    bodies.push_back([&counter] {
      for (int i = 0; i < 40; ++i) {
        htm::atomic(
            [&](htm::Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
      }
    });
  }
  RunResult rep = schedtest::run_scheduled(o, std::move(bodies));
  EXPECT_FALSE(rep.replay_diverged)
      << "diverged at step " << rep.divergence_step;
  EXPECT_EQ(counter, final_rec);
  // The replayed decisions, re-recorded, must be the recording itself.
  rep.trace.policy = rec.trace.policy;  // header differs by design
  EXPECT_EQ(rep.trace.serialize(), rec.trace.serialize());
}

TEST_F(SchedCore, BudgetContainsLivelock) {
  // Two threads each wait forever for a flag only the other would set
  // after its own wait — a deadlock in yield-loop form. The budget must
  // declare the schedule exhausted and unwind both bodies.
  std::atomic<int> a{0}, b{0};
  Options o;
  o.seed = 5;
  o.max_steps = 2000;
  o.name = "livelock";
  RunResult r = schedtest::run_scheduled(
      o, {[&] {
            while (a.load() == 0) yield();
            b.store(1);
          },
          [&] {
            while (b.load() == 0) yield();
            a.store(1);
          }});
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_GE(r.steps, o.max_steps);
}

TEST_F(SchedCore, CallbackPolicyDrivesExactInterleavings) {
  // Thread 0 yields twice; the controller hands control to thread 1 at
  // thread 0's first kYield and never otherwise. The observed event
  // order is then fully determined.
  std::vector<int> events;
  Options o;
  o.name = "callback";
  o.policy = Policy::kCallback;
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kYield && d.seen == 1) return 1;
    if (d.thread == 1) return kStay;  // run thread 1 to completion
    return kStay;
  };
  schedtest::run_scheduled(o, {[&] {
                                 events.push_back(1);
                                 yield();
                                 events.push_back(3);
                               },
                               [&] { events.push_back(2); }});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], 1);
  EXPECT_EQ(events[1], 2);
  EXPECT_EQ(events[2], 3);
}

TEST_F(SchedCore, TraceSerializationRoundTrips) {
  uint64_t counter = 0;
  RunResult r = counter_run(13, Policy::kRandomWalk, &counter, "roundtrip");
  const std::string text = r.trace.serialize();
  Trace parsed;
  ASSERT_TRUE(Trace::parse(text, &parsed));
  EXPECT_EQ(parsed.name, "roundtrip");
  EXPECT_EQ(parsed.seed, 13u);
  EXPECT_EQ(parsed.threads, 3u);
  ASSERT_EQ(parsed.steps.size(), r.trace.steps.size());
  EXPECT_EQ(parsed.serialize(), text);

  Trace bogus;
  EXPECT_FALSE(Trace::parse("not a trace", &bogus));
  EXPECT_FALSE(Trace::parse("# dc-sched-trace v1\nname x\n", &bogus));  // no end
}

// The tiniest lost-update bug: read a shared counter non-transactionally,
// yield, then write back the incremented value. Exhaustive exploration
// must cover the full schedule tree and find the interleavings where an
// update is lost.
TEST_F(SchedCore, ExhaustiveExplorationFindsLostUpdate) {
  static uint64_t counter;  // fixed address across schedules
  ExploreOptions eo;
  eo.name = "explore_lost_update";
  eo.max_schedules = 100000;
  ExploreResult res = explore(
      eo,
      [&] {
        counter = 0;
        std::vector<std::function<void()>> bodies;
        for (int t = 0; t < 2; ++t) {
          bodies.push_back([] {
            const uint64_t v = counter;  // racy read-modify-write
            yield();
            counter = v + 1;
          });
        }
        return bodies;
      },
      [&] { return counter == 2; });
  EXPECT_TRUE(res.complete) << res.schedules << " schedules executed";
  EXPECT_GT(res.schedules, 4u);
  EXPECT_GT(res.failures, 0u) << "no schedule lost an update";
  EXPECT_LT(res.failures, res.schedules);
  // The first failing schedule is a usable repro: replaying it must lose
  // the update again.
  counter = 0;
  Options o;
  o.policy = Policy::kReplay;
  o.replay = &res.first_failure;
  o.name = eo.name;
  std::vector<std::function<void()>> bodies;
  for (int t = 0; t < 2; ++t) {
    bodies.push_back([] {
      const uint64_t v = counter;
      yield();
      counter = v + 1;
    });
  }
  RunResult rep = run(o, std::move(bodies));
  EXPECT_FALSE(rep.replay_diverged);
  EXPECT_EQ(counter, 1u);
}

TEST_F(SchedCore, NestedRunsAreRejected) {
  Options outer;
  outer.name = "outer";
  bool threw = false;
  schedtest::run_scheduled(outer, {[&] {
                             Options inner;
                             inner.name = "inner";
                             try {
                               run(inner, {[] {}});
                             } catch (const std::logic_error&) {
                               threw = true;
                             }
                           }});
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace dc::sched
