// Scheduled HTM substrate tests: the checkpoint instrumentation must make
// every protocol-level decision point of the transactional hot path a
// preemption point (loads, stores, commit entry, TLE lock acquisition and
// release — the old yield hook fired on loads only), conservation must hold
// under adversarial schedules across policies and seeds, and injected
// faults must be a pure function of the schedule seed so a recorded chaos
// run replays bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "htm/htm.hpp"
#include "htm/retry.hpp"
#include "htm/stats.hpp"
#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"

namespace dc::sched {
namespace {

class SchedHtm : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::crash::reset_all();
  }
  htm::Config saved_;
};

// Each thread t adds (t + 1) per op, so a single lost update changes the
// total — an unchanged-value silent commit cannot mask it.
RunResult weighted_run(Options o, uint64_t* counter, uint32_t threads,
                       int ops) {
  *counter = 0;
  std::vector<std::function<void()>> bodies;
  for (uint32_t t = 0; t < threads; ++t) {
    bodies.push_back([counter, t, ops] {
      for (int i = 0; i < ops; ++i) {
        htm::atomic([&](htm::Txn& txn) {
          txn.store(counter, txn.load(counter) + (t + 1));
        });
      }
    });
  }
  return schedtest::run_scheduled(std::move(o), std::move(bodies));
}

TEST_F(SchedHtm, ConservationHoldsAcrossPoliciesAndSeeds) {
  uint64_t counter = 0;
  const uint32_t threads = 3;
  const int ops = 20;
  const uint64_t expected = uint64_t{ops} * (1 + 2 + 3);
  for (const Policy p : {Policy::kRandomWalk, Policy::kPct}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      Options o;
      o.seed = seed;
      o.policy = p;
      o.name = "htm_conservation";
      RunResult r = weighted_run(o, &counter, threads, ops);
      EXPECT_EQ(counter, expected)
          << "policy=" << to_string(p) << " seed=" << seed;
      EXPECT_FALSE(r.budget_exhausted);
    }
  }
  EXPECT_GE(htm::aggregate_stats().commits, uint64_t{threads} * ops * 8);
}

// The new preemption points must be able to *force* a conflict: preempt
// thread 0 exactly at the given checkpoint of its first atomic block, run
// thread 1's conflicting block to completion inside the window, and thread
// 0's commit-time validation must abort and retry. Before this PR only
// loads yielded, so no schedule could split a block between its last load
// and its commit.
void preempt_once_at(Kind where, uint64_t* counter, TraceStep* decision,
                     uint64_t* aborts_delta) {
  *counter = 0;
  const uint64_t aborts_before = htm::aggregate_stats().aborts;
  Options o;
  o.policy = Policy::kCallback;
  o.name = std::string("preempt_") + to_string(where);
  o.controller = [where](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == where && d.seen == 1) return 1;
    return kStay;
  };
  RunResult r = schedtest::run_scheduled(
      o, {[counter] {
            htm::atomic([&](htm::Txn& txn) {
              txn.store(counter, txn.load(counter) + 1);
            });
          },
          [counter] {
            htm::atomic([&](htm::Txn& txn) {
              txn.store(counter, txn.load(counter) + 2);
            });
          }});
  *aborts_delta = htm::aggregate_stats().aborts - aborts_before;
  *decision = TraceStep{};
  for (const TraceStep& s : r.trace.steps) {
    if (s.thread == 0 && s.kind == where) {
      *decision = s;
      break;
    }
  }
}

TEST_F(SchedHtm, CommitEntryIsAPreemptionPoint) {
  uint64_t counter = 0, aborts = 0;
  TraceStep d{};
  preempt_once_at(Kind::kCommitEntry, &counter, &d, &aborts);
  EXPECT_EQ(counter, 3u);  // both increments survived the forced conflict
  EXPECT_GE(aborts, 1u);   // thread 0's first commit was invalidated
  EXPECT_EQ(d.kind, Kind::kCommitEntry);
  EXPECT_EQ(d.next, 1u);   // the handoff happened at commit entry
}

TEST_F(SchedHtm, TxnStoreIsAPreemptionPoint) {
  uint64_t counter = 0, aborts = 0;
  TraceStep d{};
  preempt_once_at(Kind::kTxnStore, &counter, &d, &aborts);
  EXPECT_EQ(counter, 3u);
  EXPECT_GE(aborts, 1u);
  EXPECT_EQ(d.kind, Kind::kTxnStore);
  EXPECT_EQ(d.next, 1u);
}

TEST_F(SchedHtm, LockAcquisitionIsAPreemptionPoint) {
  // Thread 0 reaches tle_acquire first but is preempted at the
  // kLockAcquire checkpoint — before its CAS — so thread 1 wins the lock
  // and runs its whole serial section inside the window. The acquisition
  // order inverts relative to the arrival order, which only a preemption
  // point *inside* lock acquisition can make happen deterministically.
  std::vector<int> order;
  Options o;
  o.policy = Policy::kCallback;
  o.name = "preempt_lock_acquire";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kLockAcquire && d.seen == 1) {
      return 1;
    }
    return kStay;
  };
  schedtest::run_scheduled(o, {[&] {
                                 htm::SerialSection s;
                                 order.push_back(10);
                               },
                               [&] {
                                 htm::SerialSection s;
                                 order.push_back(20);
                               }});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 20);
  EXPECT_EQ(order[1], 10);
  EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
}

TEST_F(SchedHtm, ForcedTleScheduleCoversTheWholeProtocol) {
  // Escalate after a single abort and inject a heavy fault rate: across a
  // small seed sweep the recorded schedules must exercise every hot-path
  // checkpoint kind — speculative loads/stores, commit entry, the TLE
  // lock's acquire and release, backoff, and fault firing — while
  // conservation still holds on every schedule.
  htm::config().tle_after_aborts = 1;
  htm::config().fault.rate = 0.5;
  htm::config().fault.seed = 0xfeedu;
  uint64_t counter = 0;
  std::set<Kind> seen;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Options o;
    o.seed = seed;
    o.policy = Policy::kRandomWalk;
    o.name = "tle_coverage";
    RunResult r = weighted_run(o, &counter, 3, 12);
    EXPECT_EQ(counter, uint64_t{12} * (1 + 2 + 3)) << "seed=" << seed;
    for (const TraceStep& s : r.trace.steps) seen.insert(s.kind);
  }
  for (const Kind k :
       {Kind::kTxnLoad, Kind::kTxnStore, Kind::kCommitEntry,
        Kind::kLockAcquire, Kind::kLockRelease, Kind::kBackoff,
        Kind::kFaultFire}) {
    EXPECT_TRUE(seen.count(k)) << "no schedule reached " << to_string(k);
  }
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_GT(agg.tle_entries, 0u);
  EXPECT_GT(agg.faults_injected, 0u);
}

TEST_F(SchedHtm, InjectedFaultsAreAPureFunctionOfTheScheduleSeed) {
  // Same schedule seed => identical trace AND identical fault stream; a
  // replayed recording re-fires the same faults. This is the property that
  // makes a recorded chaos failure reproducible at all: the injector draws
  // from (config seed, run seed, logical index) — nothing wall-clock.
  htm::config().fault.rate = 0.3;
  htm::config().fault.seed = 0x5eedfau;
  uint64_t counter = 0;

  auto faulted_run = [&](const Options& o) {
    htm::reset_stats();
    RunResult r = weighted_run(o, &counter, 3, 20);
    return std::pair<RunResult, uint64_t>(
        std::move(r), htm::aggregate_stats().faults_injected);
  };

  Options o;
  o.seed = 11;
  o.policy = Policy::kRandomWalk;
  o.name = "fault_replay";
  auto [a, faults_a] = faulted_run(o);
  const uint64_t total_a = counter;
  auto [b, faults_b] = faulted_run(o);

  EXPECT_EQ(a.trace.serialize(), b.trace.serialize());
  EXPECT_EQ(faults_a, faults_b);
  EXPECT_GT(faults_a, 0u);

  // Every fault fire is a recorded decision: the trace itself carries the
  // chaos, which is why replaying the trace replays the chaos.
  uint64_t fire_steps = 0;
  for (const TraceStep& s : a.trace.steps) {
    if (s.kind == Kind::kFaultFire) ++fire_steps;
  }
  EXPECT_EQ(fire_steps, faults_a);

  Options rep;
  rep.policy = Policy::kReplay;
  rep.replay = &a.trace;
  rep.seed = a.trace.seed;
  rep.name = "fault_replay";
  auto [c, faults_c] = faulted_run(rep);
  EXPECT_FALSE(c.replay_diverged) << "diverged at step " << c.divergence_step;
  EXPECT_EQ(faults_c, faults_a);
  EXPECT_EQ(counter, total_a);
  c.trace.policy = a.trace.policy;  // header differs by design
  EXPECT_EQ(c.trace.serialize(), a.trace.serialize());
}

}  // namespace
}  // namespace dc::sched
