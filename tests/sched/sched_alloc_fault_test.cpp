// Exact scheduled reproduction of an allocation failure against a Register
// commit window (DESIGN.md §15). The paper's algorithms split allocation out
// of their atomic blocks (§6: Rock could not malloc transactionally), so
// ListFastCollect's Register allocates its node *before* the publish
// transaction — a scripted denial surfaces as PoolExhausted from
// register_handle, before any shared state is touched. The checkpoint
// kAllocFault fires at the precise step the denial is decided, so the
// callback policy can pin the hardest interleaving: thread 0's Register is
// parked inside its commit window (kCommitEntry taken, commit pending) when
// thread 1's Register is denied. The denied Register must have mutated
// nothing, the open commit window must close normally, and the caller-level
// retry (what the service worker does before counting a session oom) must
// succeed once the denial passes.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "memory/pool.hpp"
#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"

namespace dc::sched {
namespace {

class SchedAllocFault : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
    mem::pool_clear_alloc_fault_script();
    mem::pool_set_limit_override(0);
    collect::MakeParams params;
    params.static_capacity = 1024;
    params.max_threads = 16;
    col_ = std::make_unique<collect::CrashTolerantCollect>(
        collect::make_algorithm("ListFastCollect", params));
  }
  void TearDown() override {
    mem::pool_clear_alloc_fault_script();
    mem::pool_set_limit_override(0);
    htm::config() = saved_;
    htm::crash::reset_all();
  }

  // The service-worker pattern: a denied Register is retried until the
  // transient denial passes (bounded here by the script's single entry).
  collect::Handle register_retrying(collect::Value v, int* denials) {
    for (;;) {
      try {
        return col_->register_handle(v);
      } catch (const std::bad_alloc&) {
        ++*denials;
      }
    }
  }

  std::unique_ptr<collect::CrashTolerantCollect> col_;
  htm::Config saved_;
};

TEST_F(SchedAllocFault, DenialLandsInsideAnOpenRegisterCommitWindow) {
  // Script: every logical thread's allocation attempt 0 is denied. Thread 0
  // burns its denial on a warm-up try_allocate, so its Register runs clean;
  // thread 1's denial lands on its Register's node allocation — exactly
  // while thread 0's Register commit window is held open by the controller.
  const auto pool_before = mem::pool_stats();
  mem::pool_set_alloc_fault_script({{mem::kAnyThread, 0}});

  int denials = 0;
  Options o;
  o.policy = Policy::kCallback;
  o.name = "alloc_fault_register_window";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kCommitEntry && d.seen == 1) {
      return 1;  // Register publish pending: run the rival into its denial
    }
    if (d.thread == 1 && d.kind == Kind::kAllocFault && d.seen == 1) {
      return 0;  // denial decided: let the open commit window close first
    }
    return kStay;
  };
  RunResult r = schedtest::run_scheduled(
      o, {[&] {
            void* warm = mem::pool_try_allocate(64);  // absorbs the script
            EXPECT_EQ(warm, nullptr);
            col_->register_handle(7);
          },
          [&] {
            collect::Handle h = register_retrying(9, &denials);
            col_->deregister(h);
          }});

  // The interleaving really happened: thread 0 parked at its commit entry
  // with control handed to thread 1, and thread 1's denial handed it back.
  bool window_opened = false, denial_in_window = false;
  for (const TraceStep& s : r.trace.steps) {
    if (s.thread == 0 && s.kind == Kind::kCommitEntry && s.next == 1) {
      window_opened = true;
    }
    if (s.thread == 1 && s.kind == Kind::kAllocFault && s.next == 0) {
      denial_in_window = true;
    }
  }
  EXPECT_TRUE(window_opened);
  EXPECT_TRUE(denial_in_window);
  EXPECT_EQ(denials, 1);

  // The denied Register mutated nothing; the retried one committed once;
  // the open commit window closed normally.
  std::vector<collect::Value> out;
  col_->collect(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(col_->lease_count(), 1u);

  const auto pool_after = mem::pool_stats();
  EXPECT_EQ(pool_after.alloc_faults_injected,
            pool_before.alloc_faults_injected + 2);
  EXPECT_EQ(pool_after.allocations - pool_after.deallocations,
            pool_after.live_blocks);
}

TEST_F(SchedAllocFault, DenialHoldsInvariantsOnEverySeed) {
  // Seeded exploration over the same bodies: wherever the schedule places
  // the denials, the caller-level retry converges, nothing leaks, and the
  // kAllocFault step is present in every trace — it sits on the
  // deterministic failure path, so a recorded schedule replays the denial
  // at the same step.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    htm::crash::reset_all();
    htm::reset_stats();
    mem::pool_set_alloc_fault_script({{mem::kAnyThread, 0}});
    const auto pool_before = mem::pool_stats();
    int denials = 0;
    Options o;
    o.seed = seed;
    o.policy = Policy::kRandomWalk;
    o.name = "alloc_fault_sweep";
    RunResult r = schedtest::run_scheduled(
        o, {[&] {
              collect::Handle h = register_retrying(100 + seed, &denials);
              col_->update(h, 101 + seed);
              col_->deregister(h);
            },
            [&] {
              collect::Handle h = register_retrying(200 + seed, &denials);
              col_->deregister(h);
            }});
    uint64_t fault_steps = 0;
    for (const TraceStep& s : r.trace.steps) {
      if (s.kind == Kind::kAllocFault) ++fault_steps;
    }
    EXPECT_EQ(fault_steps, 2u) << "seed=" << seed;
    EXPECT_EQ(denials, 2) << "seed=" << seed;
    const auto pool_after = mem::pool_stats();
    EXPECT_EQ(pool_after.alloc_faults_injected,
              pool_before.alloc_faults_injected + 2)
        << "seed=" << seed;
    std::vector<collect::Value> out;
    col_->collect(out);
    EXPECT_TRUE(out.empty()) << "seed=" << seed;
    EXPECT_EQ(col_->lease_count(), 0u) << "seed=" << seed;
    mem::pool_clear_alloc_fault_script();
  }
}

}  // namespace
}  // namespace dc::sched
