// Exact scheduled reproductions of the PR 5 lease/steal races. These are
// the interleavings the yield-stress tiers could only hope to hit; under
// the callback policy each one is pinned step-for-step:
//
//  * lock steal vs. in-flight release — a waiter that watches a live
//    holder's frozen (stamp, heartbeat) across a validated timeout, with
//    the release *pending*, must not steal from the living;
//  * a dead lock holder must still be stolen from, on every seed;
//  * death between a handle's inner commit and its lease bind — the
//    stamp/bind window — must leave nothing a reaper can corrupt, and the
//    lease must become reapable once bound;
//  * a reaper preempted between its claim and reap phases must tolerate a
//    live owner refreshing its own lease inside the window;
//  * two reapers racing over one orphan set must never double-deregister.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "htm/retry.hpp"
#include "htm/stats.hpp"
#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"

namespace dc::sched {
namespace {

class SchedLease : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
    collect::MakeParams params;
    params.static_capacity = 1024;
    params.max_threads = 16;
    col_ = std::make_unique<collect::CrashTolerantCollect>(
        collect::make_algorithm("ListFastCollect", params));
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::crash::reset_all();
  }

  std::set<collect::Value> collect_set() {
    std::vector<collect::Value> out;
    col_->collect(out);
    return {out.begin(), out.end()};
  }

  std::unique_ptr<collect::CrashTolerantCollect> col_;
  htm::Config saved_;
};

TEST_F(SchedLease, NoStealFromALivingHolderInTheReleaseWindow) {
  // Thread 0 holds the TLE lock and is preempted at the kLockRelease
  // checkpoint — it has *decided* to release but its stamp is still on the
  // word. Thread 1 then spins in tle_acquire's recovery branch long enough
  // to take the validated-timeout path many times over (the holder's
  // heartbeat is frozen, so rounds_same keeps reaching kRecoveryRounds);
  // every time, token_orphaned must say "alive" and refuse the steal.
  htm::config().crash.rate = 0.25;  // arms recovery; nobody opts in, so
                                    // nobody dies
  std::vector<int> order;
  Options o;
  o.policy = Policy::kCallback;
  o.name = "steal_vs_release";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kLockRelease && d.seen == 1) {
      return 1;  // open the release window and hand it to the waiter
    }
    if (d.thread == 1 && d.kind == Kind::kBackoff && d.seen >= 48) {
      return 0;  // finally let the holder finish its release
    }
    return kStay;
  };
  RunResult r =
      schedtest::run_scheduled(o, {[&] {
                                     htm::SerialSection s;
                                     order.push_back(10);
                                   },
                                   [&] {
                                     htm::SerialSection s;
                                     order.push_back(20);
                                   }});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 10);  // holder's section ran first...
  EXPECT_EQ(order[1], 20);  // ...and the waiter only entered after release
  EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
  EXPECT_EQ(htm::aggregate_stats().lock_recoveries, 0u)
      << "a waiter stole the lock from a living holder";
  // The window really was open: the holder's release decision handed
  // control to the waiter, which then burned >= 48 backoff rounds staring
  // at the frozen stamp.
  uint64_t waiter_backoffs = 0;
  bool window_opened = false;
  for (const TraceStep& s : r.trace.steps) {
    if (s.thread == 0 && s.kind == Kind::kLockRelease && s.next == 1) {
      window_opened = true;
    }
    if (s.thread == 1 && s.kind == Kind::kBackoff) ++waiter_backoffs;
  }
  EXPECT_TRUE(window_opened);
  EXPECT_GE(waiter_backoffs, 48u);
}

TEST_F(SchedLease, DeadLockHolderIsStolenOnEverySeed) {
  // The complementary case: the holder dies while holding the lock
  // (Point::kLockHeld), and on every schedule the waiter's validated
  // timeout must end in a successful steal and full progress.
  htm::config().tle_after_aborts = 2;
  static uint64_t cell;
  static uint64_t counter;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    htm::crash::reset_all();
    htm::reset_stats();
    cell = 0;
    counter = 0;
    std::atomic<bool> victim_survived{true};
    Options o;
    o.seed = seed;
    o.policy = Policy::kRandomWalk;
    o.name = "dead_holder_steal";
    schedtest::run_scheduled(
        o, {[&] {
              htm::crash::schedule_self(htm::crash::Point::kLockHeld);
              victim_survived = htm::crash::run_victim([] {
                htm::atomic([](htm::Txn& txn) { txn.store(&cell, uint64_t{1}); });
              });
            },
            [] {
              for (int i = 0; i < 6; ++i) {
                htm::atomic([](htm::Txn& txn) {
                  txn.store(&counter, txn.load(&counter) + 1);
                });
              }
            }});
    EXPECT_FALSE(victim_survived.load()) << "seed=" << seed;
    EXPECT_EQ(counter, 6u) << "seed=" << seed;
    EXPECT_EQ(cell, 0u);  // the dead block never committed
    EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
    const htm::TxnStats agg = htm::aggregate_stats();
    EXPECT_EQ(agg.crashes_injected, 1u) << "seed=" << seed;
    EXPECT_GE(agg.lock_recoveries, 1u)
        << "seed=" << seed << ": the abandoned lock was never stolen";
  }
}

TEST_F(SchedLease, DeathBetweenStampAndBindIsHarmless) {
  // The stamp/bind window: the inner Register has committed but the lease
  // is not in the table yet. A reaper running inside that window sees a
  // handle with no lease — it must touch nothing. Once the victim binds
  // the lease and then dies, the same lease must be reapable.
  std::atomic<bool> victim_dead{false};
  std::atomic<bool> victim_survived{true};
  std::size_t in_window_leases = 99, in_window_values = 0,
              in_window_reaped = 99, final_reaped = 99;
  Options o;
  o.policy = Policy::kCallback;
  o.name = "stamp_bind_window";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kLeaseStamp && d.seen == 1) {
      return 1;  // inner commit done, lease unbound: run the reaper here
    }
    if (d.thread == 1 && d.kind == Kind::kYield) return 0;
    return kStay;
  };
  schedtest::run_scheduled(
      o, {[&] {
            victim_survived = htm::crash::run_victim([&] {
              col_->register_handle(7);
              htm::crash::schedule_self(htm::crash::Point::kTxnOp,
                                        /*blocks_from_now=*/0,
                                        /*after_ops=*/0);
              col_->register_handle(8);  // dies inside the inner Register
            });
            victim_dead = true;
          },
          [&] {
            in_window_leases = col_->lease_count();
            in_window_values = collect_set().size();
            in_window_reaped = col_->reap_orphans();
            while (!victim_dead.load()) yield();
            final_reaped = col_->reap_orphans();
          }});
  EXPECT_FALSE(victim_survived.load());
  // Inside the window: the handle is visible to Collect but carries no
  // lease, and the reaper correctly kept its hands off.
  EXPECT_EQ(in_window_leases, 0u);
  EXPECT_EQ(in_window_values, 1u);
  EXPECT_EQ(in_window_reaped, 0u);
  // After the bind + death: exactly the bound lease is reaped; the
  // half-registered handle 8 never produced a lease or a Collect slot.
  EXPECT_EQ(final_reaped, 1u);
  EXPECT_EQ(col_->lease_count(), 0u);
  EXPECT_TRUE(collect_set().empty());
  EXPECT_EQ(htm::aggregate_stats().orphans_reaped, 1u);
}

TEST_F(SchedLease, OwnerRefreshInsideTheReapersClaimWindowSurvives) {
  // A reaper is preempted exactly between its claim phase and its reap
  // phase (the second kLeaseReap checkpoint). A live owner refreshes its
  // own lease inside that window. The reaper must then deregister only
  // the claimed orphan — never the freshly restamped live handle.
  std::atomic<std::size_t> reaped{99};
  std::atomic<bool> victim_survived{true};
  collect::Handle live_handle{};
  Options o;
  o.policy = Policy::kCallback;
  o.name = "claim_vs_refresh";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 1 && d.kind == Kind::kYield && d.seen == 1) {
      return 2;  // owner pauses; start the reaper
    }
    if (d.thread == 2 && d.kind == Kind::kLeaseReap && d.seen == 2) {
      return 1;  // claim done, reap pending: let the owner refresh now
    }
    return kStay;
  };
  schedtest::run_scheduled(
      o, {[&] {
            victim_survived = htm::crash::run_victim([&] {
              col_->register_handle(7);
              htm::crash::schedule_self(htm::crash::Point::kTxnOp,
                                        /*blocks_from_now=*/0,
                                        /*after_ops=*/0);
              col_->register_handle(8);
            });
          },
          [&] {
            live_handle = col_->register_handle(9);
            yield();
            col_->update(live_handle, 10);
          },
          [&] { reaped = col_->reap_orphans(); }});
  EXPECT_FALSE(victim_survived.load());
  EXPECT_EQ(reaped.load(), 1u);
  EXPECT_EQ(col_->lease_count(), 1u);
  EXPECT_EQ(col_->orphan_count(), 0u);
  const std::set<collect::Value> vals = collect_set();
  EXPECT_EQ(vals.size(), 1u);
  EXPECT_TRUE(vals.count(10)) << "the live handle lost its refresh";
  col_->deregister(live_handle);
}

TEST_F(SchedLease, TwoReapersNeverDoubleReap) {
  // Reaper A claims both orphans, then is preempted before the reap
  // phase. Reaper B runs a *complete* reap_orphans inside the window and
  // must walk away empty-handed: the leases are claimed and the claimant
  // is alive. A then finishes its batch. One deregister per orphan, ever.
  std::atomic<std::size_t> reaped_a{99}, reaped_b{99};
  std::atomic<bool> victim_survived{true};
  Options o;
  o.policy = Policy::kCallback;
  o.name = "two_reapers";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 1 && d.kind == Kind::kLeaseReap && d.seen == 2) {
      return 2;  // A is preempted between claim and reap; B races in
    }
    return kStay;
  };
  schedtest::run_scheduled(
      o, {[&] {
            victim_survived = htm::crash::run_victim([&] {
              col_->register_handle(7);
              col_->register_handle(8);
              htm::crash::schedule_self(htm::crash::Point::kTxnOp,
                                        /*blocks_from_now=*/0,
                                        /*after_ops=*/0);
              col_->register_handle(9);
            });
          },
          [&] { reaped_a = col_->reap_orphans(); },
          [&] { reaped_b = col_->reap_orphans(); }});
  EXPECT_FALSE(victim_survived.load());
  EXPECT_EQ(reaped_b.load(), 0u)
      << "reaper B deregistered leases claimed by a living reaper";
  EXPECT_EQ(reaped_a.load(), 2u);
  EXPECT_EQ(col_->lease_count(), 0u);
  EXPECT_TRUE(collect_set().empty());
  EXPECT_EQ(htm::aggregate_stats().orphans_reaped, 2u);
}

}  // namespace
}  // namespace dc::sched
