// The schedule-exploration battery and its CI hooks:
//
//  * a K-seed PCT sweep over the interleaving-sensitive protocols — TLE
//    lock steal, lease stamp/reap, the valring publish-before-release
//    seqlock, and GV5 catch-up against sig-ring absorption — asserting the
//    protocol invariants on every explored schedule (DC_SCHED_SEEDS widens
//    the sweep; the CI sched-sweep leg and its nightly-scale input);
//  * proof the sweep has teeth: a deliberately reintroduced PR 4-class
//    dirty-read bug must be found within the CI seed budget, and the
//    recorded failing schedule must replay to the same wrong answer;
//  * a regression leg replaying the checked-in known-bad schedules under
//    tests/schedules/ against the current code (plus the recorder that
//    regenerates them, gated on DC_SCHED_RECORD_DIR).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "htm/retry.hpp"
#include "htm/stats.hpp"
#include "htm/valring.hpp"
#include "memory/pool.hpp"
#include "sched/sched.hpp"
#include "sched/trace.hpp"
#include "tests/support/sched_harness.hpp"
#include "util/rng.hpp"

namespace dc::sched {
namespace {

class SchedSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    reset_world();
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::crash::reset_all();
    htm::sigring::reset();
  }
  // Every swept schedule starts from the same substrate state.
  void reset_world() {
    htm::config() = saved_;
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
    htm::sigring::reset();
  }
  htm::Config saved_;
};

// ---------------------------------------------------------------------------
// The four protocol workloads. Each runs one seeded schedule and asserts
// the protocol's invariant; state is static so addresses — and therefore
// orec indices — are stable across schedules within a process.
// ---------------------------------------------------------------------------

void run_tle_steal(Options o) {
  // A victim dies holding the TLE lock; two survivors must steal it and
  // finish their increments on every schedule.
  htm::config().tle_after_aborts = 2;
  static uint64_t cell;
  static uint64_t counter;
  cell = 0;
  counter = 0;
  std::atomic<bool> victim_survived{true};
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    htm::crash::schedule_self(htm::crash::Point::kLockHeld);
    victim_survived = htm::crash::run_victim(
        [] { htm::atomic([](htm::Txn& txn) { txn.store(&cell, uint64_t{1}); }); });
  });
  for (uint64_t t = 1; t <= 2; ++t) {
    bodies.push_back([t] {
      for (int i = 0; i < 5; ++i) {
        htm::atomic(
            [&](htm::Txn& txn) { txn.store(&counter, txn.load(&counter) + t); });
      }
    });
  }
  schedtest::run_scheduled(o, std::move(bodies));
  EXPECT_FALSE(victim_survived.load());
  EXPECT_EQ(counter, 5u * (1 + 2));
  EXPECT_EQ(cell, 0u);  // the abandoned block never committed
  EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_EQ(agg.crashes_injected, 1u);
  EXPECT_GE(agg.lock_recoveries, 1u);
}

void run_lease_churn(Options o) {
  // A victim churns registers/deregisters until it dies; a reaper runs
  // concurrently with the churn; a live owner keeps refreshing its own
  // lease throughout. Invariant: after the final reap, exactly the live
  // owner's handle remains. The owner verifies that from *inside* its
  // still-registered body and only then deregisters: once its thread
  // exits, its dense id — and thus its lease — is fair game for recycling
  // and reaping, which is the lease contract, not a violation of it.
  collect::MakeParams params;
  params.static_capacity = 1024;
  params.max_threads = 16;
  auto col = std::make_unique<collect::CrashTolerantCollect>(
      collect::make_algorithm("ListFastCollect", params));
  std::atomic<bool> victim_done{false};
  std::atomic<bool> reaper_done{false};
  std::size_t live_leases = 0, live_orphans = 99;
  std::vector<collect::Value> live_values;
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    htm::crash::run_victim([&] {
      col->register_handle(1);
      col->register_handle(2);
      htm::crash::schedule_self(htm::crash::Point::kTxnOp,
                                /*blocks_from_now=*/2, /*after_ops=*/0);
      for (uint64_t i = 0;; ++i) {
        collect::Handle t = col->register_handle(100 + i);
        col->deregister(t);
      }
    });
    victim_done = true;
  });
  bodies.push_back([&] {
    while (!victim_done.load()) {
      col->reap_orphans();
      yield();
    }
    col->reap_orphans();
    reaper_done = true;
  });
  bodies.push_back([&] {
    collect::Handle h = col->register_handle(50);
    for (uint64_t i = 1; i <= 3; ++i) col->update(h, 50 + i);
    while (!reaper_done.load()) yield();
    live_leases = col->lease_count();
    live_orphans = col->orphan_count();
    col->collect(live_values);
    col->deregister(h);
  });
  schedtest::run_scheduled(o, std::move(bodies));
  EXPECT_EQ(live_leases, 1u);
  EXPECT_EQ(live_orphans, 0u);
  ASSERT_EQ(live_values.size(), 1u);
  EXPECT_EQ(live_values[0], 53u);
  EXPECT_EQ(col->lease_count(), 0u);
  EXPECT_GE(htm::aggregate_stats().orphans_reaped, 2u);
}

// Shared invariant-pair body for the two validation workloads: x and y move
// together inside transactions, a churn word keeps the signature ring
// turning, and a read-only txn audits x == y. Deterministic per (seed,
// thread), single fixed addresses only.
void validation_stress(Options o, uint64_t* out_x, uint64_t* out_pairs) {
  static uint64_t x, y, churn[8];
  x = y = 0;
  for (uint64_t& c : churn) c = 0;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> pair_ops{0};
  std::vector<std::function<void()>> bodies;
  for (uint64_t t = 0; t < 3; ++t) {
    bodies.push_back([&, t, seed = o.seed] {
      util::SplitMix64 rng(seed * 1000003 + t);
      for (int i = 0; i < 30; ++i) {
        const uint64_t dice = rng.next() % 4;
        if (dice < 2) {
          htm::atomic([&](htm::Txn& txn) {
            const uint64_t vx = txn.load(&x);
            const uint64_t vy = txn.load(&y);
            if (vx != vy) mismatches.fetch_add(1);
            txn.store(&x, vx + 1);
            txn.store(&y, vy + 1);
          });
          pair_ops.fetch_add(1);
        } else if (dice == 2) {
          const uint64_t j = rng.next() % 8;
          htm::atomic([&](htm::Txn& txn) {
            txn.store(&churn[j], txn.load(&churn[j]) + 1);
          });
        } else {
          htm::atomic([&](htm::Txn& txn) {
            const uint64_t vx = txn.load(&x);
            const uint64_t vy = txn.load(&y);
            if (vx != vy) mismatches.fetch_add(1);
          });
        }
      }
    });
  }
  schedtest::run_scheduled(o, std::move(bodies));
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(x, y);
  EXPECT_EQ(x, pair_ops.load());
  *out_x = x;
  *out_pairs = pair_ops.load();
}

void run_valring_seqlock(Options o) {
  // The publish-before-release seqlock: signature validation with the
  // differential crosscheck on — any false negative (signature valid where
  // the exact walk saw a conflict) is a soundness bug and fails here.
  htm::config().validation = htm::ValidationPolicy::kSignature;
  htm::config().validation_crosscheck = true;
  uint64_t x = 0, pairs = 0;
  validation_stress(std::move(o), &x, &pairs);
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_GT(agg.sig_validations, 0u);
  EXPECT_EQ(htm::sigring::crosscheck_false_negatives().load(), 0u);
}

void run_gv5_sig(Options o) {
  // GV5 catch-up against sig-ring absorption: sloppy stamps run ahead of
  // the shared clock, and the ring's stamp filter must still never admit a
  // stale read set.
  htm::config().clock_policy = htm::ClockPolicy::kGv5;
  htm::config().validation = htm::ValidationPolicy::kSignature;
  htm::config().validation_crosscheck = true;
  uint64_t x = 0, pairs = 0;
  validation_stress(std::move(o), &x, &pairs);
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_GT(agg.sig_validations, 0u);
  EXPECT_GT(agg.sloppy_stamps, 0u) << "GV5 never took a sloppy stamp";
  EXPECT_EQ(htm::sigring::crosscheck_false_negatives().load(), 0u);
}

TEST_F(SchedSweep, PctSeedBatteryHoldsProtocolInvariants) {
  struct Protocol {
    const char* name;
    void (*run)(Options);
  };
  const Protocol protocols[] = {
      {"sweep_tle_steal", run_tle_steal},
      {"sweep_lease_churn", run_lease_churn},
      {"sweep_valring_seqlock", run_valring_seqlock},
      {"sweep_gv5_sig", run_gv5_sig},
  };
  const uint64_t seeds = schedtest::sweep_seed_count(4);
  RecordProperty("sweep_seeds", static_cast<int>(seeds));
  for (const Protocol& p : protocols) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      reset_world();
      Options o;
      o.seed = seed;
      o.policy = Policy::kPct;
      o.name = p.name;
      SCOPED_TRACE(std::string(p.name) + " seed=" + std::to_string(seed));
      p.run(o);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_F(SchedSweep, ReintroducedDirtyReadBugIsFoundAndReplays) {
  // The PR 4-class bug, reintroduced in a test-local fixture: read the
  // counter OUTSIDE the transaction, then store the incremented value
  // inside one. The kTxnStore/kCommitEntry preemption points let a PCT
  // schedule slide another thread's whole block into the read→commit
  // window, losing an update. The sweep must find such a schedule within
  // the CI budget, and the recorded schedule must replay to the very same
  // wrong total.
  static uint64_t counter;
  auto buggy_bodies = [] {
    std::vector<std::function<void()>> bodies;
    for (int t = 0; t < 2; ++t) {
      bodies.push_back([] {
        for (int i = 0; i < 4; ++i) {
          const uint64_t v = counter;  // dirty read — the bug
          htm::atomic([&](htm::Txn& txn) { txn.store(&counter, v + 1); });
        }
      });
    }
    return bodies;
  };
  const uint64_t expected = 2 * 4;
  const uint64_t budget = 200;  // seeds; found in the first few in practice
  bool found = false;
  uint64_t bad_seed = 0, bad_total = 0, seeds_tried = 0;
  Trace bad;
  for (uint64_t seed = 1; seed <= budget && !found; ++seed) {
    ++seeds_tried;
    counter = 0;
    Options o;
    o.seed = seed;
    o.policy = Policy::kPct;
    o.name = "dirty_read_bug";
    RunResult r = schedtest::run_scheduled(o, buggy_bodies());
    if (counter != expected) {
      found = true;
      bad_seed = seed;
      bad_total = counter;
      bad = r.trace;
    }
  }
  RecordProperty("seeds_to_find_bug", static_cast<int>(seeds_tried));
  ASSERT_TRUE(found) << "sweep missed the planted bug in " << budget
                     << " seeds";
  EXPECT_LT(bad_total, expected);

  // The recorded schedule is a complete repro: replaying it loses the
  // same updates again.
  counter = 0;
  Options rep;
  rep.policy = Policy::kReplay;
  rep.replay = &bad;
  rep.seed = bad.seed;
  rep.name = "dirty_read_bug";
  RunResult r = schedtest::run_scheduled(rep, buggy_bodies());
  EXPECT_FALSE(r.replay_diverged)
      << "seed " << bad_seed << " diverged at step " << r.divergence_step;
  EXPECT_EQ(counter, bad_total);
}

// ---------------------------------------------------------------------------
// Checked-in known-bad schedules (tests/schedules/*.trace): interleavings
// that once exposed PR 4/PR 5-class bugs, replayed against the current
// code on every CI run. The trace's `name` field selects the workload.
// ---------------------------------------------------------------------------

RunResult run_regression_workload(const std::string& name, Options o) {
  o.name = name;
  if (name == "regress_conservation_gv1") {
    htm::config().clock_policy = htm::ClockPolicy::kGv1;
    htm::config().validation = htm::ValidationPolicy::kExact;
    static uint64_t counter;
    counter = 0;
    std::vector<std::function<void()>> bodies;
    for (uint64_t t = 0; t < 3; ++t) {
      bodies.push_back([t] {
        for (int i = 0; i < 15; ++i) {
          htm::atomic([&](htm::Txn& txn) {
            txn.store(&counter, txn.load(&counter) + (t + 1));
          });
        }
      });
    }
    RunResult r = schedtest::run_scheduled(std::move(o), std::move(bodies));
    EXPECT_EQ(counter, 15u * (1 + 2 + 3));
    return r;
  }
  if (name == "regress_conservation_gv5sig") {
    htm::config().clock_policy = htm::ClockPolicy::kGv5;
    htm::config().validation = htm::ValidationPolicy::kSignature;
    htm::config().validation_crosscheck = true;
    static uint64_t counter;
    counter = 0;
    std::vector<std::function<void()>> bodies;
    for (uint64_t t = 0; t < 3; ++t) {
      bodies.push_back([t] {
        for (int i = 0; i < 15; ++i) {
          htm::atomic([&](htm::Txn& txn) {
            txn.store(&counter, txn.load(&counter) + (t + 1));
          });
        }
      });
    }
    RunResult r = schedtest::run_scheduled(std::move(o), std::move(bodies));
    EXPECT_EQ(counter, 15u * (1 + 2 + 3));
    EXPECT_EQ(htm::sigring::crosscheck_false_negatives().load(), 0u);
    return r;
  }
  if (name == "regress_alloc_fault_register") {
    // Scripted allocation denial on each thread's first Register. The
    // Register allocates its node before the publish transaction (the paper
    // splits allocation out of atomic blocks), so the denial surfaces as
    // PoolExhausted and the caller retries — the service-worker pattern.
    // The kAllocFault checkpoint sits on the denial, so the recorded
    // schedule replays the failure at the same step; the retried Registers
    // must commit exactly once and the deregisters must leave the Collect
    // empty, on whatever schedule is played.
    collect::MakeParams params;
    params.static_capacity = 256;
    params.max_threads = 8;
    static std::unique_ptr<collect::CrashTolerantCollect> col;
    col = std::make_unique<collect::CrashTolerantCollect>(
        collect::make_algorithm("ListFastCollect", params));
    const auto pool_before = mem::pool_stats();
    mem::pool_set_alloc_fault_script({{mem::kAnyThread, 0}});
    auto register_retrying = [](collect::Value v) {
      for (;;) {
        try {
          return col->register_handle(v);
        } catch (const std::bad_alloc&) {
        }
      }
    };
    std::vector<std::function<void()>> bodies;
    bodies.push_back([register_retrying] {
      collect::Handle h = register_retrying(7);
      col->update(h, 8);
      col->deregister(h);
    });
    bodies.push_back([register_retrying] {
      collect::Handle h = register_retrying(9);
      col->deregister(h);
    });
    RunResult r = schedtest::run_scheduled(std::move(o), std::move(bodies));
    mem::pool_clear_alloc_fault_script();
    EXPECT_EQ(mem::pool_stats().alloc_faults_injected,
              pool_before.alloc_faults_injected + 2);
    std::vector<collect::Value> out;
    col->collect(out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(col->lease_count(), 0u);
    col.reset();
    return r;
  }
  if (name == "regress_dead_holder") {
    htm::config().tle_after_aborts = 2;
    static uint64_t cell;
    static uint64_t counter;
    cell = 0;
    counter = 0;
    std::atomic<bool> victim_survived{true};
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      htm::crash::schedule_self(htm::crash::Point::kLockHeld);
      victim_survived = htm::crash::run_victim(
          [] { htm::atomic([](htm::Txn& txn) { txn.store(&cell, uint64_t{1}); }); });
    });
    bodies.push_back([] {
      for (int i = 0; i < 5; ++i) {
        htm::atomic(
            [](htm::Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
      }
    });
    RunResult r = schedtest::run_scheduled(std::move(o), std::move(bodies));
    EXPECT_FALSE(victim_survived.load());
    EXPECT_EQ(counter, 5u);
    EXPECT_EQ(cell, 0u);
    EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
    EXPECT_GE(htm::aggregate_stats().lock_recoveries, 1u);
    return r;
  }
  ADD_FAILURE() << "unknown regression workload: " << name;
  return RunResult{};
}

TEST_F(SchedSweep, KnownBadSchedulesStayFixed) {
  namespace fs = std::filesystem;
  const fs::path dir = DC_SCHED_SCHEDULE_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".trace") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no checked-in schedules under " << dir;
  for (const fs::path& f : files) {
    SCOPED_TRACE(f.string());
    Trace t;
    ASSERT_TRUE(Trace::read_file(f.string(), &t));
    reset_world();
    Options o;
    o.policy = Policy::kReplay;
    o.replay = &t;
    o.seed = t.seed;
    RunResult r = run_regression_workload(t.name, std::move(o));
    EXPECT_FALSE(r.replay_diverged)
        << "checked-in schedule no longer matches the code's checkpoint "
           "sequence (diverged at step "
        << r.divergence_step << ")";
  }
}

TEST_F(SchedSweep, RecordRegressionSchedules) {
  // Regenerates tests/schedules/*.trace. Not part of the normal run: set
  // DC_SCHED_RECORD_DIR (usually to tests/schedules) after changing a
  // workload or the checkpoint taxonomy, then commit the new traces.
  const char* dir = std::getenv("DC_SCHED_RECORD_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "set DC_SCHED_RECORD_DIR to regenerate the checked-in "
                    "schedules";
  }
  struct Spec {
    const char* name;
    uint64_t seed;
  };
  const Spec specs[] = {
      {"regress_conservation_gv1", 3},
      {"regress_conservation_gv5sig", 5},
      {"regress_dead_holder", 7},
      {"regress_alloc_fault_register", 11},
  };
  std::filesystem::create_directories(dir);
  for (const Spec& s : specs) {
    reset_world();
    Options o;
    o.seed = s.seed;
    o.policy = Policy::kPct;
    RunResult r = run_regression_workload(s.name, std::move(o));
    const std::string path = std::string(dir) + "/" + s.name + ".trace";
    ASSERT_TRUE(r.trace.write_file(path)) << path;
  }
}

}  // namespace
}  // namespace dc::sched
