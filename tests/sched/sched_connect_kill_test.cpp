// Exact scheduled reproductions of the chaos orchestrator's worker-kill
// protocol (htm/crash.hpp request_worker_kill) landing on a *connecting*
// session — the interleaving the open-loop service meets whenever a kill
// phase fires while a worker is admitting: the mailbox is armed between
// the victim's first lease bind and its next Register, so the death lands
// inside the connect transaction. Two variants are pinned step-for-step:
//
//  * after=0 (immediate): the kill is consumed at the connect block and
//    the victim dies inside the inner Register — the half-claimed handle
//    must leave no lease, and only the previously bound lease is reaped;
//  * after=1 (deferred, the service chaos default): the connect block
//    consumes the mailbox but converts it into a self-schedule one block
//    out, so the connect *completes*, binds its lease, and the next block
//    dies — both bound leases must be reaped.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "htm/stats.hpp"
#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"

namespace dc::sched {
namespace {

class SchedConnectKill : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
    collect::MakeParams params;
    params.static_capacity = 1024;
    params.max_threads = 16;
    col_ = std::make_unique<collect::CrashTolerantCollect>(
        collect::make_algorithm("ListFastCollect", params));
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::crash::reset_all();
  }

  std::set<collect::Value> collect_set() {
    std::vector<collect::Value> out;
    col_->collect(out);
    return {out.begin(), out.end()};
  }

  std::unique_ptr<collect::CrashTolerantCollect> col_;
  htm::Config saved_;
};

TEST_F(SchedConnectKill, ImmediateKillDiesInsideTheConnect) {
  // Thread 0 is the worker: it binds logical index 0, registers handle 7
  // (the lease binds), then starts a second connect. The orchestrator
  // (thread 1) arms the kill inside the stamp/bind window of the first
  // register — before the victim's next atomic block — so the after=0
  // mailbox is consumed at the connect block of handle 8 and the victim
  // dies inside the inner Register: no lease for 8, no Collect slot, and
  // the survivor reaps exactly the bound lease of 7.
  std::atomic<bool> victim_dead{false};
  std::atomic<bool> victim_survived{true};
  std::atomic<std::size_t> reaped{99};
  Options o;
  o.policy = Policy::kCallback;
  o.name = "connect_kill_immediate";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kLeaseStamp && d.seen == 1) {
      return 1;  // first lease binding: arm the kill now
    }
    if (d.thread == 1 && d.kind == Kind::kYield) return 0;
    return kStay;
  };
  schedtest::run_scheduled(
      o, {[&] {
            htm::crash::bind_worker(0);
            victim_survived = htm::crash::run_victim([&] {
              col_->register_handle(7);
              col_->register_handle(8);  // dies inside this connect
            });
            victim_dead = true;
          },
          [&] {
            ASSERT_TRUE(htm::crash::request_worker_kill(
                0, htm::crash::Point::kTxnOp, /*after_ops=*/0,
                /*after_blocks=*/0));
            while (!victim_dead.load()) yield();
            reaped = col_->reap_orphans();
          }});
  EXPECT_FALSE(victim_survived.load());
  EXPECT_EQ(reaped.load(), 1u);
  EXPECT_EQ(col_->lease_count(), 0u);
  EXPECT_EQ(col_->orphan_count(), 0u);
  EXPECT_TRUE(collect_set().empty())
      << "the half-claimed connect left a Collect slot";
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_EQ(agg.crashes_injected, 1u);
  EXPECT_EQ(agg.orphans_reaped, 1u);
  EXPECT_EQ(htm::crash::worker_kills_pending(), 0u);
}

TEST_F(SchedConnectKill, DeferredKillLetsTheConnectCompleteThenDies) {
  // Same arming point, but after=1 (the service chaos default): the
  // connect block of handle 8 consumes the mailbox and converts it into a
  // self-schedule one block out. The connect commits and binds its lease;
  // the victim then dies in its next atomic block (the connect of 9).
  // Both bound leases are orphaned and reaped; 9 never claimed a slot.
  std::atomic<bool> victim_dead{false};
  std::atomic<bool> victim_survived{true};
  std::atomic<std::size_t> reaped{99};
  Options o;
  o.policy = Policy::kCallback;
  o.name = "connect_kill_deferred";
  o.controller = [](const Decision& d) -> int32_t {
    if (d.thread == 0 && d.kind == Kind::kLeaseStamp && d.seen == 1) {
      return 1;
    }
    if (d.thread == 1 && d.kind == Kind::kYield) return 0;
    return kStay;
  };
  schedtest::run_scheduled(
      o, {[&] {
            htm::crash::bind_worker(0);
            victim_survived = htm::crash::run_victim([&] {
              col_->register_handle(7);
              col_->register_handle(8);  // consumes the kill, completes
              col_->register_handle(9);  // dies here
            });
            victim_dead = true;
          },
          [&] {
            ASSERT_TRUE(htm::crash::request_worker_kill(
                0, htm::crash::Point::kTxnOp, /*after_ops=*/0,
                /*after_blocks=*/1));
            while (!victim_dead.load()) yield();
            reaped = col_->reap_orphans();
          }});
  EXPECT_FALSE(victim_survived.load());
  EXPECT_EQ(reaped.load(), 2u)
      << "the deferred kill should have let the connect bind its lease";
  EXPECT_EQ(col_->lease_count(), 0u);
  EXPECT_TRUE(collect_set().empty());
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_EQ(agg.crashes_injected, 1u);
  EXPECT_EQ(agg.orphans_reaped, 2u);
}

}  // namespace
}  // namespace dc::sched
