// Crash-crossed robustness tier: every HTM-backed Dynamic Collect
// algorithm, wrapped in the crash-tolerant lease decorator, must stay
// correct AND live while victim threads are being *killed* — abandoned
// mid-transaction, at commit entry, and (scripted, at least once per run)
// while holding the TLE fallback lock. The immortal survivor thread runs
// the Collect-spec oracle throughout, then reaps the dead threads' handles
// and asserts the object shrinks back to exactly the live footprint.
//
// Liveness is structural, as in the fault tier: victims run bounded loops
// and the survivor's final reap must terminate — a waiter that cannot
// steal a dead thread's lock hangs the test (and trips its ctest TIMEOUT)
// instead of passing vacuously.
//
// This suite is also the DC_CRASH smoke target: scripts/check.sh --crash
// and the CI crash-smoke job run it with DC_CRASH exported.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace dc::collect {
namespace {

// Crash points only exist inside transactions; the two non-HTM baselines
// have nothing to kill.
std::vector<AlgoInfo> htm_algorithms() {
  std::vector<AlgoInfo> algos;
  for (const AlgoInfo& info : all_algorithms()) {
    if (info.uses_htm) algos.push_back(info);
  }
  return algos;
}

class CrashRobustness
    : public ::testing::TestWithParam<std::tuple<AlgoInfo, htm::ClockPolicy>> {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::config().clock_policy = std::get<1>(GetParam());
    htm::config().crash.rate = 0.002;
    htm::config().crash.seed = 0xC4A5;
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
    MakeParams params;
    params.static_capacity = 256;
    params.max_threads = 8;
    col_ = std::make_unique<CrashTolerantCollect>(
        std::get<0>(GetParam()).make(params));
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::reset_storm_sites();
    htm::crash::reset_all();
  }
  std::unique_ptr<CrashTolerantCollect> col_;
  htm::Config saved_;
};

TEST_P(CrashRobustness, SpecHoldsAndOrphansAreReapedUnderThreadDeath) {
  constexpr int kVictims = 3;
  constexpr int kOpsPerVictim = 600;
  constexpr Value kStableTag = 0xABCull << 52;
  constexpr Value kChurnTag = 0xDEFull << 52;
  // The survivor's stable handles: leased to a live owner, so no reap may
  // ever touch them.
  std::vector<Handle> stable;
  for (int i = 0; i < 8; ++i) {
    stable.push_back(
        col_->register_handle(kStableTag | static_cast<Value>(i)));
  }
  util::SpinBarrier barrier(kVictims + 1);
  std::vector<std::thread> victims;
  std::atomic<int> victims_done{0};
  std::atomic<int> victims_crashed{0};
  const bool fast_collect_eager =
      std::string(col_->inner().name()) == "ListFastCollect";
  for (int w = 0; w < kVictims; ++w) {
    victims.emplace_back([&, w] {
      htm::crash::reset_thread();
      barrier.arrive_and_wait();
      const auto body = [&] {
        util::Xoshiro256 rng(static_cast<uint64_t>(w) * 104729 + 13);
        std::vector<Handle> mine;
        uint64_t seq = 0;
        // Every victim owns at least one handle before any kill can fire,
        // so a death always leaves an orphan for the reaper.
        mine.push_back(col_->register_handle(kChurnTag | ++seq));
        if (w == 0) {
          // Guarantee the hardest case once per run: die in the next atomic
          // block, forced onto — and holding — the TLE fallback lock.
          htm::crash::schedule_self(htm::crash::Point::kLockHeld);
        }
        for (int op = 0; op < kOpsPerVictim; ++op) {
          const uint64_t dice = rng.next_below(10);
          const bool may_churn = !fast_collect_eager || (op % 8 == 0);
          if (dice < 4 && mine.size() < 20 && may_churn) {
            mine.push_back(col_->register_handle(kChurnTag | ++seq));
          } else if (dice < 6 && !mine.empty() && may_churn) {
            col_->deregister(mine.back());
            mine.pop_back();
          } else if (!mine.empty()) {
            col_->update(mine[rng.next_below(mine.size())],
                         kChurnTag | ++seq);
          }
        }
        for (Handle h : mine) col_->deregister(h);
      };
      bool survived;
      if (w == 0) {
        // Victim 0 is deterministic: not rate-eligible (no enable_self), so
        // nothing can kill it before its scripted lock-held death — which
        // always finds its first handle registered.
        try {
          body();
          survived = true;
        } catch (const htm::crash::ThreadCrash&) {
          survived = false;
        }
      } else {
        survived = htm::crash::run_victim(body);
      }
      if (!survived) victims_crashed.fetch_add(1, std::memory_order_relaxed);
      victims_done.fetch_add(1, std::memory_order_release);
    });
  }
  barrier.arrive_and_wait();
  // Survivor loop: the Collect spec must hold at every instant — stable
  // handles always contribute, foreign values never appear — while threads
  // die around it. Reaping concurrently is legal (only orphaned leases are
  // claimed), so exercise it.
  std::vector<Value> out;
  int rounds = 0;
  do {
    ++rounds;
    if (rounds % 8 == 0) col_->reap_orphans();
    col_->collect(out);
    std::set<Value> stable_seen;
    for (const Value v : out) {
      const bool is_stable =
          (v >> 52) == (kStableTag >> 52) && (v & ((1ULL << 52) - 1)) < 8;
      const bool is_churn = (v >> 52) == (kChurnTag >> 52);
      ASSERT_TRUE(is_stable || is_churn)
          << col_->name() << ": foreign value 0x" << std::hex << v;
      if (is_stable) stable_seen.insert(v);
    }
    ASSERT_EQ(stable_seen.size(), 8u) << col_->name() << " round " << rounds;
  } while (victims_done.load(std::memory_order_acquire) < kVictims &&
           rounds < 100000);
  for (auto& t : victims) t.join();

  // Force one transactional block through the substrate: victim 0 died
  // holding the lock, and some algorithms (ArrayStatSearchNo) can reap and
  // deregister without a single transaction — this probe is the waiter that
  // must detect the dead owner and steal.
  uint64_t probe = 0;
  htm::atomic([&](htm::Txn& txn) { txn.store(&probe, uint64_t{1}); });
  ASSERT_EQ(probe, 1u);

  // Reap to convergence: every dead victim's handles leave the object, and
  // the Collect returns to exactly the survivor's footprint.
  while (col_->orphan_count() != 0) col_->reap_orphans();
  col_->collect(out);
  std::set<Value> final_set(out.begin(), out.end());
  std::set<Value> want;
  for (int i = 0; i < 8; ++i) want.insert(kStableTag | static_cast<Value>(i));
  EXPECT_EQ(final_set, want) << col_->name();
  EXPECT_EQ(col_->lease_count(), 8u) << "only the survivor's leases remain";

  for (Handle h : stable) col_->deregister(h);
  col_->collect(out);
  EXPECT_TRUE(out.empty()) << col_->name();
  EXPECT_EQ(col_->lease_count(), 0u);

  // The run must have exercised the machinery it claims to test: victim 0's
  // scripted kill guarantees at least one death while holding the lock, so
  // at least one steal must have happened for the run to terminate at all.
  const htm::TxnStats s = htm::aggregate_stats();
  EXPECT_GE(victims_crashed.load(), 1);
  EXPECT_GT(s.crashes_injected, 0u);
  EXPECT_GE(s.lock_recoveries, 1u)
      << "a thread died holding the TLE lock; someone must have stolen it";
  EXPECT_GT(s.orphans_reaped, 0u);
  EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u)
      << "the lock must end the run free";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CrashRobustness,
    ::testing::Combine(::testing::ValuesIn(htm_algorithms()),
                       ::testing::Values(htm::ClockPolicy::kGv1,
                                         htm::ClockPolicy::kGv5)),
    [](const ::testing::TestParamInfo<CrashRobustness::ParamType>& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             htm::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dc::collect
