// Differential oracle for the signature validation backend: run with
// Config::validation_crosscheck set, every signature validation is preceded
// by the exact read-set walk and the two verdicts are compared. The one
// outcome that must never occur — the signature scan reporting valid where
// the exact walk found a real conflict — is a soundness bug (a Bloom filter
// has no false negatives; the ring's stamp filter, in-flight table, and
// eviction watermark exist precisely to preserve that property end to end),
// and is tallied in sigring::crosscheck_false_negatives(). The exact walk's
// verdict decides, so a divergence cannot corrupt the run that detected it.
//
// The stress is crossed with both clock policies (GV5's sloppy stamps run
// ahead of the shared clock — the hardest regime for the stamp filter) and
// with the fault and crash injectors, whose spurious aborts and abandoned
// in-flight windows bend the commit path through its rarest interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/htm.hpp"
#include "htm/valring.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

#if defined(DC_SCHED)
#include <functional>

#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"
#endif

namespace dc::htm {
namespace {

class ValidationOracle : public ::testing::TestWithParam<ClockPolicy> {
 protected:
  void SetUp() override {
    saved_ = config();
    config().clock_policy = GetParam();
    config().validation = ValidationPolicy::kSignature;
    config().validation_crosscheck = true;
    reset_stats();
    reset_storm_sites();
    fault::reset_thread();
    crash::reset_all();
    sigring::reset();
  }
  void TearDown() override {
    config() = saved_;
    reset_storm_sites();
    fault::reset_thread();
    crash::reset_all();
    sigring::reset();
  }
  Config saved_;
};

// Shared stress body: kThreads workers over a hot invariant pair (x == y),
// a churn array that keeps the ring turning over (forcing wrap fallbacks),
// and deliberate yields inside transaction bodies to stretch the windows
// the in-flight table and publish-before-release ordering protect.
struct StressState {
  uint64_t x = 0;
  uint64_t y = 0;
  uint64_t churn[512] = {};
  std::atomic<uint64_t> mismatches{0};
};

void stress_op(StressState& st, util::Xoshiro256& rng, uint64_t op) {
  const uint64_t dice = rng.next_below(10);
  if (dice < 5) {
    atomic([&](Txn& t) {
      const uint64_t vx = t.load(&st.x);
      if (op % 7 == 0) std::this_thread::yield();
      const uint64_t vy = t.load(&st.y);
      if (vx != vy) st.mismatches.fetch_add(1, std::memory_order_relaxed);
      t.store(&st.x, vx + 1);
      t.store(&st.y, vy + 1);
    });
  } else if (dice < 8) {
    // Disjoint churn: each commit publishes a fresh ring entry, so long
    // runs wrap the ring under the readers' feet.
    const uint64_t i = rng.next_below(512);
    atomic([&](Txn& t) { t.store(&st.churn[i], t.load(&st.churn[i]) + 1); });
  } else {
    atomic([&](Txn& t) {
      const uint64_t vx = t.load(&st.x);
      if (op % 5 == 0) std::this_thread::yield();
      const uint64_t vy = t.load(&st.y);
      if (vx != vy) st.mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

TEST_P(ValidationOracle, LockstepBackendsNeverDivergeUnderYieldStress) {
  constexpr int kThreads = 4;
  constexpr int kOps = 2500;
  StressState st;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 7919 + 101);
      barrier.arrive_and_wait();
      for (uint64_t op = 0; op < kOps; ++op) stress_op(st, rng, op);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(st.mismatches.load(), 0u);
  EXPECT_EQ(st.x, st.y);
  const TxnStats s = aggregate_stats();
  EXPECT_GT(s.sig_validations, 0u) << "oracle ran but never cross-checked";
  EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u)
      << "signature backend reported valid where the exact walk saw a "
         "conflict — soundness bug";
}

TEST_P(ValidationOracle, LockstepBackendsNeverDivergeUnderFaultInjection) {
  // 10% spurious aborts re-enter the retry loop constantly, driving the
  // commit path through storm-mode TLE fallbacks — lock-mode publishes and
  // all.
  config().fault.rate = 0.10;
  config().fault.seed = 0x515;
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  StressState st;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      fault::reset_thread();
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 104729 + 13);
      barrier.arrive_and_wait();
      for (uint64_t op = 0; op < kOps; ++op) stress_op(st, rng, op);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(st.mismatches.load(), 0u);
  EXPECT_EQ(st.x, st.y);
  const TxnStats s = aggregate_stats();
  EXPECT_GT(s.faults_injected, 0u) << "injection armed but no faults fired";
  EXPECT_GT(s.sig_validations, 0u);
  EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u);
}

TEST_P(ValidationOracle, LockstepBackendsNeverDivergeUnderThreadDeath) {
  // Victims die mid-transaction and at commit entry, abandoning blocks
  // whose in-flight windows must unwind cleanly; survivors keep validating
  // against whatever the dead threads left behind.
  config().crash.rate = 0.002;
  config().crash.seed = 0xC4A5;
  constexpr int kVictims = 3;
  constexpr int kOps = 1200;
  StressState st;
  util::SpinBarrier barrier(kVictims + 1);
  std::vector<std::thread> victims;
  for (int w = 0; w < kVictims; ++w) {
    victims.emplace_back([&, w] {
      crash::reset_thread();
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 31337 + 7);
      barrier.arrive_and_wait();
      for (uint64_t op = 0; op < kOps; ++op) {
        const bool alive = crash::run_victim([&] { stress_op(st, rng, op); });
        if (!alive) return;  // dead threads run no further operations
      }
    });
  }
  barrier.arrive_and_wait();
  // The survivor validates throughout the killing.
  util::Xoshiro256 rng(0xABCDEF);
  for (uint64_t op = 0; op < kOps; ++op) stress_op(st, rng, op);
  for (auto& t : victims) t.join();
  EXPECT_EQ(st.mismatches.load(), 0u);
  EXPECT_EQ(st.x, st.y);  // dead threads' partial blocks rolled back whole
  const TxnStats s = aggregate_stats();
  EXPECT_GT(s.sig_validations, 0u);
  EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BothClocks, ValidationOracle,
    ::testing::Values(ClockPolicy::kGv1, ClockPolicy::kGv5),
    [](const ::testing::TestParamInfo<ClockPolicy>& info) {
      return std::string(to_string(info.param));
    });

#if defined(DC_SCHED)

// ---------------------------------------------------------------------------
// Schedule-replay differential oracle. The free-running tests above show
// the backends agree under whatever interleavings the host happens to
// produce; these pin the interleaving itself. Every admitted effect is a
// pure function of the operation streams (each op retries to commit), so
// across seeds, clock policies, and validation backends the final (x, y)
// must be identical — the backends may disagree only in *classified false
// positives* (sig_false_aborts: extra retries, never extra admissions),
// and with the crosscheck armed a single unclassified divergence (a
// signature pass where the exact walk sees a conflict) trips the
// false-negative counter.
// ---------------------------------------------------------------------------

struct OracleRun {
  sched::RunResult result;
  uint64_t x = 0;
  uint64_t y = 0;
  uint64_t mismatches = 0;
  uint64_t sig_validations = 0;
  uint64_t sig_false_aborts = 0;
};

OracleRun scheduled_oracle(sched::Options o) {
  // Static state: stable addresses, so one process's schedules replay
  // within the same process regardless of run order.
  static StressState st;
  st.x = 0;
  st.y = 0;
  for (uint64_t& c : st.churn) c = 0;
  st.mismatches = 0;
  reset_stats();
  reset_storm_sites();
  sigring::reset();
  std::vector<std::function<void()>> bodies;
  for (uint64_t t = 0; t < 3; ++t) {
    bodies.push_back([t, seed = o.seed] {
      util::Xoshiro256 rng(seed * 1000003 + t * 7919 + 101);
      for (uint64_t op = 0; op < 25; ++op) stress_op(st, rng, op);
    });
  }
  OracleRun r;
  r.result = schedtest::run_scheduled(std::move(o), std::move(bodies));
  r.x = st.x;
  r.y = st.y;
  r.mismatches = st.mismatches.load();
  const TxnStats s = aggregate_stats();
  r.sig_validations = s.sig_validations;
  r.sig_false_aborts = s.sig_false_aborts;
  return r;
}

TEST_P(ValidationOracle, ScheduledSweepKeepsBackendsInLockstep) {
  // Random-walk-explored schedules with the crosscheck armed: on every
  // schedule the two backends must issue identical admit verdicts modulo
  // classified false positives. (Random walk, not PCT: the sweep needs
  // dense interleaving so gv1 commits actually have to validate; PCT's
  // priority runs leave most schedules conflict-free under gv1.)
  uint64_t total_sig_validations = 0;
  for (uint64_t seed = 1; seed <= schedtest::sweep_seed_count(3); ++seed) {
    sched::Options o;
    o.seed = seed;
    o.policy = sched::Policy::kRandomWalk;
    o.name = "oracle_sweep";
    const OracleRun r = scheduled_oracle(o);
    EXPECT_EQ(r.mismatches, 0u) << "seed=" << seed;
    EXPECT_EQ(r.x, r.y) << "seed=" << seed;
    EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u)
        << "seed=" << seed;
    total_sig_validations += r.sig_validations;
  }
  EXPECT_GT(total_sig_validations, 0u) << "sweep never cross-checked";
}

TEST_P(ValidationOracle, RecordedScheduleReplaysIdenticalVerdicts) {
  // A recorded schedule replays to the same admitted state AND the same
  // classified-false-positive count: the backend differential is itself a
  // deterministic function of the schedule.
  sched::Options o;
  o.seed = 7;
  o.policy = sched::Policy::kPct;
  o.name = "oracle_replay";
  OracleRun a = scheduled_oracle(o);
  EXPECT_EQ(a.mismatches, 0u);
  EXPECT_EQ(a.x, a.y);

  sched::Options rep;
  rep.policy = sched::Policy::kReplay;
  rep.replay = &a.result.trace;
  rep.seed = a.result.trace.seed;
  rep.name = "oracle_replay";
  OracleRun b = scheduled_oracle(rep);
  EXPECT_FALSE(b.result.replay_diverged)
      << "diverged at step " << b.result.divergence_step;
  EXPECT_EQ(b.x, a.x);
  EXPECT_EQ(b.y, a.y);
  EXPECT_EQ(b.sig_validations, a.sig_validations);
  EXPECT_EQ(b.sig_false_aborts, a.sig_false_aborts);
  b.result.trace.policy = a.result.trace.policy;  // header differs by design
  EXPECT_EQ(b.result.trace.serialize(), a.result.trace.serialize());
}

TEST(ValidationOracleScheduled, ClocksAndBackendsAdmitIdenticalEffects) {
  // The gv1-vs-gv5 (and exact-vs-sig) leg: same operation streams, all
  // four (clock, backend) combinations — every run must land on the same
  // final invariant pair. Schedules differ (checkpoint sequences depend on
  // the abort pattern), admitted effects must not.
  Config saved = config();
  crash::reset_all();
  uint64_t expect_x = 0;
  bool first = true;
  for (const ClockPolicy clock : {ClockPolicy::kGv1, ClockPolicy::kGv5}) {
    for (const ValidationPolicy val :
         {ValidationPolicy::kExact, ValidationPolicy::kSignature}) {
      config() = saved;
      config().clock_policy = clock;
      config().validation = val;
      config().validation_crosscheck = (val == ValidationPolicy::kSignature);
      sched::Options o;
      o.seed = 5;
      o.policy = sched::Policy::kPct;
      o.name = "oracle_clocks";
      const OracleRun r = scheduled_oracle(o);
      SCOPED_TRACE(std::string(to_string(clock)) + "/" +
                   (val == ValidationPolicy::kSignature ? "sig" : "exact"));
      EXPECT_EQ(r.mismatches, 0u);
      EXPECT_EQ(r.x, r.y);
      if (first) {
        expect_x = r.x;
        first = false;
      } else {
        EXPECT_EQ(r.x, expect_x)
            << "clock/backend changed the admitted effects";
      }
      if (val == ValidationPolicy::kSignature) {
        EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u);
      }
    }
  }
  config() = saved;
  reset_storm_sites();
  sigring::reset();
  crash::reset_all();
}

#endif  // DC_SCHED

}  // namespace
}  // namespace dc::htm
