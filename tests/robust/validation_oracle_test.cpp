// Differential oracle for the signature validation backend: run with
// Config::validation_crosscheck set, every signature validation is preceded
// by the exact read-set walk and the two verdicts are compared. The one
// outcome that must never occur — the signature scan reporting valid where
// the exact walk found a real conflict — is a soundness bug (a Bloom filter
// has no false negatives; the ring's stamp filter, in-flight table, and
// eviction watermark exist precisely to preserve that property end to end),
// and is tallied in sigring::crosscheck_false_negatives(). The exact walk's
// verdict decides, so a divergence cannot corrupt the run that detected it.
//
// The stress is crossed with both clock policies (GV5's sloppy stamps run
// ahead of the shared clock — the hardest regime for the stamp filter) and
// with the fault and crash injectors, whose spurious aborts and abandoned
// in-flight windows bend the commit path through its rarest interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/htm.hpp"
#include "htm/valring.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace dc::htm {
namespace {

class ValidationOracle : public ::testing::TestWithParam<ClockPolicy> {
 protected:
  void SetUp() override {
    saved_ = config();
    config().clock_policy = GetParam();
    config().validation = ValidationPolicy::kSignature;
    config().validation_crosscheck = true;
    reset_stats();
    reset_storm_sites();
    fault::reset_thread();
    crash::reset_all();
    sigring::reset();
  }
  void TearDown() override {
    config() = saved_;
    reset_storm_sites();
    fault::reset_thread();
    crash::reset_all();
    sigring::reset();
  }
  Config saved_;
};

// Shared stress body: kThreads workers over a hot invariant pair (x == y),
// a churn array that keeps the ring turning over (forcing wrap fallbacks),
// and deliberate yields inside transaction bodies to stretch the windows
// the in-flight table and publish-before-release ordering protect.
struct StressState {
  uint64_t x = 0;
  uint64_t y = 0;
  uint64_t churn[512] = {};
  std::atomic<uint64_t> mismatches{0};
};

void stress_op(StressState& st, util::Xoshiro256& rng, uint64_t op) {
  const uint64_t dice = rng.next_below(10);
  if (dice < 5) {
    atomic([&](Txn& t) {
      const uint64_t vx = t.load(&st.x);
      if (op % 7 == 0) std::this_thread::yield();
      const uint64_t vy = t.load(&st.y);
      if (vx != vy) st.mismatches.fetch_add(1, std::memory_order_relaxed);
      t.store(&st.x, vx + 1);
      t.store(&st.y, vy + 1);
    });
  } else if (dice < 8) {
    // Disjoint churn: each commit publishes a fresh ring entry, so long
    // runs wrap the ring under the readers' feet.
    const uint64_t i = rng.next_below(512);
    atomic([&](Txn& t) { t.store(&st.churn[i], t.load(&st.churn[i]) + 1); });
  } else {
    atomic([&](Txn& t) {
      const uint64_t vx = t.load(&st.x);
      if (op % 5 == 0) std::this_thread::yield();
      const uint64_t vy = t.load(&st.y);
      if (vx != vy) st.mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

TEST_P(ValidationOracle, LockstepBackendsNeverDivergeUnderYieldStress) {
  constexpr int kThreads = 4;
  constexpr int kOps = 2500;
  StressState st;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 7919 + 101);
      barrier.arrive_and_wait();
      for (uint64_t op = 0; op < kOps; ++op) stress_op(st, rng, op);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(st.mismatches.load(), 0u);
  EXPECT_EQ(st.x, st.y);
  const TxnStats s = aggregate_stats();
  EXPECT_GT(s.sig_validations, 0u) << "oracle ran but never cross-checked";
  EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u)
      << "signature backend reported valid where the exact walk saw a "
         "conflict — soundness bug";
}

TEST_P(ValidationOracle, LockstepBackendsNeverDivergeUnderFaultInjection) {
  // 10% spurious aborts re-enter the retry loop constantly, driving the
  // commit path through storm-mode TLE fallbacks — lock-mode publishes and
  // all.
  config().fault.rate = 0.10;
  config().fault.seed = 0x515;
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  StressState st;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      fault::reset_thread();
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 104729 + 13);
      barrier.arrive_and_wait();
      for (uint64_t op = 0; op < kOps; ++op) stress_op(st, rng, op);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(st.mismatches.load(), 0u);
  EXPECT_EQ(st.x, st.y);
  const TxnStats s = aggregate_stats();
  EXPECT_GT(s.faults_injected, 0u) << "injection armed but no faults fired";
  EXPECT_GT(s.sig_validations, 0u);
  EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u);
}

TEST_P(ValidationOracle, LockstepBackendsNeverDivergeUnderThreadDeath) {
  // Victims die mid-transaction and at commit entry, abandoning blocks
  // whose in-flight windows must unwind cleanly; survivors keep validating
  // against whatever the dead threads left behind.
  config().crash.rate = 0.002;
  config().crash.seed = 0xC4A5;
  constexpr int kVictims = 3;
  constexpr int kOps = 1200;
  StressState st;
  util::SpinBarrier barrier(kVictims + 1);
  std::vector<std::thread> victims;
  for (int w = 0; w < kVictims; ++w) {
    victims.emplace_back([&, w] {
      crash::reset_thread();
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 31337 + 7);
      barrier.arrive_and_wait();
      for (uint64_t op = 0; op < kOps; ++op) {
        const bool alive = crash::run_victim([&] { stress_op(st, rng, op); });
        if (!alive) return;  // dead threads run no further operations
      }
    });
  }
  barrier.arrive_and_wait();
  // The survivor validates throughout the killing.
  util::Xoshiro256 rng(0xABCDEF);
  for (uint64_t op = 0; op < kOps; ++op) stress_op(st, rng, op);
  for (auto& t : victims) t.join();
  EXPECT_EQ(st.mismatches.load(), 0u);
  EXPECT_EQ(st.x, st.y);  // dead threads' partial blocks rolled back whole
  const TxnStats s = aggregate_stats();
  EXPECT_GT(s.sig_validations, 0u);
  EXPECT_EQ(sigring::crosscheck_false_negatives().load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BothClocks, ValidationOracle,
    ::testing::Values(ClockPolicy::kGv1, ClockPolicy::kGv5),
    [](const ::testing::TestParamInfo<ClockPolicy>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace dc::htm
