// Fault-crossed robustness tier: every Dynamic Collect algorithm must stay
// correct AND live when 10% of all transaction attempts are killed by
// Rock-style spurious aborts, under both global-clock policies. Liveness is
// structural: every worker runs a *bounded* operation count with no stop
// flag, so a livelocked retry loop hangs the test instead of passing
// vacuously. Correctness is the Dynamic Collect spec: stable handles are
// always collected, foreign values never appear, and after full
// deregistration a Collect returns empty.
//
// This suite is also the DC_FAULT smoke target: scripts/check.sh --fault
// and the CI fault-smoke job run it with DC_FAULT=0.1 exported, which
// layers the process-default injection on top of the fixture's own.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "collect/registry.hpp"
#include "htm/fault.hpp"
#include "htm/htm.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace dc::collect {
namespace {

// The fault model only exercises algorithms that run transactions; the two
// non-transactional baselines (StaticBaseline, DynamicBaseline) would
// trivially see zero injected faults and zero TLE entries.
std::vector<AlgoInfo> htm_algorithms() {
  std::vector<AlgoInfo> algos;
  for (const AlgoInfo& info : all_algorithms()) {
    if (info.uses_htm) algos.push_back(info);
  }
  return algos;
}

class FaultRobustness
    : public ::testing::TestWithParam<std::tuple<AlgoInfo, htm::ClockPolicy>> {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::config().clock_policy = std::get<1>(GetParam());
    htm::config().fault.rate = 0.10;
    htm::config().fault.seed = 0xB0B0;
    htm::reset_stats();
    htm::reset_storm_sites();
    htm::fault::reset_thread();
    MakeParams params;
    params.static_capacity = 256;
    params.max_threads = 8;
    obj_ = std::get<0>(GetParam()).make(params);
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::reset_storm_sites();
    htm::fault::reset_thread();
  }
  std::unique_ptr<DynamicCollect> obj_;
  htm::Config saved_;
};

TEST_P(FaultRobustness, SpecHoldsUnderTenPercentSpuriousAborts) {
  constexpr int kWorkers = 3;
  constexpr int kOpsPerWorker = 1500;
  constexpr Value kStableTag = 0xABCull << 52;
  constexpr Value kChurnTag = 0xDEFull << 52;
  std::vector<Handle> stable;
  for (int i = 0; i < 8; ++i) {
    stable.push_back(
        obj_->register_handle(kStableTag | static_cast<Value>(i)));
  }
  util::SpinBarrier barrier(kWorkers + 1);
  std::vector<std::thread> workers;
  std::atomic<int> workers_done{0};
  const bool fast_collect_eager =
      std::string(obj_->name()) == "ListFastCollect";
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      htm::fault::reset_thread();
      barrier.arrive_and_wait();
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 104729 + 13);
      std::vector<Handle> mine;
      uint64_t seq = 0;
      // Bounded loop, no stop flag: finishing all kOpsPerWorker operations
      // under injected faults IS the liveness assertion.
      for (int op = 0; op < kOpsPerWorker; ++op) {
        const uint64_t dice = rng.next_below(10);
        const bool may_churn = !fast_collect_eager || (op % 8 == 0);
        if (dice < 4 && mine.size() < 20 && may_churn) {
          mine.push_back(obj_->register_handle(kChurnTag | ++seq));
        } else if (dice < 6 && !mine.empty() && may_churn) {
          obj_->deregister(mine.back());
          mine.pop_back();
        } else if (!mine.empty()) {
          obj_->update(mine[rng.next_below(mine.size())],
                       kChurnTag | ++seq);
        }
      }
      for (Handle h : mine) obj_->deregister(h);
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }
  barrier.arrive_and_wait();
  std::vector<Value> out;
  int rounds = 0;
  do {
    ++rounds;
    obj_->collect(out);
    std::set<Value> stable_seen;
    for (const Value v : out) {
      const bool is_stable =
          (v >> 52) == (kStableTag >> 52) && (v & ((1ULL << 52) - 1)) < 8;
      const bool is_churn = (v >> 52) == (kChurnTag >> 52);
      ASSERT_TRUE(is_stable || is_churn)
          << obj_->name() << ": foreign value 0x" << std::hex << v;
      if (is_stable) stable_seen.insert(v);
    }
    ASSERT_EQ(stable_seen.size(), 8u) << obj_->name() << " round " << rounds;
  } while (workers_done.load(std::memory_order_acquire) < kWorkers &&
           rounds < 100000);
  for (auto& t : workers) t.join();
  for (Handle h : stable) obj_->deregister(h);
  obj_->collect(out);
  EXPECT_TRUE(out.empty()) << obj_->name();

  // The run must actually have exercised the fault model, and progress must
  // have flowed through commits (spurious aborts are retried or escalated,
  // never silently dropped). The commit count is not tied to the op count:
  // some algorithms are transactional only on register/deregister, with
  // Update and Collect running non-transactionally.
  const htm::TxnStats s = htm::aggregate_stats();
  EXPECT_GT(s.faults_injected, 0u) << "injection armed but no faults fired";
  EXPECT_GT(s.commits, 0u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(htm::AbortCode::kInterrupt)] +
                s.aborts_by_code[static_cast<int>(htm::AbortCode::kTlbMiss)] +
                s.aborts_by_code[static_cast<int>(
                    htm::AbortCode::kSaveRestore)],
            s.faults_injected)
      << "every injected fault must surface as a spurious abort";
}

TEST_P(FaultRobustness, ForcedFallbackStormUsesTheLockAndStaysCorrect) {
  // Rate 1.0: no speculative attempt can ever commit. Every block must
  // degrade to the TLE lock (tle_entries > 0) and the spec must still hold.
  htm::config().fault.rate = 1.0;
  htm::config().tle_after_aborts = 2;
  htm::fault::reset_thread();
  std::vector<Handle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(obj_->register_handle(0x100 + static_cast<Value>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    obj_->update(handles[static_cast<std::size_t>(i)],
                 0x200 + static_cast<Value>(i));
  }
  std::vector<Value> out;
  obj_->collect(out);
  std::set<Value> seen(out.begin(), out.end());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(seen.count(0x200 + static_cast<Value>(i)))
        << obj_->name() << " lost an update under forced fallback";
  }
  for (Handle h : handles) obj_->deregister(h);
  obj_->collect(out);
  EXPECT_TRUE(out.empty());
  const htm::TxnStats s = htm::aggregate_stats();
  EXPECT_GT(s.tle_entries, 0u);
  EXPECT_GT(s.faults_injected, 0u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(htm::AbortCode::kConflict)], 0u)
      << "single-threaded run must see only injected aborts";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, FaultRobustness,
    ::testing::Combine(::testing::ValuesIn(htm_algorithms()),
                       ::testing::Values(htm::ClockPolicy::kGv1,
                                         htm::ClockPolicy::kGv5)),
    [](const ::testing::TestParamInfo<FaultRobustness::ParamType>& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             htm::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dc::collect
