#include "queue/htm_stack.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "htm/config.hpp"
#include "memory/pool.hpp"

namespace dc::queue {
namespace {

TEST(HtmStack, LifoOrder) {
  HtmStack s;
  for (HtmStack::Value v = 0; v < 100; ++v) s.push(v);
  for (HtmStack::Value v = 100; v-- > 0;) {
    HtmStack::Value got = 0;
    ASSERT_TRUE(s.pop(&got));
    EXPECT_EQ(got, v);
  }
  HtmStack::Value got;
  EXPECT_FALSE(s.pop(&got));
}

TEST(HtmStack, EmptyPopFails) {
  HtmStack s;
  HtmStack::Value v;
  EXPECT_FALSE(s.pop(&v));
  EXPECT_TRUE(s.empty());
  s.push(1);
  EXPECT_FALSE(s.empty());
}

TEST(HtmStack, FreesOnPop) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  HtmStack s;
  for (HtmStack::Value v = 0; v < 500; ++v) s.push(v);
  EXPECT_EQ(mem::pool_stats().live_blocks, before.live_blocks + 500);
  HtmStack::Value got;
  while (s.pop(&got)) {
  }
  EXPECT_EQ(mem::pool_stats().live_blocks, before.live_blocks);
}

TEST(HtmStack, MpmcConservation) {
  HtmStack s;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr HtmStack::Value kPerProducer = 3000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> popped_count{0};
  std::vector<std::vector<HtmStack::Value>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (HtmStack::Value i = 0; i < kPerProducer; ++i) {
        s.push((static_cast<HtmStack::Value>(p) << 32) | i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      HtmStack::Value v;
      for (;;) {
        if (s.pop(&v)) {
          seen[c].push_back(v);
          popped_count.fetch_add(1);
        } else if (done.load() &&
                   popped_count.load() >= kProducers * kPerProducer) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true);
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  std::map<HtmStack::Value, int> counts;
  for (const auto& vec : seen) {
    for (const auto v : vec) counts[v]++;
  }
  EXPECT_EQ(counts.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  for (const auto& [v, n] : counts) EXPECT_EQ(n, 1) << v;
}

TEST(HtmStack, StressUnderForcedPreemption) {
  // Sandboxing regression: pops free immediately while racing pushers/
  // poppers hold stale tops; forced yields maximize the overlap.
  const auto saved = htm::config();
  htm::config().txn_yield_every_loads = 2;
  {
    HtmStack s;
    std::vector<std::thread> threads;
    std::atomic<uint64_t> pushes{0};
    std::atomic<uint64_t> pops{0};
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        HtmStack::Value v;
        for (int i = 0; i < 3000; ++i) {
          if ((i + t) % 2 == 0) {
            s.push(static_cast<HtmStack::Value>(i));
            pushes.fetch_add(1, std::memory_order_relaxed);
          } else if (s.pop(&v)) {
            pops.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    // Drain and account: remaining = pushes - pops.
    HtmStack::Value v;
    uint64_t drained = 0;
    while (s.pop(&v)) ++drained;
    EXPECT_EQ(pushes.load(), pops.load() + drained);
  }
  htm::config() = saved;
}

}  // namespace
}  // namespace dc::queue
