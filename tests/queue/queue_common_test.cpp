// Behavioural tests shared by all four queue implementations (typed suite):
// FIFO order, emptiness, and a producer/consumer stress with per-producer
// order and value-conservation checks.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "queue/htm_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/ms_queue_hp.hpp"
#include "queue/ms_queue_rop.hpp"

namespace dc::queue {
namespace {

template <class Q>
class QueueCommon : public ::testing::Test {
 protected:
  Q queue_;
};

using QueueTypes = ::testing::Types<HtmQueue, MsQueue, MsQueueHp, MsQueueRop>;

class QueueNames {
 public:
  template <class T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, HtmQueue>) return "HtmQueue";
    if constexpr (std::is_same_v<T, MsQueue>) return "MsQueue";
    if constexpr (std::is_same_v<T, MsQueueHp>) return "MsQueueHp";
    if constexpr (std::is_same_v<T, MsQueueRop>) return "MsQueueRop";
  }
};

TYPED_TEST_SUITE(QueueCommon, QueueTypes, QueueNames);

TYPED_TEST(QueueCommon, EmptyDequeueFails) {
  Value v = 0;
  EXPECT_FALSE(this->queue_.dequeue(&v));
}

TYPED_TEST(QueueCommon, SingleElementRoundTrip) {
  this->queue_.enqueue(42);
  Value v = 0;
  ASSERT_TRUE(this->queue_.dequeue(&v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(this->queue_.dequeue(&v));
}

TYPED_TEST(QueueCommon, FifoOrder) {
  for (Value i = 0; i < 100; ++i) this->queue_.enqueue(i);
  for (Value i = 0; i < 100; ++i) {
    Value v = 0;
    ASSERT_TRUE(this->queue_.dequeue(&v));
    EXPECT_EQ(v, i);
  }
}

TYPED_TEST(QueueCommon, InterleavedOperations) {
  Value v = 0;
  this->queue_.enqueue(1);
  this->queue_.enqueue(2);
  ASSERT_TRUE(this->queue_.dequeue(&v));
  EXPECT_EQ(v, 1u);
  this->queue_.enqueue(3);
  ASSERT_TRUE(this->queue_.dequeue(&v));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(this->queue_.dequeue(&v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(this->queue_.dequeue(&v));
}

TYPED_TEST(QueueCommon, DrainAfterRefill) {
  for (int round = 0; round < 5; ++round) {
    for (Value i = 0; i < 50; ++i) this->queue_.enqueue(i);
    Value v = 0;
    int count = 0;
    while (this->queue_.dequeue(&v)) ++count;
    EXPECT_EQ(count, 50);
  }
}

TYPED_TEST(QueueCommon, MpmcStressConservesValuesAndPerProducerOrder) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr Value kPerProducer = 3000;
  std::atomic<bool> producers_done{false};
  std::atomic<uint64_t> consumed_count{0};
  // Value encoding: (producer << 32) | seq. Consumers check seq strictly
  // increases per producer (FIFO per enqueuer) and record everything seen.
  std::vector<std::vector<Value>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (Value i = 0; i < kPerProducer; ++i) {
        this->queue_.enqueue((static_cast<Value>(p) << 32) | i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      Value v = 0;
      for (;;) {
        if (this->queue_.dequeue(&v)) {
          seen[c].push_back(v);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   consumed_count.load(std::memory_order_acquire) >=
                       kProducers * kPerProducer) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  producers_done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  // Conservation: every value exactly once.
  std::map<Value, int> counts;
  for (const auto& s : seen) {
    for (const Value v : s) counts[v]++;
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  for (const auto& [v, n] : counts) {
    EXPECT_EQ(n, 1) << "value " << v << " seen " << n << " times";
  }
  // Per-producer order within each consumer's stream.
  for (const auto& s : seen) {
    std::map<Value, Value> last_seq;
    for (const Value v : s) {
      const Value producer = v >> 32;
      const Value seq = v & 0xffffffff;
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) {
        EXPECT_GT(seq, it->second) << "per-producer FIFO violated";
      }
      last_seq[producer] = seq;
    }
  }
}

}  // namespace
}  // namespace dc::queue
