// Failure injection for the queues: forced mid-transaction preemption for
// the HTM queue, and a single-threaded model-based fuzz for all four
// implementations.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "htm/config.hpp"
#include "queue/htm_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/ms_queue_hp.hpp"
#include "queue/ms_queue_rop.hpp"
#include "util/rng.hpp"

namespace dc::queue {
namespace {

template <class Q>
void model_fuzz(uint64_t seed) {
  Q q;
  std::deque<Value> model;
  util::Xoshiro256 rng(seed);
  Value next = 1;
  for (int op = 0; op < 20000; ++op) {
    if (rng.percent_chance(55)) {
      q.enqueue(next);
      model.push_back(next);
      ++next;
    } else {
      Value got = 0;
      const bool ok = q.dequeue(&got);
      ASSERT_EQ(ok, !model.empty()) << "op " << op;
      if (ok) {
        ASSERT_EQ(got, model.front()) << "FIFO violated at op " << op;
        model.pop_front();
      }
    }
  }
  Value got;
  while (!model.empty()) {
    ASSERT_TRUE(q.dequeue(&got));
    ASSERT_EQ(got, model.front());
    model.pop_front();
  }
  ASSERT_FALSE(q.dequeue(&got));
}

TEST(QueueModelFuzz, HtmQueue) { model_fuzz<HtmQueue>(101); }
TEST(QueueModelFuzz, MsQueue) { model_fuzz<MsQueue>(202); }
TEST(QueueModelFuzz, MsQueueHp) { model_fuzz<MsQueueHp>(303); }
TEST(QueueModelFuzz, MsQueueRop) { model_fuzz<MsQueueRop>(404); }

TEST(QueueStress, HtmQueueUnderForcedPreemption) {
  // Dequeues free nodes immediately while other threads' transactions are
  // parked mid-flight on stale pointers (txn_yield_every_loads=2): the
  // sandboxing contract carries the whole weight here.
  const auto saved = htm::config();
  htm::config().txn_yield_every_loads = 2;
  {
    HtmQueue q;
    std::atomic<uint64_t> enq{0}, deq{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        util::Xoshiro256 rng(static_cast<uint64_t>(t) + 7);
        Value v;
        for (int i = 0; i < 2500; ++i) {
          if (rng.percent_chance(50)) {
            q.enqueue(static_cast<Value>(i));
            enq.fetch_add(1, std::memory_order_relaxed);
          } else if (q.dequeue(&v)) {
            deq.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    Value v;
    uint64_t drained = 0;
    while (q.dequeue(&v)) ++drained;
    EXPECT_EQ(enq.load(), deq.load() + drained);
  }
  htm::config() = saved;
}

TEST(QueueStress, MsQueueAbaHammer) {
  // Aggressive node recycling across threads: every dequeue feeds the local
  // pool that the next enqueue reuses, maximizing the A-B-A exposure that
  // the counted pointers must defeat.
  MsQueue q;
  for (Value i = 0; i < 4; ++i) q.enqueue(i);  // tiny queue = hot recycling
  std::atomic<uint64_t> balance{4};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      Value v;
      for (int i = 0; i < 10000; ++i) {
        if (q.dequeue(&v)) {
          balance.fetch_sub(1, std::memory_order_relaxed);
        }
        q.enqueue(static_cast<Value>(i));
        balance.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  Value v;
  uint64_t drained = 0;
  while (q.dequeue(&v)) ++drained;
  EXPECT_EQ(drained, balance.load());
}

}  // namespace
}  // namespace dc::queue
