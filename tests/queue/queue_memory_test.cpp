// The space properties the paper's §1.1 argument rests on:
//  - HTM queue: quiescent footprint proportional to *current* size (frees on
//    dequeue);
//  - Michael–Scott with thread-local pools: quiescent footprint proportional
//    to the *historical maximum* size;
//  - HP/ROP variants: reclaim, with a bounded deferred tail.
#include <gtest/gtest.h>

#include <thread>

#include "memory/pool.hpp"
#include "queue/htm_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/ms_queue_hp.hpp"
#include "queue/ms_queue_rop.hpp"

namespace dc::queue {
namespace {

TEST(QueueMemory, HtmQueueFreesOnDequeue) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  {
    HtmQueue q;
    for (Value i = 0; i < 1000; ++i) q.enqueue(i);
    const auto peak = mem::pool_stats();
    EXPECT_GE(peak.live_blocks, before.live_blocks + 1000);
    Value v;
    while (q.dequeue(&v)) {
    }
    const auto drained = mem::pool_stats();
    // Every node freed the moment it was dequeued.
    EXPECT_EQ(drained.live_blocks, before.live_blocks);
  }
}

TEST(QueueMemory, MsQueueKeepsHistoricalMaximum) {
  MsQueue q;
  for (Value i = 0; i < 1000; ++i) q.enqueue(i);
  Value v;
  while (q.dequeue(&v)) {
  }
  // Quiescent, empty queue — but the nodes are all parked in local pools.
  EXPECT_GE(q.pooled_nodes(), 1000u);
  // And they are reused rather than re-allocated:
  const auto before = mem::pool_stats();
  for (Value i = 0; i < 500; ++i) q.enqueue(i);
  const auto after = mem::pool_stats();
  EXPECT_EQ(after.allocations, before.allocations);  // all from pools
}

TEST(QueueMemory, MsQueueHpReclaimsToAllocator) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  {
    MsQueueHp q;
    for (Value i = 0; i < 1000; ++i) q.enqueue(i);
    Value v;
    while (q.dequeue(&v)) {
    }
    q.quiesce();
    const auto drained = mem::pool_stats();
    // All but the dummy and a bounded deferred tail are back.
    EXPECT_LE(drained.live_blocks - before.live_blocks,
              1 + q.deferred_nodes());
    EXPECT_LT(q.deferred_nodes(), 200u);  // scan threshold bound
  }
}

TEST(QueueMemory, MsQueueRopReclaimsToAllocator) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  {
    MsQueueRop q;
    for (Value i = 0; i < 1000; ++i) q.enqueue(i);
    Value v;
    while (q.dequeue(&v)) {
    }
    q.quiesce();
    const auto drained = mem::pool_stats();
    EXPECT_LE(drained.live_blocks - before.live_blocks,
              1 + q.deferred_nodes());
    EXPECT_LT(q.deferred_nodes(), 200u);  // liberate batch bound
  }
  const auto after = mem::pool_stats();
  EXPECT_EQ(after.live_blocks, before.live_blocks);  // dtor drains the rest
}

TEST(QueueMemory, HtmQueueQuiescentFootprintTracksCurrentSize) {
  mem::pool_flush_thread_cache();
  const auto baseline = mem::pool_stats();
  HtmQueue q;
  // Grow to 2000, shrink to 10: live nodes must track the shrink.
  for (Value i = 0; i < 2000; ++i) q.enqueue(i);
  Value v;
  for (int i = 0; i < 1990; ++i) ASSERT_TRUE(q.dequeue(&v));
  const auto now = mem::pool_stats();
  EXPECT_EQ(now.live_blocks - baseline.live_blocks, 10u);
}

TEST(QueueMemory, HtmQueueDestructorReleasesEverything) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  {
    HtmQueue q;
    for (Value i = 0; i < 100; ++i) q.enqueue(i);
  }
  const auto after = mem::pool_stats();
  EXPECT_EQ(after.live_blocks, before.live_blocks);
}

TEST(QueueMemory, ConcurrentChurnDoesNotGrowHtmQueueFootprint) {
  mem::pool_flush_thread_cache();
  HtmQueue q;
  for (Value i = 0; i < 64; ++i) q.enqueue(i);
  const auto start = mem::pool_stats();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      Value v;
      for (int i = 0; i < 3000; ++i) {
        q.enqueue(static_cast<Value>(i));
        q.dequeue(&v);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = mem::pool_stats();
  // Size-neutral churn: footprint unchanged (± the 64 resident entries).
  EXPECT_LE(end.live_blocks, start.live_blocks + 8);
}

}  // namespace
}  // namespace dc::queue
