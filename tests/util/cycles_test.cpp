#include "util/cycles.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace dc::util {
namespace {

TEST(Cycles, Monotonic) {
  uint64_t prev = rdcycles();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = rdcycles();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Cycles, CalibrationIsPlausible) {
  // Any CPU this runs on is between 0.2 GHz and 10 GHz.
  const double cpn = cycles_per_ns();
  EXPECT_GT(cpn, 0.2);
  EXPECT_LT(cpn, 10.0);
}

TEST(Cycles, RoundTripConversion) {
  const uint64_t ns = 1'000'000;
  const uint64_t cycles = ns_to_cycles(ns);
  EXPECT_NEAR(cycles_to_ns(cycles), static_cast<double>(ns), 1000.0);
}

TEST(Cycles, SpinUntilWaitsRoughlyThePeriod) {
  const uint64_t period = ns_to_cycles(2'000'000);  // 2ms
  const uint64_t start = rdcycles();
  const uint64_t end = spin_until(start, period);
  EXPECT_GE(end - start, period);
  // Not absurdly longer (scheduler noise allowed: 100ms bound).
  EXPECT_LT(cycles_to_ns(end - start), 100e6);
}

TEST(Cycles, AgreesWithSteadyClock) {
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = rdcycles();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t c1 = rdcycles();
  const auto t1 = std::chrono::steady_clock::now();
  const double measured_ns = cycles_to_ns(c1 - c0);
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t1 - t0)
                              .count());
  EXPECT_NEAR(measured_ns / wall_ns, 1.0, 0.25);
}

}  // namespace
}  // namespace dc::util
