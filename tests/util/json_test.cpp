// The minimal JSON parser exists to validate the exporters' output
// (tests/obs/export_schema_test.cpp); these tests pin down the parser
// itself so a schema failure over there means the *writer* broke.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using dc::util::Json;

TEST(Json, ParsesScalars) {
  auto v = Json::parse("42");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_number());
  EXPECT_DOUBLE_EQ(v->number(), 42.0);

  v = Json::parse("-3.5e2");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->number(), -350.0);

  v = Json::parse("true");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_bool());
  EXPECT_TRUE(v->boolean());

  v = Json::parse("null");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_null());

  v = Json::parse("\"hi\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const auto v = Json::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}, "f": null})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->size(), 3u);
  const Json* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].number(), 2.0);
  const Json* b = a->items()[2].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->str(), "c");
  const Json* e = v->find("d")->find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->boolean());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, DecodesEscapes) {
  const auto v = Json::parse(R"("a\n\t\"\\\u0041\u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str(), "a\n\t\"\\A\xC3\xA9");
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1, 2").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("\"bad \\q escape\"").has_value());
  EXPECT_FALSE(Json::parse("1 trailing").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  // Depth limit: 70 nested arrays exceed kMaxDepth = 64.
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(Json, AcceptsWhitespaceAndEmptyContainers) {
  const auto v = Json::parse("  { \"a\" : [ ] , \"b\" : { } }  ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->size(), 0u);
  EXPECT_EQ(v->find("b")->size(), 0u);
}

}  // namespace
