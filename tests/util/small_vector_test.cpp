#include "util/small_vector.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace dc::util {
namespace {

TEST(SmallVector, StartsInlineAndEmpty) {
  SmallVector<uint64_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_EQ(decltype(v)::inline_capacity(), 4u);
}

TEST(SmallVector, PushBackWithinInlineStorage) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // no spill yet
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, GrowthSpillsToHeapPreservingContents) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 100; ++i) v.push_back(i * 3);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * 3);
  EXPECT_EQ(v.back(), 99u * 3);
}

TEST(SmallVector, ClearKeepsSpillCapacityForReuse) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const std::size_t grown = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), grown);  // steady-state reuse never reallocates
  for (int i = 0; i < 50; ++i) v.push_back(-i);
  EXPECT_EQ(v.capacity(), grown);
  EXPECT_EQ(v[49], -49);
}

TEST(SmallVector, InsertAtKeepsOrder) {
  SmallVector<int, 4> v;
  v.push_back(10);
  v.push_back(30);
  v.insert_at(1, 20);  // middle
  v.insert_at(0, 5);   // front
  v.insert_at(4, 40);  // end (== size)
  ASSERT_EQ(v.size(), 5u);
  const int expect[] = {5, 10, 20, 30, 40};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], expect[i]);
}

TEST(SmallVector, InsertAtGrowsAcrossInlineBoundary) {
  SmallVector<int, 2> v;
  // Always insert at the front so every element shifts on every insert.
  for (int i = 0; i < 20; ++i) v.insert_at(0, i);
  ASSERT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], 19 - i);
  }
}

TEST(SmallVector, IterationAndPopBack) {
  SmallVector<int, 8> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 10);
  v.pop_back();
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.back(), 3);
}

TEST(SmallVector, HoldsTrivialStructs) {
  struct Entry {
    uintptr_t addr;
    uint64_t value;
  };
  SmallVector<Entry, 2> v;
  for (uint64_t i = 0; i < 10; ++i) v.push_back(Entry{i, i * i});
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[7].addr, 7u);
  EXPECT_EQ(v[7].value, 49u);
}

}  // namespace
}  // namespace dc::util
