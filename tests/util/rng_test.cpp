#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace dc::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, PercentChanceRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.percent_chance(25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Xoshiro256, PercentChanceEdges) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.percent_chance(0));
    EXPECT_TRUE(rng.percent_chance(100));
  }
}

TEST(Xoshiro256, MeanIsCentered) {
  Xoshiro256 rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace dc::util
