#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace dc::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.buckets(), 4u);  // 3 bounded + overflow
  h.add(0.5);    // bucket 0
  h.add(1.0);    // bucket 0 (inclusive upper bound)
  h.add(5.0);    // bucket 1
  h.add(50.0);   // bucket 2
  h.add(500.0);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Fractions) {
  Histogram h({10.0});
  h.add(1.0);
  h.add(2.0);
  h.add(20.0);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, UnsortedBoundsAreSorted) {
  Histogram h({100.0, 1.0, 10.0});
  h.add(5.0);
  EXPECT_EQ(h.bucket_bound(0), 1.0);
  EXPECT_EQ(h.bucket_count(1), 1u);
}

}  // namespace
}  // namespace dc::util
