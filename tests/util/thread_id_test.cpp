#include "util/thread_id.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace dc::util {
namespace {

TEST(ThreadId, StableWithinThread) {
  const uint32_t a = thread_id();
  const uint32_t b = thread_id();
  EXPECT_EQ(a, b);
}

TEST(ThreadId, DistinctAcrossLiveThreads) {
  constexpr int kThreads = 8;
  std::vector<uint32_t> ids(kThreads);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ids[i] = thread_id();
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& t : threads) t.join();
  std::set<uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadId, IdsAreRecycledAfterThreadExit) {
  std::set<uint32_t> seen;
  for (int round = 0; round < 3 * 64; ++round) {
    std::thread t([&] { seen.insert(thread_id()); });
    t.join();
  }
  // Sequentially created/joined threads reuse a small set of ids instead of
  // exhausting the table.
  EXPECT_LT(seen.size(), 16u);
}

TEST(ThreadId, HighWaterCoversCurrentThread) {
  EXPECT_GT(thread_id_high_water(), thread_id());
}

TEST(ThreadId, ReleaseGivesFreshValidId) {
  const uint32_t before = thread_id();
  release_thread_id();
  const uint32_t after = thread_id();
  EXPECT_LT(after, kMaxThreads);
  // The released id is free; the replacement may or may not equal it, but
  // repeated release cycles must not leak ids.
  for (int i = 0; i < 300; ++i) release_thread_id();
  EXPECT_LT(thread_id(), kMaxThreads);
  (void)before;
}

}  // namespace
}  // namespace dc::util
